/// \file random_search.cpp
/// \brief The Section V-E scalability pipeline as a demo: generate a random
/// Toffoli cascade, keep only its *function* (as a PPRM; no truth table is
/// ever built, so this works at widths far beyond 2^n enumeration), and let
/// RMRLS rediscover a circuit for it.
///
/// Build & run:  ./build/examples/random_search [vars] [gates] [seed]
/// (defaults: 12 variables, 12 gates, seed 1)

#include <cstdlib>
#include <iostream>
#include <random>

#include "core/synthesizer.hpp"
#include "rev/quantum_cost.hpp"
#include "rev/random.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const int vars = argc > 1 ? std::atoi(argv[1]) : 12;
  const int gates = argc > 2 ? std::atoi(argv[2]) : 12;
  const unsigned seed = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 1;
  if (vars < 2 || vars > kMaxVariables || gates < 1) {
    std::cerr << "usage: random_search [vars 2..64] [gates >= 1] [seed]\n";
    return 2;
  }

  std::mt19937_64 rng(seed);
  const Circuit hidden = random_circuit(vars, gates, GateLibrary::kGT, rng);
  std::cout << "Hidden cascade (" << vars << " lines, " << gates
            << " gates):\n  " << hidden.to_string() << "\n\n";

  const Pprm spec = hidden.to_pprm();
  std::cout << "Its PPRM system has " << spec.term_count() << " terms.\n";

  SynthesisOptions options;
  options.max_nodes = 100000;
  options.stop_at_first_solution = true;  // the paper's scalability mode
  const SynthesisResult r = synthesize(spec, options);
  if (!r.success) {
    std::cout << "RMRLS found no circuit within " << options.max_nodes
              << " nodes (the paper's Tables V-VII also report misses).\n";
    return 0;
  }
  std::cout << "Rediscovered (" << r.circuit.gate_count() << " gates, cost "
            << quantum_cost(r.circuit) << ", "
            << r.stats.nodes_expanded << " nodes):\n  "
            << r.circuit.to_string() << "\n";
  std::cout << "Functionally equivalent to the hidden cascade: "
            << std::boolalpha << implements(r.circuit, spec) << "\n";
  std::cout << "(The rediscovered cascade is usually different from, and"
               " often shorter than, the hidden one.)\n";
  return 0;
}
