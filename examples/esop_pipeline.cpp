/// \file esop_pipeline.cpp
/// \brief The Section II-E front end: from a single-output Boolean function
/// through minterm ESOP, heuristic minimization (our EXORCISM-4 stand-in),
/// expansion to PPRM, and on to a synthesized reversible circuit via a
/// minimal garbage embedding.
///
/// Build & run:  ./build/examples/esop_pipeline

#include <bit>
#include <iostream>

#include "core/synthesizer.hpp"
#include "esop/esop.hpp"
#include "esop/minimize.hpp"
#include "rev/embedding.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

int main() {
  using namespace rmrls;

  // majority5: 1 when three or more of the five inputs are 1 (Example 10).
  const int n = 5;
  std::vector<std::uint8_t> truth(32);
  for (std::uint64_t x = 0; x < 32; ++x) {
    truth[x] = std::popcount(x) >= 3 ? 1 : 0;
  }

  // Minterm ESOP -> heuristic minimization.
  const Esop minterms = Esop::from_truth_vector(truth);
  const EsopMinimizeResult minimized = minimize_esop(minterms);
  std::cout << "majority5 ESOP: " << minimized.initial_cubes
            << " minterms -> " << minimized.final_cubes << " cubes after "
            << minimized.passes << " passes:\n  "
            << minimized.esop.to_string() << "\n\n";

  // Exact expansion to the canonical PPRM (paper, Section II-E), checked
  // against the direct Reed-Muller transform.
  const CubeList pprm = minimized.esop.to_pprm();
  const CubeList direct = pprm_of_truth_vector(truth);
  std::cout << "PPRM (" << pprm.size() << " terms): " << pprm.to_string(n)
            << "\nMatches the direct Moebius transform: " << std::boolalpha
            << (pprm == direct) << "\n\n";

  // Embed reversibly and synthesize the whole multi-output system.
  IrreversibleSpec spec;
  spec.num_inputs = n;
  spec.num_outputs = 1;
  spec.outputs.assign(truth.begin(), truth.end());
  const Embedding e = embed(spec);
  std::cout << "Reversible embedding: " << e.lines() << " lines, "
            << e.garbage_outputs << " garbage outputs\n";

  SynthesisOptions options;
  options.max_nodes = 150000;
  const SynthesisResult r = synthesize(e.table, options);
  if (!r.success) {
    std::cerr << "synthesis failed within budget\n";
    return 1;
  }
  std::cout << "Circuit (" << r.circuit.gate_count() << " gates, cost "
            << quantum_cost(r.circuit) << "):\n  " << r.circuit.to_string()
            << "\nVerified: " << std::boolalpha
            << implements(r.circuit, e.table) << "\n";
  return 0;
}
