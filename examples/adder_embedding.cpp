/// \file adder_embedding.cpp
/// \brief The Section II workflow end to end: take the *irreversible*
/// augmented full-adder of Fig. 2(a), embed it reversibly (garbage outputs
/// plus a constant input, Fig. 2(b)), synthesize, and compare against the
/// paper's hand-crafted 4-gate realization of Example 8 / Fig. 8.
///
/// Build & run:  ./build/examples/adder_embedding

#include <iostream>

#include "bench_suite/functions.hpp"
#include "core/synthesizer.hpp"
#include "rev/embedding.hpp"
#include "rev/embedding_search.hpp"
#include "rev/quantum_cost.hpp"

int main() {
  using namespace rmrls;

  // The augmented full-adder: carry, sum and propagate of inputs a, b, c.
  IrreversibleSpec adder;
  adder.num_inputs = 3;
  adder.num_outputs = 3;
  adder.outputs.resize(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const int a = static_cast<int>(x & 1);
    const int b = static_cast<int>((x >> 1) & 1);
    const int c = static_cast<int>((x >> 2) & 1);
    const int carry = (a + b + c) >= 2;
    const int sum = (a + b + c) & 1;
    const int propagate = a ^ b;
    adder.outputs[x] =
        static_cast<std::uint64_t>(carry | (sum << 1) | (propagate << 2));
  }

  // Three output patterns repeat (the daggered rows of Fig. 2(a)), so one
  // garbage output disambiguates them; one constant input balances lines.
  const Embedding e = embed(adder);
  std::cout << "Embedding: " << e.lines() << " lines = " << e.real_inputs
            << " real + " << e.constant_inputs << " constant inputs; "
            << e.real_outputs << " real + " << e.garbage_outputs
            << " garbage outputs\n";
  std::cout << "Reversible spec: " << e.table.to_string() << "\n\n";

  SynthesisOptions options;
  options.max_nodes = 150000;
  const SynthesisResult mine = synthesize(e.table, options);
  if (!mine.success) {
    std::cerr << "synthesis failed within budget\n";
    return 1;
  }
  std::cout << "Our embedding  -> " << mine.circuit.gate_count()
            << " gates, cost " << quantum_cost(mine.circuit) << ":\n  "
            << mine.circuit.to_string() << "\n"
            << "  verified: " << std::boolalpha
            << implements(mine.circuit, e.table) << "\n\n";

  // The paper's hand-tuned embedding (Example 8) yields a 4-gate cascade
  // (Fig. 8); embedding choice matters a lot, which is why the paper calls
  // don't-care assignment an open problem.
  const TruthTable paper_spec = suite::example(8);
  const SynthesisResult paper = synthesize(paper_spec, options);
  if (paper.success) {
    std::cout << "Paper's embedding -> " << paper.circuit.gate_count()
              << " gates, cost " << quantum_cost(paper.circuit) << ":\n  "
              << paper.circuit.to_string() << "\n"
              << "  verified: " << std::boolalpha
              << implements(paper.circuit, paper_spec) << "\n\n";
  }

  // The library's answer to that open problem: search a portfolio of
  // garbage assignments and don't-care completions (embedding_search.hpp).
  EmbeddingSearchOptions search_options;
  search_options.synthesis.max_nodes = 60000;
  const EmbeddingSearchResult best = find_best_embedding(adder, search_options);
  if (best.synthesis.success) {
    std::cout << "Embedding search (" << best.attempts << " embeddings, "
              << best.solved << " synthesized) -> "
              << best.synthesis.circuit.gate_count() << " gates, cost "
              << quantum_cost(best.synthesis.circuit) << ":\n  "
              << best.synthesis.circuit.to_string() << "\n"
              << "  verified: " << std::boolalpha
              << implements(best.synthesis.circuit, best.embedding.table)
              << "\n";
  }
  return 0;
}
