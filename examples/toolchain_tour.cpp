/// \file toolchain_tour.cpp
/// \brief Post-synthesis toolchain in one pass: synthesize a benchmark,
/// simplify with templates, extract Fredkin gates (the paper's Section VI
/// future work), lower to the NCT library (Barenco decomposition), check
/// every step exactly equivalent, and export .tfc / .real.
///
/// Build & run:  ./build/examples/toolchain_tour [benchmark]
/// (default: shift10 — wide gates make the lowering interesting)

#include <iostream>
#include <string>

#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/real_format.hpp"
#include "io/tfc.hpp"
#include "rev/circuit_stats.hpp"
#include "rev/decompose.hpp"
#include "rev/equivalence.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/fredkinize.hpp"
#include "templates/simplify.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const std::string name = argc > 1 ? argv[1] : "shift10";
  const suite::Benchmark b = suite::get_benchmark(name);
  std::cout << "Benchmark " << name << " (" << b.info.lines << " lines, "
            << b.pprm.term_count() << " PPRM terms)\n\n";

  // 1. Synthesize.
  SynthesisOptions options;
  options.max_nodes = 150000;
  const SynthesisResult r = synthesize(b.pprm, options);
  if (!r.success) {
    std::cerr << "synthesis failed within budget\n";
    return 1;
  }
  std::cout << "synthesized: " << stats_to_string(analyze(r.circuit))
            << "quantum cost " << quantum_cost(r.circuit) << "\n\n";

  // 2. Template simplification (exact, checked).
  const Circuit simplified = simplify_templates(r.circuit).circuit;
  std::cout << "templates:   removed "
            << r.circuit.gate_count() - simplified.gate_count()
            << " gates; still equivalent: " << std::boolalpha
            << equivalent(simplified, b.pprm) << "\n";

  // 3. Fredkin extraction (mixed cascade).
  const FredkinizeResult fr = fredkinize(simplified);
  std::cout << "fredkinize:  " << fr.fredkin_gates
            << " controlled swaps extracted -> " << fr.circuit.gate_count()
            << " mixed gates, cost " << quantum_cost(fr.circuit)
            << "; equivalent: " << equivalent(fr.circuit, simplified)
            << "\n";

  // 4. Lower to the NCT library (full-width gates kept: no network exists).
  const Circuit nct = decompose_to_nct(simplified, FullWidthPolicy::kKeep);
  std::cout << "NCT lowering: " << simplified.gate_count() << " GT gates -> "
            << nct.gate_count() << " gates ("
            << (analyze(nct).fits_nct ? "pure NCT" : "wide gates kept")
            << "); equivalent: " << equivalent(nct, simplified) << "\n\n";

  // 5. Export.
  std::cout << "--- .tfc (simplified GT cascade) ---\n"
            << write_tfc(simplified) << "\n--- .real (mixed cascade) ---\n"
            << write_real(fr.circuit);
  return 0;
}
