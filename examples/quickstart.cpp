/// \file quickstart.cpp
/// \brief Five-minute tour of the RMRLS public API, on the paper's running
/// example (Fig. 1): specify a reversible function, look at its PPRM,
/// synthesize, verify, and price the circuit.
///
/// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/synthesizer.hpp"
#include "io/tfc.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

int main() {
  using namespace rmrls;

  // 1. A reversible function is a permutation of {0..2^n-1} (paper, Fig. 1).
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  std::cout << "Specification: " << spec.to_string() << "\n\n";

  // 2. The synthesizer works on its positive-polarity Reed-Muller system
  //    (eq. 3 of the paper: a_out = 1 + a, b_out = b + c + ac, ...).
  const Pprm pprm = pprm_of_truth_table(spec);
  std::cout << "PPRM expansions:\n" << pprm.to_string() << "\n";

  // 3. Synthesize. Options default to the paper's configuration
  //    (priority weights 0.3/0.6/0.1, additional substitutions enabled).
  SynthesisOptions options;
  options.max_nodes = 50000;  // deterministic search budget
  const SynthesisResult result = synthesize(spec, options);
  if (!result.success) {
    std::cerr << "synthesis failed within budget\n";
    return 1;
  }

  // 4. Inspect the cascade: it should be the paper's 3-gate circuit of
  //    Fig. 3(d): TOF1(a) TOF3(a, c; b) TOF3(a, b; c).
  std::cout << "Circuit:  " << result.circuit.to_string() << "\n";
  std::cout << "Gates:    " << result.circuit.gate_count() << "\n";
  std::cout << "Cost:     " << quantum_cost(result.circuit) << "\n";
  std::cout << "Nodes:    " << result.stats.nodes_expanded << "\n\n";

  // 5. Verify by exhaustive simulation, then export as .tfc.
  std::cout << "Verified: " << std::boolalpha
            << implements(result.circuit, spec) << "\n\n";
  std::cout << write_tfc(result.circuit);
  return 0;
}
