/// \file benchmark_explorer.cpp
/// \brief Synthesizes a named benchmark from the paper's suite and compares
/// RMRLS against both baselines (greedy PPRM and transformation-based),
/// with and without template post-processing.
///
/// Build & run:  ./build/examples/benchmark_explorer [name]
/// (default: hwb4; pass --list to enumerate names)

#include <iostream>
#include <string>

#include "baselines/greedy_pprm.hpp"
#include "baselines/transformation_based.hpp"
#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/simplify.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  std::string name = argc > 1 ? argv[1] : "hwb4";
  if (name == "--list") {
    for (const std::string& n : suite::benchmark_names()) {
      std::cout << n << "\n";
    }
    return 0;
  }

  const suite::Benchmark b = suite::get_benchmark(name);
  std::cout << "Benchmark " << b.info.name << ": " << b.info.lines
            << " lines (" << b.info.real_inputs << " real, "
            << b.info.garbage_inputs << " garbage), "
            << b.pprm.term_count() << " PPRM terms\n\n";

  TextTable table({"Method", "Gates", "Cost", "Verified"});
  const auto add_row = [&](const std::string& method, const Circuit& c,
                           bool ok) {
    table.add_row({method, std::to_string(c.gate_count()),
                   std::to_string(quantum_cost(c)), ok ? "yes" : "NO"});
  };

  SynthesisOptions options;
  options.max_nodes = 200000;
  const SynthesisResult rmrls_result = synthesize(b.pprm, options);
  if (rmrls_result.success) {
    add_row("RMRLS", rmrls_result.circuit,
            implements(rmrls_result.circuit, b.pprm));
    const Circuit simplified =
        simplify_templates(rmrls_result.circuit).circuit;
    add_row("RMRLS + templates", simplified, implements(simplified, b.pprm));
  } else {
    table.add_row({"RMRLS", "DNF", "-", "-"});
  }

  const SynthesisResult greedy = synthesize_greedy(b.pprm);
  if (greedy.success) {
    add_row("Greedy PPRM", greedy.circuit, implements(greedy.circuit, b.pprm));
  } else {
    table.add_row({"Greedy PPRM", "DNF", "-", "-"});
  }

  if (b.table) {
    const Circuit mmd = synthesize_transformation_bidir(*b.table);
    add_row("MMD bidirectional", mmd, implements(mmd, *b.table));
    const Circuit mmd_simplified = simplify_templates(mmd).circuit;
    add_row("MMD + templates", mmd_simplified,
            implements(mmd_simplified, *b.table));
  } else {
    table.add_row(
        {"MMD bidirectional", "-", "-", "needs a truth table (<= 14 lines)"});
  }

  table.print(std::cout);
  if (b.info.paper_gates) {
    std::cout << "\nPaper (Table IV): " << *b.info.paper_gates << " gates";
    if (b.info.paper_cost) std::cout << ", cost " << *b.info.paper_cost;
    if (b.info.best_gates) {
      std::cout << "; best published [13]: " << *b.info.best_gates
                << " gates";
      if (b.info.best_cost) std::cout << ", cost " << *b.info.best_cost;
    }
    std::cout << "\n";
  }
  return 0;
}
