#include "esop/esop.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace rmrls {

LiteralCube::LiteralCube(Cube care_in, Cube polarity_in)
    : care(care_in), polarity(polarity_in) {
  if (polarity & ~care) {
    throw std::invalid_argument("polarity bit set outside the care set");
  }
}

int LiteralCube::distance(const LiteralCube& other) const {
  // Variables present in one cube only, plus shared variables whose
  // polarities disagree.
  const Cube shared = care & other.care;
  const Cube only = care ^ other.care;
  return std::popcount(only) +
         std::popcount((polarity ^ other.polarity) & shared);
}

std::string LiteralCube::to_string(int num_vars) const {
  if (care == 0) return "1";
  std::string out;
  for (int v = 0; v < num_vars; ++v) {
    if (!cube_has_var(care, v)) continue;
    out += cube_to_string(cube_of_var(v), num_vars);
    if (!cube_has_var(polarity, v)) out.push_back('\'');
  }
  return out;
}

Esop::Esop(int num_vars, std::vector<LiteralCube> cubes)
    : cubes_(std::move(cubes)), num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > kMaxVariables) {
    throw std::invalid_argument("num_vars out of range");
  }
  const Cube mask = num_vars == kMaxVariables
                        ? ~Cube{0}
                        : (Cube{1} << num_vars) - 1;
  for (const LiteralCube& c : cubes_) {
    if (c.care & ~mask) {
      throw std::invalid_argument("cube uses a variable out of range");
    }
  }
}

int Esop::literal_total() const {
  int n = 0;
  for (const LiteralCube& c : cubes_) n += c.literal_count();
  return n;
}

bool Esop::eval(std::uint64_t x) const {
  bool acc = false;
  for (const LiteralCube& c : cubes_) acc ^= c.eval(x);
  return acc;
}

CubeList Esop::to_pprm() const {
  std::vector<Cube> expanded;
  for (const LiteralCube& c : cubes_) {
    const Cube neg = c.care & ~c.polarity;
    if (std::popcount(neg) > 24) {
      throw std::invalid_argument("cube expansion too large");
    }
    // Product of (1 XOR v) over complemented variables expands to the XOR
    // over all subsets of those variables.
    for (Cube s = neg;; s = (s - 1) & neg) {
      expanded.push_back(c.polarity | s);
      if (s == 0) break;
    }
  }
  return CubeList(std::move(expanded));
}

Esop Esop::from_truth_vector(const std::vector<std::uint8_t>& f) {
  if (f.empty() || !std::has_single_bit(f.size())) {
    throw std::invalid_argument("truth vector size must be a power of two");
  }
  const int n = std::countr_zero(f.size());
  const Cube mask = (Cube{1} << n) - 1;
  std::vector<LiteralCube> cubes;
  for (std::size_t x = 0; x < f.size(); ++x) {
    if (f[x] & 1) cubes.emplace_back(mask, static_cast<Cube>(x));
  }
  return Esop(n, std::move(cubes));
}

std::string Esop::to_string() const {
  if (cubes_.empty()) return "0";
  std::ostringstream os;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i != 0) os << " + ";
    os << cubes_[i].to_string(num_vars_);
  }
  return os.str();
}

}  // namespace rmrls
