/// \file esop.hpp
/// \brief EXOR sum-of-products (ESOP) expressions with literal cubes.
///
/// Section II-E of the paper: specifications are first brought into ESOP
/// form (the authors used EXORCISM-4), then expanded into PPRM form by the
/// substitution `~a = a XOR 1` with cancellation of duplicate products.
/// This module provides the ESOP representation, the exact expansion to
/// PPRM, evaluation, and conversion from truth vectors; minimize.hpp adds
/// the heuristic minimizer standing in for EXORCISM-4.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rev/cube.hpp"
#include "rev/pprm.hpp"

namespace rmrls {

/// A product of literals, each positive or negative: variable v appears
/// iff bit v of `care` is set; its polarity is bit v of `polarity`
/// (1 = positive). Invariant: polarity is a subset of care.
struct LiteralCube {
  Cube care = 0;
  Cube polarity = 0;

  LiteralCube() = default;
  LiteralCube(Cube care_in, Cube polarity_in);

  [[nodiscard]] int literal_count() const { return std::popcount(care); }

  /// Evaluate at assignment `x`.
  [[nodiscard]] bool eval(std::uint64_t x) const {
    return (x & care) == polarity;
  }

  /// Number of variables on which the two cubes disagree: differing
  /// polarity on a shared variable, or presence in exactly one cube.
  [[nodiscard]] int distance(const LiteralCube& other) const;

  /// Renders as e.g. "ab'c" (prime = complemented).
  [[nodiscard]] std::string to_string(int num_vars = kMaxVariables) const;

  friend bool operator==(const LiteralCube&, const LiteralCube&) = default;
  friend auto operator<=>(const LiteralCube&, const LiteralCube&) = default;
};

/// An ESOP expression: the XOR of its cubes.
class Esop {
 public:
  Esop() = default;
  Esop(int num_vars, std::vector<LiteralCube> cubes);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] const std::vector<LiteralCube>& cubes() const {
    return cubes_;
  }
  [[nodiscard]] int size() const { return static_cast<int>(cubes_.size()); }
  [[nodiscard]] int literal_total() const;

  [[nodiscard]] bool eval(std::uint64_t x) const;

  /// Exact PPRM of the expression: expand every complemented literal via
  /// `~a = a XOR 1` and cancel duplicate products (paper, Section II-E).
  [[nodiscard]] CubeList to_pprm() const;

  /// The minterm ESOP of a truth vector (one cube per ON-set row) — the
  /// trivial starting point for minimization.
  [[nodiscard]] static Esop from_truth_vector(
      const std::vector<std::uint8_t>& f);

  [[nodiscard]] std::string to_string() const;

  friend class EsopMinimizer;

 private:
  std::vector<LiteralCube> cubes_;
  int num_vars_ = 0;
};

}  // namespace rmrls
