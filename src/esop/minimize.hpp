/// \file minimize.hpp
/// \brief Heuristic ESOP minimization ("exorcism-lite").
///
/// Stand-in for EXORCISM-4 [15] (see DESIGN.md, substitution table). The
/// minimizer starts from any ESOP (typically the minterm form) and applies
/// GF(2) cube-pair rewrites until a fixpoint:
///
///   distance 0:  A XOR A            -> 0            (pair deleted)
///   distance 1:  R v XOR R ~v       -> R            (polarity conflict)
///                R v XOR R          -> R ~v         (existence)
///   distance 2:  R v w XOR R ~v ~w  -> R ~v XOR R w (both polarities)
///                R v w XOR R ~v     -> R v ~w XOR R (polarity+existence)
///                R v w XOR R        -> R ~v XOR R v ~w (both existence)
///
/// Distance-2 rewrites are accepted only when they reduce the literal count
/// or unlock a distance<=1 merge on the next pass. Functional equivalence of
/// every rewrite is exercised by the property tests.

#pragma once

#include "esop/esop.hpp"

namespace rmrls {

struct EsopMinimizeOptions {
  int max_passes = 32;  ///< hard cap on full rewrite sweeps
};

struct EsopMinimizeResult {
  Esop esop;
  int initial_cubes = 0;
  int final_cubes = 0;
  int passes = 0;
};

/// Minimizes `e` heuristically; the result is functionally equivalent.
[[nodiscard]] EsopMinimizeResult minimize_esop(
    const Esop& e, const EsopMinimizeOptions& options = {});

}  // namespace rmrls
