#include "esop/minimize.hpp"

#include <algorithm>
#include <bit>
#include <optional>

namespace rmrls {

namespace {

/// Classification of one differing variable between two cubes.
struct Diff {
  int var = 0;
  bool polarity_conflict = false;  // in both cubes, opposite polarity
  bool in_first = false;           // existence diff: present in `a` only
};

std::vector<Diff> diff_positions(const LiteralCube& a, const LiteralCube& b) {
  std::vector<Diff> out;
  const Cube shared = a.care & b.care;
  Cube conflict = (a.polarity ^ b.polarity) & shared;
  Cube only = a.care ^ b.care;
  while (conflict) {
    const int v = std::countr_zero(conflict);
    conflict &= conflict - 1;
    out.push_back({v, true, false});
  }
  while (only) {
    const int v = std::countr_zero(only);
    only &= only - 1;
    out.push_back({v, false, cube_has_var(a.care, v)});
  }
  return out;
}

LiteralCube without_var(const LiteralCube& c, int v) {
  const Cube bit = cube_of_var(v);
  return LiteralCube(c.care & ~bit, c.polarity & ~bit);
}

LiteralCube with_literal(const LiteralCube& c, int v, bool positive) {
  const Cube bit = cube_of_var(v);
  return LiteralCube(c.care | bit,
                     positive ? (c.polarity | bit) : (c.polarity & ~bit));
}

bool literal_positive(const LiteralCube& c, int v) {
  return cube_has_var(c.polarity, v);
}

/// Distance-1 merge: always possible, always shrinks by one cube.
LiteralCube merge_distance1(const LiteralCube& a, const LiteralCube& b,
                            const Diff& d) {
  if (d.polarity_conflict) return without_var(a, d.var);  // R v + R ~v = R
  // R v^p + R = R v^(1-p)
  const LiteralCube& has = d.in_first ? a : b;
  return with_literal(without_var(has, d.var), d.var,
                      !literal_positive(has, d.var));
}

/// Distance-2 rewrite into an equivalent pair; empty when no literal-count
/// improvement exists for this case.
std::optional<std::pair<LiteralCube, LiteralCube>> rewrite_distance2(
    const LiteralCube& a, const LiteralCube& b, const Diff& d0,
    const Diff& d1) {
  // Normalize: R is the common remainder after removing both positions.
  const auto strip = [&](const LiteralCube& c) {
    return without_var(without_var(c, d0.var), d1.var);
  };
  const LiteralCube r = strip(a);

  if (d0.polarity_conflict && d1.polarity_conflict) {
    // R v w + R ~v ~w = R ~v + R w  (saves two literals)
    const bool av = literal_positive(a, d0.var);
    const bool aw = literal_positive(a, d1.var);
    return std::make_pair(with_literal(r, d0.var, !av),
                          with_literal(r, d1.var, aw));
  }
  if (d0.polarity_conflict != d1.polarity_conflict) {
    // One polarity conflict (on v), one existence diff (on w).
    const Diff& pol = d0.polarity_conflict ? d0 : d1;
    const Diff& exi = d0.polarity_conflict ? d1 : d0;
    // Let `full` be the cube containing w: full = R v^p w^q, other = R v^~p.
    const LiteralCube& full = exi.in_first ? a : b;
    const bool p = literal_positive(full, pol.var);
    const bool q = literal_positive(full, exi.var);
    // R v^p w^q + R v^~p = R v^p w^~q + R  (saves one literal)
    return std::make_pair(
        with_literal(with_literal(r, pol.var, p), exi.var, !q), r);
  }
  // Both existence diffs: only profitable when both extra literals sit in
  // the same cube: R v^p w^q + R = R v^~p + R v^p w^~q (no literal saving;
  // skipped — it never reduces count by itself).
  return std::nullopt;
}

int total_literals(const std::vector<LiteralCube>& cubes) {
  int n = 0;
  for (const LiteralCube& c : cubes) n += c.literal_count();
  return n;
}

/// One sweep of distance-0 cancellation and distance-1 merging.
/// Returns true if anything changed.
bool merge_pass(std::vector<LiteralCube>& cubes) {
  bool changed = false;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t j = i + 1; j < cubes.size();) {
      const int d = cubes[i].distance(cubes[j]);
      if (d == 0) {
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(j));
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        j = i + 1;
        if (i >= cubes.size()) break;
        continue;
      }
      if (d == 1) {
        const auto diffs = diff_positions(cubes[i], cubes[j]);
        cubes[i] = merge_distance1(cubes[i], cubes[j], diffs[0]);
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(j));
        changed = true;
        j = i + 1;
        continue;
      }
      ++j;
    }
  }
  return changed;
}

/// One sweep of literal-reducing distance-2 rewrites.
bool rewrite_pass(std::vector<LiteralCube>& cubes) {
  bool changed = false;
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    for (std::size_t j = i + 1; j < cubes.size(); ++j) {
      if (cubes[i].distance(cubes[j]) != 2) continue;
      const auto diffs = diff_positions(cubes[i], cubes[j]);
      const auto rewritten =
          rewrite_distance2(cubes[i], cubes[j], diffs[0], diffs[1]);
      if (!rewritten) continue;
      const int before =
          cubes[i].literal_count() + cubes[j].literal_count();
      const int after = rewritten->first.literal_count() +
                        rewritten->second.literal_count();
      if (after < before) {
        cubes[i] = rewritten->first;
        cubes[j] = rewritten->second;
        changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

EsopMinimizeResult minimize_esop(const Esop& e,
                                 const EsopMinimizeOptions& options) {
  std::vector<LiteralCube> cubes = e.cubes();
  EsopMinimizeResult result;
  result.initial_cubes = static_cast<int>(cubes.size());
  int pass = 0;
  for (; pass < options.max_passes; ++pass) {
    const bool merged = merge_pass(cubes);
    const bool rewritten = rewrite_pass(cubes);
    if (!merged && !rewritten) break;
  }
  // Guard against oscillating rewrites: literal counts only ever decrease,
  // so termination is guaranteed, but report the pass count regardless.
  (void)total_literals(cubes);
  result.passes = pass;
  result.final_cubes = static_cast<int>(cubes.size());
  result.esop = Esop(e.num_vars(), std::move(cubes));
  return result;
}

}  // namespace rmrls
