/// \file json.hpp
/// \brief Minimal JSON support for the observability subsystem.
///
/// Two halves, both dependency-free:
///
///   * JsonObject — an insertion-ordered single-line object builder used by
///     the trace sinks and the metrics registry. Values are escaped per
///     RFC 8259; doubles render with enough digits to round-trip.
///   * json_parse — a strict recursive-descent reader for the subset the
///     writers emit (objects, arrays, strings, numbers, booleans, null).
///     It exists so tests and the metrics_check tool can validate that
///     every emitted line actually parses and carries the expected keys.
///
/// This is deliberately not a general JSON library: no comments, no
/// trailing commas, no \u surrogate pairs on output (input accepts them as
/// plain escapes), documents up to one record per line (JSONL).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rmrls {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Renders a double without locale dependence and with round-trip
/// precision; non-finite values render as null (JSON has no inf/nan).
[[nodiscard]] std::string json_number(double v);

/// Single-line JSON object builder preserving insertion order.
class JsonObject {
 public:
  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, int value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, bool value);
  /// Inserts `raw` verbatim — for nested objects/arrays already rendered.
  JsonObject& raw(std::string_view key, std::string_view raw_json);

  [[nodiscard]] std::string str() const;

 private:
  JsonObject& emit(std::string_view key, std::string rendered);
  std::string body_;
  bool first_ = true;
};

/// Parsed JSON value (tree form). Object keys keep document order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// Looks up a key in an object value; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
};

/// Parses one JSON document; std::nullopt on any syntax error or if
/// trailing non-whitespace follows the document.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace rmrls
