/// \file metrics.hpp
/// \brief Metrics registry and stable JSONL export of synthesis runs.
///
/// One MetricsRegistry holds the key/value facts of one synthesized
/// function: identification (name, vars), search counters
/// (SynthesisStats + TerminationReason), per-phase timings (PhaseProfile)
/// and circuit quality (gates, quantum cost, depth, NCT fit). to_json()
/// renders a single-line JSON object with the stable `rmrls-metrics-v1`
/// schema documented in docs/observability.md; MetricsWriter appends such
/// lines to a JSONL file (one record per synthesized function), which is
/// what `rmrls --metrics-out` and the bench harnesses' `--json` emit and
/// what tools/metrics_check validates in CI.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "obs/phase_profile.hpp"
#include "rev/circuit.hpp"

namespace rmrls {

/// Schema tag stamped into every record; bump when keys change meaning.
inline constexpr const char* kMetricsSchema = "rmrls-metrics-v1";

/// Keys every record must carry; tools/metrics_check enforces this set.
[[nodiscard]] const std::vector<std::string>& metrics_required_keys();

/// Insertion-ordered key/value collection rendering to one JSON line.
class MetricsRegistry {
 public:
  MetricsRegistry();  ///< stamps the schema tag

  MetricsRegistry& set(std::string_view key, std::string_view value);
  /// Without this overload a string literal would resolve to bool.
  MetricsRegistry& set(std::string_view key, const char* value) {
    return set(key, std::string_view(value));
  }
  MetricsRegistry& set(std::string_view key, std::int64_t value);
  MetricsRegistry& set(std::string_view key, std::uint64_t value);
  MetricsRegistry& set(std::string_view key, int value);
  MetricsRegistry& set(std::string_view key, double value);
  MetricsRegistry& set(std::string_view key, bool value);

  /// Search counters + termination under their canonical keys.
  MetricsRegistry& add_stats(const SynthesisStats& stats,
                             TerminationReason termination);

  /// Per-phase wall time (nanoseconds) and call counts as a nested object
  /// under "phases": {"factor_enum": {"calls": N, "ns": N}, ...}.
  MetricsRegistry& add_profile(const PhaseProfile& profile);

  /// Circuit quality: gates, quantum cost, depth, lines, NCT fit. For a
  /// failed synthesis pass success=false and no circuit (fields go -1).
  MetricsRegistry& add_circuit(const Circuit& circuit);

  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key, rendered
};

/// Appends one record per line to a stream (JSONL).
class MetricsWriter {
 public:
  explicit MetricsWriter(std::ostream& out) : out_(out) {}
  void write(const MetricsRegistry& record);

 private:
  std::ostream& out_;
};

}  // namespace rmrls
