/// \file trace.hpp
/// \brief Typed search-event tracing for the RMRLS engine.
///
/// The search loop (core/search.cpp) and the synthesize*() drivers emit
/// TraceEvent records into a TraceSink installed via
/// SynthesisOptions::trace_sink. The hot path pays exactly one inlined
/// pointer test per potential event when no sink is installed, and the two
/// high-frequency kinds (node expansion, child pruned) honour a sampling
/// interval so an attached sink can be kept cheap on large runs; see
/// docs/observability.md for the measured overhead.
///
/// Sinks provided here:
///   * NullTraceSink      — swallows everything (overhead baseline).
///   * JsonlTraceSink     — one JSON object per event, one event per line.
///   * ProgressTraceSink  — human-readable heartbeat for long runs.
///   * RecordingTraceSink — in-memory capture for tests.
///   * MultiTraceSink     — fan-out to several sinks (e.g. trace + progress).

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace rmrls {

/// What happened. Numbering is part of the JSONL schema (the `kind` string,
/// not the numeric value, is serialized — reorder freely).
enum class TraceEventKind : std::uint8_t {
  kRunBegin,         ///< one Search::run() started (each refinement reruns)
  kNodeExpanded,     ///< a queue entry was popped and expanded (sampled)
  kChildPruned,      ///< a candidate child was discarded (sampled; see reason)
  kSolutionFound,    ///< a new best solution was recorded
  kRestart,          ///< the Section IV-E restart heuristic fired
  kQueueDrop,        ///< a child was dropped because the queue is full
  kRefinementRound,  ///< synthesize() starts an iterative-refinement rerun
  kRunEnd,           ///< one Search::run() finished
};

/// Why a child was discarded (kChildPruned only).
enum class PruneReason : std::uint8_t {
  kNone,       ///< not a prune event
  kElim,       ///< failed the elim > 0 rule (outside the exemption budget)
  kDepth,      ///< at/beyond bestDepth - 1
  kMaxGates,   ///< at/beyond the max_gates cap
  kDuplicate,  ///< transposition-table hit
  kStale,      ///< popped entry obsolete under the current bestDepth
};

/// One search event. Plain data; which fields are meaningful depends on
/// `kind` (unused ones keep their defaults).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRunBegin;
  PruneReason prune_reason = PruneReason::kNone;
  std::uint64_t nodes_expanded = 0;  ///< running pop counter at emission
  std::uint64_t queue_size = 0;      ///< heap size at emission
  std::int32_t depth = 0;            ///< node/child depth in the search tree
  std::int32_t terms = 0;            ///< PPRM term count (expansion events)
  std::int32_t gates = -1;  ///< solution/refinement/run-end: best gate count
  double priority = 0.0;    ///< eq. (4) priority of the expanded entry
  std::uint64_t t_us = 0;   ///< microseconds since the run started
  std::uint64_t timestamp_ns = 0;  ///< steady_clock at emission (epoch-ns),
                                   ///< time-aligns events with heartbeats
  std::uint64_t trace_id = 0;      ///< correlation id (0 = none); see
                                   ///< SynthesisOptions::trace_id
};

[[nodiscard]] const char* to_string(TraceEventKind kind);
[[nodiscard]] const char* to_string(PruneReason reason);

/// Receiver interface. Implementations must tolerate events from nested
/// Search runs (synthesize() reruns share one sink). Not thread-safe;
/// one sink per run.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Discards every event. Exists so overhead of the *enabled* emission path
/// can be measured against the disabled (`trace_sink == nullptr`) path.
class NullTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent&) override {}
};

/// Serializes each event as one JSON object per line (JSONL). The schema
/// is documented in docs/observability.md and validated by tests/test_obs.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}
  void on_event(const TraceEvent& event) override;

  /// Renders one event the way the sink writes it (reused by tests).
  [[nodiscard]] static std::string to_json(const TraceEvent& event);

 private:
  std::ostream& out_;
};

/// Low-frequency human-readable progress lines (for --progress): a
/// heartbeat every `interval` expansions plus every solution, restart and
/// refinement round. Heartbeats carry the expansion rate since the last
/// print, and — when the process Telemetry registry is armed and a batch
/// run is publishing its gauges — batch jobs done/total.
class ProgressTraceSink final : public TraceSink {
 public:
  explicit ProgressTraceSink(std::ostream& out,
                             std::uint64_t interval = 10000)
      : out_(out), interval_(interval ? interval : 1) {}
  void on_event(const TraceEvent& event) override;

 private:
  std::ostream& out_;
  std::uint64_t interval_;
  std::uint64_t last_heartbeat_ = 0;
  std::uint64_t last_nodes_ = 0;  ///< rate window start (node count)
  std::uint64_t last_ns_ = 0;     ///< rate window start (timestamp_ns)
};

/// Captures events in memory; the test harness asserts event/counter
/// consistency against SynthesisStats.
class RecordingTraceSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& event) override { events.push_back(event); }

  [[nodiscard]] std::uint64_t count(TraceEventKind kind) const;
  [[nodiscard]] std::uint64_t count(PruneReason reason) const;

  std::vector<TraceEvent> events;
};

/// Serializes concurrent emitters onto a single downstream sink. The
/// parallel engine (core/parallel.hpp) wraps the user's sink in one of
/// these, so existing sinks stay single-threaded; events from different
/// workers interleave in lock-acquisition order.
class SyncTraceSink final : public TraceSink {
 public:
  explicit SyncTraceSink(TraceSink* inner) : inner_(inner) {}
  void on_event(const TraceEvent& event) override {
    if (inner_ == nullptr) return;
    const std::lock_guard<std::mutex> lock(m_);
    inner_->on_event(event);
  }

 private:
  TraceSink* inner_;
  std::mutex m_;
};

/// Forwards every event to each registered sink, in order.
class MultiTraceSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink) sinks_.push_back(sink);
  }
  void on_event(const TraceEvent& event) override {
    for (TraceSink* s : sinks_) s->on_event(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace rmrls
