#include "obs/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace rmrls {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "null";
  return std::string(buf.data(), ptr);
}

JsonObject& JsonObject::emit(std::string_view key, std::string rendered) {
  if (!first_) body_ += ',';
  first_ = false;
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  return emit(key, '"' + json_escape(value) + '"');
}
JsonObject& JsonObject::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}
JsonObject& JsonObject::field(std::string_view key, std::int64_t value) {
  return emit(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  return emit(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, int value) {
  return emit(key, std::to_string(value));
}
JsonObject& JsonObject::field(std::string_view key, double value) {
  return emit(key, json_number(value));
}
JsonObject& JsonObject::field(std::string_view key, bool value) {
  return emit(key, value ? "true" : "false");
}
JsonObject& JsonObject::raw(std::string_view key, std::string_view raw_json) {
  return emit(key, std::string(raw_json));
}

std::string JsonObject::str() const { return '{' + body_ + '}'; }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Strict recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    skip_ws();
    JsonValue v;
    if (!value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.type = JsonValue::Type::kString; return string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n': out.type = JsonValue::Type::kNull; return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // ASCII-only decode; wider code points are kept as '?' (the
          // writers never emit them).
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(JsonValue& out) {
    out.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string_view tok = text_.substr(start, pos_ - start);
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), out.number);
    return ec == std::errc{} && ptr == tok.data() + tok.size();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace rmrls
