#include "obs/phase_profile.hpp"

#include <sstream>

#include "io/table.hpp"

namespace rmrls {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kPprmTransform: return "pprm_transform";
    case Phase::kFactorEnum: return "factor_enum";
    case Phase::kSubstitute: return "substitute";
    case Phase::kHeapOps: return "heap_ops";
    case Phase::kTemplateSimplify: return "template_simplify";
    case Phase::kCount: break;
  }
  return "unknown";
}

std::string PhaseProfile::to_string() const {
  const double total = static_cast<double>(total_nanos());
  TextTable table({"phase", "calls", "ms", "share"});
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Entry& e = entries[i];
    if (e.calls == 0) continue;
    const double ms = static_cast<double>(e.nanos) / 1e6;
    const double share =
        total > 0 ? 100.0 * static_cast<double>(e.nanos) / total : 0.0;
    table.add_row({rmrls::to_string(static_cast<Phase>(i)),
                   std::to_string(e.calls), fixed(ms, 3),
                   fixed(share, 1) + "%"});
  }
  return table.to_string();
}

}  // namespace rmrls
