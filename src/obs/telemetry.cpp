#include "obs/telemetry.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"

namespace rmrls {

namespace detail {

unsigned telemetry_thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value (1-based, ceil), then walk the cumulative
  // counts; the answer is the upper edge of the bucket holding that rank.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) return Histogram::bucket_upper(static_cast<int>(b));
  }
  return Histogram::bucket_upper(static_cast<int>(buckets.size()) - 1);
}

std::atomic<Telemetry*> Telemetry::active_{nullptr};

Telemetry& Telemetry::registry() {
  // Never destroyed: handles cached by instrumented code must stay valid
  // through static destruction order (e.g. a bench harness's atexit).
  static Telemetry* const instance = new Telemetry();
  return *instance;
}

Telemetry& Telemetry::enable() {
  Telemetry& t = registry();
  active_.store(&t, std::memory_order_release);
  return t;
}

void Telemetry::disable() noexcept {
  active_.store(nullptr, std::memory_order_release);
}

Counter& Telemetry::counter(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(m_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(m_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Telemetry::gauge(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(m_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(m_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Telemetry::histogram(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(m_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(m_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

const Gauge* Telemetry::find_gauge(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(m_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Counter* Telemetry::find_counter(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(m_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

void Telemetry::add_active(const std::string& trace_id) {
  const std::lock_guard<std::mutex> lock(active_m_);
  active_ids_.insert(trace_id);
}

void Telemetry::remove_active(const std::string& trace_id) {
  const std::lock_guard<std::mutex> lock(active_m_);
  active_ids_.erase(trace_id);
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot snap;
  snap.mono_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  {
    std::shared_lock<std::shared_mutex> lock(m_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.emplace_back(name, c->value());
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.emplace_back(name, g->value());
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.sum = h->sum();
      int last = -1;
      std::array<std::uint64_t, Histogram::kBuckets> raw{};
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        raw[static_cast<std::size_t>(b)] = h->bucket(b);
        if (raw[static_cast<std::size_t>(b)] != 0) last = b;
      }
      hs.buckets.assign(raw.begin(), raw.begin() + (last + 1));
      for (const std::uint64_t c : hs.buckets) hs.count += c;
      snap.histograms.emplace_back(name, std::move(hs));
    }
  }
  {
    const std::lock_guard<std::mutex> lock(active_m_);
    snap.active.assign(active_ids_.begin(), active_ids_.end());
  }
  return snap;
}

void Telemetry::reset() {
  std::unique_lock<std::shared_mutex> lock(m_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
  lock.unlock();
  const std::lock_guard<std::mutex> alock(active_m_);
  active_ids_.clear();
}

std::string trace_id_hex(std::uint64_t trace_id) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[trace_id & 0xf];
    trace_id >>= 4;
  }
  return out;
}

std::uint64_t derive_trace_id(std::string_view name, std::uint64_t index) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= index + 0x9e3779b97f4a7c15ull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h == 0 ? 1 : h;
}

std::string Snapshotter::heartbeat_json(const TelemetrySnapshot& snap,
                                        std::uint64_t seq,
                                        std::uint64_t uptime_ns) {
  JsonObject o;
  o.field("schema", kMetricsSchemaV2);
  o.field("record", "heartbeat");
  o.field("seq", seq);
  o.field("uptime_ns", uptime_ns);
  o.field("mono_ns", snap.mono_ns);
  JsonObject counters;
  for (const auto& [name, v] : snap.counters) counters.field(name, v);
  o.raw("counters", counters.str());
  JsonObject gauges;
  for (const auto& [name, v] : snap.gauges) {
    gauges.field(name, static_cast<std::int64_t>(v));
  }
  o.raw("gauges", gauges.str());
  JsonObject histograms;
  for (const auto& [name, h] : snap.histograms) {
    JsonObject entry;
    entry.field("count", h.count).field("sum", h.sum);
    std::string buckets = "[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) buckets += ',';
      buckets += std::to_string(h.buckets[b]);
    }
    buckets += ']';
    entry.raw("buckets", buckets);
    histograms.raw(name, entry.str());
  }
  o.raw("histograms", histograms.str());
  if (!snap.active.empty()) {
    std::string active = "[";
    for (std::size_t i = 0; i < snap.active.size(); ++i) {
      if (i > 0) active += ',';
      active += '"' + json_escape(snap.active[i]) + '"';
    }
    active += ']';
    o.raw("active", active);
  }
  return o.str();
}

Snapshotter::Snapshotter(Telemetry& telemetry,
                         std::chrono::milliseconds interval, std::ostream& out)
    : telemetry_(telemetry),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds{1000}),
      out_(out),
      start_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(m_);
    while (!stopped_) {
      if (cv_.wait_for(lock, interval_, [this] { return stopped_; })) {
        return;  // stop() emits the final heartbeat after the join
      }
      lock.unlock();
      emit_one();
      lock.lock();
    }
  });
}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::stop() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (stopped_) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  emit_one();  // flush-on-exit: the run's final cumulative state
  out_.flush();
}

void Snapshotter::emit_one() {
  const std::uint64_t uptime_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  out_ << heartbeat_json(telemetry_.snapshot(), seq_++, uptime_ns) << '\n';
  emitted_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace rmrls
