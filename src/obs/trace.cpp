#include "obs/trace.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace rmrls {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRunBegin: return "run_begin";
    case TraceEventKind::kNodeExpanded: return "node_expanded";
    case TraceEventKind::kChildPruned: return "child_pruned";
    case TraceEventKind::kSolutionFound: return "solution_found";
    case TraceEventKind::kRestart: return "restart";
    case TraceEventKind::kQueueDrop: return "queue_drop";
    case TraceEventKind::kRefinementRound: return "refinement_round";
    case TraceEventKind::kRunEnd: return "run_end";
  }
  return "unknown";
}

const char* to_string(PruneReason reason) {
  switch (reason) {
    case PruneReason::kNone: return "none";
    case PruneReason::kElim: return "elim";
    case PruneReason::kDepth: return "depth";
    case PruneReason::kMaxGates: return "max_gates";
    case PruneReason::kDuplicate: return "duplicate";
    case PruneReason::kStale: return "stale";
  }
  return "unknown";
}

std::string JsonlTraceSink::to_json(const TraceEvent& e) {
  JsonObject o;
  o.field("ev", to_string(e.kind));
  if (e.kind == TraceEventKind::kChildPruned) {
    o.field("reason", to_string(e.prune_reason));
  }
  o.field("nodes", e.nodes_expanded)
      .field("queue", e.queue_size)
      .field("depth", e.depth)
      .field("terms", e.terms);
  if (e.gates >= 0) o.field("gates", e.gates);
  if (e.kind == TraceEventKind::kNodeExpanded) {
    o.field("priority", e.priority);
  }
  o.field("t_us", e.t_us);
  if (e.timestamp_ns != 0) o.field("ts_ns", e.timestamp_ns);
  if (e.trace_id != 0) o.field("trace_id", trace_id_hex(e.trace_id));
  return o.str();
}

void JsonlTraceSink::on_event(const TraceEvent& event) {
  out_ << to_json(event) << '\n';
}

void ProgressTraceSink::on_event(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kNodeExpanded: {
      if (event.nodes_expanded < last_nodes_) {
        // A new run (refinement rerun / next batch job) reset the counter;
        // restart the rate window so the delta stays meaningful.
        last_nodes_ = 0;
        last_ns_ = 0;
        last_heartbeat_ = 0;
      }
      if (event.nodes_expanded < last_heartbeat_ + interval_) return;
      last_heartbeat_ = event.nodes_expanded;
      out_ << "[rmrls] " << event.nodes_expanded << " nodes, queue "
           << event.queue_size << ", depth " << event.depth << ", terms "
           << event.terms << ", " << event.t_us / 1000 << " ms";
      if (event.timestamp_ns > last_ns_ && event.nodes_expanded > last_nodes_ &&
          last_ns_ != 0) {
        const double secs =
            static_cast<double>(event.timestamp_ns - last_ns_) * 1e-9;
        const auto rate = static_cast<std::uint64_t>(
            static_cast<double>(event.nodes_expanded - last_nodes_) / secs);
        out_ << ", " << rate << " nodes/s";
      }
      last_nodes_ = event.nodes_expanded;
      if (event.timestamp_ns != 0) last_ns_ = event.timestamp_ns;
      if (const Telemetry* t = Telemetry::active()) {
        const Gauge* done = t->find_gauge("batch.jobs_completed");
        const Gauge* total = t->find_gauge("batch.jobs_total");
        if (done != nullptr && total != nullptr && total->value() > 0) {
          out_ << ", jobs " << done->value() << "/" << total->value();
        }
      }
      out_ << "\n";
      break;
    }
    case TraceEventKind::kSolutionFound:
      out_ << "[rmrls] solution: " << event.gates << " gates after "
           << event.nodes_expanded << " nodes (" << event.t_us / 1000
           << " ms)\n";
      break;
    case TraceEventKind::kRestart:
      out_ << "[rmrls] restart after " << event.nodes_expanded << " nodes\n";
      break;
    case TraceEventKind::kRefinementRound:
      out_ << "[rmrls] refining: searching for < " << event.gates
           << " gates\n";
      break;
    case TraceEventKind::kRunEnd:
      out_ << "[rmrls] run end: " << event.nodes_expanded << " nodes, best "
           << (event.gates >= 0 ? std::to_string(event.gates)
                                : std::string("none"))
           << "\n";
      break;
    default:
      break;  // child prunes / queue drops are too chatty for progress mode
  }
}

std::uint64_t RecordingTraceSink::count(TraceEventKind kind) const {
  return static_cast<std::uint64_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

std::uint64_t RecordingTraceSink::count(PruneReason reason) const {
  return static_cast<std::uint64_t>(std::count_if(
      events.begin(), events.end(), [&](const TraceEvent& e) {
        return e.kind == TraceEventKind::kChildPruned &&
               e.prune_reason == reason;
      }));
}

}  // namespace rmrls
