#include "obs/metrics_validate.hpp"

#include <cctype>

#include "core/options.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace rmrls {

namespace {

bool is_hex16(const std::string& s) {
  if (s.size() != 16) return false;
  for (const char c : s) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

void MetricsValidator::begin_stream() {
  have_heartbeat_ = false;
  prev_seq_ = 0.0;
  prev_uptime_ = 0.0;
}

bool MetricsValidator::fail(const std::string& where,
                            const std::string& message) {
  errors_.push_back(where + ": " + message);
  return false;
}

bool MetricsValidator::check_line(const std::string& line,
                                  const std::string& where) {
  ++records_;
  const auto parsed = json_parse(line);
  if (!parsed || !parsed->is_object()) {
    return fail(where, "line is not a JSON object: " + line);
  }
  const JsonValue* schema = parsed->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return fail(where, "missing schema tag");
  }
  if (schema->string == kMetricsSchema) return check_v1(*parsed, where);
  if (schema->string == kMetricsSchemaV2) {
    const JsonValue* record = parsed->find("record");
    if (record == nullptr || !record->is_string()) {
      return fail(where, "v2 record lacks a string 'record' kind");
    }
    if (record->string != "heartbeat") {
      return fail(where, "unknown v2 record kind '" + record->string + "'");
    }
    return check_heartbeat(*parsed, where);
  }
  return fail(where, "unknown schema tag '" + schema->string + "' (want " +
                         std::string(kMetricsSchema) + " or " +
                         std::string(kMetricsSchemaV2) + ")");
}

bool MetricsValidator::check_v1(const JsonValue& v, const std::string& where) {
  for (const std::string& key : metrics_required_keys()) {
    if (v.find(key) == nullptr) {
      return fail(where, "missing required key '" + key + "'");
    }
  }
  const JsonValue* termination = v.find("termination");
  const std::string& t = termination->string;
  if (!termination->is_string() ||
      (t != "solved" && t != "node_budget" && t != "time_limit" &&
       t != "queue_exhausted" && t != "cancelled")) {
    return fail(where, "unknown termination reason '" + t + "'");
  }
  const JsonValue* success = v.find("success");
  const JsonValue* gates = v.find("gates");
  const JsonValue* cost = v.find("quantum_cost");
  if (success->type != JsonValue::Type::kBool || !gates->is_number() ||
      !cost->is_number()) {
    return fail(where, "success/gates/quantum_cost have wrong types");
  }
  if (success->boolean ? gates->number < 0 : gates->number != -1) {
    return fail(where, "gates (" + std::to_string(gates->number) +
                           ") inconsistent with success flag");
  }
  const JsonValue* nodes = v.find("nodes_expanded");
  if (!nodes->is_number() || nodes->number < 0) {
    return fail(where, "nodes_expanded is not a non-negative number");
  }
  const JsonValue* workers = v.find("workers");
  if (!workers->is_number() || workers->number < 1) {
    return fail(where, "workers is not a number >= 1");
  }
  const JsonValue* dense = v.find("dense_kernel");
  if (dense->type != JsonValue::Type::kBool) {
    return fail(where, "dense_kernel is not a bool");
  }
  const JsonValue* switches = v.find("representation_switches");
  if (!switches->is_number() || switches->number < 0) {
    return fail(where, "representation_switches is not a non-negative number");
  }
  // Resilience fields (docs/robustness.md): the two flags are required by
  // the schema; the engine label and verification flag only appear on
  // --resilient runs.
  const JsonValue* cancelled = v.find("cancelled");
  const JsonValue* watchdog = v.find("watchdog_fired");
  if (cancelled->type != JsonValue::Type::kBool ||
      watchdog->type != JsonValue::Type::kBool) {
    return fail(where, "cancelled/watchdog_fired are not bools");
  }
  const JsonValue* engine = v.find("fallback_engine");
  if (engine != nullptr) {
    const std::string& e = engine->string;
    if (!engine->is_string() ||
        (e != "none" && e != "best_first" && e != "greedy" &&
         e != "transformation_based")) {
      return fail(where, "unknown fallback_engine '" + e + "'");
    }
    const JsonValue* verified = v.find("verified");
    if (verified == nullptr || verified->type != JsonValue::Type::kBool) {
      return fail(where, "fallback_engine without a boolean 'verified'");
    }
  }
  // Optional batch-span correlation id (docs/observability.md): 16 hex
  // digits, same spelling as trace events and heartbeat active sets.
  const JsonValue* trace_id = v.find("trace_id");
  if (trace_id != nullptr &&
      (!trace_id->is_string() || !is_hex16(trace_id->string))) {
    return fail(where, "trace_id is not a 16-hex-digit string");
  }
  // Optional serve-daemon outcome (docs/serving.md): the StatusCode the
  // request finished with, spelled the way to_string(StatusCode) does. A
  // shed request carries "unavailable" with success=false and no circuit.
  const JsonValue* serve_status = v.find("serve_status");
  if (serve_status != nullptr) {
    const std::string& s = serve_status->string;
    if (!serve_status->is_string() ||
        (s != "ok" && s != "invalid_argument" && s != "parse_error" &&
         s != "invalid_spec" && s != "budget_exhausted" && s != "cancelled" &&
         s != "internal" && s != "unavailable")) {
      return fail(where, "unknown serve_status '" + s + "'");
    }
    if (s == "ok" && !(success->boolean)) {
      return fail(where, "serve_status ok with success=false");
    }
    if (s != "ok" && success->boolean) {
      return fail(where, "serve_status '" + s + "' with success=true");
    }
  }
  // Optional cache / batch fields (docs/caching.md). Single-shot records
  // carry cache_hits/cache_misses when a cache was armed; a batch summary
  // record additionally carries batch_jobs and the orbit/dedup counters
  // with their invariants.
  const JsonValue* cache_hits = v.find("cache_hits");
  const JsonValue* cache_misses = v.find("cache_misses");
  if ((cache_hits == nullptr) != (cache_misses == nullptr)) {
    return fail(where, "cache_hits and cache_misses must appear together");
  }
  if (cache_hits != nullptr &&
      (!cache_hits->is_number() || cache_hits->number < 0 ||
       !cache_misses->is_number() || cache_misses->number < 0)) {
    return fail(where, "cache_hits/cache_misses are not non-negative numbers");
  }
  const JsonValue* batch_jobs = v.find("batch_jobs");
  if (batch_jobs != nullptr) {
    // Zero jobs is a valid batch: an empty corpus, or a fleet shard that
    // owns no specs (docs/fleet.md) — its summary record still validates.
    if (!batch_jobs->is_number() || batch_jobs->number < 0) {
      return fail(where, "batch_jobs is not a number >= 0");
    }
    const JsonValue* orbit_hits = v.find("cache_orbit_hits");
    const JsonValue* dedup = v.find("batch_dedup");
    if (cache_hits == nullptr || orbit_hits == nullptr || dedup == nullptr ||
        !orbit_hits->is_number() || orbit_hits->number < 0 ||
        !dedup->is_number() || dedup->number < 0) {
      return fail(where,
                  "batch record lacks non-negative cache_hits/"
                  "cache_misses/cache_orbit_hits/batch_dedup");
    }
    if (orbit_hits->number > cache_hits->number) {
      return fail(where, "cache_orbit_hits exceeds cache_hits");
    }
    if (cache_hits->number + cache_misses->number + dedup->number >
        batch_jobs->number) {
      return fail(where,
                  "cache_hits + cache_misses + batch_dedup exceeds"
                  " batch_jobs");
    }
    // Checkpoint-resumed jobs (docs/fleet.md): optional, bounded by the
    // job count like every other per-job bucket.
    const JsonValue* skipped = v.find("batch_skipped");
    if (skipped != nullptr &&
        (!skipped->is_number() || skipped->number < 0 ||
         skipped->number > batch_jobs->number)) {
      return fail(where,
                  "batch_skipped is not a number in [0, batch_jobs]");
    }
  }
  // Optional transposition-table / search-core fields (PR 7). Old records
  // may omit them entirely, but when the group is present its invariants
  // hold: a table can only evict slots it inserted into, and every run
  // makes at least one deepening iteration (non-ID runs report 1).
  const JsonValue* tt_inserts = v.find("tt_inserts");
  const JsonValue* tt_evictions = v.find("tt_evictions");
  if ((tt_inserts == nullptr) != (tt_evictions == nullptr)) {
    return fail(where, "tt_inserts and tt_evictions must appear together");
  }
  if (tt_inserts != nullptr) {
    if (!tt_inserts->is_number() || tt_inserts->number < 0 ||
        !tt_evictions->is_number() || tt_evictions->number < 0) {
      return fail(where,
                  "tt_inserts/tt_evictions are not non-negative numbers");
    }
    if (tt_evictions->number > tt_inserts->number) {
      return fail(where, "tt_evictions exceeds tt_inserts");
    }
  }
  const JsonValue* tt_generation = v.find("tt_generation");
  if (tt_generation != nullptr &&
      (!tt_generation->is_number() || tt_generation->number < 0)) {
    return fail(where, "tt_generation is not a non-negative number");
  }
  const JsonValue* id_iterations = v.find("id_iterations");
  if (id_iterations != nullptr &&
      (!id_iterations->is_number() || id_iterations->number < 1)) {
    return fail(where, "id_iterations is not a number >= 1");
  }
  const JsonValue* history_hits = v.find("history_hits");
  if (history_hits != nullptr &&
      (!history_hits->is_number() || history_hits->number < 0)) {
    return fail(where, "history_hits is not a non-negative number");
  }
  const JsonValue* nodes_at_best = v.find("nodes_at_best");
  if (nodes_at_best != nullptr) {
    const JsonValue* nodes = v.find("nodes_expanded");
    if (!nodes_at_best->is_number() || nodes_at_best->number < 0 ||
        nodes == nullptr || !nodes->is_number() ||
        nodes_at_best->number > nodes->number) {
      return fail(where, "nodes_at_best is not in [0, nodes_expanded]");
    }
  }
  // Optional per-shard transposition hit counts (parallel engine only):
  // an array of non-negative numbers whose sum cannot exceed the total
  // duplicate prunes (sequential passes of the same run may add more).
  const JsonValue* shard_hits = v.find("tt_shard_hits");
  if (shard_hits != nullptr) {
    if (shard_hits->type != JsonValue::Type::kArray) {
      return fail(where, "tt_shard_hits is not an array");
    }
    double sum = 0.0;
    for (const JsonValue& e : shard_hits->array) {
      if (!e.is_number() || e.number < 0) {
        return fail(where,
                    "tt_shard_hits element is not a non-negative number");
      }
      sum += e.number;
    }
    const JsonValue* duplicates = v.find("pruned_duplicate");
    if (duplicates == nullptr || !duplicates->is_number() ||
        sum > duplicates->number) {
      return fail(where, "tt_shard_hits sum exceeds pruned_duplicate");
    }
  }
  return true;
}

bool MetricsValidator::check_heartbeat(const JsonValue& v,
                                       const std::string& where) {
  const JsonValue* seq = v.find("seq");
  const JsonValue* uptime = v.find("uptime_ns");
  const JsonValue* mono = v.find("mono_ns");
  if (seq == nullptr || !seq->is_number() || seq->number < 0) {
    return fail(where, "heartbeat lacks a non-negative 'seq'");
  }
  if (uptime == nullptr || !uptime->is_number() || uptime->number < 0) {
    return fail(where, "heartbeat lacks a non-negative 'uptime_ns'");
  }
  if (mono == nullptr || !mono->is_number() || mono->number < 0) {
    return fail(where, "heartbeat lacks a non-negative 'mono_ns'");
  }
  const JsonValue* counters = v.find("counters");
  const JsonValue* gauges = v.find("gauges");
  const JsonValue* histograms = v.find("histograms");
  if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
      !gauges->is_object() || histograms == nullptr ||
      !histograms->is_object()) {
    return fail(where,
                "heartbeat lacks counters/gauges/histograms objects");
  }
  for (const auto& [name, c] : counters->object) {
    if (!c.is_number() || c.number < 0) {
      return fail(where, "counter '" + name + "' is not non-negative");
    }
  }
  for (const auto& [name, g] : gauges->object) {
    if (!g.is_number()) {
      return fail(where, "gauge '" + name + "' is not a number");
    }
  }
  for (const auto& [name, h] : histograms->object) {
    const JsonValue* count = h.find("count");
    const JsonValue* sum = h.find("sum");
    const JsonValue* buckets = h.find("buckets");
    if (!h.is_object() || count == nullptr || !count->is_number() ||
        count->number < 0 || sum == nullptr || !sum->is_number() ||
        buckets == nullptr || buckets->type != JsonValue::Type::kArray) {
      return fail(where, "histogram '" + name +
                             "' lacks count/sum/buckets fields");
    }
    double bucket_sum = 0.0;
    for (const JsonValue& b : buckets->array) {
      if (!b.is_number() || b.number < 0) {
        return fail(where, "histogram '" + name +
                               "' bucket is not a non-negative number");
      }
      bucket_sum += b.number;
    }
    if (bucket_sum != count->number) {
      return fail(where, "histogram '" + name + "' buckets sum to " +
                             std::to_string(bucket_sum) + ", count says " +
                             std::to_string(count->number));
    }
  }
  const JsonValue* active = v.find("active");
  if (active != nullptr) {
    if (active->type != JsonValue::Type::kArray) {
      return fail(where, "heartbeat 'active' is not an array");
    }
    for (const JsonValue& id : active->array) {
      if (!id.is_string() || !is_hex16(id.string)) {
        return fail(where,
                    "active trace id is not a 16-hex-digit string");
      }
    }
  }
  // Per-stream monotonicity: seq strictly increases, uptime never runs
  // backwards. The first heartbeat of a stream only seeds the state.
  if (have_heartbeat_) {
    if (seq->number <= prev_seq_) {
      return fail(where, "heartbeat seq not strictly increasing");
    }
    if (uptime->number < prev_uptime_) {
      return fail(where, "heartbeat uptime_ns ran backwards");
    }
  }
  have_heartbeat_ = true;
  prev_seq_ = seq->number;
  prev_uptime_ = uptime->number;
  ++heartbeats_;
  return true;
}

}  // namespace rmrls
