/// \file metrics_validate.hpp
/// \brief Shared validation rules for rmrls metrics JSONL streams.
///
/// One stateful validator covers both schema generations:
///
///   * rmrls-metrics-v1 — per-run / per-job / batch-summary records
///     (obs/metrics.hpp): schema tag, required keys, termination enum,
///     success/gates consistency, cache/batch invariants.
///   * rmrls-metrics-v2 — `record:"heartbeat"` snapshots
///     (obs/telemetry.hpp): required keys, per-stream strictly increasing
///     `seq` and monotone `uptime_ns`, histogram bucket counts summing to
///     the histogram's total.
///
/// The two record kinds interleave freely in one file (`rmrls --batch
/// --heartbeat-ms` writes both into --metrics-out), so the validator
/// dispatches per line on the schema tag. It is the single source of
/// truth for tools/metrics_check, tools/metrics_report and the fixture
/// tests — the CI guard and the aggregator cannot drift apart.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rmrls {

struct JsonValue;  // obs/json.hpp

/// Validates metrics JSONL line by line, accumulating errors and carrying
/// the per-stream heartbeat monotonicity state. Use one validator per
/// logical stream, or call begin_stream() at each file boundary.
class MetricsValidator {
 public:
  /// Resets the per-stream heartbeat state (seq / uptime_ns monotonicity).
  /// Call when switching to a different file; accumulated totals and
  /// errors are kept.
  void begin_stream();

  /// Validates one record. `where` prefixes any error ("file:line").
  /// Empty lines are the caller's concern — every call counts a record.
  bool check_line(const std::string& line, const std::string& where);

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] std::uint64_t heartbeats() const { return heartbeats_; }
  [[nodiscard]] const std::vector<std::string>& errors() const {
    return errors_;
  }

 private:
  bool fail(const std::string& where, const std::string& message);
  bool check_v1(const JsonValue& v, const std::string& where);
  bool check_heartbeat(const JsonValue& v, const std::string& where);

  std::uint64_t records_ = 0;
  std::uint64_t heartbeats_ = 0;
  bool have_heartbeat_ = false;  ///< per-stream: a heartbeat was seen
  double prev_seq_ = 0.0;
  double prev_uptime_ = 0.0;
  std::vector<std::string> errors_;
};

}  // namespace rmrls
