#include "obs/metrics.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "rev/circuit_stats.hpp"
#include "rev/quantum_cost.hpp"

namespace rmrls {

const std::vector<std::string>& metrics_required_keys() {
  static const std::vector<std::string> keys = {
      "schema",        "success",     "termination", "nodes_expanded",
      "children_created", "children_pushed", "solutions_found",
      "elapsed_us",    "gates",       "quantum_cost", "workers",
      "dense_kernel",  "representation_switches",
      "cancelled",     "watchdog_fired",
  };
  return keys;
}

MetricsRegistry::MetricsRegistry() { set("schema", kMetricsSchema); }

MetricsRegistry& MetricsRegistry::set(std::string_view key,
                                      std::string_view value) {
  fields_.emplace_back(std::string(key), '"' + json_escape(value) + '"');
  return *this;
}
MetricsRegistry& MetricsRegistry::set(std::string_view key,
                                      std::int64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}
MetricsRegistry& MetricsRegistry::set(std::string_view key,
                                      std::uint64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}
MetricsRegistry& MetricsRegistry::set(std::string_view key, int value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}
MetricsRegistry& MetricsRegistry::set(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), json_number(value));
  return *this;
}
MetricsRegistry& MetricsRegistry::set(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

MetricsRegistry& MetricsRegistry::add_stats(const SynthesisStats& stats,
                                            TerminationReason termination) {
  set("termination", std::string_view(to_string(termination)));
  set("nodes_expanded", stats.nodes_expanded);
  set("children_created", stats.children_created);
  set("children_pushed", stats.children_pushed);
  set("pruned_elim", stats.pruned_elim);
  set("pruned_depth", stats.pruned_depth);
  set("pruned_max_gates", stats.pruned_max_gates);
  set("pruned_duplicate", stats.pruned_duplicate);
  set("pruned_greedy", stats.pruned_greedy);
  set("pruned_stale", stats.pruned_stale);
  set("dropped_queue_full", stats.dropped_queue_full);
  set("restarts", stats.restarts);
  set("solutions_found", stats.solutions_found);
  set("workers", stats.workers);
  set("dense_kernel", stats.dense_kernel);
  set("representation_switches", stats.representation_switches);
  set("cancelled", stats.cancelled);
  set("watchdog_fired", stats.watchdog_fired);
  // Chess-engine search core counters (PR 7). Not in the required-key
  // set, so pre-existing v1 records stay valid; when present they are
  // checked by validate_metrics_line (evictions <= inserts,
  // id_iterations >= 1).
  set("tt_inserts", stats.tt_inserts);
  set("tt_evictions", stats.tt_evictions);
  set("tt_generation", stats.tt_generation);
  set("id_iterations", stats.id_iterations);
  set("history_hits", stats.history_hits);
  set("nodes_at_best", stats.nodes_at_best);
  if (!stats.tt_shard_hits.empty()) {
    // Per-shard duplicate hits of the shared transposition table; only
    // parallel runs carry them, so sequential records stay unchanged.
    std::string array = "[";
    for (std::size_t i = 0; i < stats.tt_shard_hits.size(); ++i) {
      if (i > 0) array += ',';
      array += std::to_string(stats.tt_shard_hits[i]);
    }
    array += ']';
    fields_.emplace_back("tt_shard_hits", array);
  }
  set("elapsed_us",
      static_cast<std::uint64_t>(stats.elapsed.count() < 0
                                     ? 0
                                     : stats.elapsed.count()));
  return *this;
}

MetricsRegistry& MetricsRegistry::add_profile(const PhaseProfile& profile) {
  JsonObject phases;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseProfile::Entry& e = profile.entries[i];
    if (e.calls == 0) continue;
    JsonObject entry;
    entry.field("calls", e.calls).field("ns", e.nanos);
    phases.raw(to_string(static_cast<Phase>(i)), entry.str());
  }
  fields_.emplace_back("phases", phases.str());
  return *this;
}

MetricsRegistry& MetricsRegistry::add_circuit(const Circuit& circuit) {
  const CircuitStats cs = analyze(circuit);
  set("gates", cs.gates);
  set("quantum_cost", static_cast<std::int64_t>(quantum_cost(circuit)));
  set("circuit_depth", cs.depth);
  set("lines", cs.lines);
  set("controls_total", cs.controls_total);
  set("fits_nct", cs.fits_nct);
  return *this;
}

std::string MetricsRegistry::to_json() const {
  JsonObject o;
  for (const auto& [key, rendered] : fields_) o.raw(key, rendered);
  return o.str();
}

void MetricsWriter::write(const MetricsRegistry& record) {
  out_ << record.to_json() << '\n';
}

}  // namespace rmrls
