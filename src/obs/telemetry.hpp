/// \file telemetry.hpp
/// \brief Process-wide live telemetry: named counters, gauges, log2
/// histograms, and a heartbeat snapshotter thread (docs/observability.md).
///
/// PR 1's metrics registry answers "what happened" once a run has ended;
/// this layer answers "what is happening right now". One process-wide
/// Telemetry registry holds named instruments that the engine layers
/// (search, cache, batch, resilience) update from their hot paths, and a
/// Snapshotter background thread periodically renders the whole registry
/// as one `record:"heartbeat"` JSONL line under the `rmrls-metrics-v2`
/// schema — cumulative counters, instantaneous gauges, histogram buckets,
/// and a monotonic `uptime_ns`. `rmrls --heartbeat-ms N` and
/// `bench --heartbeat-ms N` arm it; `rmrls-serve` will later push the same
/// record stream over its socket.
///
/// Cost model (mirrors TraceSink's one-pointer-test idiom):
///   * Disabled (the default): `Telemetry::active()` is a single relaxed
///     atomic pointer load; instrumented layers grab handles once per
///     run/object, so with telemetry off every site reduces to one
///     null-pointer test. Guarded by bench/micro_core's <2% budget.
///   * Enabled: Counter::add is one relaxed fetch_add on a per-thread,
///     cache-line-padded shard — concurrent workers never contend on one
///     line. Gauges are single atomics (low-frequency writers). Histogram
///     buckets are relaxed atomics; recording is O(1).
///
/// Lifecycle: the registry is a function-local static that is never
/// destroyed, and instruments are never removed once registered, so a
/// handle obtained from it stays valid for the life of the process even
/// across Telemetry::disable() — a disabled registry merely stops being
/// returned from active(); already-armed sites keep counting into it
/// harmlessly. reset() re-zeroes every instrument (tests, back-to-back
/// CLI runs).

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace rmrls {

/// Schema tag of heartbeat records; per-job records keep rmrls-metrics-v1
/// (obs/metrics.hpp) so existing consumers are unaffected.
inline constexpr const char* kMetricsSchemaV2 = "rmrls-metrics-v2";

namespace detail {
/// Stable small integer per thread, used to spread hot-path increments
/// across padded shards. Assignment is round-robin at first use.
[[nodiscard]] unsigned telemetry_thread_slot() noexcept;
}  // namespace detail

/// Monotonic counter. add() is a relaxed fetch_add on the calling
/// thread's padded shard; value() sums the shards (approximate only in
/// the sense that it is a point-in-time snapshot under concurrency).
class Counter {
 public:
  static constexpr unsigned kShards = 8;

  void add(std::uint64_t delta) noexcept {
    slots_[detail::telemetry_thread_slot() % kShards].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kShards> slots_{};
};

/// Instantaneous signed value (queue depth, jobs in flight, bytes
/// resident). Writers are low-frequency, so one atomic suffices.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed latency/size histogram: bucket b counts values whose
/// bit width is b (bucket 0 holds the value 0, bucket 1 holds 1, bucket
/// 2 holds 2..3, ...), so bucket b's upper edge is 2^b - 1. 65 buckets
/// cover the full uint64 range. Recording is one relaxed increment plus
/// one relaxed add for the running sum.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static constexpr int bucket_of(std::uint64_t value) noexcept {
    int b = 0;
    while (value != 0) {
      ++b;
      value >>= 1;
    }
    return b;
  }
  /// Inclusive upper edge of bucket `b` (2^b - 1), used by percentile
  /// estimation in tools/metrics_report.
  static constexpr std::uint64_t bucket_upper(int b) noexcept {
    return b >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << static_cast<unsigned>(b)) - 1;
  }

  void record(std::uint64_t value) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int b) const noexcept {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Point-in-time copy of one histogram (consistent enough for reporting;
/// buckets are read individually, not atomically as a group).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;  ///< trimmed to the last nonzero

  /// Upper-edge estimate of quantile `q` in [0,1] from the log2 buckets.
  [[nodiscard]] std::uint64_t quantile(double q) const;
};

/// Point-in-time copy of the whole registry, name-sorted.
struct TelemetrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::string> active;  ///< in-flight trace ids (batch jobs)
  std::uint64_t mono_ns = 0;        ///< steady_clock at snapshot time
};

/// The process-wide instrument registry. Instruments are created on first
/// use by name and never destroyed, so the references returned here are
/// stable handles a hot loop can cache.
class Telemetry {
 public:
  /// The registry object itself; always exists, never destroyed.
  [[nodiscard]] static Telemetry& registry();

  /// Null until enable(); one relaxed load, the instrumented layers'
  /// "is telemetry on" test.
  [[nodiscard]] static Telemetry* active() noexcept {
    return active_.load(std::memory_order_acquire);
  }
  /// Arms the process registry (idempotent) and returns it.
  static Telemetry& enable();
  /// Disarms active(); existing handles stay valid (see file comment).
  static void disable() noexcept;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Read-only lookups that never create (ProgressTraceSink, tests);
  /// nullptr when the instrument does not exist yet.
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;

  /// In-flight trace-id set (batch jobs); snapshots carry it so one job's
  /// story is greppable in the heartbeat stream too.
  void add_active(const std::string& trace_id);
  void remove_active(const std::string& trace_id);

  [[nodiscard]] TelemetrySnapshot snapshot() const;

  /// Re-zeroes every instrument and clears the active set. Instruments
  /// stay registered (handles remain valid).
  void reset();

 private:
  Telemetry() = default;

  static std::atomic<Telemetry*> active_;

  mutable std::shared_mutex m_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;

  mutable std::mutex active_m_;
  std::set<std::string> active_ids_;
};

/// Renders `trace_id` the way every stream spells it (16 hex digits), so
/// one grep works across trace events, job records, and heartbeats.
[[nodiscard]] std::string trace_id_hex(std::uint64_t trace_id);

/// Deterministic correlation id for a named unit of work: FNV-1a over the
/// name, mixed with `index` splitmix-style so identical names (batch lines,
/// repeated serve submissions) still get distinct ids. Never 0 (0 means
/// "no id" everywhere). Shared by the batch driver and the serve daemon so
/// both streams spell ids the same way.
[[nodiscard]] std::uint64_t derive_trace_id(std::string_view name,
                                            std::uint64_t index);

/// Background heartbeat emitter. Same cv-based lifecycle idiom as
/// Watchdog (core/cancel.hpp): the thread sleeps on a condition variable
/// for `interval`, emits one heartbeat line per wakeup, and stop() (or
/// the destructor) joins it after emitting one final flush heartbeat —
/// so even a run shorter than the interval leaves at least one record.
class Snapshotter {
 public:
  Snapshotter(Telemetry& telemetry, std::chrono::milliseconds interval,
              std::ostream& out);
  ~Snapshotter();
  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Joins the thread and emits the final heartbeat. Idempotent.
  void stop();

  /// Heartbeat lines written so far (including the final flush).
  [[nodiscard]] std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_acquire);
  }

  /// Renders one heartbeat record (reused by tests): schema tag, record
  /// kind, sequence number, uptime, counters/gauges/histograms, active
  /// trace ids.
  [[nodiscard]] static std::string heartbeat_json(
      const TelemetrySnapshot& snap, std::uint64_t seq,
      std::uint64_t uptime_ns);

 private:
  void emit_one();

  Telemetry& telemetry_;
  std::chrono::milliseconds interval_;
  std::ostream& out_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t seq_ = 0;
  std::atomic<std::uint64_t> emitted_{0};
  std::mutex m_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace rmrls
