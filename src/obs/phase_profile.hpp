/// \file phase_profile.hpp
/// \brief Scoped phase timers and the per-run PhaseProfile aggregate.
///
/// The engine's hot phases — PPRM transform, factor enumeration,
/// substitution/apply, heap operations, template simplification — are
/// bracketed by ScopedPhaseTimer. Timing is an opt-in observer: when no
/// PhaseProfile is installed (SynthesisOptions::phase_profile == nullptr)
/// a timer is two inlined null checks and zero clock reads, so the search
/// hot path stays clean. When installed, each scope costs two
/// steady_clock reads; the engine therefore brackets whole loops, not
/// individual substitutions.

#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace rmrls {

/// The instrumented phases. kCount is the array size, not a phase.
enum class Phase : std::uint8_t {
  kPprmTransform,     ///< truth table -> PPRM extraction
  kFactorEnum,        ///< candidate substitution enumeration
  kSubstitute,        ///< substitute_delta pricing + substitute apply
  kHeapOps,           ///< priority-queue push/pop
  kTemplateSimplify,  ///< post-synthesis template pass
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] const char* to_string(Phase phase);

/// Wall time and call counts per phase, accumulated over one synthesis run
/// (including every refinement rerun — the drivers share one profile).
struct PhaseProfile {
  struct Entry {
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
  };
  std::array<Entry, kPhaseCount> entries{};

  void add(Phase phase, std::uint64_t nanos) {
    Entry& e = entries[static_cast<std::size_t>(phase)];
    ++e.calls;
    e.nanos += nanos;
  }

  [[nodiscard]] const Entry& operator[](Phase phase) const {
    return entries[static_cast<std::size_t>(phase)];
  }

  void merge(const PhaseProfile& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      entries[i].calls += other.entries[i].calls;
      entries[i].nanos += other.entries[i].nanos;
    }
  }

  [[nodiscard]] std::uint64_t total_nanos() const {
    std::uint64_t sum = 0;
    for (const Entry& e : entries) sum += e.nanos;
    return sum;
  }

  /// Multi-line human-readable rendering (phase, calls, ms, share).
  [[nodiscard]] std::string to_string() const;
};

/// RAII stopwatch: adds the scope's wall time to `profile` under `phase`.
/// A null profile disables it entirely (no clock reads).
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseProfile* profile, Phase phase)
      : profile_(profile), phase_(phase) {
    if (profile_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhaseTimer() {
    if (profile_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      profile_->add(phase_, static_cast<std::uint64_t>(
                                std::chrono::duration_cast<
                                    std::chrono::nanoseconds>(elapsed)
                                    .count()));
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfile* profile_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rmrls
