/// \file signals.hpp
/// \brief Async-signal-safe signal → poll-loop bridge (docs/serving.md,
/// docs/robustness.md).
///
/// The classic self-pipe trick: the handler does exactly one thing that
/// is legal in signal context — write(2) of a single byte (the signal
/// number) to a non-blocking pipe — and the daemon's poll loop sees the
/// read end become readable and reacts *outside* signal context, where
/// logging, locking and allocation are safe again. No flags to poll, no
/// races with the poll timeout: a signal arriving mid-poll wakes it
/// immediately.
///
/// The bridge installs its handler with sigaction (SA_RESTART off, so a
/// blocking accept in other code is interrupted too) and restores the
/// previous disposition on destruction. One bridge per process — the
/// handler needs a static fd — which matches the daemon's one-poll-loop
/// design; the constructor asserts against a second live instance.

#pragma once

#include <initializer_list>
#include <vector>

namespace rmrls {

class SignalBridge {
 public:
  /// Installs the self-pipe handler for each signal in `signals`
  /// (e.g. {SIGTERM, SIGINT, SIGHUP}).
  explicit SignalBridge(std::initializer_list<int> signals);
  /// Restores the previous dispositions and closes the pipe.
  ~SignalBridge();
  SignalBridge(const SignalBridge&) = delete;
  SignalBridge& operator=(const SignalBridge&) = delete;

  /// Read end of the pipe; becomes readable when a signal arrives. Add it
  /// to the poll set with POLLIN.
  [[nodiscard]] int fd() const { return read_fd_; }

  /// Drains every pending byte, returning the signal numbers in arrival
  /// order. Call from the poll loop when fd() is readable. Non-blocking.
  [[nodiscard]] std::vector<int> drain();

 private:
  struct Saved {
    int signo;
    // Opaque storage for the previous struct sigaction (kept out of the
    // header to avoid including <csignal> here).
    unsigned char prev[160];
  };

  int read_fd_ = -1;
  std::vector<Saved> saved_;
};

}  // namespace rmrls
