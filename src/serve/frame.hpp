/// \file frame.hpp
/// \brief Wire framing of the serve daemon: newline-delimited JSON
/// (docs/serving.md).
///
/// One frame is one JSON object on one line, schema `rmrls-serve-v1`.
/// Requests carry an `op` ("ping" / "submit" / "stats" / "watch" /
/// "shutdown") plus op-specific fields; responses carry a `record`
/// ("pong" / "accepted" / "result" / "error" / "stats" / "shutdown"),
/// echo the client's `id`, and — for failures — spell the Status the same
/// way the CLI does (`status` string + `exit_code`). Heartbeat records
/// pushed to `watch` subscribers reuse the `rmrls-metrics-v2` schema
/// verbatim, so one validator covers both streams.
///
/// Parsing never throws and never trusts the peer: json_parse is strict,
/// frames are capped at kMaxFrameBytes, and the permutation spec inside a
/// submit goes through the same hardened parse_permutation_spec_checked
/// as every file input (docs/robustness.md). The FrameSplitter is the
/// only stateful piece — it turns an arbitrary byte stream into complete
/// lines and latches an overflow flag when the peer never sends one.

#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/status.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Schema tag of serve request/response frames; heartbeat records keep
/// rmrls-metrics-v2 (obs/telemetry.hpp).
inline constexpr const char* kServeSchemaV1 = "rmrls-serve-v1";

/// Hard cap on one frame (one line, excluding the newline). A peer that
/// exceeds it — a runaway spec, a missing newline, garbage — gets one
/// error frame and its connection closed; the daemon never buffers
/// unbounded input per session.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// Splits an arbitrary byte stream into newline-delimited frames.
/// Carriage returns before the newline are stripped (telnet-friendly).
/// Once a line exceeds kMaxFrameBytes the splitter latches overflowed()
/// and next() returns nothing more — the session is beyond repair.
class FrameSplitter {
 public:
  /// Appends raw bytes from the socket.
  void feed(const char* data, std::size_t n);

  /// Pops the next complete frame, without its newline; std::nullopt when
  /// no complete frame is buffered (or after an overflow).
  [[nodiscard]] std::optional<std::string> next();

  /// True once any single line exceeded kMaxFrameBytes. Latched.
  [[nodiscard]] bool overflowed() const { return overflowed_; }

  /// Bytes buffered but not yet returned (tests, admission accounting).
  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  bool overflowed_ = false;
};

/// The request verbs of the protocol.
enum class ServeOp : std::uint8_t {
  kPing = 0,   ///< liveness probe; answered with "pong"
  kSubmit,     ///< synthesize a permutation spec
  kStats,      ///< daemon counters snapshot
  kWatch,      ///< subscribe/unsubscribe this session to heartbeats
  kShutdown,   ///< begin graceful drain (docs/serving.md)
};

[[nodiscard]] constexpr const char* to_string(ServeOp op) {
  switch (op) {
    case ServeOp::kPing: return "ping";
    case ServeOp::kSubmit: return "submit";
    case ServeOp::kStats: return "stats";
    case ServeOp::kWatch: return "watch";
    case ServeOp::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// One parsed request frame.
struct ServeRequest {
  ServeOp op = ServeOp::kPing;
  std::string id;          ///< client-chosen correlation id (may be empty)
  std::string spec_text;   ///< submit: the raw permutation spec
  TruthTable spec;         ///< submit: the parsed, validated function
  std::int64_t time_ms = 0;  ///< submit: deadline override; 0 = server default
  bool want_tfc = false;     ///< submit: include the circuit as TFC text
  bool watch_enable = true;  ///< watch: subscribe (true) or unsubscribe
};

/// Parses one request frame. Never throws: malformed JSON or a bad `op`
/// is kParseError; a well-formed frame whose spec fails validation keeps
/// the spec parser's own status (kParseError / kInvalidSpec); field type
/// mismatches are kInvalidArgument. `where` labels diagnostics (e.g.
/// "session#3").
[[nodiscard]] Result<ServeRequest> parse_request_checked(
    const std::string& line, const std::string& where = "<frame>");

/// Response builders. Every frame is one line *without* the trailing
/// newline; the session layer appends it.
[[nodiscard]] std::string frame_pong(const std::string& id);
/// Submission acknowledged: the job's trace id (16 hex digits, the same
/// id its metrics record and the heartbeat active set carry).
[[nodiscard]] std::string frame_accepted(const std::string& id,
                                         const std::string& trace_hex);
/// Failure named the way the CLI exits: status string + exit code +
/// human message. Shed responses use StatusCode::kUnavailable (exit 7).
[[nodiscard]] std::string frame_error(const std::string& id,
                                      const Status& status);
/// Drain acknowledgement for a shutdown request.
[[nodiscard]] std::string frame_shutdown(const std::string& id,
                                         bool draining);

}  // namespace rmrls
