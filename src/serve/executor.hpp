/// \file executor.hpp
/// \brief Bounded-admission worker pool of the serve daemon
/// (docs/serving.md).
///
/// The daemon's request executor is deliberately *not* elastic: a fixed
/// worker count runs synthesis jobs, and a fixed-capacity admission queue
/// in front of them absorbs bursts. When the queue is full, try_submit
/// refuses immediately — the poll loop turns that refusal into a
/// StatusCode::kUnavailable error frame (load shedding, exit code 7)
/// instead of queueing unboundedly and timing every request out. The same
/// refusal path implements drain: close() flips one flag and every
/// subsequent submission is shed while the workers finish what is already
/// admitted.
///
/// The pool is task-agnostic (std::function) so tests can drive it
/// without a socket; the daemon's tasks capture their job state by
/// shared_ptr and never touch the pool again after completion.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmrls {

class ServeExecutor {
 public:
  /// Spawns `workers` threads (minimum 1) in front of a queue holding at
  /// most `queue_cap` waiting tasks (minimum 1; running tasks do not
  /// count against the cap).
  ServeExecutor(int workers, std::size_t queue_cap);
  ~ServeExecutor();
  ServeExecutor(const ServeExecutor&) = delete;
  ServeExecutor& operator=(const ServeExecutor&) = delete;

  /// Admits `task` unless the queue is at capacity or the executor is
  /// closed; returns whether it was admitted. Never blocks.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Stops admitting (every later try_submit returns false). Tasks
  /// already admitted still run. Idempotent.
  void close();

  /// Closes, waits for the queue to empty and every running task to
  /// finish, then joins the workers. Idempotent; the destructor calls it.
  /// Cancellation of slow tasks is the caller's job (each serve job owns
  /// a CancelToken) — join() itself only waits.
  void join();

  /// Tasks admitted but not yet started.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Tasks currently running on a worker.
  [[nodiscard]] int inflight() const;
  /// True once the queue is empty and no task is running.
  [[nodiscard]] bool idle() const;

 private:
  void worker_loop();

  mutable std::mutex m_;
  std::condition_variable cv_;       ///< wakes workers on push/close
  std::condition_variable idle_cv_;  ///< wakes join() on task completion
  std::deque<std::function<void()>> queue_;
  std::size_t cap_;
  int inflight_ = 0;
  bool closed_ = false;
  bool joined_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rmrls
