#include "serve/signals.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <csignal>
#include <cstring>

namespace rmrls {

namespace {

/// Write end of the live bridge's pipe; -1 when no bridge exists. Plain
/// volatile int is enough: it is written once before any handler can run
/// and read from signal context (int stores are atomic on every target
/// we build for, and sig_atomic_t is int on POSIX).
volatile int g_signal_write_fd = -1;

extern "C" void signal_bridge_handler(int signo) {
  // Async-signal-safe by construction: one write(2), nothing else. EAGAIN
  // (pipe full after ~64k pending signals) and EBADF (teardown race) are
  // both fine to ignore — the poll loop has long since been woken.
  const int fd = g_signal_write_fd;
  if (fd < 0) return;
  const unsigned char byte = static_cast<unsigned char>(signo & 0xff);
  const ssize_t rc = ::write(fd, &byte, 1);
  (void)rc;
}

}  // namespace

SignalBridge::SignalBridge(std::initializer_list<int> signals) {
  assert(g_signal_write_fd == -1 && "one SignalBridge per process");
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return;  // degraded: fd() stays -1, no wakeups
  for (const int fd : fds) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
  read_fd_ = fds[0];
  g_signal_write_fd = fds[1];

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = signal_bridge_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking syscalls get EINTR
  static_assert(sizeof(struct sigaction) <= sizeof(Saved::prev),
                "Saved::prev too small for struct sigaction");
  for (const int signo : signals) {
    Saved saved;
    saved.signo = signo;
    struct sigaction prev;
    if (::sigaction(signo, &action, &prev) == 0) {
      std::memcpy(saved.prev, &prev, sizeof(prev));
      saved_.push_back(saved);
    }
  }
}

SignalBridge::~SignalBridge() {
  for (const Saved& saved : saved_) {
    struct sigaction prev;
    std::memcpy(&prev, saved.prev, sizeof(prev));
    ::sigaction(saved.signo, &prev, nullptr);
  }
  const int write_fd = g_signal_write_fd;
  g_signal_write_fd = -1;
  if (write_fd >= 0) ::close(write_fd);
  if (read_fd_ >= 0) ::close(read_fd_);
}

std::vector<int> SignalBridge::drain() {
  std::vector<int> out;
  if (read_fd_ < 0) return out;
  unsigned char buf[64];
  for (;;) {
    const ssize_t n = ::read(read_fd_, buf, sizeof(buf));
    if (n <= 0) break;  // EAGAIN / EOF / EINTR all end the drain
    for (ssize_t i = 0; i < n; ++i) out.push_back(buf[i]);
  }
  return out;
}

}  // namespace rmrls
