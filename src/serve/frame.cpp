#include "serve/frame.hpp"

#include <utility>

#include "io/spec.hpp"
#include "obs/json.hpp"

namespace rmrls {

void FrameSplitter::feed(const char* data, std::size_t n) {
  if (overflowed_) return;  // session is already condemned; drop input
  buf_.append(data, n);
  // A buffer holding no newline yet and already past the cap can never
  // become a legal frame — latch the overflow without waiting for more.
  if (buf_.size() > kMaxFrameBytes &&
      buf_.find('\n') == std::string::npos) {
    overflowed_ = true;
    buf_.clear();
    buf_.shrink_to_fit();
  }
}

std::optional<std::string> FrameSplitter::next() {
  if (overflowed_) return std::nullopt;
  const std::size_t nl = buf_.find('\n');
  if (nl == std::string::npos) return std::nullopt;
  if (nl > kMaxFrameBytes) {
    overflowed_ = true;
    buf_.clear();
    buf_.shrink_to_fit();
    return std::nullopt;
  }
  std::string line = buf_.substr(0, nl);
  buf_.erase(0, nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

namespace {

Status bad_frame(const std::string& where, std::string reason) {
  return Status(StatusCode::kParseError, std::move(reason), where, 0);
}

/// Reads an optional field, type-checked; `ok` turns false on mismatch.
const JsonValue* want(const JsonValue& obj, std::string_view key,
                      JsonValue::Type type, bool& ok) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return nullptr;
  if (v->type != type) {
    ok = false;
    return nullptr;
  }
  return v;
}

}  // namespace

Result<ServeRequest> parse_request_checked(const std::string& line,
                                           const std::string& where) {
  if (line.size() > kMaxFrameBytes) {
    return bad_frame(where, "frame exceeds " +
                                std::to_string(kMaxFrameBytes) + " bytes");
  }
  const std::optional<JsonValue> doc = json_parse(line);
  if (!doc || !doc->is_object()) {
    return bad_frame(where, "frame is not a JSON object");
  }
  ServeRequest req;
  bool types_ok = true;
  if (const JsonValue* id =
          want(*doc, "id", JsonValue::Type::kString, types_ok)) {
    req.id = id->string;
  }
  const JsonValue* op = want(*doc, "op", JsonValue::Type::kString, types_ok);
  if (!types_ok) {
    return Status(StatusCode::kInvalidArgument, "field has the wrong type",
                  where, 0);
  }
  if (op == nullptr) return bad_frame(where, "missing \"op\"");
  if (op->string == "ping") {
    req.op = ServeOp::kPing;
  } else if (op->string == "submit") {
    req.op = ServeOp::kSubmit;
  } else if (op->string == "stats") {
    req.op = ServeOp::kStats;
  } else if (op->string == "watch") {
    req.op = ServeOp::kWatch;
  } else if (op->string == "shutdown") {
    req.op = ServeOp::kShutdown;
  } else {
    return bad_frame(where, "unknown op \"" + op->string + "\"");
  }

  if (const JsonValue* t =
          want(*doc, "time_ms", JsonValue::Type::kNumber, types_ok)) {
    if (t->number < 0 || t->number > 86400.0 * 1000.0) {
      return Status(StatusCode::kInvalidArgument,
                    "time_ms out of range [0, 86400000]", where, 0);
    }
    req.time_ms = static_cast<std::int64_t>(t->number);
  }
  if (const JsonValue* tfc =
          want(*doc, "tfc", JsonValue::Type::kBool, types_ok)) {
    req.want_tfc = tfc->boolean;
  }
  if (const JsonValue* en =
          want(*doc, "enable", JsonValue::Type::kBool, types_ok)) {
    req.watch_enable = en->boolean;
  }
  const JsonValue* spec =
      want(*doc, "spec", JsonValue::Type::kString, types_ok);
  if (!types_ok) {
    return Status(StatusCode::kInvalidArgument, "field has the wrong type",
                  where, 0);
  }

  if (req.op == ServeOp::kSubmit) {
    if (spec == nullptr) return bad_frame(where, "submit needs \"spec\"");
    // Same hardened spec parser as every file input: malformed text and
    // non-bijective images come back as structured Status, never throw.
    Result<TruthTable> parsed =
        parse_permutation_spec_checked(spec->string, where);
    if (!parsed.ok()) return parsed.status();
    req.spec_text = spec->string;
    req.spec = std::move(parsed).value();
  }
  return req;
}

namespace {

JsonObject frame_base(const char* record, const std::string& id) {
  JsonObject o;
  o.field("schema", kServeSchemaV1);
  o.field("record", record);
  if (!id.empty()) o.field("id", id);
  return o;
}

}  // namespace

std::string frame_pong(const std::string& id) {
  return frame_base("pong", id).str();
}

std::string frame_accepted(const std::string& id,
                           const std::string& trace_hex) {
  JsonObject o = frame_base("accepted", id);
  o.field("trace_id", trace_hex);
  return o.str();
}

std::string frame_error(const std::string& id, const Status& status) {
  JsonObject o = frame_base("error", id);
  o.field("status", std::string_view(to_string(status.code())));
  o.field("exit_code", exit_code_for(status.code()));
  o.field("message", status.to_string());
  return o.str();
}

std::string frame_shutdown(const std::string& id, bool draining) {
  JsonObject o = frame_base("shutdown", id);
  o.field("draining", draining);
  return o.str();
}

}  // namespace rmrls
