/// \file server.hpp
/// \brief The rmrls-serve daemon: long-lived synthesis over a socket
/// (docs/serving.md).
///
/// One process, one warm SynthCache, one poll(2) loop, one bounded worker
/// pool. Clients connect over a unix-domain socket (or loopback TCP),
/// speak newline-delimited JSON (serve/frame.hpp), and get their circuits
/// back without paying process startup or a cold cache per request.
///
/// Robustness posture (the reason this subsystem exists):
///   * Bounded admission — the executor's queue has a hard cap; a full
///     queue sheds the request immediately with StatusCode::kUnavailable
///     (exit code 7 on the client) instead of queueing unboundedly.
///   * Per-request deadlines — every submit gets a CancelToken and a
///     Watchdog-backed deadline (min(request time_ms, max_deadline),
///     defaulting to default_deadline), so one pathological spec cannot
///     wedge a worker.
///   * Disconnect == cancel — the poll loop cancels a session's in-flight
///     jobs the moment its socket reads EOF (within one poll interval),
///     so abandoned work stops consuming workers.
///   * Graceful drain — SIGTERM/SIGHUP/SIGINT (serve/signals.hpp) or a
///     shutdown frame stops accepting, sheds new submits, lets admitted
///     work finish, force-cancels whatever is still running when
///     drain_deadline passes, then flushes one final heartbeat.
///   * Single-writer I/O — only the poll loop touches sockets and the
///     metrics stream; workers hand finished frames back over a queue and
///     a self-pipe wakeup, so per-job rmrls-metrics-v1 records and
///     rmrls-metrics-v2 heartbeats interleave without a lock on the file.
///
/// Every job routes through core/batch.hpp's synthesize_cached — the
/// exact per-request core of the batch driver — so the daemon inherits
/// the canonical-orbit cache, single-flight dedup, fallback cascade, and
/// the re-verify-every-hit guarantee unchanged.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "core/batch.hpp"
#include "core/resilient.hpp"
#include "core/status.hpp"
#include "core/synth_cache.hpp"
#include "rev/canonical.hpp"

namespace rmrls {

struct ServeOptions {
  /// Unix-domain socket path (preferred: filesystem permissions apply).
  /// When empty, tcp_port is used instead.
  std::string socket_path;
  /// Loopback TCP port; 0 picks an ephemeral port (see bound_address()).
  /// Only consulted when socket_path is empty. Binds 127.0.0.1 only.
  int tcp_port = 0;

  int workers = 2;          ///< executor threads (minimum 1)
  int search_threads = 1;   ///< SynthesisOptions::num_threads per job
  std::size_t queue_cap = 64;  ///< admission queue bound (load shed past it)

  std::chrono::milliseconds default_deadline{2000};  ///< when time_ms absent
  std::chrono::milliseconds max_deadline{30000};     ///< clamp on time_ms
  std::chrono::milliseconds drain_deadline{5000};    ///< graceful-drain budget
  std::chrono::milliseconds heartbeat_interval{0};   ///< 0 = no heartbeats
  std::chrono::milliseconds poll_interval{50};       ///< poll(2) timeout

  /// Per-session output buffer cap; a consumer slower than this is
  /// disconnected rather than allowed to pin daemon memory.
  std::size_t max_output_bytes = std::size_t{8} << 20;

  std::size_t cache_bytes = std::size_t{64} << 20;  ///< warm SynthCache budget
  std::string cache_dir;                            ///< optional on-disk store

  CanonicalOptions canonical;
  /// Per-request cascade base. deadline / cancel_token / search.trace_id /
  /// search.num_threads are overridden per job.
  ResilienceOptions resilience;

  /// JSONL sink for per-job rmrls-metrics-v1 records and heartbeats;
  /// empty = no metrics file.
  std::string metrics_path;
};

/// Daemon counters, all written by the poll loop (reads are snapshots).
struct ServeStats {
  std::uint64_t connections = 0;  ///< sessions accepted
  std::uint64_t requests = 0;     ///< well-formed frames handled
  std::uint64_t malformed = 0;    ///< frames rejected by the parser
  std::uint64_t submitted = 0;    ///< jobs admitted to the executor
  std::uint64_t shed = 0;         ///< submits refused with kUnavailable
  std::uint64_t completed = 0;    ///< jobs finished with a verified circuit
  std::uint64_t failed = 0;       ///< jobs finished without one
  std::uint64_t disconnect_cancelled = 0;  ///< jobs cancelled by client EOF
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions options);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds and listens. kInvalidArgument for a hopeless address (path too
  /// long for sockaddr_un, no port and no path), kInternal for syscall
  /// failures (message carries errno text).
  [[nodiscard]] Status start();

  /// The serving loop; returns the process exit code (0 after a clean
  /// drain). Call after start(); installs SIGTERM/SIGINT/SIGHUP handlers
  /// for the duration.
  [[nodiscard]] int run();

  /// Begins graceful drain: stop accepting, shed new submits, finish (or
  /// cancel at drain_deadline) in-flight jobs, flush, exit run(). Safe
  /// from any thread and from within run()'s callbacks; idempotent.
  void begin_drain();

  /// Where the daemon actually listens — the socket path, or
  /// "127.0.0.1:<port>" with the kernel-assigned port for tcp_port 0.
  /// Valid after start().
  [[nodiscard]] const std::string& bound_address() const {
    return bound_address_;
  }

  [[nodiscard]] ServeStats stats() const;

 private:
  struct Impl;
  ServeOptions options_;
  std::string bound_address_;
  std::atomic<bool> drain_requested_{false};
  std::unique_ptr<Impl> impl_;
};

}  // namespace rmrls
