#include "serve/executor.hpp"

#include <algorithm>
#include <utility>

namespace rmrls {

ServeExecutor::ServeExecutor(int workers, std::size_t queue_cap)
    : cap_(std::max<std::size_t>(1, queue_cap)) {
  const int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServeExecutor::~ServeExecutor() { join(); }

bool ServeExecutor::try_submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(m_);
    if (closed_ || queue_.size() >= cap_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ServeExecutor::close() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    closed_ = true;
  }
  cv_.notify_all();
}

void ServeExecutor::join() {
  close();
  {
    std::unique_lock<std::mutex> lock(m_);
    if (joined_) return;
    joined_ = true;
    idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::size_t ServeExecutor::queue_depth() const {
  const std::lock_guard<std::mutex> lock(m_);
  return queue_.size();
}

int ServeExecutor::inflight() const {
  const std::lock_guard<std::mutex> lock(m_);
  return inflight_;
}

bool ServeExecutor::idle() const {
  const std::lock_guard<std::mutex> lock(m_);
  return queue_.empty() && inflight_ == 0;
}

void ServeExecutor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(m_);
      --inflight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace rmrls
