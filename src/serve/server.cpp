#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/tfc.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "rev/quantum_cost.hpp"
#include "serve/executor.hpp"
#include "serve/frame.hpp"
#include "serve/signals.hpp"

namespace rmrls {

namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking_cloexec(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

/// One in-flight synthesis job. Shared between the poll loop (cancel on
/// disconnect / drain) and the worker running it (polls the token, flips
/// `done`); both sides are lock-free.
struct Job {
  std::uint64_t trace_id = 0;
  CancelToken token;
  std::atomic<bool> done{false};
};

/// One client connection. Poll-loop-private: only the poll loop reads or
/// writes a session, so no lock — workers hand results back through the
/// daemon-wide completion queue instead.
struct Session {
  std::uint64_t sid = 0;
  int fd = -1;
  FrameSplitter splitter;
  std::string outbuf;
  bool close_after_flush = false;  ///< condemned: flush pending bytes, close
  bool watching = false;           ///< subscribed to heartbeat records
  std::vector<std::shared_ptr<Job>> jobs;  ///< in-flight submissions
};

/// A finished job travelling from a worker back to the poll loop. The
/// frame and the metrics record are fully rendered on the worker so the
/// poll loop only does I/O.
struct Done {
  std::uint64_t sid = 0;
  std::shared_ptr<Job> job;
  std::string frame;
  std::string metrics_json;  ///< empty when the daemon writes no metrics
  bool ok = false;
  std::uint64_t elapsed_us = 0;
};

}  // namespace

struct ServeDaemon::Impl {
  const ServeOptions* opts = nullptr;

  int listen_fd = -1;
  std::string unlink_path;  ///< unix socket file to remove on shutdown
  int wake_r = -1;
  int wake_w = -1;

  std::unique_ptr<SynthCache> cache;

  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions;
  std::uint64_t next_sid = 1;
  std::uint64_t submit_seq = 0;

  std::mutex done_m;
  std::deque<Done> done;

  // Poll-loop-written counters; relaxed atomics so stats() is safe from
  // any thread (tests drive run() on a helper thread).
  std::atomic<std::uint64_t> c_connections{0};
  std::atomic<std::uint64_t> c_requests{0};
  std::atomic<std::uint64_t> c_malformed{0};
  std::atomic<std::uint64_t> c_submitted{0};
  std::atomic<std::uint64_t> c_shed{0};
  std::atomic<std::uint64_t> c_completed{0};
  std::atomic<std::uint64_t> c_failed{0};
  std::atomic<std::uint64_t> c_disc_cancelled{0};

  // Telemetry mirrors (docs/observability.md, `serve.*`); null when
  // telemetry is disarmed.
  Counter* t_connections = nullptr;
  Counter* t_requests = nullptr;
  Counter* t_malformed = nullptr;
  Counter* t_submitted = nullptr;
  Counter* t_shed = nullptr;
  Counter* t_completed = nullptr;
  Counter* t_failed = nullptr;
  Counter* t_disc_cancelled = nullptr;
  Gauge* g_sessions = nullptr;
  Gauge* g_queue_depth = nullptr;
  Gauge* g_inflight = nullptr;
  Gauge* g_draining = nullptr;
  Histogram* h_request_us = nullptr;

  std::ofstream metrics_file;
  bool metrics_open = false;

  bool draining = false;
  bool drain_cancelled = false;
  Clock::time_point drain_start{};
  Clock::time_point start_time{};
  Clock::time_point last_hb{};
  std::uint64_t hb_seq = 0;

  // Declared last: destroyed (and therefore joined) first, while every
  // member a worker task can still touch — done_m, done, wake_w — is
  // alive above it.
  std::unique_ptr<ServeExecutor> executor;

  ~Impl() {
    if (executor) executor->join();
    executor.reset();
    for (auto& [sid, s] : sessions) {
      if (s->fd >= 0) ::close(s->fd);
    }
    sessions.clear();
    if (listen_fd >= 0) ::close(listen_fd);
    if (!unlink_path.empty()) ::unlink(unlink_path.c_str());
    if (wake_r >= 0) ::close(wake_r);
    if (wake_w >= 0) ::close(wake_w);
  }

  /// Thread-safe poll-loop wakeup (workers, begin_drain from any thread).
  void wake() const {
    if (wake_w < 0) return;
    const char b = 'w';
    const ssize_t rc = ::write(wake_w, &b, 1);
    (void)rc;
  }
};

namespace {

/// `record:"result"` frame: everything the CLI would have printed for the
/// same spec, plus the shared correlation id.
std::string result_frame(const std::string& id, std::uint64_t trace_id,
                         const CachedSynthesisOutcome& out, bool want_tfc,
                         std::uint64_t elapsed_us, int vars) {
  JsonObject o;
  o.field("schema", kServeSchemaV1);
  o.field("record", "result");
  if (!id.empty()) o.field("id", id);
  o.field("trace_id", trace_id_hex(trace_id));
  o.field("success", out.status.ok());
  o.field("status", std::string_view(to_string(out.status.code())));
  o.field("exit_code", exit_code_for(out.status.code()));
  if (!out.status.ok()) o.field("message", out.status.to_string());
  o.field("engine", std::string_view(to_string(out.engine)));
  o.field("verified", out.verified);
  o.field("cache_hit", out.cache_hit);
  o.field("orbit_hit", out.orbit_hit);
  o.field("deduped", out.deduped);
  o.field("termination",
          std::string_view(to_string(out.result.termination)));
  o.field("vars", vars);
  o.field("elapsed_us", elapsed_us);
  if (out.status.ok()) {
    o.field("gates", static_cast<std::int64_t>(out.result.circuit.gate_count()));
    o.field("quantum_cost",
            static_cast<std::int64_t>(quantum_cost(out.result.circuit)));
    if (want_tfc) o.field("tfc", write_tfc(out.result.circuit));
  } else {
    o.field("gates", -1);
    o.field("quantum_cost", -1);
  }
  return o.str();
}

/// Per-job rmrls-metrics-v1 record, same keys as a batch job record plus
/// `serve_status` (docs/observability.md).
std::string job_record(const std::string& name, int vars,
                       const CachedSynthesisOutcome& out,
                       std::uint64_t trace_id) {
  MetricsRegistry record;
  record.set("name", name).set("vars", vars).set("success", out.status.ok());
  record.set("trace_id", trace_id_hex(trace_id));
  record.add_stats(out.result.stats, out.result.termination);
  record.set("fallback_engine", std::string_view(to_string(out.engine)));
  record.set("verified", out.verified);
  record.set("cache_hit", out.cache_hit)
      .set("cache_orbit_hit", out.orbit_hit)
      .set("batch_deduped", out.deduped);
  record.set("serve_status", std::string_view(to_string(out.status.code())));
  if (out.status.ok()) {
    record.add_circuit(out.result.circuit);
  } else {
    record.set("gates", -1).set("quantum_cost", -1);
  }
  return record.to_json();
}

/// Record for a request that never ran: shed at admission (or while
/// draining). Carries the full required-key set with empty engine stats
/// so one validator covers healthy and shed streams alike.
std::string shed_record(const std::string& name, int vars) {
  MetricsRegistry record;
  record.set("name", name).set("vars", vars).set("success", false);
  record.add_stats(SynthesisStats{}, TerminationReason::kQueueExhausted);
  record.set("fallback_engine", std::string_view(to_string(FallbackEngine::kNone)));
  record.set("verified", false);
  record.set("serve_status",
             std::string_view(to_string(StatusCode::kUnavailable)));
  record.set("gates", -1).set("quantum_cost", -1);
  return record.to_json();
}

}  // namespace

ServeDaemon::ServeDaemon(ServeOptions options)
    : options_(std::move(options)), impl_(std::make_unique<Impl>()) {
  impl_->opts = &options_;
  SynthCacheOptions cache_options;
  cache_options.byte_budget = options_.cache_bytes;
  cache_options.dir = options_.cache_dir;
  impl_->cache = std::make_unique<SynthCache>(cache_options);
}

ServeDaemon::~ServeDaemon() = default;

Status ServeDaemon::start() {
  Impl& im = *impl_;
  if (im.listen_fd >= 0) {
    return Status(StatusCode::kInvalidArgument, "start() called twice");
  }
  if (options_.tcp_port < 0 || options_.tcp_port > 65535) {
    return Status(StatusCode::kInvalidArgument,
                  "tcp_port out of range [0, 65535]");
  }
  if (!options_.socket_path.empty()) {
    sockaddr_un addr{};
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status(StatusCode::kInvalidArgument,
                    "socket path exceeds sockaddr_un limit (" +
                        std::to_string(sizeof(addr.sun_path) - 1) + " bytes)");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status(StatusCode::kInternal, errno_text("socket"));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);
    ::unlink(options_.socket_path.c_str());  // stale socket from a crash
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status s(StatusCode::kInternal, errno_text("bind"));
      ::close(fd);
      return s;
    }
    if (::listen(fd, 64) != 0) {
      const Status s(StatusCode::kInternal, errno_text("listen"));
      ::close(fd);
      return s;
    }
    im.listen_fd = fd;
    im.unlink_path = options_.socket_path;
    bound_address_ = options_.socket_path;
  } else {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status(StatusCode::kInternal, errno_text("socket"));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never a public bind
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status s(StatusCode::kInternal, errno_text("bind"));
      ::close(fd);
      return s;
    }
    if (::listen(fd, 64) != 0) {
      const Status s(StatusCode::kInternal, errno_text("listen"));
      ::close(fd);
      return s;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    im.listen_fd = fd;
    bound_address_ =
        "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
  }
  set_nonblocking_cloexec(im.listen_fd);

  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return Status(StatusCode::kInternal, errno_text("pipe"));
  }
  set_nonblocking_cloexec(fds[0]);
  set_nonblocking_cloexec(fds[1]);
  im.wake_r = fds[0];
  im.wake_w = fds[1];

  im.executor = std::make_unique<ServeExecutor>(options_.workers,
                                                options_.queue_cap);
  return Status();
}

void ServeDaemon::begin_drain() {
  drain_requested_.store(true, std::memory_order_release);
  impl_->wake();
}

ServeStats ServeDaemon::stats() const {
  const Impl& im = *impl_;
  ServeStats s;
  s.connections = im.c_connections.load(std::memory_order_relaxed);
  s.requests = im.c_requests.load(std::memory_order_relaxed);
  s.malformed = im.c_malformed.load(std::memory_order_relaxed);
  s.submitted = im.c_submitted.load(std::memory_order_relaxed);
  s.shed = im.c_shed.load(std::memory_order_relaxed);
  s.completed = im.c_completed.load(std::memory_order_relaxed);
  s.failed = im.c_failed.load(std::memory_order_relaxed);
  s.disconnect_cancelled = im.c_disc_cancelled.load(std::memory_order_relaxed);
  return s;
}

namespace {

void count(std::atomic<std::uint64_t>& c, Counter* mirror) {
  c.fetch_add(1, std::memory_order_relaxed);
  if (mirror != nullptr) mirror->inc();
}

}  // namespace

// ---------------------------------------------------------------------------
// The poll loop and its helpers. Everything below runs on the thread that
// called run() — the single writer for sessions and the metrics stream.

int ServeDaemon::run() {
  Impl& im = *impl_;
  if (im.listen_fd < 0) return exit_code_for(StatusCode::kInvalidArgument);

  if (!options_.metrics_path.empty()) {
    im.metrics_file.open(options_.metrics_path,
                         std::ios::out | std::ios::trunc);
    im.metrics_open = im.metrics_file.is_open();
  }
  const bool heartbeats = options_.heartbeat_interval.count() > 0;
  if (heartbeats) Telemetry::enable();
  if (Telemetry* t = Telemetry::active()) {
    im.t_connections = &t->counter("serve.connections");
    im.t_requests = &t->counter("serve.requests");
    im.t_malformed = &t->counter("serve.malformed");
    im.t_submitted = &t->counter("serve.submitted");
    im.t_shed = &t->counter("serve.shed");
    im.t_completed = &t->counter("serve.completed");
    im.t_failed = &t->counter("serve.failed");
    im.t_disc_cancelled = &t->counter("serve.disconnect_cancelled");
    im.g_sessions = &t->gauge("serve.sessions");
    im.g_queue_depth = &t->gauge("serve.queue_depth");
    im.g_inflight = &t->gauge("serve.inflight");
    im.g_draining = &t->gauge("serve.draining");
    im.h_request_us = &t->histogram("serve.request_us");
  }

  SignalBridge signals({SIGTERM, SIGINT, SIGHUP});
  im.start_time = Clock::now();
  im.last_hb = im.start_time;

  const auto enter_drain = [&] {
    if (im.draining) return;
    im.draining = true;
    im.drain_start = Clock::now();
    im.executor->close();
    if (im.listen_fd >= 0) {
      ::close(im.listen_fd);
      im.listen_fd = -1;
      if (!im.unlink_path.empty()) {
        ::unlink(im.unlink_path.c_str());
        im.unlink_path.clear();
      }
    }
    if (im.g_draining != nullptr) im.g_draining->set(1);
  };

  const auto send = [&](Session& s, std::string_view frame) {
    s.outbuf.append(frame);
    s.outbuf.push_back('\n');
  };

  // Opportunistic nonblocking flush; false means the socket died.
  const auto flush = [&](Session& s) -> bool {
    while (!s.outbuf.empty()) {
      // MSG_NOSIGNAL: a peer that vanished mid-write must surface as
      // EPIPE here, not SIGPIPE the whole daemon.
      const ssize_t n =
          ::send(s.fd, s.outbuf.data(), s.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        s.outbuf.erase(0, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  };

  // Disconnect == cancel (docs/serving.md): every in-flight job of the
  // session is cancelled the moment its socket goes away.
  const auto disconnect = [&](std::uint64_t sid) {
    const auto it = im.sessions.find(sid);
    if (it == im.sessions.end()) return;
    Session& s = *it->second;
    for (const std::shared_ptr<Job>& job : s.jobs) {
      if (!job->done.load(std::memory_order_acquire)) {
        job->token.cancel(CancelReason::kUser);
        count(im.c_disc_cancelled, im.t_disc_cancelled);
      }
    }
    ::close(s.fd);
    im.sessions.erase(it);
  };

  const auto shed = [&](Session& s, const ServeRequest& req) {
    count(im.c_shed, im.t_shed);
    const Status status(StatusCode::kUnavailable,
                        im.draining ? "server is draining"
                                    : "admission queue is full");
    send(s, frame_error(req.id, status));
    if (im.metrics_open) {
      const std::string name =
          req.id.empty() ? "serve#shed" : req.id;
      im.metrics_file << shed_record(name, req.spec.num_vars()) << '\n';
    }
  };

  const auto submit = [&](Session& s, ServeRequest&& req) {
    if (im.draining) {
      shed(s, req);
      return;
    }
    auto job = std::make_shared<Job>();
    const std::uint64_t seq = im.submit_seq++;
    const std::string name =
        req.id.empty() ? ("serve#" + std::to_string(seq)) : req.id;
    job->trace_id = derive_trace_id(name, seq);
    const std::chrono::milliseconds deadline =
        req.time_ms > 0
            ? std::min(std::chrono::milliseconds(req.time_ms),
                       options_.max_deadline)
            : options_.default_deadline;
    Impl* imp = &im;
    const bool want_metrics = im.metrics_open;
    auto task = [imp, job, spec = req.spec, name, id = req.id,
                 want_tfc = req.want_tfc, want_metrics, deadline,
                 sid = s.sid]() {
      const auto t0 = Clock::now();
      ResilienceOptions r = imp->opts->resilience;
      r.deadline = deadline;
      r.use_watchdog = true;
      r.cancel_token = &job->token;
      r.search.num_threads = imp->opts->search_threads;
      r.search.trace_id = job->trace_id;
      const CachedSynthesisOutcome out = synthesize_cached(
          spec, imp->cache.get(), imp->opts->canonical, r);
      const auto elapsed_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count());
      job->done.store(true, std::memory_order_release);
      Done d;
      d.sid = sid;
      d.job = job;
      d.ok = out.status.ok();
      d.elapsed_us = elapsed_us;
      d.frame = result_frame(id, job->trace_id, out, want_tfc, elapsed_us,
                             spec.num_vars());
      if (want_metrics) {
        d.metrics_json = job_record(name, spec.num_vars(), out, job->trace_id);
      }
      {
        const std::lock_guard<std::mutex> lock(imp->done_m);
        imp->done.push_back(std::move(d));
      }
      imp->wake();
    };
    if (!im.executor->try_submit(std::move(task))) {
      shed(s, req);
      return;
    }
    s.jobs.push_back(job);
    count(im.c_submitted, im.t_submitted);
    if (Telemetry* t = Telemetry::active()) {
      t->add_active(trace_id_hex(job->trace_id));
    }
    send(s, frame_accepted(req.id, trace_id_hex(job->trace_id)));
  };

  const auto stats_frame = [&](const std::string& id) {
    JsonObject o;
    o.field("schema", kServeSchemaV1);
    o.field("record", "stats");
    if (!id.empty()) o.field("id", id);
    o.field("uptime_ms",
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - im.start_time)
                    .count()));
    o.field("connections", im.c_connections.load(std::memory_order_relaxed));
    o.field("requests", im.c_requests.load(std::memory_order_relaxed));
    o.field("malformed", im.c_malformed.load(std::memory_order_relaxed));
    o.field("submitted", im.c_submitted.load(std::memory_order_relaxed));
    o.field("shed", im.c_shed.load(std::memory_order_relaxed));
    o.field("completed", im.c_completed.load(std::memory_order_relaxed));
    o.field("failed", im.c_failed.load(std::memory_order_relaxed));
    o.field("disconnect_cancelled",
            im.c_disc_cancelled.load(std::memory_order_relaxed));
    o.field("sessions", static_cast<std::uint64_t>(im.sessions.size()));
    o.field("queue_depth",
            static_cast<std::uint64_t>(im.executor->queue_depth()));
    o.field("inflight", im.executor->inflight());
    o.field("draining", im.draining);
    o.field("cache_entries",
            static_cast<std::uint64_t>(im.cache->entry_count()));
    o.field("cache_bytes", static_cast<std::uint64_t>(im.cache->bytes_used()));
    return o.str();
  };

  const auto handle_frame = [&](Session& s, const std::string& line) {
    Result<ServeRequest> parsed = parse_request_checked(
        line, "session#" + std::to_string(s.sid));
    if (!parsed.ok()) {
      // A malformed frame costs the peer one error response, not the
      // session: a fat-fingered interactive client keeps its connection.
      // Best-effort id echo so the client can still correlate the
      // failure (a bad spec inside otherwise well-formed JSON keeps its
      // request id).
      std::string id;
      if (const std::optional<JsonValue> doc = json_parse(line)) {
        if (const JsonValue* v = doc->find("id")) {
          if (v->is_string()) id = v->string;
        }
      }
      count(im.c_malformed, im.t_malformed);
      send(s, frame_error(id, parsed.status()));
      return;
    }
    ServeRequest req = std::move(parsed).value();
    count(im.c_requests, im.t_requests);
    switch (req.op) {
      case ServeOp::kPing:
        send(s, frame_pong(req.id));
        break;
      case ServeOp::kStats:
        send(s, stats_frame(req.id));
        break;
      case ServeOp::kWatch: {
        s.watching = req.watch_enable;
        JsonObject o;
        o.field("schema", kServeSchemaV1);
        o.field("record", "watch");
        if (!req.id.empty()) o.field("id", req.id);
        o.field("enabled", s.watching);
        send(s, o.str());
        break;
      }
      case ServeOp::kShutdown:
        send(s, frame_shutdown(req.id, true));
        enter_drain();
        break;
      case ServeOp::kSubmit:
        submit(s, std::move(req));
        break;
    }
  };

  const auto emit_heartbeat = [&] {
    Telemetry* t = Telemetry::active();
    if (!heartbeats || t == nullptr) return;
    const auto uptime_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             im.start_time)
            .count());
    const std::string line =
        Snapshotter::heartbeat_json(t->snapshot(), im.hb_seq++, uptime_ns);
    if (im.metrics_open) im.metrics_file << line << '\n';
    for (auto& [sid, s] : im.sessions) {
      if (s->watching) send(*s, line);
    }
    im.last_hb = Clock::now();
  };

  // Completions: the only path that writes per-job records, so v1 lines
  // and heartbeats interleave on one stream without a lock.
  const auto drain_done = [&] {
    std::deque<Done> batch;
    {
      const std::lock_guard<std::mutex> lock(im.done_m);
      batch.swap(im.done);
    }
    for (Done& d : batch) {
      count(d.ok ? im.c_completed : im.c_failed,
            d.ok ? im.t_completed : im.t_failed);
      if (im.h_request_us != nullptr) im.h_request_us->record(d.elapsed_us);
      if (Telemetry* t = Telemetry::active()) {
        t->remove_active(trace_id_hex(d.job->trace_id));
      }
      if (im.metrics_open && !d.metrics_json.empty()) {
        im.metrics_file << d.metrics_json << '\n';
      }
      const auto it = im.sessions.find(d.sid);
      if (it == im.sessions.end()) continue;  // client left; work was cancelled
      Session& s = *it->second;
      send(s, d.frame);
      s.jobs.erase(std::remove(s.jobs.begin(), s.jobs.end(), d.job),
                   s.jobs.end());
    }
  };

  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_sid;  // parallel: 0 for non-session entries
  std::vector<std::uint64_t> to_close;

  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire)) enter_drain();
    if (im.draining && im.executor->idle()) {
      const std::lock_guard<std::mutex> lock(im.done_m);
      if (im.done.empty()) break;
    }

    pfds.clear();
    pfd_sid.clear();
    pfds.push_back({im.wake_r, POLLIN, 0});
    pfd_sid.push_back(0);
    if (signals.fd() >= 0) {
      pfds.push_back({signals.fd(), POLLIN, 0});
      pfd_sid.push_back(0);
    }
    const std::size_t listen_idx = pfds.size();
    if (im.listen_fd >= 0) {
      pfds.push_back({im.listen_fd, POLLIN, 0});
      pfd_sid.push_back(0);
    }
    for (auto& [sid, s] : im.sessions) {
      short events = POLLIN;
      if (!s->outbuf.empty()) events |= POLLOUT;
      pfds.push_back({s->fd, events, 0});
      pfd_sid.push_back(sid);
    }

    const int rc = ::poll(pfds.data(), pfds.size(),
                          static_cast<int>(options_.poll_interval.count()));
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: bail out

    if (signals.fd() >= 0) {
      // pfds[1] is the bridge when present (see construction order above).
      const std::vector<int> fired = signals.drain();
      if (!fired.empty()) {
        if (!im.draining) {
          enter_drain();
        } else {
          // A second signal escalates: stop waiting for in-flight work.
          for (auto& [sid, s] : im.sessions) {
            for (const std::shared_ptr<Job>& job : s->jobs) {
              job->token.cancel(CancelReason::kUser);
            }
          }
          im.drain_cancelled = true;
        }
      }
    }
    {
      char buf[256];
      while (::read(im.wake_r, buf, sizeof(buf)) > 0) {
      }
    }

    drain_done();

    if (im.listen_fd >= 0 && listen_idx < pfds.size() &&
        (pfds[listen_idx].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept(im.listen_fd, nullptr, nullptr);
        if (cfd < 0) break;  // EAGAIN/EMFILE/...: try again next round
        set_nonblocking_cloexec(cfd);
        auto s = std::make_unique<Session>();
        s->sid = im.next_sid++;
        s->fd = cfd;
        count(im.c_connections, im.t_connections);
        im.sessions.emplace(s->sid, std::move(s));
      }
    }

    to_close.clear();
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const std::uint64_t sid = pfd_sid[i];
      if (sid == 0) continue;
      const auto it = im.sessions.find(sid);
      if (it == im.sessions.end()) continue;
      Session& s = *it->second;
      const short re = pfds[i].revents;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        to_close.push_back(sid);
        continue;
      }
      bool dead = false;
      if ((re & (POLLIN | POLLHUP)) != 0) {
        char buf[16384];
        for (;;) {
          const ssize_t n = ::read(s.fd, buf, sizeof(buf));
          if (n > 0) {
            s.splitter.feed(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            dead = true;  // EOF: the client hung up
          } else if (errno == EINTR) {
            continue;
          }
          break;  // EAGAIN or EOF or error
        }
        while (std::optional<std::string> line = s.splitter.next()) {
          handle_frame(s, *line);
        }
        if (s.splitter.overflowed() && !s.close_after_flush) {
          count(im.c_malformed, im.t_malformed);
          send(s, frame_error(
                      "", Status(StatusCode::kParseError,
                                 "frame exceeds " +
                                     std::to_string(kMaxFrameBytes) +
                                     " bytes; closing connection")));
          s.close_after_flush = true;
        }
      }
      if (dead) {
        to_close.push_back(sid);
        continue;
      }
      if (!flush(s)) {
        to_close.push_back(sid);
        continue;
      }
      if (s.outbuf.size() > options_.max_output_bytes) {
        // Slow consumer: it cannot pin daemon memory (docs/serving.md).
        to_close.push_back(sid);
        continue;
      }
      if (s.close_after_flush && s.outbuf.empty()) to_close.push_back(sid);
    }
    for (const std::uint64_t sid : to_close) disconnect(sid);

    const auto now = Clock::now();
    if (heartbeats && now - im.last_hb >= options_.heartbeat_interval) {
      emit_heartbeat();
    }
    if (im.draining && !im.drain_cancelled &&
        now - im.drain_start >= options_.drain_deadline) {
      // Drain deadline: in-flight and queued jobs get a deadline-reason
      // cancel; the engines stop within one cooperative poll.
      for (auto& [sid, s] : im.sessions) {
        for (const std::shared_ptr<Job>& job : s->jobs) {
          job->token.cancel(CancelReason::kDeadline);
        }
      }
      im.drain_cancelled = true;
    }
    if (im.g_sessions != nullptr) {
      im.g_sessions->set(static_cast<std::int64_t>(im.sessions.size()));
      im.g_queue_depth->set(
          static_cast<std::int64_t>(im.executor->queue_depth()));
      im.g_inflight->set(im.executor->inflight());
      im.g_draining->set(im.draining ? 1 : 0);
    }
  }

  // Shutdown: workers are idle and the completion queue is drained, so
  // what remains is flushing — one final heartbeat (the run's cumulative
  // state, same flush-on-exit contract as the CLI Snapshotter), then the
  // session buffers, then the metrics stream.
  im.executor->join();
  drain_done();
  emit_heartbeat();
  for (auto& [sid, s] : im.sessions) {
    if (s->outbuf.empty()) continue;
    // Best-effort blocking flush with a 1s cap so a dead peer cannot
    // stall shutdown.
    const int fl = ::fcntl(s->fd, F_GETFL, 0);
    ::fcntl(s->fd, F_SETFL, fl & ~O_NONBLOCK);
    timeval tv{1, 0};
    ::setsockopt(s->fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    (void)!::send(s->fd, s->outbuf.data(), s->outbuf.size(), MSG_NOSIGNAL);
  }
  for (auto& [sid, s] : im.sessions) ::close(s->fd);
  im.sessions.clear();
  if (im.metrics_open) im.metrics_file.flush();
  return 0;
}

}  // namespace rmrls
