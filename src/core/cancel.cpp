#include "core/cancel.hpp"

namespace rmrls {

Watchdog::Watchdog(CancelToken& token, std::chrono::milliseconds limit)
    : token_(token) {
  thread_ = std::thread([this, limit] {
    std::unique_lock<std::mutex> lock(m_);
    if (cv_.wait_for(lock, limit, [this] { return disarmed_; })) {
      return;  // disarmed before the deadline
    }
    token_.cancel(CancelReason::kDeadline);
    fired_.store(true, std::memory_order_release);
  });
}

Watchdog::~Watchdog() {
  disarm();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::disarm() {
  {
    const std::lock_guard<std::mutex> lock(m_);
    disarmed_ = true;
  }
  cv_.notify_all();
}

}  // namespace rmrls
