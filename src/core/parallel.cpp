#include "core/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "core/history.hpp"
#include "core/search.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"

namespace rmrls {

namespace {

using Clock = std::chrono::steady_clock;

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// kSolved > kCancelled > kTimeLimit > kNodeBudget > kQueueExhausted: a
/// solution ending the run beats everything; an explicit cancellation or a
/// deadline hit anywhere means the run was cut short even if other workers
/// drained their queues.
int precedence(TerminationReason r) {
  switch (r) {
    case TerminationReason::kSolved: return 4;
    case TerminationReason::kCancelled: return 3;
    case TerminationReason::kTimeLimit: return 2;
    case TerminationReason::kNodeBudget: return 1;
    case TerminationReason::kQueueExhausted: return 0;
  }
  return 0;
}

std::chrono::microseconds wall_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start);
}

/// Deterministic jitter seed of worker `w`. Worker 0 always searches the
/// canonical ordering (seed 0 = no jitter), so one worker of every pass is
/// the sequential engine's order and quality can only be added to, never
/// traded away.
std::uint64_t worker_jitter_seed(int w) {
  if (w == 0) return 0;
  return splitmix64(0x6c617a79736d70ull ^ static_cast<std::uint64_t>(w));
}

/// Transposition-table owner tag of the canonical worker (and of the root
/// expansion feeding every worker). Helpers write the default tag 0 and
/// prune on any entry; the canonical worker prunes only on this tag, so
/// no helper claim can cut it off a line the sequential engine would
/// explore — worker 0 stays a completeness guarantee, not just a
/// diversification choice (core/transposition.hpp).
constexpr std::uint8_t kCanonicalOwner = 1;

/// The engine, generic over the state representation (sparse Pprm or
/// dense DensePprm). Every worker of one pass runs the same
/// representation; see parallel.hpp.
template <class Rep>
SynthesisResult run_parallel_impl(const Rep& start,
                                  const SynthesisOptions& options) {
  const auto wall_start = Clock::now();
  const int requested = resolve_threads(options.num_threads);

  // The pass's shared structures: the bounded transposition table (the
  // driver's pass-spanning one when installed, else built here for this
  // pass) and the shared history table.
  std::unique_ptr<TranspositionTable> local_tt;
  TranspositionTable* pass_tt = nullptr;
  if (options.use_transposition_table) {
    pass_tt = options.tt;
    if (pass_tt == nullptr) {
      local_tt = std::make_unique<TranspositionTable>(
          options.tt_mb, options.tt_shards, options.tt_replacement);
      pass_tt = local_tt.get();
    }
  }
  std::unique_ptr<HistoryTable> local_history;
  SynthesisOptions pass_options = options;
  pass_options.tt = pass_tt;
  // The root expansion's depth-1 claims carry the canonical worker's tag:
  // they are exactly the entries the sequential engine would have written
  // first, so worker 0 prunes on them like its own (see the worker loop).
  pass_options.tt_owner = kCanonicalOwner;
  if (options.use_history && options.history == nullptr) {
    local_history = std::make_unique<HistoryTable>();
    pass_options.history = local_history.get();
  }
  const TranspositionTable::Snapshot tt_before =
      pass_tt != nullptr ? pass_tt->snapshot() : TranspositionTable::Snapshot{};

  // Phase 1: expand the root sequentially and harvest the first-level
  // subtrees (sorted by descending priority). The root expansion writes
  // its children straight into the shared table (depth 1), so no worker
  // can re-reach a seed through a longer path.
  BasicRootExpansion<Rep> root =
      BasicSearch<Rep>::expand_root(start, pass_options);
  SynthesisResult result;
  result.initial_terms = start.term_count();
  result.stats = root.stats;
  result.circuit = Circuit(start.num_vars());

  if (root.identity) {
    result.success = true;
    result.termination = TerminationReason::kSolved;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }
  if (root.solved) {
    // A one-gate circuit is optimal (depth 0 would mean the identity), so
    // there is nothing left to search in parallel.
    result.success = true;
    result.circuit.append(root.solution_gate);
    result.termination = options.stop_at_first_solution
                             ? TerminationReason::kSolved
                             : TerminationReason::kQueueExhausted;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }

  if (options.cancel_token != nullptr && options.cancel_token->cancelled()) {
    result.termination =
        options.cancel_token->reason() == CancelReason::kDeadline
            ? TerminationReason::kTimeLimit
            : TerminationReason::kCancelled;
    result.stats.cancelled =
        result.termination == TerminationReason::kCancelled;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }

  std::uint64_t remaining_budget = 0;  // 0 = unlimited
  if (options.max_nodes > 0) {
    if (root.stats.nodes_expanded >= options.max_nodes) {
      result.termination = TerminationReason::kNodeBudget;
      result.stats.elapsed = wall_since(wall_start);
      return result;
    }
    remaining_budget = options.max_nodes - root.stats.nodes_expanded;
  }

  // The wall budget covers the whole pass: workers get what the root
  // expansion left, measured from their own start, so the pass-level
  // deadline holds without a shared clock.
  SynthesisOptions worker_base = pass_options;
  if (options.time_limit.count() > 0) {
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - wall_start);
    if (spent >= options.time_limit) {
      result.termination = TerminationReason::kTimeLimit;
      result.stats.elapsed = wall_since(wall_start);
      return result;
    }
    worker_base.time_limit = options.time_limit - spent;
  }
  if (root.seeds.empty()) {
    // Every first-level child was pruned away: the search space under this
    // configuration is exhausted.
    result.termination = TerminationReason::kQueueExhausted;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }

  // Phase 2, lazy SMP: every worker adopts ALL first-level subtrees — no
  // static partition to strand — and diversifies its exploration order
  // instead. Worker 0 keeps the canonical descending-priority order and
  // no jitter (the sequential engine's order); worker w rotates the seed
  // vector by w steps (restarts re-seed from different alternatives) and
  // prices candidates with its own deterministic jitter. The shared TT
  // then deduplicates: the first worker to a state claims it, peers prune
  // and diverge. More workers than subtrees adds pure duplication, so the
  // cap stays; likewise more workers than hardware threads only time-slice
  // the cores and re-derive each other's states, so the count is clamped
  // to hardware_concurrency unless oversubscription is explicitly allowed
  // (tests exercising multi-worker paths on small hosts).
  int capped = std::min<int>(requested, static_cast<int>(root.seeds.size()));
  if (!options.allow_oversubscription) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0) capped = std::min<int>(capped, static_cast<int>(hw));
  }
  const int num_workers = std::max(1, capped);
  detail::SharedSearchContext shared(pass_tt, remaining_budget);

  // Per-worker seed vectors are prepared before any thread starts (the
  // workers would otherwise race on root.seeds). Worker 0 keeps the
  // canonical order untouched; worker w > 0 rotates by w and perturbs the
  // entry priorities with its jitter seed so its heap pops the shared
  // entry points in a different order from the first node on.
  std::vector<std::vector<BasicRootSeed<Rep>>> worker_seeds(
      static_cast<std::size_t>(num_workers));
  for (int w = num_workers - 1; w >= 0; --w) {
    std::vector<BasicRootSeed<Rep>>& seeds =
        worker_seeds[static_cast<std::size_t>(w)];
    if (w == 0) {
      seeds = std::move(root.seeds);
      continue;
    }
    seeds = root.seeds;
    const std::uint64_t jitter = worker_jitter_seed(w);
    std::rotate(seeds.begin(),
                seeds.begin() + static_cast<std::ptrdiff_t>(
                                    static_cast<std::size_t>(w) %
                                    seeds.size()),
                seeds.end());
    for (BasicRootSeed<Rep>& seed : seeds) {
      const std::uint64_t mix = splitmix64(
          jitter ^ static_cast<std::uint64_t>(seed.gate.controls) ^
          (static_cast<std::uint64_t>(seed.gate.target) << 56));
      seed.priority += 0.03 * (static_cast<double>(mix >> 40) /
                               static_cast<double>(std::uint64_t{1} << 24));
    }
  }

  // Existing sinks are single-threaded by contract; serialize the workers
  // onto the user's sink. Phase profiles are merged after the join.
  SyncTraceSink sync_sink(options.trace_sink);
  std::vector<PhaseProfile> profiles(static_cast<std::size_t>(num_workers));
  std::vector<SynthesisResult> worker_results(
      static_cast<std::size_t>(num_workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    pool.emplace_back([&, w] {
      SynthesisOptions wopts = worker_base;
      wopts.num_threads = 1;
      wopts.max_nodes = 0;  // the shared budget governs, not the local one
      wopts.order_jitter = worker_jitter_seed(w);
      // Worker 0 searches with sequential-exact dedup semantics: only its
      // own (and the root expansion's) entries prune it. Helpers keep the
      // claim-based semantics that spread them across the tree.
      wopts.tt_owner = w == 0 ? kCanonicalOwner : std::uint8_t{0};
      wopts.tt_own_only = w == 0;
      wopts.trace_sink =
          options.trace_sink != nullptr ? &sync_sink : nullptr;
      wopts.phase_profile = options.phase_profile != nullptr
                                ? &profiles[static_cast<std::size_t>(w)]
                                : nullptr;
      BasicSearch<Rep> search(
          start, wopts,
          std::move(worker_seeds[static_cast<std::size_t>(w)]), &shared);
      worker_results[static_cast<std::size_t>(w)] = search.run();
    });
  }
  for (std::thread& t : pool) t.join();

  if (options.phase_profile != nullptr) {
    for (const PhaseProfile& p : profiles) options.phase_profile->merge(p);
  }

  // Merge: counters add; the winner is the worker holding the smallest
  // circuit (the SharedBound race guarantees exactly one worker recorded
  // the final best depth).
  result.termination = TerminationReason::kQueueExhausted;
  int best = -1;
  for (int w = 0; w < num_workers; ++w) {
    const SynthesisResult& r = worker_results[static_cast<std::size_t>(w)];
    accumulate_stats(result.stats, r.stats);
    if (precedence(r.termination) > precedence(result.termination)) {
      result.termination = r.termination;
    }
    if (r.success &&
        (best < 0 ||
         r.circuit.gate_count() <
             worker_results[static_cast<std::size_t>(best)]
                 .circuit.gate_count())) {
      best = w;
    }
  }
  if (best >= 0) {
    result.success = true;
    result.circuit =
        std::move(worker_results[static_cast<std::size_t>(best)].circuit);
    // The winning worker's local count: a lower bound on the pass-wide
    // effort, but the only well-defined one without a shared clock.
    result.stats.nodes_at_best =
        worker_results[static_cast<std::size_t>(best)].stats.nodes_at_best;
  }
  result.stats.workers = static_cast<std::uint64_t>(num_workers);
  if (pass_tt != nullptr) {
    // Whole-pass table traffic (root expansion + all workers) as a delta
    // against the pass start, so a driver sharing one table across passes
    // can still sum per-pass stats without double counting. Overwrites —
    // the root expansion's own delta is already inside this one.
    const TranspositionTable::Snapshot tt_after = pass_tt->snapshot();
    result.stats.tt_inserts = tt_after.inserts - tt_before.inserts;
    result.stats.tt_evictions = tt_after.evictions - tt_before.evictions;
    result.stats.tt_generation = pass_tt->generation();
    result.stats.tt_shard_hits.assign(tt_after.stripe_hits.size(), 0);
    for (std::size_t i = 0; i < tt_after.stripe_hits.size(); ++i) {
      result.stats.tt_shard_hits[i] =
          tt_after.stripe_hits[i] -
          (i < tt_before.stripe_hits.size() ? tt_before.stripe_hits[i] : 0);
    }
  }
  result.stats.elapsed = wall_since(wall_start);  // wall clock, not CPU sum
  return result;
}

}  // namespace

SynthesisResult run_parallel_search(const Pprm& start,
                                    const SynthesisOptions& options) {
  return run_parallel_impl(start, options);
}

SynthesisResult run_parallel_search(const DensePprm& start,
                                    const SynthesisOptions& options) {
  return run_parallel_impl(start, options);
}

}  // namespace rmrls
