#include "core/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/search.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"

namespace rmrls {

namespace {

using Clock = std::chrono::steady_clock;

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// kSolved > kCancelled > kTimeLimit > kNodeBudget > kQueueExhausted: a
/// solution ending the run beats everything; an explicit cancellation or a
/// deadline hit anywhere means the run was cut short even if other workers
/// drained their queues.
int precedence(TerminationReason r) {
  switch (r) {
    case TerminationReason::kSolved: return 4;
    case TerminationReason::kCancelled: return 3;
    case TerminationReason::kTimeLimit: return 2;
    case TerminationReason::kNodeBudget: return 1;
    case TerminationReason::kQueueExhausted: return 0;
  }
  return 0;
}

std::chrono::microseconds wall_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start);
}

/// The engine, generic over the state representation (sparse Pprm or
/// dense DensePprm). Every worker of one pass runs the same
/// representation; see parallel.hpp.
template <class Rep>
SynthesisResult run_parallel_impl(const Rep& start,
                                  const SynthesisOptions& options) {
  const auto wall_start = Clock::now();
  const int requested = resolve_threads(options.num_threads);

  // Phase 1: expand the root sequentially and harvest the first-level
  // subtrees (sorted by descending priority).
  BasicRootExpansion<Rep> root = BasicSearch<Rep>::expand_root(start, options);
  SynthesisResult result;
  result.initial_terms = start.term_count();
  result.stats = root.stats;
  result.circuit = Circuit(start.num_vars());

  if (root.identity) {
    result.success = true;
    result.termination = TerminationReason::kSolved;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }
  if (root.solved) {
    // A one-gate circuit is optimal (depth 0 would mean the identity), so
    // there is nothing left to search in parallel.
    result.success = true;
    result.circuit.append(root.solution_gate);
    result.termination = options.stop_at_first_solution
                             ? TerminationReason::kSolved
                             : TerminationReason::kQueueExhausted;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }

  if (options.cancel_token != nullptr && options.cancel_token->cancelled()) {
    result.termination =
        options.cancel_token->reason() == CancelReason::kDeadline
            ? TerminationReason::kTimeLimit
            : TerminationReason::kCancelled;
    result.stats.cancelled =
        result.termination == TerminationReason::kCancelled;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }

  std::uint64_t remaining_budget = 0;  // 0 = unlimited
  if (options.max_nodes > 0) {
    if (root.stats.nodes_expanded >= options.max_nodes) {
      result.termination = TerminationReason::kNodeBudget;
      result.stats.elapsed = wall_since(wall_start);
      return result;
    }
    remaining_budget = options.max_nodes - root.stats.nodes_expanded;
  }

  // The wall budget covers the whole pass: workers get what the root
  // expansion left, measured from their own start, so the pass-level
  // deadline holds without a shared clock.
  SynthesisOptions worker_base = options;
  if (options.time_limit.count() > 0) {
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - wall_start);
    if (spent >= options.time_limit) {
      result.termination = TerminationReason::kTimeLimit;
      result.stats.elapsed = wall_since(wall_start);
      return result;
    }
    worker_base.time_limit = options.time_limit - spent;
  }
  if (root.seeds.empty()) {
    // Every first-level child was pruned away: the search space under this
    // configuration is exhausted.
    result.termination = TerminationReason::kQueueExhausted;
    result.stats.elapsed = wall_since(wall_start);
    return result;
  }

  // Phase 2: partition the subtrees round-robin by priority across the
  // workers — never more workers than subtrees.
  const int num_workers = std::max(
      1, std::min<int>(requested, static_cast<int>(root.seeds.size())));
  detail::SharedSearchContext shared(options.tt_shards, remaining_budget);
  // The root expansion enqueued these states through its (discarded) local
  // table; re-seed the shared one so no worker can re-reach a peer's seed
  // through a different path.
  for (const BasicRootSeed<Rep>& seed : root.seeds) {
    shared.seen.check_and_insert(seed.state.hash(), 1);
  }
  std::vector<std::vector<BasicRootSeed<Rep>>> partitions(
      static_cast<std::size_t>(num_workers));
  for (std::size_t i = 0; i < root.seeds.size(); ++i) {
    partitions[i % static_cast<std::size_t>(num_workers)].push_back(
        std::move(root.seeds[i]));
  }

  // Existing sinks are single-threaded by contract; serialize the workers
  // onto the user's sink. Phase profiles are merged after the join.
  SyncTraceSink sync_sink(options.trace_sink);
  std::vector<PhaseProfile> profiles(static_cast<std::size_t>(num_workers));
  std::vector<SynthesisResult> worker_results(
      static_cast<std::size_t>(num_workers));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    pool.emplace_back([&, w] {
      SynthesisOptions wopts = worker_base;
      wopts.num_threads = 1;
      wopts.max_nodes = 0;  // the shared budget governs, not the local one
      wopts.trace_sink =
          options.trace_sink != nullptr ? &sync_sink : nullptr;
      wopts.phase_profile = options.phase_profile != nullptr
                                ? &profiles[static_cast<std::size_t>(w)]
                                : nullptr;
      BasicSearch<Rep> search(start, wopts,
                              std::move(partitions[static_cast<std::size_t>(w)]),
                              &shared);
      worker_results[static_cast<std::size_t>(w)] = search.run();
    });
  }
  for (std::thread& t : pool) t.join();

  if (options.phase_profile != nullptr) {
    for (const PhaseProfile& p : profiles) options.phase_profile->merge(p);
  }

  // Merge: counters add; the winner is the worker holding the smallest
  // circuit (the SharedBound race guarantees exactly one worker recorded
  // the final best depth).
  result.termination = TerminationReason::kQueueExhausted;
  int best = -1;
  for (int w = 0; w < num_workers; ++w) {
    const SynthesisResult& r = worker_results[static_cast<std::size_t>(w)];
    accumulate_stats(result.stats, r.stats);
    if (precedence(r.termination) > precedence(result.termination)) {
      result.termination = r.termination;
    }
    if (r.success &&
        (best < 0 ||
         r.circuit.gate_count() <
             worker_results[static_cast<std::size_t>(best)]
                 .circuit.gate_count())) {
      best = w;
    }
  }
  if (best >= 0) {
    result.success = true;
    result.circuit =
        std::move(worker_results[static_cast<std::size_t>(best)].circuit);
  }
  result.stats.workers = static_cast<std::uint64_t>(num_workers);
  result.stats.tt_shard_hits = shared.seen.hit_counts();
  result.stats.elapsed = wall_since(wall_start);  // wall clock, not CPU sum
  return result;
}

}  // namespace

SynthesisResult run_parallel_search(const Pprm& start,
                                    const SynthesisOptions& options) {
  return run_parallel_impl(start, options);
}

SynthesisResult run_parallel_search(const DensePprm& start,
                                    const SynthesisOptions& options) {
  return run_parallel_impl(start, options);
}

}  // namespace rmrls
