#include "core/resilient.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>

#include "baselines/greedy_pprm.hpp"
#include "baselines/transformation_based.hpp"
#include "core/history.hpp"
#include "core/synthesizer.hpp"
#include "core/transposition.hpp"
#include "obs/telemetry.hpp"
#include "rev/equivalence.hpp"
#include "rev/pprm_transform.hpp"

namespace rmrls {

namespace {

using Clock = std::chrono::steady_clock;

/// Combines the caller's search time limit with what the cascade deadline
/// leaves: the smaller nonzero of the two.
std::chrono::milliseconds combine_limits(std::chrono::milliseconds a,
                                         std::chrono::milliseconds b) {
  if (a.count() <= 0) return b;
  if (b.count() <= 0) return a;
  return std::min(a, b);
}

ResilientResult resilient_impl(const Pprm& spec, const TruthTable* table,
                               const ResilienceOptions& options) {
  const auto wall_start = Clock::now();
  const bool timed = options.deadline.count() > 0;
  const auto remaining = [&]() {
    return options.deadline -
           std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 wall_start);
  };

  // All engines poll one token. The caller's token (if any) is adopted
  // directly — its user-reason cancellation must be distinguishable from
  // the watchdog's deadline reason, and CancelToken already latches the
  // first reason, so no chaining layer is needed.
  CancelToken local_token;
  CancelToken* const token =
      options.cancel_token != nullptr ? options.cancel_token : &local_token;
  Telemetry* const tele = Telemetry::active();
  std::unique_ptr<Watchdog> watchdog;
  if (timed && options.use_watchdog) {
    watchdog = std::make_unique<Watchdog>(*token, options.deadline);
    if (tele != nullptr) tele->counter("resilient.watchdog_arms").inc();
  }

  ResilientResult out;
  out.result.initial_terms = spec.term_count();
  out.result.circuit = Circuit(spec.num_vars());

  const auto user_cancelled = [&] {
    return token->cancelled() && token->reason() == CancelReason::kUser;
  };
  // Adopts `r` as the outcome of one engine attempt: counters accumulate
  // across the cascade, the incomplete cascade closest to the identity is
  // kept (fewest remaining terms), and the last engine's termination
  // stands.
  const auto absorb = [&](SynthesisResult&& r) {
    const std::uint64_t nodes_before = out.result.stats.nodes_expanded;
    if (r.success) {
      out.result.stats.nodes_at_best = nodes_before + r.stats.nodes_at_best;
    }
    accumulate_stats(out.result.stats, r.stats);
    out.result.termination = r.termination;
    if (r.partial_terms >= 0 &&
        (out.result.partial_terms < 0 ||
         r.partial_terms < out.result.partial_terms)) {
      out.result.partial = std::move(r.partial);
      out.result.partial_terms = r.partial_terms;
    }
    if (r.success) {
      out.result.success = true;
      out.result.circuit = std::move(r.circuit);
    }
  };
  const auto finish = [&](FallbackEngine engine) {
    if (watchdog != nullptr) {
      watchdog->disarm();
      out.watchdog_fired = watchdog->fired();
    }
    out.engine = engine;
    out.result.stats.cancelled = user_cancelled();
    out.result.stats.watchdog_fired = out.watchdog_fired;
    out.result.stats.elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              wall_start);
    if (tele != nullptr) {
      if (out.watchdog_fired) {
        tele->counter("resilient.watchdog_fires").inc();
        // How far past its deadline a fired run actually ran before the
        // cooperative polls stopped it.
        const auto overshoot_us =
            out.result.stats.elapsed -
            std::chrono::duration_cast<std::chrono::microseconds>(
                options.deadline);
        if (overshoot_us.count() > 0) {
          tele->histogram("resilient.deadline_overshoot_us")
              .record(static_cast<std::uint64_t>(overshoot_us.count()));
        }
      }
      tele->counter(std::string("resilient.engine.") + to_string(engine))
          .inc();
    }
    if (engine != FallbackEngine::kNone) {
      out.status = Status();
    } else if (user_cancelled()) {
      out.status = Status(StatusCode::kCancelled, "synthesis cancelled");
    } else {
      out.status = Status(StatusCode::kBudgetExhausted,
                          "no engine produced a circuit within budget");
    }
    return out;
  };
  // A success only counts once the exact equivalence check confirms it; an
  // unverified circuit falls through to the next engine.
  const auto verify = [&](const Circuit& c) {
    const bool ok = equivalent(c, spec);
    out.verified = ok;
    if (!ok) out.result.success = false;  // an unverified circuit is no win
    return ok;
  };

  // Stage 1: the primary best-first search, on its share of the deadline.
  // The cascade owns the pass-spanning search state so that one --tt-mb
  // memory budget and one learned history cover every iterative-deepening
  // rung and refinement rerun synthesize() schedules inside this stage
  // (each rung gets its own slice of the stage's node/time budget; see
  // synthesizer.cpp).
  {
    SynthesisOptions sopts = options.search;
    sopts.cancel_token = token;
    std::unique_ptr<TranspositionTable> stage_tt;
    if (sopts.use_transposition_table && sopts.tt == nullptr) {
      stage_tt = std::make_unique<TranspositionTable>(
          sopts.tt_mb, sopts.tt_shards, sopts.tt_replacement);
      sopts.tt = stage_tt.get();
    }
    std::unique_ptr<HistoryTable> stage_history;
    if (sopts.use_history && sopts.history == nullptr) {
      stage_history = std::make_unique<HistoryTable>();
      sopts.history = stage_history.get();
    }
    if (timed) {
      const auto share = std::chrono::milliseconds(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 static_cast<double>(options.deadline.count()) *
                 options.primary_share)));
      sopts.time_limit = combine_limits(options.search.time_limit, share);
    }
    SynthesisResult r = synthesize(spec, sopts);
    const bool success = r.success;
    absorb(std::move(r));
    if (success && verify(out.result.circuit)) {
      return finish(FallbackEngine::kBestFirst);
    }
  }
  if (user_cancelled()) return finish(FallbackEngine::kNone);

  // Stage 2: the greedy anytime baseline on what is left of the clock. It
  // also records the closest incomplete cascade for the partial field.
  if (options.enable_greedy && (!timed || remaining().count() > 0)) {
    SynthesisOptions gopts = options.search;
    gopts.cancel_token = token;
    gopts.max_gates = 0;
    if (timed) gopts.time_limit = remaining();
    SynthesisResult r = synthesize_greedy(spec, gopts);
    const bool success = r.success;
    absorb(std::move(r));
    if (success && verify(out.result.circuit)) {
      return finish(FallbackEngine::kGreedy);
    }
  }
  if (user_cancelled()) return finish(FallbackEngine::kNone);

  // Stage 3: transformation-based synthesis — constructive, so it cannot
  // fail, but it materializes the full 2^n-row table; gate the width. A
  // cancelled run returns an incomplete cascade, which the verification
  // below rejects.
  if (options.enable_transformation &&
      spec.num_vars() <= options.transformation_max_vars &&
      (!timed || remaining().count() > 0)) {
    try {
      const TruthTable tt = table != nullptr ? *table
                                             : truth_table_of_pprm(spec);
      Circuit c = synthesize_transformation_bidir(tt, token);
      if (verify(c)) {
        out.result.success = true;
        out.result.circuit = std::move(c);
        out.result.termination = TerminationReason::kSolved;
        return finish(FallbackEngine::kTransformationBased);
      }
      out.result.termination = token->cancelled()
                                   ? (token->reason() == CancelReason::kUser
                                          ? TerminationReason::kCancelled
                                          : TerminationReason::kTimeLimit)
                                   : out.result.termination;
    } catch (const std::invalid_argument&) {
      // Spec not reconstructible into a table (too wide); skip the stage.
    }
  }
  return finish(FallbackEngine::kNone);
}

}  // namespace

ResilientResult synthesize_resilient(const Pprm& spec,
                                     const ResilienceOptions& options) {
  return resilient_impl(spec, nullptr, options);
}

ResilientResult synthesize_resilient(const TruthTable& spec,
                                     const ResilienceOptions& options) {
  const Pprm pprm = pprm_of_truth_table(spec);
  return resilient_impl(pprm, &spec, options);
}

}  // namespace rmrls
