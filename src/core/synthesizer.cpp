#include "core/synthesizer.hpp"

#include <algorithm>
#include <chrono>
#include <random>

#include "core/parallel.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

namespace rmrls {

namespace {

/// Adaptive kernel selection (docs/dense_pprm.md): the dense bitset
/// representation wins while its 2^n-bit spectra stay cache-resident and
/// reasonably populated, the sparse cube vectors win when the spectrum is
/// a sea of zero words. `dense_threshold` caps the width (0 forces
/// sparse); under the cap, narrow systems (n <= 8, spectra of at most four
/// words) always go dense, wider ones only when the spec populates on
/// average at least one term per word of every output's bitset.
bool pick_dense(const Pprm& spec, const SynthesisOptions& options) {
  const int n = spec.num_vars();
  if (options.dense_threshold <= 0 || n > options.dense_threshold) {
    return false;
  }
  if (n > kMaxDenseVariables) return false;
  if (n <= 8) return true;
  return spec.term_count() >=
         static_cast<int>(static_cast<std::uint64_t>(n) << (n - 6));
}

/// One search pass: the sequential engine for num_threads == 1 (exact
/// pre-existing behavior), the parallel engine otherwise. Each pass
/// independently picks the kernel for its representation of the spec —
/// both engines expand the same tree and emit the same circuit, so the
/// choice only affects throughput (and the dense_kernel stats flag).
SynthesisResult run_search(const Pprm& spec, const SynthesisOptions& options) {
  if (pick_dense(spec, options)) {
    const DensePprm dense(spec);
    SynthesisResult r = options.num_threads == 1
                            ? DenseSearch(dense, options).run()
                            : run_parallel_search(dense, options);
    r.stats.dense_kernel = true;
    return r;
  }
  if (options.num_threads == 1) return Search(spec, options).run();
  return run_parallel_search(spec, options);
}

/// Tells the trace sink (if any) that the driver starts an
/// iterative-refinement rerun hunting for circuits below `gates`.
void emit_refinement_round(const SynthesisOptions& options, int gates) {
  if (options.trace_sink == nullptr) return;
  TraceEvent e;
  e.kind = TraceEventKind::kRefinementRound;
  e.gates = gates;
  options.trace_sink->on_event(e);
}

}  // namespace

SynthesisResult synthesize(const Pprm& spec, const SynthesisOptions& options) {
  using Clock = std::chrono::steady_clock;
  // time_limit bounds the whole multi-pass run, not each pass: every rerun
  // below receives only what is left on this wall clock (docs/robustness.md).
  const auto wall_start = Clock::now();
  const bool timed = options.time_limit.count() > 0;
  const auto remaining = [&]() {
    return options.time_limit -
           std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 wall_start);
  };
  const bool refine =
      options.iterative_refinement && !options.stop_at_first_solution;
  SynthesisOptions first = options;
  if (refine && options.max_nodes > 0) {
    first.max_nodes = std::max<std::uint64_t>(options.max_nodes / 2, 1);
  }
  SynthesisResult result = run_search(spec, first);
  if (!refine) return result;
  // A user cancellation ends the whole driver, never just the pass.
  if (result.termination == TerminationReason::kCancelled) return result;
  SynthesisOptions scope = options;  // options for the refinement reruns
  if (!result.success) {
    // The scouting run found nothing: spend the rest of the budget on one
    // attempt with the broad exemption scope, which reaches functions the
    // quality-tuned scope provably cannot.
    if (options.max_nodes == 0 ||
        result.stats.nodes_expanded >= options.max_nodes) {
      return result;
    }
    SynthesisOptions rest = options;
    rest.max_nodes = options.max_nodes - result.stats.nodes_expanded;
    rest.iterative_refinement = false;
    rest.exempt_scope = SynthesisOptions::ExemptScope::kAny;
    if (timed) {
      const auto left = remaining();
      if (left.count() <= 0) {
        result.termination = TerminationReason::kTimeLimit;
        return result;
      }
      rest.time_limit = left;
    }
    SynthesisResult retry = run_search(spec, rest);
    accumulate_stats(retry.stats, result.stats);
    if (!retry.success) return retry;
    result = std::move(retry);
    scope.exempt_scope = SynthesisOptions::ExemptScope::kAny;
  }
  // Iterative tightening: rerun with a cap one below the best size so far;
  // each rerun spends what is left of the node budget.
  while (result.circuit.gate_count() > 1) {
    if (result.termination == TerminationReason::kCancelled) break;
    SynthesisOptions tighter = scope;
    if (options.max_nodes > 0) {
      if (result.stats.nodes_expanded >= options.max_nodes) {
        result.termination = TerminationReason::kNodeBudget;
        break;
      }
      tighter.max_nodes = options.max_nodes - result.stats.nodes_expanded;
    }
    if (timed) {
      const auto left = remaining();
      if (left.count() <= 0) {
        result.termination = TerminationReason::kTimeLimit;
        break;
      }
      tighter.time_limit = left;
    }
    tighter.max_gates = result.circuit.gate_count() - 1;
    tighter.iterative_refinement = false;
    emit_refinement_round(options, result.circuit.gate_count());
    SynthesisResult next = run_search(spec, tighter);
    accumulate_stats(result.stats, next.stats);
    // The last pass executed is why the overall synthesis stopped looking.
    result.termination = next.termination;
    if (!next.success) break;
    result.circuit = std::move(next.circuit);
  }
  return result;
}

SynthesisResult synthesize(const TruthTable& spec,
                           const SynthesisOptions& options) {
  Pprm start;
  {
    const ScopedPhaseTimer timer(options.phase_profile,
                                 Phase::kPprmTransform);
    start = pprm_of_truth_table(spec);
  }
  return synthesize(start, options);
}

SynthesisResult synthesize_bidirectional(const TruthTable& spec,
                                         const SynthesisOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  SynthesisOptions half = options;
  if (options.max_nodes > 0) {
    half.max_nodes = std::max<std::uint64_t>(options.max_nodes / 2, 1);
  }
  if (options.time_limit.count() > 0) {
    half.time_limit = std::max<std::chrono::milliseconds>(
        options.time_limit / 2, std::chrono::milliseconds{1});
  }
  SynthesisResult forward = synthesize(spec, half);
  if (forward.termination == TerminationReason::kCancelled) return forward;
  SynthesisOptions rest = options;
  if (options.max_nodes > 0) {
    const std::uint64_t spent = forward.stats.nodes_expanded;
    if (spent >= options.max_nodes) return forward;
    rest.max_nodes = options.max_nodes - spent;
  }
  if (options.time_limit.count() > 0) {
    const auto left =
        options.time_limit -
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              wall_start);
    if (left.count() <= 0) {
      forward.termination = TerminationReason::kTimeLimit;
      return forward;
    }
    rest.time_limit = left;
  }
  SynthesisResult backward = synthesize(spec.inverse(), rest);
  accumulate_stats(forward.stats, backward.stats);
  forward.termination = backward.termination;  // the last pass executed
  if (!backward.success) return forward;
  Circuit mirrored = backward.circuit.inverse();
  const bool backward_wins =
      !forward.success ||
      mirrored.gate_count() < forward.circuit.gate_count() ||
      (mirrored.gate_count() == forward.circuit.gate_count() &&
       quantum_cost(mirrored) < quantum_cost(forward.circuit));
  if (backward_wins) {
    forward.success = true;
    forward.circuit = std::move(mirrored);
    forward.initial_terms = backward.initial_terms;
  }
  return forward;
}

bool implements(const Circuit& circuit, const TruthTable& spec) {
  if (circuit.num_lines() != spec.num_vars()) return false;
  for (std::uint64_t x = 0; x < spec.size(); ++x) {
    if (circuit.simulate(x) != spec.apply(x)) return false;
  }
  return true;
}

bool implements(const Circuit& circuit, const Pprm& spec, int samples) {
  const int n = spec.num_vars();
  if (circuit.num_lines() != n) return false;
  if (n <= 16) {
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      if (circuit.simulate(x) != spec.eval(x)) return false;
    }
    return true;
  }
  const std::uint64_t mask =
      n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  // Deterministic sampling: low corner points catch constant-offset bugs,
  // the seeded uniform draws catch everything else with high probability.
  for (std::uint64_t x = 0; x < 256; ++x) {
    if (circuit.simulate(x) != spec.eval(x)) return false;
  }
  std::mt19937_64 rng(0x524d524c53ull);  // "RMRLS"
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t x = rng() & mask;
    if (circuit.simulate(x) != spec.eval(x)) return false;
  }
  return true;
}

}  // namespace rmrls
