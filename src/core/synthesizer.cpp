#include "core/synthesizer.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <random>

#include "core/history.hpp"
#include "core/parallel.hpp"
#include "core/transposition.hpp"
#include "obs/phase_profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

namespace rmrls {

namespace {

/// Adaptive kernel selection (docs/dense_pprm.md): the dense bitset
/// representation wins while its 2^n-bit spectra stay cache-resident and
/// reasonably populated, the sparse cube vectors win when the spectrum is
/// a sea of zero words. `dense_threshold` caps the width (0 forces
/// sparse); under the cap, narrow systems (n <= 8, spectra of at most four
/// words) always go dense, wider ones only when the spec populates on
/// average at least one term per word of every output's bitset.
bool pick_dense(const Pprm& spec, const SynthesisOptions& options) {
  const int n = spec.num_vars();
  if (options.dense_threshold <= 0 || n > options.dense_threshold) {
    return false;
  }
  if (n > kMaxDenseVariables) return false;
  if (n <= 8) return true;
  return spec.term_count() >=
         static_cast<int>(static_cast<std::uint64_t>(n) << (n - 6));
}

/// One search pass: the sequential engine for num_threads == 1 (exact
/// pre-existing behavior), the parallel engine otherwise. Each pass
/// independently picks the kernel for its representation of the spec —
/// both engines expand the same tree and emit the same circuit, so the
/// choice only affects throughput (and the dense_kernel stats flag).
SynthesisResult run_search(const Pprm& spec, const SynthesisOptions& options) {
  if (pick_dense(spec, options)) {
    const DensePprm dense(spec);
    SynthesisResult r = options.num_threads == 1
                            ? DenseSearch(dense, options).run()
                            : run_parallel_search(dense, options);
    r.stats.dense_kernel = true;
    return r;
  }
  if (options.num_threads == 1) return Search(spec, options).run();
  return run_parallel_search(spec, options);
}

/// Tells the trace sink (if any) that the driver starts an
/// iterative-refinement rerun hunting for circuits below `gates`.
void emit_refinement_round(const SynthesisOptions& options, int gates) {
  if (options.trace_sink == nullptr) return;
  TraceEvent e;
  e.kind = TraceEventKind::kRefinementRound;
  e.gates = gates;
  options.trace_sink->on_event(e);
}

}  // namespace

SynthesisResult synthesize(const Pprm& spec, const SynthesisOptions& options) {
  using Clock = std::chrono::steady_clock;
  // time_limit bounds the whole multi-pass run, not each pass: every rerun
  // below receives only what is left on this wall clock (docs/robustness.md).
  const auto wall_start = Clock::now();
  const bool timed = options.time_limit.count() > 0;
  const auto remaining = [&]() {
    return options.time_limit -
           std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 wall_start);
  };

  // Pass-spanning search state (the chess-engine loop, docs/parallelism.md):
  // one bounded transposition table and one history table serve every pass
  // of this call — the iterative-deepening ladder, the broad-scope retry
  // and the refinement reruns. next_pass() bumps the table generation (old
  // entries stop pruning and become preferred eviction victims) and decays
  // the history scores between passes.
  SynthesisOptions base = options;
  std::unique_ptr<TranspositionTable> owned_tt;
  if (base.use_transposition_table && base.tt == nullptr) {
    owned_tt = std::make_unique<TranspositionTable>(
        base.tt_mb, base.tt_shards, base.tt_replacement);
    base.tt = owned_tt.get();
  }
  std::unique_ptr<HistoryTable> owned_history;
  if (base.use_history && base.history == nullptr) {
    owned_history = std::make_unique<HistoryTable>();
    base.history = owned_history.get();
  }
  const auto next_pass = [&base]() {
    if (base.tt != nullptr) base.tt->new_generation();
    if (base.history != nullptr) base.history->decay();
  };
  // "The previous iteration's circuit seeds the next iteration's move
  // ordering": after the inter-pass decay, re-reward the best circuit's
  // gates so the next pass tries their (target, factor-class) cells first.
  const auto seed_history = [&base](const Circuit& c) {
    if (base.history == nullptr) return;
    for (const Gate& g : c.gates()) {
      base.history->reward(g.target, g.controls, 64);
    }
  };

  const bool refine =
      options.iterative_refinement && !options.stop_at_first_solution;
  // Iterative deepening needs an unconstrained gate cap to ladder over; a
  // caller-set max_gates is already a (single) rung. The ladder itself is
  // complete — its final rung drops the cap — so it runs with or without
  // the refinement driver on top.
  const bool use_id = base.iterative_deepening && options.max_gates == 0;

  std::uint64_t id_iterations = 1;
  SynthesisResult result;
  if (!use_id) {
    SynthesisOptions first = base;
    if (refine && options.max_nodes > 0) {
      first.max_nodes = std::max<std::uint64_t>(options.max_nodes / 2, 1);
    }
    result = run_search(spec, first);
  } else {
    // Iterative deepening on the max-gates bound. Chess ladders climb
    // from depth 1 because a depth-d tree is exponentially cheaper than
    // depth d+1; RMRLS inverts that — branching is huge and solutions
    // deep, so a too-small cap forces a near-complete enumeration of the
    // shallow space and costs MORE than finding a solution outright. The
    // opening rung therefore starts from an informed upper bound (every
    // substitution eliminates at least one PPRM term on the quality path,
    // so term_count gates generously over-covers the first solution)
    // which prunes only genuine junk dives below it; a rung that
    // exhausts its queue without a solution doubles the cap, and the
    // final rung (cap off) restores completeness. Each rung gets half
    // the remaining node budget, so the ladder can never starve the
    // broad-scope retry or the refinement loop below. Successful
    // iterations continue downward as the tightening loop at the end of
    // this function — each pass re-seeded with the best circuit's
    // history — which is the productive direction of the ladder.
    int cap = std::max(spec.num_vars(), spec.term_count());
    bool have = false;
    for (std::uint64_t iter = 1;; ++iter) {
      if (iter > 1) next_pass();
      SynthesisOptions rung = base;
      const bool final_rung = cap >= kMaxVariables;
      rung.max_gates = final_rung ? 0 : cap;
      // Halving each rung's budget keeps a failed ladder from starving
      // what follows — but the final rung of an unrefined run IS the
      // whole remaining search (nothing follows), so it gets everything.
      const bool last_stage = final_rung && !refine;
      if (options.max_nodes > 0) {
        const std::uint64_t spent = have ? result.stats.nodes_expanded : 0;
        if (spent >= options.max_nodes) {
          result.termination = TerminationReason::kNodeBudget;
          break;
        }
        const std::uint64_t left = options.max_nodes - spent;
        rung.max_nodes = std::max<std::uint64_t>(last_stage ? left : left / 2,
                                                 1);
      }
      if (timed) {
        const auto left = remaining();
        if (left.count() <= 0) {
          result.termination = TerminationReason::kTimeLimit;
          break;
        }
        rung.time_limit = std::max<std::chrono::milliseconds>(
            last_stage ? left : left / 2, std::chrono::milliseconds{1});
      }
      // Published per rung (not just at the end) so heartbeats see the
      // ladder advance while the run is still in flight.
      if (Telemetry* t = Telemetry::active()) {
        t->gauge("search.id_iterations").set(static_cast<std::int64_t>(iter));
      }
      SynthesisResult r = run_search(spec, rung);
      if (r.success && have) {
        r.stats.nodes_at_best += result.stats.nodes_expanded;
      }
      if (have) accumulate_stats(r.stats, result.stats);
      result = std::move(r);
      have = true;
      id_iterations = iter;
      if (result.success) break;
      if (final_rung) break;
      if (result.termination != TerminationReason::kQueueExhausted) {
        // Budget, deadline or cancellation mid-ladder: deepening would
        // only re-pay what this rung already burned; hand what is left to
        // the retry / refinement stages.
        break;
      }
      cap *= 2;
    }
    result.stats.id_iterations = id_iterations;
  }
  if (!refine) {
    if (Telemetry* t = Telemetry::active()) {
      t->gauge("search.id_iterations")
          .set(static_cast<std::int64_t>(result.stats.id_iterations));
    }
    return result;
  }
  // A user cancellation ends the whole driver, never just the pass.
  if (result.termination == TerminationReason::kCancelled) return result;
  SynthesisOptions scope = base;  // options for the refinement reruns
  if (!result.success) {
    // The ladder / scouting run found nothing: spend the rest of the
    // budget on one attempt with the broad exemption scope, which reaches
    // functions the quality-tuned scope provably cannot. max_nodes == 0
    // is "unlimited", not "spent" — a purely time-limited run still gets
    // its retry from what is left on the clock.
    if (options.max_nodes > 0 &&
        result.stats.nodes_expanded >= options.max_nodes) {
      return result;
    }
    SynthesisOptions rest = base;
    rest.max_nodes = options.max_nodes > 0
                         ? options.max_nodes - result.stats.nodes_expanded
                         : 0;
    rest.iterative_refinement = false;
    rest.exempt_scope = SynthesisOptions::ExemptScope::kAny;
    if (timed) {
      const auto left = remaining();
      if (left.count() <= 0) {
        result.termination = TerminationReason::kTimeLimit;
        return result;
      }
      rest.time_limit = left;
    }
    next_pass();
    SynthesisResult retry = run_search(spec, rest);
    if (retry.success) {
      retry.stats.nodes_at_best += result.stats.nodes_expanded;
    }
    accumulate_stats(retry.stats, result.stats);
    if (!retry.success) return retry;
    result = std::move(retry);
    scope.exempt_scope = SynthesisOptions::ExemptScope::kAny;
  }
  // Iterative tightening: rerun with a cap one below the best size so far;
  // each rerun spends what is left of the node budget, against a fresh
  // table generation, with the best circuit seeding the history ordering.
  while (result.circuit.gate_count() > 1) {
    if (result.termination == TerminationReason::kCancelled) break;
    SynthesisOptions tighter = scope;
    if (options.max_nodes > 0) {
      if (result.stats.nodes_expanded >= options.max_nodes) {
        result.termination = TerminationReason::kNodeBudget;
        break;
      }
      tighter.max_nodes = options.max_nodes - result.stats.nodes_expanded;
    }
    if (timed) {
      const auto left = remaining();
      if (left.count() <= 0) {
        result.termination = TerminationReason::kTimeLimit;
        break;
      }
      tighter.time_limit = left;
    }
    tighter.max_gates = result.circuit.gate_count() - 1;
    tighter.iterative_refinement = false;
    emit_refinement_round(options, result.circuit.gate_count());
    next_pass();
    seed_history(result.circuit);
    // Tightening reruns are the ladder's productive direction: each one
    // deepens the search under a one-lower bound with the best circuit
    // seeding the ordering, so they count as deepening iterations.
    if (use_id) ++result.stats.id_iterations;
    const std::uint64_t nodes_before = result.stats.nodes_expanded;
    SynthesisResult next = run_search(spec, tighter);
    accumulate_stats(result.stats, next.stats);
    // The last pass executed is why the overall synthesis stopped looking.
    result.termination = next.termination;
    if (!next.success) break;
    result.stats.nodes_at_best = nodes_before + next.stats.nodes_at_best;
    result.circuit = std::move(next.circuit);
  }
  if (Telemetry* t = Telemetry::active()) {
    t->gauge("search.id_iterations")
        .set(static_cast<std::int64_t>(result.stats.id_iterations));
  }
  return result;
}

SynthesisResult synthesize(const TruthTable& spec,
                           const SynthesisOptions& options) {
  Pprm start;
  {
    const ScopedPhaseTimer timer(options.phase_profile,
                                 Phase::kPprmTransform);
    start = pprm_of_truth_table(spec);
  }
  return synthesize(start, options);
}

SynthesisResult synthesize_bidirectional(const TruthTable& spec,
                                         const SynthesisOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  SynthesisOptions half = options;
  if (options.max_nodes > 0) {
    half.max_nodes = std::max<std::uint64_t>(options.max_nodes / 2, 1);
  }
  if (options.time_limit.count() > 0) {
    half.time_limit = std::max<std::chrono::milliseconds>(
        options.time_limit / 2, std::chrono::milliseconds{1});
  }
  SynthesisResult forward = synthesize(spec, half);
  if (forward.termination == TerminationReason::kCancelled) return forward;
  SynthesisOptions rest = options;
  if (options.max_nodes > 0) {
    const std::uint64_t spent = forward.stats.nodes_expanded;
    if (spent >= options.max_nodes) return forward;
    rest.max_nodes = options.max_nodes - spent;
  }
  if (options.time_limit.count() > 0) {
    const auto left =
        options.time_limit -
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                              wall_start);
    if (left.count() <= 0) {
      forward.termination = TerminationReason::kTimeLimit;
      return forward;
    }
    rest.time_limit = left;
  }
  SynthesisResult backward = synthesize(spec.inverse(), rest);
  const std::uint64_t forward_nodes = forward.stats.nodes_expanded;
  accumulate_stats(forward.stats, backward.stats);
  forward.termination = backward.termination;  // the last pass executed
  if (!backward.success) return forward;
  Circuit mirrored = backward.circuit.inverse();
  const bool backward_wins =
      !forward.success ||
      mirrored.gate_count() < forward.circuit.gate_count() ||
      (mirrored.gate_count() == forward.circuit.gate_count() &&
       quantum_cost(mirrored) < quantum_cost(forward.circuit));
  if (backward_wins) {
    forward.success = true;
    forward.circuit = std::move(mirrored);
    forward.initial_terms = backward.initial_terms;
    forward.stats.nodes_at_best =
        forward_nodes + backward.stats.nodes_at_best;
  }
  return forward;
}

bool implements(const Circuit& circuit, const TruthTable& spec) {
  if (circuit.num_lines() != spec.num_vars()) return false;
  for (std::uint64_t x = 0; x < spec.size(); ++x) {
    if (circuit.simulate(x) != spec.apply(x)) return false;
  }
  return true;
}

bool implements(const Circuit& circuit, const Pprm& spec, int samples) {
  const int n = spec.num_vars();
  if (circuit.num_lines() != n) return false;
  if (n <= 16) {
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      if (circuit.simulate(x) != spec.eval(x)) return false;
    }
    return true;
  }
  const std::uint64_t mask =
      n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
  // Deterministic sampling: low corner points catch constant-offset bugs,
  // the seeded uniform draws catch everything else with high probability.
  for (std::uint64_t x = 0; x < 256; ++x) {
    if (circuit.simulate(x) != spec.eval(x)) return false;
  }
  std::mt19937_64 rng(0x524d524c53ull);  // "RMRLS"
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t x = rng() & mask;
    if (circuit.simulate(x) != spec.eval(x)) return false;
  }
  return true;
}

}  // namespace rmrls
