/// \file factor_enum.hpp
/// \brief Enumeration of candidate substitutions at a search node.
///
/// Section IV-A (basic) and IV-D (additional substitutions): for each input
/// variable v_t, candidate factors are the product terms of the paired
/// output's expansion that do not contain v_t. The basic algorithm also
/// requires the solitary term v_t to be present in that expansion; class-1
/// additional substitutions drop this requirement, and class-2 additionally
/// always offers `v_t <- v_t XOR 1`.

#pragma once

#include <vector>

#include "core/options.hpp"
#include "rev/gate.hpp"
#include "rev/pprm.hpp"
#include "rev/pprm_dense.hpp"

namespace rmrls {

/// One candidate substitution `v_target <- v_target XOR factor`, i.e. the
/// Toffoli gate TOF(factor -> target).
struct Candidate {
  int target = 0;
  Cube factor = kConstOne;

  /// True for "additional" substitutions (Section IV-D): the complement
  /// `v_t <- v_t XOR 1`, or any factor taken while the solitary term v_t
  /// is absent from out_t's expansion. These may be applied even when they
  /// do not reduce the term count (subject to the per-path exemption
  /// budget) — without that, pure wire permutations are unreachable.
  bool additional = false;

  [[nodiscard]] bool is_complement() const { return factor == kConstOne; }

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.target == b.target && a.factor == b.factor;
  }
};

/// All candidate substitutions for `p` under `options`, grouped in target
/// order. Candidates equal to `skip` (e.g. the gate that produced this
/// node, whose re-application is a guaranteed no-op pair) are omitted.
[[nodiscard]] std::vector<Candidate> enumerate_candidates(
    const Pprm& p, const SynthesisOptions& options,
    const Candidate* skip = nullptr);

/// Same, writing into `out` (cleared first). The search engine reuses one
/// buffer across every expansion, so the hottest enumeration loop stops
/// allocating after warmup.
void enumerate_candidates_into(const Pprm& p, const SynthesisOptions& options,
                               const Candidate* skip,
                               std::vector<Candidate>& out);

/// Dense-kernel counterpart: iterates the set bits of each output's
/// coefficient bitset in ascending index order — exactly the sorted cube
/// order of the sparse overload, so the two engines see identical
/// candidate sequences (tie-breaking, greedy pruning and seq numbering
/// all depend on it).
void enumerate_candidates_into(const DensePprm& p,
                               const SynthesisOptions& options,
                               const Candidate* skip,
                               std::vector<Candidate>& out);

}  // namespace rmrls
