/// \file history.hpp
/// \brief History heuristic for factor ordering (docs/parallelism.md).
///
/// The chess history heuristic, transplanted: substitutions that appear on
/// recorded solution paths earn credit, indexed by (target variable,
/// factor class), and the search adds a small normalized bonus to eq. (4)
/// so statistically successful factors are tried first. The factor class
/// is a 64-way hash bucket of the factor cube — specific factors
/// accumulate specific credit (the analogue of chess's from/to-square
/// table), and a collision merely blurs two factors' signals together.
///
/// The table is written on two events:
///   * record_solution() walks each newly recorded (strictly improving)
///     solution path and rewards every gate on it, and
///   * the iterative-deepening driver re-rewards the best circuit found
///     so far before each next pass — "the previous iteration's circuit
///     seeds the next iteration's move ordering".
/// decay() halves every score between passes so stale preferences fade.
///
/// All cells are relaxed atomics: lazy-SMP workers share one table and a
/// lost update just loses a sliver of credit. Single-threaded runs see
/// their own writes in order, so sequential synthesis stays deterministic
/// (pinned in tests/test_tt_replacement). `--no-history`
/// (SynthesisOptions::use_history = false) restores the paper-exact
/// eq. (4) ordering.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "rev/cube.hpp"
#include "rev/pprm.hpp"  // splitmix64

namespace rmrls {

class HistoryTable {
 public:
  static constexpr int kMaxTargets = 64;  // rev/ caps lines at 64
  static constexpr int kFactorClasses = 64;

  /// Reward a gate on a recorded solution path. Shallower solutions pass
  /// larger amounts (they are stronger evidence). Saturates instead of
  /// wrapping.
  void reward(int target, Cube factor, std::uint32_t amount) {
    std::atomic<std::uint32_t>& cell = scores_[index_of(target, factor)];
    std::uint32_t cur = cell.load(std::memory_order_relaxed);
    std::uint32_t next;
    do {
      next = cur > kSaturation - amount ? kSaturation : cur + amount;
    } while (!cell.compare_exchange_weak(cur, next,
                                         std::memory_order_relaxed));
    std::uint32_t max = max_.load(std::memory_order_relaxed);
    while (next > max &&
           !max_.compare_exchange_weak(max, next,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Normalized success score in [0, 1]; 0 when this (target, class) has
  /// never been on a solution path.
  [[nodiscard]] double bonus(int target, Cube factor) const {
    const std::uint32_t max = max_.load(std::memory_order_relaxed);
    if (max == 0) return 0.0;
    const std::uint32_t s =
        scores_[index_of(target, factor)].load(std::memory_order_relaxed);
    return static_cast<double>(s) / static_cast<double>(max);
  }

  /// Halves every score (and the running max) — called by the driver
  /// between passes so old iterations' preferences decay instead of
  /// dominating forever.
  void decay() {
    for (std::atomic<std::uint32_t>& cell : scores_) {
      cell.store(cell.load(std::memory_order_relaxed) / 2,
                 std::memory_order_relaxed);
    }
    max_.store(max_.load(std::memory_order_relaxed) / 2,
               std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kSaturation = 1u << 24;

  [[nodiscard]] static std::size_t index_of(int target, Cube factor) {
    const std::size_t cls = static_cast<std::size_t>(
        splitmix64(static_cast<std::uint64_t>(factor)) &
        (kFactorClasses - 1));
    return static_cast<std::size_t>(target & (kMaxTargets - 1)) *
               kFactorClasses +
           cls;
  }

  std::array<std::atomic<std::uint32_t>, kMaxTargets * kFactorClasses>
      scores_{};
  std::atomic<std::uint32_t> max_{0};
};

}  // namespace rmrls
