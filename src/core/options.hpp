/// \file options.hpp
/// \brief Tuning knobs of the RMRLS search (paper, Sections IV-A/D/E).

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/transposition.hpp"  // TTReplacement

namespace rmrls {

class TraceSink;      // obs/trace.hpp
struct PhaseProfile;  // obs/phase_profile.hpp
class CancelToken;    // core/cancel.hpp
class HistoryTable;   // core/history.hpp

/// Options controlling the RMRLS best-first search. Defaults reproduce the
/// paper's configuration: priority weights (0.3, 0.6, 0.1), both classes of
/// additional substitutions enabled, and the restart heuristic armed at
/// ~10000 steps. Wall-clock limits are off by default in favour of the
/// deterministic node budget (see DESIGN.md).
struct SynthesisOptions {
  /// Priority weights of eq. (4): alpha rewards depth (depth-first bias),
  /// beta rewards terms eliminated, gamma penalizes factor literal count.
  double alpha = 0.3;
  double beta = 0.6;
  double gamma = 0.1;

  /// Additional substitution class 1 (Section IV-D): allow factors from
  /// out_t even when the solitary term v_t is absent from its expansion.
  bool allow_relaxed_targets = true;

  /// Additional substitution class 2 (Section IV-D): always allow
  /// `v_t <- v_t XOR 1`, exempt from the elim > 0 pruning rule.
  bool allow_complement = true;

  /// Cap on non-reducing substitutions per search path. The paper leaves
  /// its exemption unbounded, but then eq. (4)'s depth reward lets the
  /// search dive forever down junk paths; a cap bounds every path's length
  /// (each step either reduces the term count or consumes budget), so
  /// dives terminate. -1 means "auto": 1 under the quality-tuned
  /// kComplement scope, twice the number of variables otherwise (enough
  /// for pure wire permutations, whose swap chains are entirely
  /// non-reducing). Ablated in bench/ablation.
  int exempt_budget = -1;

  /// Forbid a non-reducing substitution from directly following another
  /// one. Off by default (swap chains need consecutive non-reducing
  /// steps); available for ablation.
  bool forbid_exempt_chains = false;

  /// Which substitutions may be applied without reducing the term count
  /// (within the budget above). kComplement (only `v <- v XOR 1`, closest
  /// to the paper's text) gives the best circuits; kAdditional widens to
  /// the Section IV-D classes; kAny is needed for full coverage — some
  /// functions are provably unreachable under the narrower scopes (see
  /// DESIGN.md). synthesize() tries kComplement first and falls back to
  /// kAny on failure.
  enum class ExemptScope { kComplement, kAdditional, kAny };
  ExemptScope exempt_scope = ExemptScope::kComplement;

  /// Greedy pruning (Section IV-E): keep only the best `greedy_k`
  /// substitutions per target variable at each expansion. 0 keeps all
  /// (the basic algorithm). The paper uses 3-5.
  int greedy_k = 0;

  /// Restart heuristic (Section IV-E): abandon the search and re-seed from
  /// the next first-level alternative after this many node expansions
  /// without improving the best solution. 0 disables restarts.
  std::uint64_t restart_interval = 10000;

  /// Hard budget on node expansions (priority-queue pops); the
  /// deterministic analogue of the paper's CPU-time limits. 0 = unlimited.
  std::uint64_t max_nodes = 200000;

  /// Optional wall-clock limit; zero means none.
  std::chrono::milliseconds time_limit{0};

  /// Maximum circuit size in gates; deeper nodes are pruned
  /// (the paper uses 40 for 4-variable and 60 for 5-variable runs).
  /// 0 = unlimited.
  int max_gates = 0;

  /// Bound on queued candidates; further pushes are dropped (and counted)
  /// once the queue is full. Mirrors the paper's memory ceiling.
  std::size_t max_queue = std::size_t{1} << 20;

  /// Our extension (not in the paper, ablated in bench/ablation): skip
  /// states whose PPRM hash has been enqueued before. Many substitution
  /// orders reach the same expansion; without deduplication those copies
  /// drown the queue on 5-variable functions.
  bool use_transposition_table = true;

  /// Memory budget of the bounded transposition table in megabytes
  /// (core/transposition.hpp, CLI `--tt-mb`). The table is sized once and
  /// never grows; a full bucket evicts by `tt_replacement` instead of
  /// allocating, so long runs hold steady-state memory.
  int tt_mb = 64;

  /// Eviction policy of a full table bucket (ablated in bench/ablation):
  /// kAging (default) retires entries of older search passes first,
  /// kDepthPreferred evicts the deepest (least valuable) entry, kAlways
  /// unconditionally replaces a fixed slot.
  TTReplacement tt_replacement = TTReplacement::kAging;

  /// Externally owned transposition table shared across search passes
  /// (non-owning, like trace_sink). synthesize() installs one per call so
  /// the iterative-deepening ladder and the refinement reruns share it —
  /// the driver bumps its generation between passes. Null (the default)
  /// makes each engine pass build its own from tt_mb / tt_replacement.
  TranspositionTable* tt = nullptr;

  /// History-guided ordering (core/history.hpp): blend each candidate's
  /// (target, factor-class) success score into eq. (4) as a bonus of at
  /// most `history_weight`. false (`--no-history`) restores the
  /// paper-exact ordering.
  bool use_history = true;

  /// Weight of the normalized history bonus added to eq. (4). Small by
  /// design: history breaks ties and nudges, it never overrides a clear
  /// eq.-4 preference.
  double history_weight = 0.10;

  /// Externally owned history table (non-owning); installed by
  /// synthesize() per call so passes share learned preferences. Null with
  /// use_history makes each pass learn only within itself.
  HistoryTable* history = nullptr;

  /// Iterative deepening on the max-gates bound (`--no-id` disables):
  /// synthesize() climbs a ladder of max_gates limits (each pass's
  /// tighter cap prunes deep junk at creation) instead of opening with
  /// one unbounded scouting run; each iteration's best circuit seeds the
  /// next iteration's history ordering. Ignored in stop-at-first mode and
  /// when the caller fixed max_gates.
  bool iterative_deepening = true;

  /// Deterministic priority-jitter seed for lazy-SMP order
  /// diversification (docs/parallelism.md). 0 (the default, and always
  /// for worker 0) adds no noise; the parallel engine gives every other
  /// worker a distinct seed so the workers explore the shared tree in
  /// different orders instead of racing down one line.
  std::uint64_t order_jitter = 0;

  /// Owner tag this engine writes into shared transposition-table entries;
  /// with tt_own_only set, also the only tag whose entries prune it (a
  /// foreign claim is taken over and re-expanded). The parallel engine
  /// marks its canonical worker — and the root expansion that feeds every
  /// worker — with a nonzero tag and tt_own_only, so helper claims divert
  /// helpers but can never cut the sequential line short
  /// (core/transposition.hpp).
  std::uint8_t tt_owner = 0;
  bool tt_own_only = false;

  /// Ablation variant of eq. (4): use cumulative terms eliminated since the
  /// root divided by depth, instead of the per-stage elimination the
  /// pseudocode stores.
  bool cumulative_elim_priority = false;

  /// Stop at the first valid circuit instead of searching for the best one
  /// within budget (the scalability experiments of Section V-E do this).
  bool stop_at_first_solution = false;

  /// Observability (obs/): receiver for typed search events. Null (the
  /// default) disables tracing entirely — the hot path pays one inlined
  /// pointer test per potential event and nothing else.
  TraceSink* trace_sink = nullptr;

  /// Sampling interval for the two high-frequency event kinds
  /// (node_expanded, child_pruned): only every Nth node expansion emits
  /// them. 1 = every event (required for the event/counter consistency
  /// checks in tests); solutions, restarts, queue drops and run
  /// begin/end are never sampled away.
  std::uint64_t trace_sample_interval = 1;

  /// Observability (obs/): accumulator for per-phase wall time and call
  /// counts. Null (the default) disables the phase timers — no clock
  /// reads on the hot path. The drivers share one profile across
  /// refinement reruns, so it aggregates the whole synthesis.
  PhaseProfile* phase_profile = nullptr;

  /// Observability (obs/telemetry.hpp): correlation id stamped into every
  /// TraceEvent this run emits, rendered as 16 hex digits alongside batch
  /// job records and heartbeat `active` sets so one job's story is
  /// greppable across all three streams. 0 (the default) means "no id" —
  /// nothing is stamped or rendered.
  std::uint64_t trace_id = 0;

  /// Cooperative cancellation (core/cancel.hpp, docs/robustness.md): when
  /// set, the engines poll this token from their expansion and candidate
  /// loops and stop within one iteration of it firing. A deadline-reason
  /// cancellation (Watchdog) reports TerminationReason::kTimeLimit, a user
  /// one kCancelled. Null (the default) disables the polls entirely.
  CancelToken* cancel_token = nullptr;

  /// Worker threads of the parallel engine (docs/parallelism.md). 1 (the
  /// default) runs the exact sequential search — bit-identical results.
  /// N > 1 runs lazy-SMP: every worker searches the full root with its
  /// own heap, node arena and Pprm pool but a diversified seed order and
  /// priority jitter, sharing the best-depth bound, the node budget, the
  /// bounded transposition table and the history table. 0 means "one
  /// worker per hardware thread". Parallel results are valid circuits
  /// but not bit-reproducible run to run (the bound race affects pruning).
  int num_threads = 1;

  /// Lazy-SMP duplicates exploration by design, so running more workers
  /// than hardware threads is strictly harmful: the workers time-slice
  /// the cores and re-derive each other's states instead of advancing.
  /// By default the effective worker count is therefore clamped to
  /// std::thread::hardware_concurrency(). Tests that exercise the
  /// multi-worker code paths on small machines set this to true to get
  /// exactly `num_threads` workers regardless of the host.
  bool allow_oversubscription = false;

  /// Shards (stripes) of the shared transposition table used when
  /// `num_threads > 1`; each shard is an independently locked map, so
  /// contention drops roughly linearly in the shard count. Per-shard hit
  /// counts are reported in SynthesisStats::tt_shard_hits.
  int tt_shards = 16;

  /// Widest system (in variables) the engine may run on the dense
  /// word-parallel PPRM kernel (rev/pprm_dense.hpp, docs/dense_pprm.md).
  /// At or below this width — and when the spectrum is dense enough for
  /// word passes to beat walking sorted cubes — each search pass stores
  /// states as 2^n-bit coefficient bitsets and substitutes with
  /// shift/mask/XOR passes instead of cube merges; circuits are
  /// bit-identical to the sparse engine's by construction (same candidate
  /// order, deltas, and state hashes). 0 forces the sparse representation
  /// everywhere. Parallel workers inherit the pass's kernel choice
  /// (docs/parallelism.md).
  int dense_threshold = 14;

  /// Our extension (ablated in bench/ablation): after a circuit of size D
  /// is found, restart the whole search with max_gates = D - 1 on the
  /// remaining node budget, repeating until a search fails. The tighter cap
  /// prunes deep junk at creation, which a single run's bestDepth rule
  /// cannot (the queue is already full of it).
  bool iterative_refinement = true;
};

/// Why a synthesis run stopped. `kSolved` means the run ended *because* a
/// solution ended it (identity input, or stop-at-first fired); a best-first
/// run that found circuits and then exhausted its budget while refining
/// reports the budget reason — the two were previously indistinguishable.
enum class TerminationReason : std::uint8_t {
  kSolved,          ///< stopped by a solution (stop-at-first / identity)
  kNodeBudget,      ///< max_nodes expansions reached
  kTimeLimit,       ///< wall-clock deadline passed (poll or Watchdog)
  kQueueExhausted,  ///< queue (and restart seeds) ran dry
  kCancelled,       ///< the caller's CancelToken fired (user reason)
};

[[nodiscard]] constexpr const char* to_string(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kSolved: return "solved";
    case TerminationReason::kNodeBudget: return "node_budget";
    case TerminationReason::kTimeLimit: return "time_limit";
    case TerminationReason::kQueueExhausted: return "queue_exhausted";
    case TerminationReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Counters describing one synthesis run. Every evaluated candidate is
/// counted exactly once, so (excluding stop-at-first runs, which abandon
/// the remainder of the last expansion):
///
///   children_created == children_pushed + solutions_found + pruned_elim
///                     + pruned_depth + pruned_max_gates + pruned_duplicate
///                     + pruned_greedy + dropped_queue_full
///
/// an invariant asserted by tests/test_obs.cpp. Runs aborted mid-expansion
/// by a deadline or cancellation (docs/robustness.md) are also excluded:
/// they may leave priced-but-unclassified children behind. `pruned_stale` counts
/// *popped* entries (already in children_pushed) discarded at expansion
/// time, so it is deliberately outside the identity. A restart re-seed
/// dropped into a full heap also counts under `dropped_queue_full` (it
/// must not be silently lost), even though the same child was already
/// counted `children_pushed` at creation; with the default queue bound
/// this cannot happen below millions of queued entries.
struct SynthesisStats {
  std::uint64_t nodes_expanded = 0;   ///< priority-queue pops
  std::uint64_t children_created = 0; ///< substitutions evaluated
  std::uint64_t children_pushed = 0;  ///< survived pruning, enqueued
  std::uint64_t pruned_elim = 0;      ///< failed the elim > 0 rule
  std::uint64_t pruned_depth = 0;     ///< at/beyond bestDepth - 1
  std::uint64_t pruned_max_gates = 0; ///< at/beyond the max_gates cap
  std::uint64_t pruned_duplicate = 0; ///< transposition-table hits
  std::uint64_t pruned_greedy = 0;    ///< beyond greedy_k for its target
  std::uint64_t pruned_stale = 0;     ///< popped entries obsolete at pop time
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t restarts = 0;
  std::uint64_t solutions_found = 0;
  /// Worker threads that executed search passes for this run: 1 for the
  /// sequential engine, SynthesisOptions::num_threads (resolved) for the
  /// parallel one. Driver passes take the maximum across their sub-runs.
  std::uint64_t workers = 1;
  /// Duplicate hits per shard of the shared transposition table (parallel
  /// engine only; empty for sequential runs, where every duplicate is in
  /// pruned_duplicate). Summed element-wise when runs accumulate.
  std::vector<std::uint64_t> tt_shard_hits;
  /// Transposition-table traffic of this run (core/transposition.hpp):
  /// entries written (fresh slots + evicting replacements) and entries
  /// evicted by the replacement policy. Always evictions <= inserts, an
  /// invariant metrics_check enforces. Both are per-run deltas even when
  /// the table itself is shared across a driver's passes.
  std::uint64_t tt_inserts = 0;
  std::uint64_t tt_evictions = 0;
  /// Table generation after this run — the number of search passes (mod
  /// 256) the shared table has served. Merged by maximum.
  std::uint64_t tt_generation = 0;
  /// Iterative-deepening ladder passes the driver executed (>= 1; plain
  /// engine runs count as one). Merged by maximum: parallel workers and
  /// cascade stages report their driver's ladder, not a sum of ladders.
  std::uint64_t id_iterations = 1;
  /// Candidates whose eq.-4 priority received a non-zero history bonus
  /// (core/history.hpp). 0 when use_history is off or nothing has been
  /// learned yet.
  std::uint64_t history_hits = 0;
  /// Total nodes expanded when the returned circuit was recorded — the
  /// search effort the result actually required, as opposed to
  /// nodes_expanded, which keeps counting while refinement hunts for
  /// something better. 0 when no circuit was found. Maintained by the
  /// drivers (accumulate_stats leaves it alone: only the layer that knows
  /// which sub-run's circuit won can offset it); under lazy SMP it is the
  /// winning worker's local count, a lower bound on the pass total.
  std::uint64_t nodes_at_best = 0;
  /// True if any search pass of this run used the dense word-parallel
  /// PPRM kernel (SynthesisOptions::dense_threshold).
  bool dense_kernel = false;
  /// Times the representation changed between merged search passes (e.g.
  /// forward/backward bidirectional specs landing on opposite sides of
  /// the density rule). Normally 0: the kernel choice is a function of
  /// the spec, and one spec keeps it across refinement reruns.
  std::uint64_t representation_switches = 0;
  /// True when the run was stopped by an explicit (user-reason) cooperative
  /// cancellation; deadline-reason cancellations report through
  /// TerminationReason::kTimeLimit instead (docs/robustness.md).
  bool cancelled = false;
  /// True when a Watchdog enforced the wall-clock deadline for this run.
  /// Set by the layer that owns the watchdog (synthesize_resilient, CLI),
  /// not by the search itself.
  bool watchdog_fired = false;
  std::chrono::microseconds elapsed{0};
};

/// Accumulates `from` into `into`. Used by the multi-pass drivers
/// (refinement, bidirectional) and the parallel engine when merging
/// sub-run counters: counts and elapsed add; `workers` takes the maximum
/// (sub-runs of one driver pass share the same pool); `tt_shard_hits`
/// merges element-wise.
inline void accumulate_stats(SynthesisStats& into, const SynthesisStats& from) {
  into.nodes_expanded += from.nodes_expanded;
  into.children_created += from.children_created;
  into.children_pushed += from.children_pushed;
  into.pruned_elim += from.pruned_elim;
  into.pruned_depth += from.pruned_depth;
  into.pruned_max_gates += from.pruned_max_gates;
  into.pruned_duplicate += from.pruned_duplicate;
  into.pruned_greedy += from.pruned_greedy;
  into.pruned_stale += from.pruned_stale;
  into.dropped_queue_full += from.dropped_queue_full;
  into.restarts += from.restarts;
  into.solutions_found += from.solutions_found;
  into.tt_inserts += from.tt_inserts;
  into.tt_evictions += from.tt_evictions;
  if (from.tt_generation > into.tt_generation) {
    into.tt_generation = from.tt_generation;
  }
  if (from.id_iterations > into.id_iterations) {
    into.id_iterations = from.id_iterations;
  }
  into.history_hits += from.history_hits;
  if (from.workers > into.workers) into.workers = from.workers;
  // A kernel disagreement between the merged runs is a representation
  // switch; dense_kernel then means "any pass ran dense".
  into.representation_switches += from.representation_switches;
  if (into.dense_kernel != from.dense_kernel) ++into.representation_switches;
  into.dense_kernel |= from.dense_kernel;
  into.cancelled |= from.cancelled;
  into.watchdog_fired |= from.watchdog_fired;
  if (!from.tt_shard_hits.empty()) {
    if (into.tt_shard_hits.size() < from.tt_shard_hits.size()) {
      into.tt_shard_hits.resize(from.tt_shard_hits.size(), 0);
    }
    for (std::size_t i = 0; i < from.tt_shard_hits.size(); ++i) {
      into.tt_shard_hits[i] += from.tt_shard_hits[i];
    }
  }
  into.elapsed += from.elapsed;
}

}  // namespace rmrls
