/// \file cancel.hpp
/// \brief Cooperative cancellation and wall-clock watchdog
/// (docs/robustness.md).
///
/// A CancelToken is a one-shot flag the engines poll from their expansion
/// and substitution loops (SynthesisOptions::cancel_token); checking it is
/// a relaxed atomic load, cheap enough for per-candidate polling at large
/// widths. A Watchdog turns a wall-clock budget into that flag from a
/// helper thread, so even code that never reads the clock — long
/// word-parallel substitution passes at n >= 20, the baselines — stops
/// within one loop iteration of the deadline.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace rmrls {

/// Why a CancelToken fired. The first cancel() wins; later calls are
/// ignored, so the reason is stable once set.
enum class CancelReason : std::uint8_t {
  kNone = 0,  ///< not cancelled
  kUser,      ///< explicit caller cancellation (e.g. SIGINT)
  kDeadline,  ///< a wall-clock budget expired (Watchdog or deadline poll)
};

/// One-shot cooperative cancellation flag, safe to fire from any thread or
/// from a signal handler (cancel() is a single atomic CAS).
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token; the first reason to arrive sticks.
  void cancel(CancelReason reason = CancelReason::kUser) {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return reason_.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Re-arms the token (between independent runs; not thread-safe against
  /// concurrent cancel()).
  void reset() { reason_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint8_t> reason_{0};
};

/// Fires `token` with CancelReason::kDeadline once `limit` elapses, unless
/// disarmed first. The destructor disarms and joins, so scoping a Watchdog
/// to a synthesis call enforces that call's wall-clock budget.
class Watchdog {
 public:
  Watchdog(CancelToken& token, std::chrono::milliseconds limit);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stops the countdown; the token is left untouched if the deadline has
  /// not fired yet. Idempotent.
  void disarm();

  /// True once the deadline elapsed and the watchdog cancelled the token.
  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_acquire);
  }

 private:
  CancelToken& token_;
  std::mutex m_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

}  // namespace rmrls
