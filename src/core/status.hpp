/// \file status.hpp
/// \brief Structured error taxonomy of the library boundary
/// (docs/robustness.md).
///
/// Library entry points that can fail for a *caller-visible* reason (bad
/// input text, budget exhausted, cancelled) report a Status / Result<T>
/// instead of throwing, so callers can distinguish the categories without
/// string-matching exception messages. Internal invariants still assert;
/// the CLI maps each category to a distinct exit code (exit_code_for).

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace rmrls {

/// The failure categories of the library boundary.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< caller misuse: bad option values, width mismatch
  kParseError,        ///< malformed input text (.tfc / .real / spec)
  kInvalidSpec,       ///< well-formed text, semantically invalid function
                      ///< (non-bijective image, size not a power of two)
  kBudgetExhausted,   ///< every engine ran out of budget without a circuit
  kCancelled,         ///< the caller's CancelToken fired
  kInternal,          ///< invariant violation (e.g. verification failure)
  kUnavailable,       ///< load shed: the server's admission queue is full
                      ///< or it is draining (docs/serving.md); retryable
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kInvalidSpec: return "invalid_spec";
    case StatusCode::kBudgetExhausted: return "budget_exhausted";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// The CLI exit-code contract (documented in `rmrls --help`): 0 success,
/// 2 usage / invalid argument, 3 unreadable or malformed input, 4 budget
/// exhausted without a circuit, 5 cancelled, 6 internal error, 7 server
/// unavailable (load shed / draining — the request is safe to retry).
[[nodiscard]] constexpr int exit_code_for(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 2;
    case StatusCode::kParseError: return 3;
    case StatusCode::kInvalidSpec: return 3;
    case StatusCode::kBudgetExhausted: return 4;
    case StatusCode::kCancelled: return 5;
    case StatusCode::kInternal: return 6;
    case StatusCode::kUnavailable: return 7;
  }
  return 6;
}

/// One failure (or success) with an optional source location. Parsers fill
/// `file`/`line` so diagnostics render as `file:line: reason`.
class [[nodiscard]] Status {
 public:
  Status() = default;  ///< ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  Status(StatusCode code, std::string message, std::string file, int line)
      : code_(code),
        message_(std::move(message)),
        file_(std::move(file)),
        line_(line) {}

  [[nodiscard]] static Status parse_error(std::string_view file, int line,
                                          std::string reason) {
    return Status(StatusCode::kParseError, std::move(reason),
                  std::string(file), line);
  }
  [[nodiscard]] static Status invalid_spec(std::string_view file,
                                           std::string reason) {
    return Status(StatusCode::kInvalidSpec, std::move(reason),
                  std::string(file), 0);
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const std::string& file() const { return file_; }
  [[nodiscard]] int line() const { return line_; }  ///< 0 = no line info

  /// `file:line: message`, degrading gracefully when location is absent.
  [[nodiscard]] std::string to_string() const {
    if (file_.empty()) return message_;
    if (line_ <= 0) return file_ + ": " + message_;
    return file_ + ":" + std::to_string(line_) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::string file_;
  int line_ = 0;
};

/// A value or a Status explaining its absence. Accessing value() of a
/// failed Result throws std::logic_error — that is a programming error at
/// the call site, not an input failure, so it is loud.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {     // NOLINT implicit
    if (status_.ok()) {
      status_ = Status(StatusCode::kInternal,
                       "Result constructed from an ok Status without a value");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    require();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    require();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    require();
    return std::move(*value_);
  }

 private:
  void require() const {
    if (!value_.has_value()) {
      throw std::logic_error("Result::value() on error status: " +
                             status_.to_string());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace rmrls
