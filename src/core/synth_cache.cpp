#include "core/synth_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "io/tfc.hpp"

namespace rmrls {

namespace {

/// Approximate resident cost of one cache entry: the gate storage plus
/// list/map node bookkeeping. Precision is not the point — the budget only
/// needs to bound memory the same way for every entry.
std::size_t entry_cost(const Circuit& circuit) {
  return sizeof(Circuit) + 96 +
         static_cast<std::size_t>(circuit.gate_count()) * sizeof(Gate);
}

std::string hex_key(std::uint64_t key) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[key & 0xf];
    key >>= 4;
  }
  return out;
}

/// File age relative to the filesystem clock's now; errors read as age 0
/// (freshly written) so a racing removal never looks stale.
std::chrono::milliseconds file_age(const std::filesystem::path& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return std::chrono::milliseconds{0};
  const auto now = std::filesystem::file_time_type::clock::now();
  if (now <= mtime) return std::chrono::milliseconds{0};
  return std::chrono::duration_cast<std::chrono::milliseconds>(now - mtime);
}

}  // namespace

SynthCache::SynthCache(SynthCacheOptions options)
    : options_(std::move(options)),
      shards_(static_cast<std::size_t>(std::max(1, options_.shards))) {
  shard_budget_ = options_.byte_budget / shards_.size();
  if (Telemetry* t = Telemetry::active()) {
    tele_hits_ = &t->counter("cache.hits");
    tele_disk_hits_ = &t->counter("cache.disk_hits");
    tele_misses_ = &t->counter("cache.misses");
    tele_inserts_ = &t->counter("cache.inserts");
    tele_evictions_ = &t->counter("cache.evictions");
    tele_bytes_ = &t->gauge("cache.bytes");
    tele_follow_us_ = &t->histogram("cache.follow_wait_us");
    tele_shard_bytes_.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      tele_shard_bytes_.push_back(
          &t->gauge("cache.shard" + std::to_string(i) + ".bytes"));
    }
  }
  if (!options_.dir.empty()) {
    // Best-effort: an uncreatable directory degrades to a memory-only
    // cache (reads and writes below fail soft, entry by entry).
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    // A fleet member joining a long-lived shared store sweeps dead
    // processes' litter (and any budget overrun) before its first store.
    if (options_.disk_gc_every > 0) gc_disk();
  }
}

SynthCache::Acquisition SynthCache::acquire(std::uint64_t key) {
  Shard& shard = shard_of(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(shard.m);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.stats.hits;
      if (tele_hits_ != nullptr) tele_hits_->inc();
      return {Outcome::kHit, it->second->circuit};
    }
    const auto fit = shard.inflight.find(key);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      ++shard.stats.dedup_waits;
    } else {
      flight = std::make_shared<Flight>();
      shard.inflight.emplace(key, flight);
      leader = true;
    }
  }
  if (!leader) {
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> wait_lock(flight->m);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    if (tele_follow_us_ != nullptr) {
      tele_follow_us_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count()));
    }
    return {Outcome::kFollow, flight->circuit};
  }
  // Leadership covers the disk store too: exactly one thread pays the
  // file read, and its followers adopt the revived circuit.
  if (!options_.dir.empty()) {
    if (std::optional<Circuit> revived = load_from_disk(key)) {
      {
        std::unique_lock<std::mutex> lock(shard.m);
        ++shard.stats.disk_hits;
        if (tele_disk_hits_ != nullptr) tele_disk_hits_->inc();
        insert_locked(shard, key, *revived);
      }
      publish(key, &*revived);
      return {Outcome::kHit, std::move(revived)};
    }
    // Disk miss: other *processes* sharing this store may be synthesizing
    // the key right now. The lease protocol either claims the key for this
    // process or waits for the winner's .tfc to land (docs/fleet.md).
    if (options_.cross_process_lease) {
      if (std::optional<Circuit> adopted = lease_or_wait(key)) {
        {
          std::unique_lock<std::mutex> lock(shard.m);
          ++shard.stats.disk_hits;
          if (tele_disk_hits_ != nullptr) tele_disk_hits_->inc();
          insert_locked(shard, key, *adopted);
        }
        publish(key, &*adopted);
        return {Outcome::kHit, std::move(adopted)};
      }
    }
  }
  {
    std::unique_lock<std::mutex> lock(shard.m);
    ++shard.stats.misses;
  }
  if (tele_misses_ != nullptr) tele_misses_->inc();
  return {Outcome::kLead, std::nullopt};
}

void SynthCache::publish(std::uint64_t key, const Circuit* circuit) {
  Shard& shard = shard_of(key);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(shard.m);
    const auto fit = shard.inflight.find(key);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      shard.inflight.erase(fit);
    }
    if (circuit != nullptr && shard.map.find(key) == shard.map.end()) {
      insert_locked(shard, key, *circuit);
    }
  }
  if (circuit != nullptr && !options_.dir.empty()) {
    store_to_disk(key, *circuit);
  }
  // The lease outlives the synthesis, not the process: release it on
  // every publish path, including a failed synthesis (circuit ==
  // nullptr), so other processes stop waiting and try themselves.
  release_lease(key);
  if (flight != nullptr) {
    std::unique_lock<std::mutex> wait_lock(flight->m);
    flight->done = true;
    if (circuit != nullptr) flight->circuit = *circuit;
    wait_lock.unlock();
    flight->cv.notify_all();
  }
}

std::optional<Circuit> SynthCache::lookup(std::uint64_t key) {
  Shard& shard = shard_of(key);
  {
    std::unique_lock<std::mutex> lock(shard.m);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.stats.hits;
      if (tele_hits_ != nullptr) tele_hits_->inc();
      return it->second->circuit;
    }
  }
  if (!options_.dir.empty()) {
    if (std::optional<Circuit> revived = load_from_disk(key)) {
      std::unique_lock<std::mutex> lock(shard.m);
      ++shard.stats.disk_hits;
      if (tele_disk_hits_ != nullptr) tele_disk_hits_->inc();
      insert_locked(shard, key, *revived);
      return revived;
    }
  }
  std::unique_lock<std::mutex> lock(shard.m);
  ++shard.stats.misses;
  if (tele_misses_ != nullptr) tele_misses_->inc();
  return std::nullopt;
}

void SynthCache::insert(std::uint64_t key, const Circuit& circuit) {
  Shard& shard = shard_of(key);
  {
    std::unique_lock<std::mutex> lock(shard.m);
    insert_locked(shard, key, circuit);
  }
  if (!options_.dir.empty()) store_to_disk(key, circuit);
}

void SynthCache::insert_locked(Shard& shard, std::uint64_t key,
                               const Circuit& circuit) {
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    it->second->circuit = circuit;
    it->second->bytes = entry_cost(circuit);
    shard.bytes += it->second->bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, circuit, entry_cost(circuit)});
    shard.map[key] = shard.lru.begin();
    shard.bytes += shard.lru.front().bytes;
    ++shard.stats.inserts;
    if (tele_inserts_ != nullptr) tele_inserts_->inc();
  }
  // Byte-budget eviction from the LRU tail; the freshest entry is exempt
  // so one oversized circuit cannot make insertion a no-op.
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    if (tele_evictions_ != nullptr) tele_evictions_->inc();
  }
  if (tele_bytes_ != nullptr) {
    const auto idx = static_cast<std::size_t>(&shard - shards_.data());
    tele_shard_bytes_[idx]->set(static_cast<std::int64_t>(shard.bytes));
    std::int64_t total = 0;
    for (const Gauge* g : tele_shard_bytes_) total += g->value();
    tele_bytes_->set(total);
  }
}

std::optional<Circuit> SynthCache::load_from_disk(std::uint64_t key) const {
  const std::filesystem::path path =
      std::filesystem::path(options_.dir) / (hex_key(key) + ".tfc");
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  // Hardened parser (docs/robustness.md): a truncated or corrupt file is
  // a miss, never an exception on the serving path.
  Result<Circuit> parsed = read_tfc_checked(buf.str(), path.string());
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).value();
}

void SynthCache::store_to_disk(std::uint64_t key,
                               const Circuit& circuit) const {
  const std::filesystem::path dir(options_.dir);
  const std::filesystem::path path = dir / (hex_key(key) + ".tfc");
  // Write-to-temp + rename so concurrent readers (and crashed writers)
  // never observe a half-written .tfc. The tmp name must be unique across
  // *processes* sharing the store (the fleet / serve scenario), not just
  // threads: thread-id hashes can collide between processes, so the name
  // carries the pid plus a per-process counter. Failures degrade to a
  // cold key.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::filesystem::path tmp =
      dir / (hex_key(key) + ".tmp" + std::to_string(::getpid()) + "." +
             std::to_string(tmp_serial.fetch_add(
                 1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp);
    if (!out) return;
    out << write_tfc(circuit);
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return;
  }
  if (options_.disk_gc_every > 0 &&
      (stores_since_gc_.fetch_add(1, std::memory_order_relaxed) + 1) %
              options_.disk_gc_every ==
          0) {
    gc_disk();
  }
}

bool SynthCache::try_lease(std::uint64_t key) {
  const std::filesystem::path path =
      std::filesystem::path(options_.dir) / (hex_key(key) + ".lease");
  const int fd =
      ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) return false;
  // The pid is advisory (debugging a wedged fleet by hand); staleness is
  // judged by mtime, never by pid liveness — pids recycle across hosts.
  const std::string body = std::to_string(::getpid()) + "\n";
  [[maybe_unused]] const auto n = ::write(fd, body.data(), body.size());
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(lease_m_);
    owned_leases_.insert(key);
  }
  lease_acquired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SynthCache::release_lease(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(lease_m_);
    if (owned_leases_.erase(key) == 0) return;
  }
  std::error_code ec;
  std::filesystem::remove(
      std::filesystem::path(options_.dir) / (hex_key(key) + ".lease"), ec);
}

std::optional<Circuit> SynthCache::lease_or_wait(std::uint64_t key) {
  if (try_lease(key)) return std::nullopt;  // we lead, lease in hand
  // Lost the race: another process is synthesizing this key. Poll for its
  // .tfc (adopt), for the lease to vanish (retry the claim), or for the
  // lease to go stale (steal it — its holder died without cleanup). The
  // wait is bounded: past lease_wait we synthesize anyway, trading
  // duplicate work for guaranteed progress.
  lease_waits_.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path lease =
      std::filesystem::path(options_.dir) / (hex_key(key) + ".lease");
  const auto deadline =
      std::chrono::steady_clock::now() + options_.lease_wait;
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    if (std::optional<Circuit> revived = load_from_disk(key)) return revived;
    std::error_code ec;
    const bool lease_present = std::filesystem::exists(lease, ec) && !ec;
    if (!lease_present) {
      if (try_lease(key)) return std::nullopt;
      continue;  // lost again to a third process
    }
    if (file_age(lease) > options_.lease_stale) {
      std::filesystem::remove(lease, ec);  // steal; remove is idempotent
      if (try_lease(key)) return std::nullopt;
    }
  }
  lease_timeouts_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;  // lead without a lease
}

std::size_t SynthCache::gc_disk() const {
  if (options_.dir.empty()) return 0;
  // One sweeper at a time per process; concurrent calls return instead of
  // queueing identical scans. Cross-process overlap is harmless — both
  // sweepers converge on the same survivors.
  bool expected = false;
  if (!gc_running_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
    return 0;
  }
  struct TfcFile {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    std::uintmax_t bytes = 0;
  };
  std::vector<TfcFile> tfcs;
  std::uintmax_t tfc_bytes = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator
           it(options_.dir, ec),
       end;
       !ec && it != end; it.increment(ec)) {
    const std::filesystem::path& path = it->path();
    const std::string name = path.filename().string();
    if (name.size() > 16 && name.compare(16, 4, ".tmp") == 0) {
      // Orphaned tmp file: its writer died between create and rename. A
      // live writer's tmp is younger than lease_stale and survives.
      if (file_age(path) > options_.lease_stale) {
        std::error_code rec;
        std::filesystem::remove(path, rec);
      }
      continue;
    }
    if (path.extension() == ".lease") {
      if (file_age(path) > options_.lease_stale) {
        std::error_code rec;
        std::filesystem::remove(path, rec);
      }
      continue;
    }
    if (path.extension() != ".tfc") continue;
    std::error_code sec;
    const std::uintmax_t bytes = std::filesystem::file_size(path, sec);
    const auto mtime = std::filesystem::last_write_time(path, sec);
    if (sec) continue;  // raced with a concurrent removal
    tfcs.push_back(TfcFile{path, mtime, bytes});
    tfc_bytes += bytes;
  }
  std::size_t evicted = 0;
  if (options_.disk_byte_budget > 0 && tfc_bytes > options_.disk_byte_budget) {
    std::sort(tfcs.begin(), tfcs.end(),
              [](const TfcFile& a, const TfcFile& b) {
                return a.mtime < b.mtime;
              });
    for (const TfcFile& f : tfcs) {
      if (tfc_bytes <= options_.disk_byte_budget) break;
      std::error_code rec;
      if (std::filesystem::remove(f.path, rec) && !rec) {
        tfc_bytes -= std::min<std::uintmax_t>(tfc_bytes, f.bytes);
        ++evicted;
      }
    }
    disk_evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
  gc_running_.store(false, std::memory_order_release);
  return evicted;
}

SynthCacheStats SynthCache::stats() const {
  SynthCacheStats total;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.m);
    total.hits += shard.stats.hits;
    total.disk_hits += shard.stats.disk_hits;
    total.misses += shard.stats.misses;
    total.dedup_waits += shard.stats.dedup_waits;
    total.inserts += shard.stats.inserts;
    total.evictions += shard.stats.evictions;
  }
  total.lease_acquired = lease_acquired_.load(std::memory_order_relaxed);
  total.lease_waits = lease_waits_.load(std::memory_order_relaxed);
  total.lease_timeouts = lease_timeouts_.load(std::memory_order_relaxed);
  total.disk_evictions = disk_evictions_.load(std::memory_order_relaxed);
  return total;
}

std::size_t SynthCache::bytes_used() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.m);
    total += shard.bytes;
  }
  return total;
}

std::size_t SynthCache::entry_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.m);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace rmrls
