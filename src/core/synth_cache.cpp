#include "core/synth_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "io/tfc.hpp"

namespace rmrls {

namespace {

/// Approximate resident cost of one cache entry: the gate storage plus
/// list/map node bookkeeping. Precision is not the point — the budget only
/// needs to bound memory the same way for every entry.
std::size_t entry_cost(const Circuit& circuit) {
  return sizeof(Circuit) + 96 +
         static_cast<std::size_t>(circuit.gate_count()) * sizeof(Gate);
}

std::string hex_key(std::uint64_t key) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[key & 0xf];
    key >>= 4;
  }
  return out;
}

}  // namespace

SynthCache::SynthCache(SynthCacheOptions options)
    : options_(std::move(options)),
      shards_(static_cast<std::size_t>(std::max(1, options_.shards))) {
  shard_budget_ = options_.byte_budget / shards_.size();
  if (Telemetry* t = Telemetry::active()) {
    tele_hits_ = &t->counter("cache.hits");
    tele_disk_hits_ = &t->counter("cache.disk_hits");
    tele_misses_ = &t->counter("cache.misses");
    tele_inserts_ = &t->counter("cache.inserts");
    tele_evictions_ = &t->counter("cache.evictions");
    tele_bytes_ = &t->gauge("cache.bytes");
    tele_follow_us_ = &t->histogram("cache.follow_wait_us");
    tele_shard_bytes_.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      tele_shard_bytes_.push_back(
          &t->gauge("cache.shard" + std::to_string(i) + ".bytes"));
    }
  }
  if (!options_.dir.empty()) {
    // Best-effort: an uncreatable directory degrades to a memory-only
    // cache (reads and writes below fail soft, entry by entry).
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
  }
}

SynthCache::Acquisition SynthCache::acquire(std::uint64_t key) {
  Shard& shard = shard_of(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::unique_lock<std::mutex> lock(shard.m);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.stats.hits;
      if (tele_hits_ != nullptr) tele_hits_->inc();
      return {Outcome::kHit, it->second->circuit};
    }
    const auto fit = shard.inflight.find(key);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      ++shard.stats.dedup_waits;
    } else {
      flight = std::make_shared<Flight>();
      shard.inflight.emplace(key, flight);
      leader = true;
    }
  }
  if (!leader) {
    const auto wait_start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> wait_lock(flight->m);
    flight->cv.wait(wait_lock, [&] { return flight->done; });
    if (tele_follow_us_ != nullptr) {
      tele_follow_us_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count()));
    }
    return {Outcome::kFollow, flight->circuit};
  }
  // Leadership covers the disk store too: exactly one thread pays the
  // file read, and its followers adopt the revived circuit.
  if (!options_.dir.empty()) {
    if (std::optional<Circuit> revived = load_from_disk(key)) {
      {
        std::unique_lock<std::mutex> lock(shard.m);
        ++shard.stats.disk_hits;
        if (tele_disk_hits_ != nullptr) tele_disk_hits_->inc();
        insert_locked(shard, key, *revived);
      }
      publish(key, &*revived);
      return {Outcome::kHit, std::move(revived)};
    }
  }
  {
    std::unique_lock<std::mutex> lock(shard.m);
    ++shard.stats.misses;
  }
  if (tele_misses_ != nullptr) tele_misses_->inc();
  return {Outcome::kLead, std::nullopt};
}

void SynthCache::publish(std::uint64_t key, const Circuit* circuit) {
  Shard& shard = shard_of(key);
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock<std::mutex> lock(shard.m);
    const auto fit = shard.inflight.find(key);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      shard.inflight.erase(fit);
    }
    if (circuit != nullptr && shard.map.find(key) == shard.map.end()) {
      insert_locked(shard, key, *circuit);
    }
  }
  if (circuit != nullptr && !options_.dir.empty()) {
    store_to_disk(key, *circuit);
  }
  if (flight != nullptr) {
    std::unique_lock<std::mutex> wait_lock(flight->m);
    flight->done = true;
    if (circuit != nullptr) flight->circuit = *circuit;
    wait_lock.unlock();
    flight->cv.notify_all();
  }
}

std::optional<Circuit> SynthCache::lookup(std::uint64_t key) {
  Shard& shard = shard_of(key);
  {
    std::unique_lock<std::mutex> lock(shard.m);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.stats.hits;
      if (tele_hits_ != nullptr) tele_hits_->inc();
      return it->second->circuit;
    }
  }
  if (!options_.dir.empty()) {
    if (std::optional<Circuit> revived = load_from_disk(key)) {
      std::unique_lock<std::mutex> lock(shard.m);
      ++shard.stats.disk_hits;
      if (tele_disk_hits_ != nullptr) tele_disk_hits_->inc();
      insert_locked(shard, key, *revived);
      return revived;
    }
  }
  std::unique_lock<std::mutex> lock(shard.m);
  ++shard.stats.misses;
  if (tele_misses_ != nullptr) tele_misses_->inc();
  return std::nullopt;
}

void SynthCache::insert(std::uint64_t key, const Circuit& circuit) {
  Shard& shard = shard_of(key);
  {
    std::unique_lock<std::mutex> lock(shard.m);
    insert_locked(shard, key, circuit);
  }
  if (!options_.dir.empty()) store_to_disk(key, circuit);
}

void SynthCache::insert_locked(Shard& shard, std::uint64_t key,
                               const Circuit& circuit) {
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->bytes;
    it->second->circuit = circuit;
    it->second->bytes = entry_cost(circuit);
    shard.bytes += it->second->bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, circuit, entry_cost(circuit)});
    shard.map[key] = shard.lru.begin();
    shard.bytes += shard.lru.front().bytes;
    ++shard.stats.inserts;
    if (tele_inserts_ != nullptr) tele_inserts_->inc();
  }
  // Byte-budget eviction from the LRU tail; the freshest entry is exempt
  // so one oversized circuit cannot make insertion a no-op.
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
    if (tele_evictions_ != nullptr) tele_evictions_->inc();
  }
  if (tele_bytes_ != nullptr) {
    const auto idx = static_cast<std::size_t>(&shard - shards_.data());
    tele_shard_bytes_[idx]->set(static_cast<std::int64_t>(shard.bytes));
    std::int64_t total = 0;
    for (const Gauge* g : tele_shard_bytes_) total += g->value();
    tele_bytes_->set(total);
  }
}

std::optional<Circuit> SynthCache::load_from_disk(std::uint64_t key) const {
  const std::filesystem::path path =
      std::filesystem::path(options_.dir) / (hex_key(key) + ".tfc");
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  // Hardened parser (docs/robustness.md): a truncated or corrupt file is
  // a miss, never an exception on the serving path.
  Result<Circuit> parsed = read_tfc_checked(buf.str(), path.string());
  if (!parsed.ok()) return std::nullopt;
  return std::move(parsed).value();
}

void SynthCache::store_to_disk(std::uint64_t key,
                               const Circuit& circuit) const {
  const std::filesystem::path dir(options_.dir);
  const std::filesystem::path path = dir / (hex_key(key) + ".tfc");
  // Write-to-temp + rename so concurrent readers (and crashed writers)
  // never observe a half-written .tfc. The tmp name must be unique across
  // *processes* sharing the store (the fleet / serve scenario), not just
  // threads: thread-id hashes can collide between processes, so the name
  // carries the pid plus a per-process counter. Failures degrade to a
  // cold key.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::filesystem::path tmp =
      dir / (hex_key(key) + ".tmp" + std::to_string(::getpid()) + "." +
             std::to_string(tmp_serial.fetch_add(
                 1, std::memory_order_relaxed)));
  {
    std::ofstream out(tmp);
    if (!out) return;
    out << write_tfc(circuit);
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

SynthCacheStats SynthCache::stats() const {
  SynthCacheStats total;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.m);
    total.hits += shard.stats.hits;
    total.disk_hits += shard.stats.disk_hits;
    total.misses += shard.stats.misses;
    total.dedup_waits += shard.stats.dedup_waits;
    total.inserts += shard.stats.inserts;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

std::size_t SynthCache::bytes_used() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.m);
    total += shard.bytes;
  }
  return total;
}

std::size_t SynthCache::entry_count() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.m);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace rmrls
