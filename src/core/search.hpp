/// \file search.hpp
/// \brief The RMRLS priority-based search tree (paper, Fig. 4).
///
/// Internal engine behind synthesizer.hpp. The search explores sequences of
/// PPRM substitutions; a node is a partial cascade, a solution is a node
/// whose system is the identity. Per Section IV-C, expansions are stored
/// only with frontier (queued) entries; the node arena keeps just
/// {parent, gate, depth} so solution paths can be reconstructed cheaply.
///
/// The engine is templated over the state representation `Rep` — the
/// sparse cube-vector Pprm or the dense bitset DensePprm
/// (rev/pprm_dense.hpp, docs/dense_pprm.md). Both expose the same
/// substitution/pricing/hash contract, candidates enumerate in the same
/// order, and state hashes agree, so the two instantiations expand
/// identical trees and emit bit-identical circuits; the synthesizer picks
/// per pass via SynthesisOptions::dense_threshold. `Search` is the sparse
/// instantiation, `DenseSearch` the dense one.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cancel.hpp"
#include "core/factor_enum.hpp"
#include "core/history.hpp"
#include "core/options.hpp"
#include "core/transposition.hpp"
#include "obs/phase_profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rev/circuit.hpp"
#include "rev/pprm.hpp"
#include "rev/pprm_dense.hpp"

namespace rmrls {

namespace detail {
struct SharedSearchContext;  // core/parallel.hpp
}

/// Outcome of one synthesis run.
struct SynthesisResult {
  bool success = false;
  Circuit circuit;  ///< empty (zero-gate) circuit when `!success`
  int initial_terms = 0;
  SynthesisStats stats;
  /// Why the run stopped. For the multi-pass drivers (refinement,
  /// bidirectional) this is the reason of the final Search pass, i.e. why
  /// the overall synthesis stopped looking for better circuits.
  TerminationReason termination = TerminationReason::kQueueExhausted;
  /// Anytime engines (greedy; docs/robustness.md) fill in the incomplete
  /// cascade built before a failed run stopped, plus the term count of the
  /// system it leaves behind. Empty / -1 on success and for engines that
  /// do not produce partials.
  Circuit partial;
  int partial_terms = -1;
};

/// One first-level subtree of the search: a root child produced by a
/// single substitution, with everything a parallel worker needs to adopt
/// it (core/parallel.hpp).
template <class Rep>
struct BasicRootSeed {
  Gate gate;
  double priority = 0.0;
  std::int32_t terms = 0;
  std::uint8_t exempt_count = 0;
  bool exempt = false;
  Rep state;
};

using RootSeed = BasicRootSeed<Pprm>;
using DenseRootSeed = BasicRootSeed<DensePprm>;

/// Harvest of expanding only the root (phase 1 of the parallel engine).
template <class Rep>
struct BasicRootExpansion {
  /// Descending priority (creation order ties).
  std::vector<BasicRootSeed<Rep>> seeds;
  SynthesisStats stats;   ///< counters of the root expansion
  bool identity = false;  ///< the spec is already the identity
  bool solved = false;    ///< a one-gate solution was found
  Gate solution_gate;     ///< valid when `solved`
};

using RootExpansion = BasicRootExpansion<Pprm>;

/// One run of the best-first search over representation `Rep`. Not
/// reusable; construct per call.
template <class Rep>
class BasicSearch {
 public:
  BasicSearch(Rep start, SynthesisOptions options);

  /// Worker of the parallel engine: adopts pre-expanded first-level
  /// subtrees instead of expanding the root itself, and coordinates with
  /// its peers through `shared` (best-depth bound, node budget, sharded
  /// transposition table, stop flag). `seeds` must be sorted by
  /// descending priority. With `shared == nullptr` behaves sequentially
  /// over the given subtrees.
  BasicSearch(Rep start, SynthesisOptions options,
              std::vector<BasicRootSeed<Rep>> seeds,
              detail::SharedSearchContext* shared);

  /// Expands only the root and harvests the surviving first-level
  /// subtrees, sorted by descending priority (phase 1 of the parallel
  /// engine; docs/parallelism.md).
  [[nodiscard]] static BasicRootExpansion<Rep> expand_root(
      const Rep& start, const SynthesisOptions& options);

  /// Runs to completion (queue empty, budget exhausted, or first solution
  /// in stop-at-first mode) and returns the best circuit found.
  [[nodiscard]] SynthesisResult run();

 private:
  struct NodeRecord {
    std::int32_t parent = -1;
    Gate gate;
    std::int32_t depth = 0;
    /// Number of non-reducing (elim <= 0) complement substitutions on the
    /// path from the root, and whether this node itself was created by
    /// one. Eq. (4) rewards depth, so an unbounded supply of exempt
    /// substitutions would let the search dive forever down junk paths;
    /// we forbid chaining them and cap their count per path
    /// (SynthesisOptions::exempt_budget). See DESIGN.md.
    std::uint8_t exempt_count = 0;
    bool exempt = false;
  };

  struct QueueEntry {
    double priority = 0.0;
    std::uint64_t seq = 0;  // insertion order; older wins priority ties
    std::int32_t node = -1;
    std::int32_t terms = 0;
    Rep state;
  };

  struct EntryLess {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  /// Enqueues a new child, counting it (children_pushed / queue drops).
  void push_entry(QueueEntry entry);
  /// Enqueues without counting children_pushed — root seeding and restart
  /// re-seeds re-push entries that were already counted at creation. A
  /// push into a full heap still counts dropped_queue_full and emits
  /// kQueueDrop (a silently lost re-seed would undercount drops). Returns
  /// whether the entry was actually enqueued.
  bool push_uncounted(QueueEntry entry);
  [[nodiscard]] QueueEntry pop_entry();

  /// The depth bound governing the `bestDepth - 1` pruning rule: the
  /// shared atomic bound when this search is a parallel worker, the local
  /// best depth otherwise. -1 = no solution anywhere yet.
  [[nodiscard]] int bound() const;

  /// Records a solution at `child_depth`. In shared mode only the worker
  /// that wins the atomic bound race records it (so exactly one worker
  /// owns each strictly improving depth). Returns whether it was recorded.
  bool record_solution(std::int32_t parent, const Gate& gate,
                       int child_depth, std::uint8_t exempt_count);

  /// Expands `entry`: evaluates every candidate substitution, records
  /// solutions, and enqueues surviving children. Returns true if the
  /// stop-at-first-solution condition fired.
  bool expand(QueueEntry entry);

  void restart();

  /// Eq. (4) plus the engineering layers on top: the normalized history
  /// bonus (options_.history_weight, counted in stats_.history_hits) and
  /// the deterministic lazy-SMP jitter (options_.order_jitter). Non-const
  /// only for the history-hit counter.
  [[nodiscard]] double priority_of(int depth, int elim_stage, int elim_total,
                                   int target, Cube factor);

  [[nodiscard]] Circuit extract_circuit(std::int32_t leaf) const;

  Rep start_;
  SynthesisOptions options_;
  int num_vars_ = 0;
  int initial_terms_ = 0;

  /// Parallel-worker coordination (null for the sequential engine).
  detail::SharedSearchContext* shared_ = nullptr;
  /// Worker mode: first-level subtrees adopted instead of a root node.
  std::vector<BasicRootSeed<Rep>> seeds_;

  /// Recycles the state of every pruned child and expanded entry; the hot
  /// path materializes via substitute_into into pooled systems and stops
  /// allocating after warmup.
  StatePool<Rep> pool_;
  /// Reused across expansions by enumerate_candidates_into.
  std::vector<Candidate> candidates_buf_;

  std::vector<NodeRecord> arena_;
  std::vector<QueueEntry> heap_;  // std::push_heap/pop_heap with EntryLess
  std::uint64_t next_seq_ = 0;

  std::vector<QueueEntry> root_children_;  // saved for the restart heuristic
  bool root_sorted_ = false;  // sorted once, every restart indexes into it
  std::size_t restart_index_ = 0;
  std::uint64_t pops_since_improvement_ = 0;

  std::int32_t best_node_ = -1;
  int best_depth_ = -1;
  /// Fewest remaining terms any priced child has reached this run — the
  /// progress frontier. A child that pushes it earns its (target, factor
  /// class) a small history reward even before any solution exists: the
  /// cutoff analogue of the chess history heuristic, and what lets a
  /// failed narrow-scope scout train the ordering the broad-scope retry
  /// starts from (the history table spans driver passes).
  int best_terms_ = 0;

  /// Transposition table (core/transposition.hpp): bounded bucketized
  /// {hash, depth, generation} entries. Resolution order (init_tt): the
  /// shared context's table in worker mode, the caller's pass-spanning
  /// table (SynthesisOptions::tt), else a table this search owns. Null
  /// when use_transposition_table is off.
  TranspositionTable* tt_ = nullptr;
  std::unique_ptr<TranspositionTable> owned_tt_;
  /// Cumulative table counters at run() start; sequential runs report the
  /// delta in stats_ (workers leave it to the parallel engine, which
  /// accounts the whole pass once).
  std::uint64_t tt_inserts_base_ = 0;
  std::uint64_t tt_evictions_base_ = 0;

  /// History heuristic (core/history.hpp): shared across passes when the
  /// driver installs SynthesisOptions::history, else owned (learning
  /// within this run only). Null when use_history is off.
  HistoryTable* history_ = nullptr;
  std::unique_ptr<HistoryTable> owned_history_;
  void init_tt();
  void init_history();
  /// Credits every gate on a newly recorded solution path (the history
  /// heuristic's learning signal).
  void reward_solution_path(std::int32_t parent, const Gate& gate,
                            int child_depth);

  SynthesisStats stats_;
  TerminationReason termination_ = TerminationReason::kQueueExhausted;

  /// Resilience (core/cancel.hpp, docs/robustness.md): the wall-clock
  /// deadline (armed only when SynthesisOptions::time_limit > 0) and the
  /// caller's cancellation token, both polled by should_stop().
  std::chrono::steady_clock::time_point deadline_{};
  bool deadline_armed_ = false;
  CancelToken* cancel_ = nullptr;
  bool stop_requested_ = false;
  TerminationReason stop_reason_ = TerminationReason::kTimeLimit;

  /// Cooperative stop poll, called once per pop and once per candidate in
  /// the expansion loops — at the widths where deadlines matter a single
  /// substitute_delta dwarfs both the relaxed atomic load and the clock
  /// read, so overshoot is bounded by one candidate evaluation instead of
  /// 64 node expansions. Latches the first reason it sees.
  [[nodiscard]] bool should_stop() {
    if (stop_requested_) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      stop_requested_ = true;
      stop_reason_ = cancel_->reason() == CancelReason::kDeadline
                         ? TerminationReason::kTimeLimit
                         : TerminationReason::kCancelled;
      return true;
    }
    if (deadline_armed_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      stop_requested_ = true;
      stop_reason_ = TerminationReason::kTimeLimit;
      return true;
    }
    return false;
  }

  /// Observability (obs/): both observers are null unless installed via
  /// SynthesisOptions; the emission sites reduce to one pointer test each.
  TraceSink* sink_ = nullptr;
  PhaseProfile* profile_ = nullptr;
  std::chrono::steady_clock::time_point run_start_{};

  /// Live telemetry (obs/telemetry.hpp): handles grabbed once at
  /// construction when the process registry is armed; null otherwise, so
  /// with telemetry off every site is one pointer test (same cost model
  /// as sink_). Wired by init_telemetry() in the ctors.
  Counter* tele_nodes_ = nullptr;
  Counter* tele_solutions_ = nullptr;
  Gauge* tele_queue_ = nullptr;
  Gauge* tele_tt_ = nullptr;
  Gauge* tele_tt_hits_ = nullptr;
  Gauge* tele_tt_evictions_ = nullptr;
  Gauge* tele_tt_generation_ = nullptr;
  Gauge* tele_history_hits_ = nullptr;
  void init_telemetry();
  /// Periodic gauge refresh (queue depth, TT occupancy/hits), called
  /// every 64 pops from the run loop; needs parallel.hpp so it lives in
  /// the .cpp.
  void sample_telemetry();

  /// Emits `event` if a sink is installed, stamping the running node
  /// counter, queue size, microseconds since run start, the steady-clock
  /// timestamp (heartbeat alignment) and the run's correlation id.
  /// `sampled` events additionally honour trace_sample_interval.
  void emit(TraceEvent event, bool sampled = false) {
    if (sink_ == nullptr) return;
    if (sampled && options_.trace_sample_interval > 1 &&
        stats_.nodes_expanded % options_.trace_sample_interval != 0) {
      return;
    }
    event.nodes_expanded = stats_.nodes_expanded;
    event.queue_size = heap_.size();
    const auto now = std::chrono::steady_clock::now();
    event.t_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              run_start_)
            .count());
    event.timestamp_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
    event.trace_id = options_.trace_id;
    sink_->on_event(event);
  }

  void emit_prune(PruneReason reason, std::int32_t depth, std::int32_t terms) {
    if (sink_ == nullptr) return;  // keep the hot path to one pointer test
    TraceEvent e;
    e.kind = TraceEventKind::kChildPruned;
    e.prune_reason = reason;
    e.depth = depth;
    e.terms = terms;
    emit(e, /*sampled=*/true);
  }
};

/// The sparse engine (cube vectors) — the pre-existing name.
using Search = BasicSearch<Pprm>;
/// The dense word-parallel engine (coefficient bitsets).
using DenseSearch = BasicSearch<DensePprm>;

extern template class BasicSearch<Pprm>;
extern template class BasicSearch<DensePprm>;

}  // namespace rmrls
