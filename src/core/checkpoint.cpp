#include "core/checkpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

namespace rmrls {

namespace {

constexpr const char* kHeader = "# rmrls-checkpoint-v1";

}  // namespace

Result<BatchCheckpoint> BatchCheckpoint::open(const std::string& path) {
  BatchCheckpoint cp(path);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return cp;  // first run
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kParseError,
                  "checkpoint file exists but cannot be read", path, 0);
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    // Refuse rather than restart from scratch: a header mismatch means
    // this is not (or no longer) a checkpoint we understand, and quietly
    // re-synthesizing a whole corpus is the expensive failure mode.
    return Status(StatusCode::kParseError,
                  std::string("checkpoint header is not \"") + kHeader + "\"",
                  path, 1);
  }
  int lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    // Ids are `<16 hex>.<decimal occurrence>` (core/batch.hpp); validate
    // the shape so a truncated rename-less editor save fails loudly.
    const std::size_t dot = line.find('.');
    if (dot != 16 || line.size() < 18 ||
        line.find_first_not_of("0123456789abcdef") != 16 ||
        line.find_first_not_of("0123456789", 17) != std::string::npos) {
      return Status(StatusCode::kParseError,
                    "malformed checkpoint job id: " + line, path, lineno);
    }
    cp.done_.insert(line);
  }
  return cp;
}

bool BatchCheckpoint::completed(const std::string& id) const {
  std::lock_guard<std::mutex> lock(*m_);
  return done_.count(id) != 0;
}

std::size_t BatchCheckpoint::completed_count() const {
  std::lock_guard<std::mutex> lock(*m_);
  return done_.size();
}

void BatchCheckpoint::mark(const std::string& id) {
  bool do_flush = false;
  {
    std::lock_guard<std::mutex> lock(*m_);
    if (!done_.insert(id).second) return;
    if (flush_every_ > 0 && ++unflushed_ >= flush_every_) {
      unflushed_ = 0;
      do_flush = true;
    }
  }
  if (do_flush) flush();
}

bool BatchCheckpoint::flush() {
  // Snapshot under the lock, write outside it: marks from other workers
  // land in the next flush instead of blocking on file I/O.
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(*m_);
    ids.assign(done_.begin(), done_.end());
  }
  // Same tmp+rename discipline as the TFC store (core/synth_cache.cpp):
  // the tmp name carries pid + serial so two processes pointed at one
  // checkpoint file by mistake cannot tear each other's writes.
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string tmp =
      path_ + ".tmp" + std::to_string(::getpid()) + "." +
      std::to_string(tmp_serial.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << kHeader << "\n";
    for (const std::string& id : ids) out << id << "\n";
    out.flush();
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace rmrls
