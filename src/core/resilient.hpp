/// \file resilient.hpp
/// \brief Resilient synthesis driver: deadline, watchdog, fallback cascade
/// (docs/robustness.md).
///
/// The best-first search is a heuristic: it can blow its budget or be
/// cancelled without producing a circuit. synthesize_resilient wraps it in
/// an anytime cascade — best-first, then the greedy baseline, then
/// (width permitting) Miller-Maslov-Dueck transformation-based synthesis,
/// which is constructive and cannot fail — so a caller with a wall-clock
/// budget always gets back either a *verified* circuit labelled with the
/// engine that produced it, or a structured Status explaining the miss,
/// plus the best incomplete cascade any engine reached.

#pragma once

#include <chrono>

#include "core/cancel.hpp"
#include "core/options.hpp"
#include "core/search.hpp"
#include "core/status.hpp"
#include "rev/pprm.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Which engine of the cascade produced the returned circuit.
enum class FallbackEngine : std::uint8_t {
  kNone = 0,        ///< no engine succeeded
  kBestFirst,       ///< the primary RMRLS search
  kGreedy,          ///< baselines/greedy_pprm.hpp
  kTransformationBased,  ///< baselines/transformation_based.hpp
};

[[nodiscard]] constexpr const char* to_string(FallbackEngine engine) {
  switch (engine) {
    case FallbackEngine::kNone: return "none";
    case FallbackEngine::kBestFirst: return "best_first";
    case FallbackEngine::kGreedy: return "greedy";
    case FallbackEngine::kTransformationBased: return "transformation_based";
  }
  return "unknown";
}

struct ResilienceOptions {
  /// Options of the primary best-first attempt; the greedy fallback reuses
  /// its priority weights. `search.cancel_token` is overridden — use
  /// `cancel_token` below to cancel the whole cascade.
  SynthesisOptions search;

  /// Wall-clock budget of the *whole* cascade; zero means none (the
  /// cascade then only stops via the search's own budgets or the token).
  std::chrono::milliseconds deadline{0};

  /// Arm a Watchdog thread (core/cancel.hpp) for `deadline`, so the limit
  /// holds even if an engine wedges between cooperative polls. Off, the
  /// deadline is still enforced cooperatively via per-engine time limits.
  bool use_watchdog = true;

  /// Stage toggles of the cascade.
  bool enable_greedy = true;
  bool enable_transformation = true;

  /// Widest spec (in variables) the transformation-based fallback accepts:
  /// it materializes the full 2^n-row truth table, so it must be gated
  /// well below the search engines' 64-variable ceiling.
  int transformation_max_vars = 12;

  /// Fraction of `deadline` granted to the best-first attempt; the
  /// fallbacks share what is left on the wall clock.
  double primary_share = 0.7;

  /// Optional caller-owned token to cancel the cascade from outside (e.g.
  /// a SIGINT handler). The driver chains it with its own deadline
  /// enforcement; first reason wins.
  CancelToken* cancel_token = nullptr;
};

struct ResilientResult {
  /// kOk with a verified circuit; kCancelled / kBudgetExhausted /
  /// kInternal otherwise (docs/robustness.md).
  Status status;
  /// Circuit, stats (accumulated across every engine that ran) and the
  /// best incomplete cascade (`partial`) when no engine finished.
  SynthesisResult result;
  /// Which engine produced `result.circuit`; kNone on failure.
  FallbackEngine engine = FallbackEngine::kNone;
  /// True iff the returned circuit was re-checked against the spec with
  /// the exact PPRM equivalence check (rev/equivalence.hpp).
  bool verified = false;
  /// True when the armed Watchdog (not a cooperative poll) ended the run.
  bool watchdog_fired = false;
};

/// Runs the fallback cascade on a PPRM spec. Always returns; never throws
/// on budget or cancellation.
[[nodiscard]] ResilientResult synthesize_resilient(
    const Pprm& spec, const ResilienceOptions& options = {});

/// Truth-table overload: the transformation-based fallback uses the table
/// directly instead of reconstructing it from the PPRM.
[[nodiscard]] ResilientResult synthesize_resilient(
    const TruthTable& spec, const ResilienceOptions& options = {});

}  // namespace rmrls
