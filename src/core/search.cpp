#include "core/search.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/parallel.hpp"

namespace rmrls {

namespace {
using Clock = std::chrono::steady_clock;

/// Amplitude of the lazy-SMP priority jitter (options.order_jitter):
/// comparable to one gamma-weighted literal — enough to reorder
/// near-ties between workers, never enough to override a clear eq.-4
/// preference.
constexpr double kJitterAmplitude = 0.03;

/// History payout for a child that pushes the run's fewest-remaining-terms
/// frontier (search.hpp best_terms_). Small next to solution-path payouts
/// (256 / depth per gate) so real solutions still dominate the ordering —
/// progress rewards only have to break the cold start when no solution
/// exists yet.
constexpr std::uint32_t kProgressReward = 4;
}

template <class Rep>
BasicSearch<Rep>::BasicSearch(Rep start, SynthesisOptions options)
    : start_(std::move(start)),
      options_(options),
      num_vars_(start_.num_vars()),
      initial_terms_(start_.term_count()),
      cancel_(options.cancel_token),
      sink_(options.trace_sink),
      profile_(options.phase_profile) {
  best_terms_ = initial_terms_;
  init_tt();
  init_history();
  init_telemetry();
}

template <class Rep>
BasicSearch<Rep>::BasicSearch(Rep start, SynthesisOptions options,
                              std::vector<BasicRootSeed<Rep>> seeds,
                              detail::SharedSearchContext* shared)
    : start_(std::move(start)),
      options_(options),
      num_vars_(start_.num_vars()),
      initial_terms_(start_.term_count()),
      shared_(shared),
      seeds_(std::move(seeds)),
      cancel_(options.cancel_token),
      sink_(options.trace_sink),
      profile_(options.phase_profile) {
  best_terms_ = initial_terms_;
  init_tt();
  init_history();
  init_telemetry();
}

template <class Rep>
void BasicSearch<Rep>::init_tt() {
  if (!options_.use_transposition_table) return;
  if (shared_ != nullptr) {
    tt_ = shared_->tt;  // one table per parallel pass, borrowed
    return;
  }
  if (options_.tt != nullptr) {
    tt_ = options_.tt;  // the driver's pass-spanning table
    return;
  }
  owned_tt_ = std::make_unique<TranspositionTable>(
      options_.tt_mb, options_.tt_shards, options_.tt_replacement);
  tt_ = owned_tt_.get();
}

template <class Rep>
void BasicSearch<Rep>::init_history() {
  if (!options_.use_history) return;
  history_ = options_.history;
  if (history_ == nullptr) {
    owned_history_ = std::make_unique<HistoryTable>();
    history_ = owned_history_.get();
  }
}

template <class Rep>
void BasicSearch<Rep>::init_telemetry() {
  if (Telemetry* t = Telemetry::active()) {
    tele_nodes_ = &t->counter("search.nodes_expanded");
    tele_solutions_ = &t->counter("search.solutions");
    tele_queue_ = &t->gauge("search.queue_depth");
    tele_tt_ = &t->gauge("search.tt_entries");
    tele_tt_hits_ = &t->gauge("search.tt_shard_hits");
    tele_tt_evictions_ = &t->gauge("search.tt_evictions");
    tele_tt_generation_ = &t->gauge("search.tt_generation");
    tele_history_hits_ = &t->gauge("search.history_hits");
  }
}

template <class Rep>
void BasicSearch<Rep>::sample_telemetry() {
  // Workers of one parallel pass all write these gauges; last writer wins,
  // which is fine for an instantaneous "what is the engine doing" signal.
  // The TT gauges are point-in-time sums over the table's stripes —
  // sequential and lazy-SMP passes read the same bounded table either
  // way.
  tele_queue_->set(static_cast<std::int64_t>(heap_.size()));
  if (tt_ != nullptr) {
    tele_tt_->set(static_cast<std::int64_t>(tt_->entry_count()));
    tele_tt_hits_->set(static_cast<std::int64_t>(tt_->total_hits()));
    tele_tt_evictions_->set(static_cast<std::int64_t>(tt_->evictions()));
    tele_tt_generation_->set(static_cast<std::int64_t>(tt_->generation()));
  }
  tele_history_hits_->set(static_cast<std::int64_t>(stats_.history_hits));
}

template <class Rep>
int BasicSearch<Rep>::bound() const {
  if (shared_ == nullptr) return best_depth_;
  return shared_->bound.get();
}

template <class Rep>
void BasicSearch<Rep>::push_entry(QueueEntry entry) {
  if (push_uncounted(std::move(entry))) ++stats_.children_pushed;
}

template <class Rep>
bool BasicSearch<Rep>::push_uncounted(QueueEntry entry) {
  if (heap_.size() >= options_.max_queue) {
    ++stats_.dropped_queue_full;
    if (sink_) {
      TraceEvent e;
      e.kind = TraceEventKind::kQueueDrop;
      e.depth = entry.node >= 0 ? arena_[entry.node].depth : 0;
      e.terms = entry.terms;
      emit(e);
    }
    pool_.release(std::move(entry.state));
    return false;
  }
  const ScopedPhaseTimer timer(profile_, Phase::kHeapOps);
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), EntryLess{});
  return true;
}

template <class Rep>
typename BasicSearch<Rep>::QueueEntry BasicSearch<Rep>::pop_entry() {
  const ScopedPhaseTimer timer(profile_, Phase::kHeapOps);
  std::pop_heap(heap_.begin(), heap_.end(), EntryLess{});
  QueueEntry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

template <class Rep>
double BasicSearch<Rep>::priority_of(int depth, int elim_stage, int elim_total,
                                     int target, Cube factor) {
  const double elim = options_.cumulative_elim_priority
                          ? static_cast<double>(elim_total)
                          : static_cast<double>(elim_stage);
  double p = options_.alpha * depth + options_.beta * elim / depth -
             options_.gamma * literal_count(factor);
  if (history_ != nullptr) {
    const double bonus = history_->bonus(target, factor);
    if (bonus > 0.0) {
      ++stats_.history_hits;
      p += options_.history_weight * bonus;
    }
  }
  if (options_.order_jitter != 0) {
    // Deterministic per-(worker, candidate) noise in [0, kJitterAmplitude):
    // the lazy-SMP order diversification (docs/parallelism.md). Seeded
    // from the worker's jitter seed and the candidate identity only, so a
    // given worker re-prices a candidate identically every time.
    const std::uint64_t mix = splitmix64(
        options_.order_jitter ^ static_cast<std::uint64_t>(factor) ^
        (static_cast<std::uint64_t>(static_cast<unsigned>(target)) << 56) ^
        (static_cast<std::uint64_t>(static_cast<unsigned>(depth)) *
         0x9e3779b97f4a7c15ull));
    p += kJitterAmplitude *
         (static_cast<double>(mix >> 40) /
          static_cast<double>(std::uint64_t{1} << 24));
  }
  return p;
}

template <class Rep>
Circuit BasicSearch<Rep>::extract_circuit(std::int32_t leaf) const {
  // The path root -> leaf lists the substitutions in application order,
  // which is also gate order: the first substitution is the first gate.
  std::vector<Gate> reversed;
  for (std::int32_t n = leaf; n > 0; n = arena_[n].parent) {
    reversed.push_back(arena_[n].gate);
  }
  Circuit c(num_vars_);
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    c.append(*it);
  }
  return c;
}

template <class Rep>
bool BasicSearch<Rep>::record_solution(std::int32_t parent, const Gate& gate,
                                       int child_depth,
                                       std::uint8_t exempt_count) {
  // In shared mode only the worker that wins the atomic bound race records
  // the circuit — a loser's solution is at/beyond a depth some peer
  // already realized.
  const bool record = shared_ != nullptr
                          ? shared_->bound.try_improve(child_depth)
                          : best_depth_ < 0 || child_depth < best_depth_;
  if (!record) return false;
  reward_solution_path(parent, gate, child_depth);
  arena_.push_back({parent, gate, child_depth, exempt_count, false});
  best_node_ = static_cast<std::int32_t>(arena_.size()) - 1;
  best_depth_ = child_depth;
  stats_.nodes_at_best = stats_.nodes_expanded;
  ++stats_.solutions_found;
  if (tele_solutions_ != nullptr) tele_solutions_->inc();
  pops_since_improvement_ = 0;
  TraceEvent e;
  e.kind = TraceEventKind::kSolutionFound;
  e.depth = child_depth;
  e.terms = num_vars_;
  e.gates = child_depth;
  emit(e);
  return true;
}

template <class Rep>
void BasicSearch<Rep>::reward_solution_path(std::int32_t parent,
                                            const Gate& gate,
                                            int child_depth) {
  if (history_ == nullptr) return;
  // Shallower solutions are stronger evidence, so they pay out more; the
  // driver's decay() between passes keeps old payouts from dominating.
  const std::uint32_t amount = static_cast<std::uint32_t>(
      child_depth > 0 ? std::max(1, 256 / child_depth) : 256);
  history_->reward(gate.target, gate.controls, amount);
  for (std::int32_t n = parent; n > 0; n = arena_[n].parent) {
    history_->reward(arena_[n].gate.target, arena_[n].gate.controls, amount);
  }
}

template <class Rep>
bool BasicSearch<Rep>::expand(QueueEntry entry) {
  // Copy out of the arena: expand() appends to it, invalidating references.
  const NodeRecord node = arena_[entry.node];
  const Candidate skip{node.gate.target, node.gate.controls};
  const bool is_root = node.parent < 0;
  {
    const ScopedPhaseTimer timer(profile_, Phase::kFactorEnum);
    enumerate_candidates_into(entry.state, options_,
                              is_root ? nullptr : &skip, candidates_buf_);
  }
  const std::vector<Candidate>& candidates = candidates_buf_;

  // Children are priced read-only (substitute_delta); only the ones that
  // survive pruning are materialized, which is the search's hot path.
  struct ChildEval {
    Candidate cand;
    int terms = 0;
    int elim = 0;
    double priority = 0.0;
    bool solved = false;
  };
  const int child_depth = node.depth + 1;
  std::vector<ChildEval> children;
  children.reserve(candidates.size());
  {
    const ScopedPhaseTimer timer(profile_, Phase::kSubstitute);
    for (const Candidate& cand : candidates) {
      // Polling here (not just between pops) bounds deadline overshoot by
      // one substitute_delta even when a single expansion enumerates
      // thousands of candidates at n >= 20; see should_stop().
      if (should_stop()) {
        termination_ = stop_reason_;
        pool_.release(std::move(entry.state));
        return true;
      }
      ChildEval ce;
      ce.cand = cand;
      const int delta = entry.state.substitute_delta(cand.target, cand.factor);
      ce.terms = entry.terms + delta;
      ce.elim = -delta;
      ce.priority = priority_of(child_depth, ce.elim,
                                initial_terms_ - ce.terms, cand.target,
                                cand.factor);
      if (history_ != nullptr && ce.terms < best_terms_) {
        // Progress frontier pushed (see search.hpp best_terms_): reward
        // the factor even though no solution was reached through it yet.
        best_terms_ = ce.terms;
        history_->reward(cand.target, cand.factor, kProgressReward);
      }
      if (ce.terms == num_vars_) {
        // Only a system with exactly one term per output can be the
        // identity; confirm by materializing (into a pooled system).
        Rep materialized = pool_.acquire();
        entry.state.substitute_into(cand.target, cand.factor, materialized);
        ce.solved = materialized.is_identity();
        pool_.release(std::move(materialized));
      }
      ++stats_.children_created;
      children.push_back(ce);
    }
  }

  // Record solutions first so greedy pruning can never drop one. Solved
  // children that do not improve on the best depth are depth-pruned like
  // any other child at/beyond bestDepth.
  for (const ChildEval& ce : children) {
    if (!ce.solved) continue;
    if (record_solution(entry.node, Gate(ce.cand.factor, ce.cand.target),
                        child_depth, node.exempt_count)) {
      if (options_.stop_at_first_solution) {
        if (shared_ != nullptr) {
          shared_->stop.store(true, std::memory_order_release);
        }
        termination_ = TerminationReason::kSolved;
        pool_.release(std::move(entry.state));
        return true;
      }
    } else {
      ++stats_.pruned_depth;
      emit_prune(PruneReason::kDepth, child_depth, ce.terms);
    }
  }

  // Greedy heuristic (Section IV-E): keep only the best k substitutions
  // per target variable.
  if (options_.greedy_k > 0) {
    std::stable_sort(children.begin(), children.end(),
                     [](const ChildEval& a, const ChildEval& b) {
                       if (a.cand.target != b.cand.target) {
                         return a.cand.target < b.cand.target;
                       }
                       return a.priority > b.priority;
                     });
    std::vector<ChildEval> kept;
    kept.reserve(children.size());
    int current_target = -1;
    int taken = 0;
    for (ChildEval& ce : children) {
      if (ce.cand.target != current_target) {
        current_target = ce.cand.target;
        taken = 0;
      }
      if (ce.solved) continue;  // already handled above
      if (taken < options_.greedy_k) {
        kept.push_back(std::move(ce));
        ++taken;
      } else {
        ++stats_.pruned_greedy;
      }
    }
    children = std::move(kept);
  }

  const bool narrow_scope =
      options_.exempt_scope == SynthesisOptions::ExemptScope::kComplement;
  const int exempt_budget =
      options_.exempt_budget >= 0 ? options_.exempt_budget
      : narrow_scope              ? 1
                                  : 2 * num_vars_;
  for (ChildEval& ce : children) {
    if (ce.solved) continue;
    if (should_stop()) {
      termination_ = stop_reason_;
      pool_.release(std::move(entry.state));
      return true;
    }
    // Non-reducing substitutions are tolerated up to the per-path budget
    // (strict monotone pruning provably disconnects e.g. wire
    // permutations from the identity); see DESIGN.md.
    const bool exempt = ce.elim <= 0;
    bool exempt_allowed = false;
    switch (options_.exempt_scope) {
      case SynthesisOptions::ExemptScope::kComplement:
        exempt_allowed = ce.cand.is_complement();
        break;
      case SynthesisOptions::ExemptScope::kAdditional:
        exempt_allowed = ce.cand.additional;
        break;
      case SynthesisOptions::ExemptScope::kAny:
        exempt_allowed = true;
        break;
    }
    if (exempt && (!exempt_allowed ||
                   (node.exempt && options_.forbid_exempt_chains) ||
                   node.exempt_count >= exempt_budget)) {
      ++stats_.pruned_elim;
      emit_prune(PruneReason::kElim, child_depth, ce.terms);
      continue;
    }
    const int bd = bound();
    if (bd >= 0 && child_depth >= bd - 1) {
      ++stats_.pruned_depth;
      emit_prune(PruneReason::kDepth, child_depth, ce.terms);
      continue;
    }
    if (options_.max_gates > 0 && child_depth >= options_.max_gates) {
      ++stats_.pruned_max_gates;
      emit_prune(PruneReason::kMaxGates, child_depth, ce.terms);
      continue;
    }
    // Materialize only now, into a pooled system: everything pruned above
    // never paid for a copy, and nothing here pays for an allocation.
    Rep materialized = pool_.acquire();
    {
      const ScopedPhaseTimer timer(profile_, Phase::kSubstitute);
      entry.state.substitute_into(ce.cand.target, ce.cand.factor,
                                  materialized);
    }
    if (tt_ != nullptr) {
      // One bounded table serves both engines: sequential passes and
      // lazy-SMP workers go through the same generation-aware depth rule
      // (core/transposition.hpp); a shallower rediscovery overwrites and
      // re-expands, never prunes.
      if (tt_->check_and_insert(materialized.hash(), child_depth,
                                options_.tt_owner, options_.tt_own_only)) {
        ++stats_.pruned_duplicate;
        emit_prune(PruneReason::kDuplicate, child_depth, ce.terms);
        pool_.release(std::move(materialized));
        continue;
      }
    }
    arena_.push_back(
        {entry.node, Gate(ce.cand.factor, ce.cand.target), child_depth,
         static_cast<std::uint8_t>(node.exempt_count + (exempt ? 1 : 0)),
         exempt});
    QueueEntry child;
    child.priority = ce.priority;
    child.seq = next_seq_++;
    child.node = static_cast<std::int32_t>(arena_.size()) - 1;
    child.terms = ce.terms;
    child.state = std::move(materialized);
    if (is_root) root_children_.push_back(child);  // copy kept for restarts
    push_entry(std::move(child));
  }
  pool_.release(std::move(entry.state));
  return false;
}

template <class Rep>
void BasicSearch<Rep>::restart() {
  ++stats_.restarts;
  pops_since_improvement_ = 0;
  for (QueueEntry& e : heap_) pool_.release(std::move(e.state));
  heap_.clear();
  ++restart_index_;
  {
    TraceEvent e;
    e.kind = TraceEventKind::kRestart;
    emit(e);
  }
  // Re-seed with the remaining first-level alternatives, skipping the
  // leaders already pursued (paper, Section IV-E: "restart the search from
  // the top of the search tree with a different substitution"). The saved
  // children are sorted once, on the first restart; every later restart
  // indexes into the same order instead of re-copying and re-sorting.
  if (!root_sorted_) {
    std::stable_sort(root_children_.begin(), root_children_.end(),
                     [](const QueueEntry& a, const QueueEntry& b) {
                       return EntryLess{}(b, a);  // descending priority
                     });
    root_sorted_ = true;
  }
  // Re-seeds were already counted as children when first created.
  for (std::size_t i = restart_index_; i < root_children_.size(); ++i) {
    if (i == restart_index_) {
      // Future restarts re-seed from strictly later indices, so this
      // alternative's system is moved into the heap, not copied.
      push_uncounted(std::move(root_children_[i]));
    } else {
      push_uncounted(root_children_[i]);
    }
  }
}

template <class Rep>
BasicRootExpansion<Rep> BasicSearch<Rep>::expand_root(
    const Rep& start, const SynthesisOptions& options) {
  // One pop (the root) through the regular engine, then harvest: the
  // sequential and parallel engines price, prune and count first-level
  // children identically by construction.
  SynthesisOptions root_options = options;
  root_options.max_nodes = 1;
  BasicSearch<Rep> search(start, root_options);
  const SynthesisResult r = search.run();
  BasicRootExpansion<Rep> root;
  root.stats = r.stats;
  if (start.is_identity()) {
    root.identity = true;
    return root;
  }
  if (search.best_node_ >= 0) {
    root.solved = true;
    root.solution_gate = search.arena_[search.best_node_].gate;
  }
  root.seeds.reserve(search.root_children_.size());
  for (QueueEntry& e : search.root_children_) {
    const NodeRecord& node = search.arena_[e.node];
    BasicRootSeed<Rep> seed;
    seed.gate = node.gate;
    seed.priority = e.priority;
    seed.terms = e.terms;
    seed.exempt_count = node.exempt_count;
    seed.exempt = node.exempt;
    seed.state = std::move(e.state);
    root.seeds.push_back(std::move(seed));
  }
  std::stable_sort(root.seeds.begin(), root.seeds.end(),
                   [](const BasicRootSeed<Rep>& a, const BasicRootSeed<Rep>& b) {
                     return a.priority > b.priority;
                   });
  return root;
}

template <class Rep>
SynthesisResult BasicSearch<Rep>::run() {
  SynthesisResult result;
  result.initial_terms = initial_terms_;
  run_start_ = Clock::now();
  if (options_.time_limit.count() > 0) {
    deadline_ = run_start_ + options_.time_limit;
    deadline_armed_ = true;
  }
  // Sequential runs report the table-traffic delta of this run; a shared
  // (possibly pass-spanning) table may already hold counters from earlier
  // passes. Lazy-SMP workers skip this — the parallel engine accounts the
  // whole pass once (parallel.cpp).
  if (tt_ != nullptr && shared_ == nullptr) {
    tt_inserts_base_ = tt_->inserts();
    tt_evictions_base_ = tt_->evictions();
  }

  {
    TraceEvent e;
    e.kind = TraceEventKind::kRunBegin;
    e.terms = initial_terms_;
    emit(e);
  }

  if (start_.is_identity()) {
    result.success = true;
    result.circuit = Circuit(num_vars_);
    result.termination = TerminationReason::kSolved;
    result.stats.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - run_start_);
    TraceEvent e;
    e.kind = TraceEventKind::kRunEnd;
    e.gates = 0;
    emit(e);
    return result;
  }

  arena_.push_back({-1, Gate(), 0, 0, false});
  if (seeds_.empty()) {
    QueueEntry root;
    root.priority = std::numeric_limits<double>::infinity();
    root.seq = next_seq_++;
    root.node = 0;
    root.terms = initial_terms_;
    root.state = start_;
    push_uncounted(std::move(root));  // the root is not a child
  } else {
    // Worker mode: adopt the pre-expanded first-level subtrees. They were
    // counted (children_created / children_pushed) by the root expansion,
    // and they arrive sorted by descending priority, so the restart
    // heuristic indexes into them directly.
    root_children_.reserve(seeds_.size());
    for (BasicRootSeed<Rep>& seed : seeds_) {
      arena_.push_back({0, seed.gate, 1, seed.exempt_count, seed.exempt});
      QueueEntry e;
      e.priority = seed.priority;
      e.seq = next_seq_++;
      e.node = static_cast<std::int32_t>(arena_.size()) - 1;
      e.terms = seed.terms;
      e.state = std::move(seed.state);
      root_children_.push_back(e);  // copy kept for restarts
      push_uncounted(std::move(e));
    }
    seeds_.clear();
    root_sorted_ = true;
  }

  termination_ = TerminationReason::kQueueExhausted;
  while (!heap_.empty()) {
    if (shared_ != nullptr) {
      if (shared_->stop.load(std::memory_order_acquire)) {
        termination_ = TerminationReason::kSolved;  // a peer fired stop
        break;
      }
      if (!shared_->try_consume_node()) {
        termination_ = TerminationReason::kNodeBudget;
        break;
      }
    } else if (options_.max_nodes > 0 &&
               stats_.nodes_expanded >= options_.max_nodes) {
      termination_ = TerminationReason::kNodeBudget;
      break;
    }
    // Polled every pop (the old every-64-pops cadence let a single slow
    // expansion overshoot the deadline unboundedly at large n); the
    // expansion loops poll per candidate on top of this.
    if (should_stop()) {
      termination_ = stop_reason_;
      break;
    }
    // The restart heuristic (Section IV-E) fires only while no solution
    // has been found at all: once one exists, best-first refinement under
    // the bestDepth - 1 pruning rule takes over.
    if (options_.restart_interval > 0 && bound() < 0 &&
        !root_children_.empty() &&
        pops_since_improvement_ >= options_.restart_interval) {
      if (restart_index_ + 1 >= root_children_.size()) break;
      restart();
      if (heap_.empty()) break;
    }

    QueueEntry entry = pop_entry();
    ++stats_.nodes_expanded;
    ++pops_since_improvement_;
    if (tele_nodes_ != nullptr) {
      tele_nodes_->inc();
      if ((stats_.nodes_expanded & 0x3f) == 0) sample_telemetry();
    }

    const int depth = arena_[entry.node].depth;
    if (sink_) {
      TraceEvent e;
      e.kind = TraceEventKind::kNodeExpanded;
      e.depth = depth;
      e.terms = entry.terms;
      e.priority = entry.priority;
      emit(e, /*sampled=*/true);
    }
    // Entries enqueued before the best solution shrank are discarded here;
    // they were counted children_pushed at creation, so they get their own
    // counter instead of the child-prune ones.
    const int bd = bound();
    if (bd >= 0 && depth >= bd - 1) {
      ++stats_.pruned_stale;
      emit_prune(PruneReason::kStale, depth, entry.terms);
      pool_.release(std::move(entry.state));
      continue;
    }
    if (options_.max_gates > 0 && depth >= options_.max_gates) {
      ++stats_.pruned_stale;
      emit_prune(PruneReason::kStale, depth, entry.terms);
      pool_.release(std::move(entry.state));
      continue;
    }
    if (expand(std::move(entry))) break;  // stop-at-first fired
  }

  stats_.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - run_start_);
  stats_.cancelled = termination_ == TerminationReason::kCancelled;
  if (tt_ != nullptr && shared_ == nullptr) {
    stats_.tt_inserts = tt_->inserts() - tt_inserts_base_;
    stats_.tt_evictions = tt_->evictions() - tt_evictions_base_;
    stats_.tt_generation = tt_->generation();
  }
  result.stats = stats_;
  result.termination = termination_;
  if (best_node_ >= 0) {
    result.success = true;
    result.circuit = extract_circuit(best_node_);
  } else {
    result.circuit = Circuit(num_vars_);
  }
  {
    TraceEvent e;
    e.kind = TraceEventKind::kRunEnd;
    e.gates = best_depth_;
    emit(e);
  }
  return result;
}

template class BasicSearch<Pprm>;
template class BasicSearch<DensePprm>;

}  // namespace rmrls
