#include "core/factor_enum.hpp"

namespace rmrls {

void enumerate_candidates_into(const Pprm& p, const SynthesisOptions& options,
                               const Candidate* skip,
                               std::vector<Candidate>& out) {
  out.clear();
  const int n = p.num_vars();
  for (int t = 0; t < n; ++t) {
    const CubeList& expansion = p.output(t);
    const Cube bit = cube_of_var(t);
    const bool has_solitary = expansion.contains(bit);
    bool offered_const = false;
    if (has_solitary || options.allow_relaxed_targets) {
      for (Cube c : expansion.cubes()) {
        if (c & bit) continue;  // target cannot also be a control
        Candidate cand{t, c};
        cand.additional = !has_solitary || c == kConstOne;
        if (skip != nullptr && cand == *skip) continue;
        out.push_back(cand);
        offered_const |= (c == kConstOne);
      }
    }
    if (options.allow_complement && !offered_const) {
      Candidate cand{t, kConstOne};
      cand.additional = true;
      if (skip == nullptr || !(cand == *skip)) out.push_back(cand);
    }
  }
}

std::vector<Candidate> enumerate_candidates(const Pprm& p,
                                            const SynthesisOptions& options,
                                            const Candidate* skip) {
  std::vector<Candidate> out;
  enumerate_candidates_into(p, options, skip, out);
  return out;
}

}  // namespace rmrls
