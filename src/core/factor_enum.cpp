#include "core/factor_enum.hpp"

#include <bit>

namespace rmrls {

void enumerate_candidates_into(const Pprm& p, const SynthesisOptions& options,
                               const Candidate* skip,
                               std::vector<Candidate>& out) {
  out.clear();
  const int n = p.num_vars();
  for (int t = 0; t < n; ++t) {
    const CubeList& expansion = p.output(t);
    const Cube bit = cube_of_var(t);
    const bool has_solitary = expansion.contains(bit);
    bool offered_const = false;
    if (has_solitary || options.allow_relaxed_targets) {
      for (Cube c : expansion.cubes()) {
        if (c & bit) continue;  // target cannot also be a control
        Candidate cand{t, c};
        cand.additional = !has_solitary || c == kConstOne;
        if (skip != nullptr && cand == *skip) continue;
        out.push_back(cand);
        offered_const |= (c == kConstOne);
      }
    }
    if (options.allow_complement && !offered_const) {
      Candidate cand{t, kConstOne};
      cand.additional = true;
      if (skip == nullptr || !(cand == *skip)) out.push_back(cand);
    }
  }
}

void enumerate_candidates_into(const DensePprm& p,
                               const SynthesisOptions& options,
                               const Candidate* skip,
                               std::vector<Candidate>& out) {
  out.clear();
  const int n = p.num_vars();
  const std::size_t words = p.words_per_output();
  for (int t = 0; t < n; ++t) {
    const std::uint64_t* bits = p.output_bits(t);
    const Cube bit = cube_of_var(t);
    const bool has_solitary = p.output_contains(t, bit);
    bool offered_const = false;
    if (has_solitary || options.allow_relaxed_targets) {
      for (std::size_t w = 0; w < words; ++w) {
        // The target cannot also be a control: mask out (t < 6) or skip
        // (t >= 6) the half of the spectrum whose cubes contain v_t.
        if (t >= 6 && ((w >> (t - 6)) & 1u) != 0) continue;
        std::uint64_t word = bits[w];
        if (t < 6) word &= ~kDenseVarMask[t];
        const std::uint64_t base = static_cast<std::uint64_t>(w) << 6;
        while (word != 0) {
          const Cube c =
              base + static_cast<unsigned>(std::countr_zero(word));
          word &= word - 1;
          Candidate cand{t, c};
          cand.additional = !has_solitary || c == kConstOne;
          if (skip != nullptr && cand == *skip) continue;
          out.push_back(cand);
          offered_const |= (c == kConstOne);
        }
      }
    }
    if (options.allow_complement && !offered_const) {
      Candidate cand{t, kConstOne};
      cand.additional = true;
      if (skip == nullptr || !(cand == *skip)) out.push_back(cand);
    }
  }
}

std::vector<Candidate> enumerate_candidates(const Pprm& p,
                                            const SynthesisOptions& options,
                                            const Candidate* skip) {
  std::vector<Candidate> out;
  enumerate_candidates_into(p, options, skip, out);
  return out;
}

}  // namespace rmrls
