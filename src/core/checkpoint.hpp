/// \file checkpoint.hpp
/// \brief Crash-safe record of completed batch job ids (docs/fleet.md).
///
/// A fleet shard that dies mid-corpus (OOM kill, node preemption, plain
/// SIGKILL) must resume instead of restarting: the batch driver marks each
/// job id here the moment its outcome is final, and a restarted run skips
/// every marked job before its workers ever see it. The file is rewritten
/// whole via the same tmp+rename protocol as the TFC store, so a reader —
/// including the restarted process itself — only ever observes a complete
/// checkpoint, never a torn one, no matter when the writer was killed.
///
/// Job ids are `<16-hex stable_spec_key>.<occurrence>` (rev/canonical.hpp,
/// core/batch.hpp assign_job_ids): content-derived and therefore stable
/// across restarts, reorderings of unrelated corpus lines, and changes of
/// the shard count. The format is one id per line under a `#
/// rmrls-checkpoint-v1` header.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "core/status.hpp"

namespace rmrls {

class BatchCheckpoint {
 public:
  /// Loads `path` if it exists; a missing file is an empty checkpoint (the
  /// common first run). An existing file that cannot be read or lacks the
  /// v1 header is an error — silently restarting from scratch would
  /// re-synthesize everything the dead run paid for.
  [[nodiscard]] static Result<BatchCheckpoint> open(const std::string& path);

  BatchCheckpoint(BatchCheckpoint&&) = default;
  BatchCheckpoint& operator=(BatchCheckpoint&&) = default;

  /// True when `id` was marked complete by this or a previous run.
  [[nodiscard]] bool completed(const std::string& id) const;

  [[nodiscard]] std::size_t completed_count() const;

  /// Records one completed job. Thread-safe (the batch workers call it
  /// concurrently); flushes to disk automatically every `flush_every`
  /// newly-marked jobs.
  void mark(const std::string& id);

  /// Atomically rewrites the file (tmp+rename) with every id marked so
  /// far. Returns false when the write failed; the in-memory set is
  /// unaffected either way, so a later flush retries the full state.
  bool flush();

  /// How many mark() calls between automatic flushes (default 1: maximal
  /// crash-safety; the rewrite is a few KiB of text at realistic corpus
  /// sizes). 0 disables automatic flushing entirely.
  void set_flush_every(std::uint64_t n) { flush_every_ = n; }

 private:
  explicit BatchCheckpoint(std::string path) : path_(std::move(path)) {}

  std::string path_;
  std::uint64_t flush_every_ = 1;
  std::uint64_t unflushed_ = 0;
  // Behind unique_ptr so the class stays movable (Result<BatchCheckpoint>).
  std::unique_ptr<std::mutex> m_ = std::make_unique<std::mutex>();
  std::unordered_set<std::string> done_;
};

}  // namespace rmrls
