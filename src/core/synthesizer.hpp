/// \file synthesizer.hpp
/// \brief Public entry points of the RMRLS synthesizer.
///
/// The tool of the paper: given a reversible specification (a PPRM system,
/// a permutation truth table, or a circuit to re-synthesize), produce a
/// cascade of generalized Toffoli gates realizing it. See options.hpp for
/// the heuristics' knobs and search.hpp for the engine.
///
/// Typical use:
/// \code
///   TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
///   SynthesisResult r = synthesize(spec);
///   if (r.success) std::cout << r.circuit.to_string() << "\n";
/// \endcode

#pragma once

#include "core/options.hpp"
#include "core/search.hpp"
#include "rev/pprm.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Synthesizes the reversible function given by its PPRM system. This is
/// the native input form (paper, Section IV) and the only one that scales
/// past ~20 lines.
[[nodiscard]] SynthesisResult synthesize(const Pprm& spec,
                                         const SynthesisOptions& options = {});

/// Convenience overload: extracts the canonical PPRM of `spec` first.
[[nodiscard]] SynthesisResult synthesize(const TruthTable& spec,
                                         const SynthesisOptions& options = {});

/// Synthesizes both `spec` and its inverse (splitting the node budget),
/// exploiting that the mirror of a cascade for f^-1 realizes f, and
/// returns the better circuit (fewer gates; ties by quantum cost). The
/// two search problems often have very different difficulty — the same
/// idea behind the bidirectional variant of [7].
[[nodiscard]] SynthesisResult synthesize_bidirectional(
    const TruthTable& spec, const SynthesisOptions& options = {});

/// Verifies `circuit` against `spec` by exhaustive simulation.
[[nodiscard]] bool implements(const Circuit& circuit, const TruthTable& spec);

/// Verifies `circuit` against a PPRM `spec` of any width: exhaustively for
/// narrow systems, by seeded random sampling (plus low corner points) when
/// enumeration is infeasible.
[[nodiscard]] bool implements(const Circuit& circuit, const Pprm& spec,
                              int samples = 4096);

}  // namespace rmrls
