/// \file synth_cache.hpp
/// \brief Sharded LRU circuit cache keyed by canonical orbit hashes
/// (docs/caching.md).
///
/// The cross-request reuse layer: once any request synthesizes a circuit
/// for an orbit representative (rev/canonical.hpp), every later request
/// whose spec lands in the same orbit is served by relabeling that cached
/// cascade instead of searching again. The cache is striped — each shard
/// owns an independently locked LRU list under a byte budget — and
/// *single-flight*: concurrent requests for one in-flight key synthesize
/// once, with the followers blocking on the leader's result
/// (core/batch.hpp counts them as `batch_dedup`). An optional on-disk
/// store (one .tfc file per canonical key) survives restarts.
///
/// The cache stores the circuit of the *representative*; reconstruction
/// and the mandatory equivalence re-verification of every hit live with
/// the callers (core/batch.cpp, tools/rmrls_main.cpp), which know the
/// original spec and its OrbitTransform.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/telemetry.hpp"
#include "rev/circuit.hpp"

namespace rmrls {

struct SynthCacheOptions {
  /// Total in-memory budget across all shards; entries are costed at
  /// their gate storage plus bookkeeping overhead. The LRU tail is
  /// evicted past the budget, but each shard always retains its most
  /// recent entry so a single oversized circuit cannot wedge insertion.
  std::size_t byte_budget = std::size_t{64} << 20;

  /// Independently locked stripes; contention drops roughly linearly.
  int shards = 8;

  /// Optional on-disk store: one `<hex key>.tfc` per canonical key,
  /// written on insert and consulted on memory misses (warm restarts).
  /// Empty disables it. Unreadable or corrupt files degrade to misses.
  std::string dir;

  /// Cross-process single-flight over the disk store (docs/fleet.md): a
  /// leader that misses both memory and disk claims `<hex key>.lease` via
  /// O_CREAT|O_EXCL before synthesizing; a process that loses the race
  /// polls for the .tfc to appear instead of synthesizing the same cold
  /// orbit in parallel. Only meaningful with a non-empty `dir`.
  bool cross_process_lease = true;

  /// Longest a loser polls for another process's result before giving up
  /// and synthesizing anyway (duplicate work, never wrong results).
  std::chrono::milliseconds lease_wait{3000};

  /// A lease older than this is treated as abandoned (its holder was
  /// SIGKILLed mid-synthesis) and stolen. Must comfortably exceed the
  /// slowest expected single synthesis.
  std::chrono::milliseconds lease_stale{120000};

  /// Byte budget of the on-disk store, 0 = unbounded. Enforced by
  /// gc_disk(): oldest-mtime .tfc files are removed past the budget
  /// (publish rewrites a revived entry's file, so mtime approximates
  /// recency of use across the whole fleet).
  std::size_t disk_byte_budget = 0;

  /// Run gc_disk() every this many disk stores (plus once at
  /// construction). 0 disables automatic sweeps.
  std::uint64_t disk_gc_every = 64;
};

/// Counters of one cache instance, aggregated across shards.
struct SynthCacheStats {
  std::uint64_t hits = 0;         ///< served from memory
  std::uint64_t disk_hits = 0;    ///< revived from the on-disk store
  std::uint64_t misses = 0;       ///< caller became the synthesizing leader
  std::uint64_t dedup_waits = 0;  ///< followers that blocked on a leader
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t lease_acquired = 0;  ///< cross-process leases claimed
  std::uint64_t lease_waits = 0;     ///< lost lease races (polled instead)
  std::uint64_t lease_timeouts = 0;  ///< poll expired; synthesized anyway
  std::uint64_t disk_evictions = 0;  ///< .tfc files removed by gc_disk()
};

class SynthCache {
 public:
  explicit SynthCache(SynthCacheOptions options);
  SynthCache(const SynthCache&) = delete;
  SynthCache& operator=(const SynthCache&) = delete;

  enum class Outcome : std::uint8_t {
    kHit,     ///< `circuit` holds the cached representative circuit
    kLead,    ///< caller must synthesize, then call publish() exactly once
    kFollow,  ///< waited on a leader; `circuit` set iff the leader won
  };

  struct Acquisition {
    Outcome outcome = Outcome::kLead;
    std::optional<Circuit> circuit;
  };

  /// Memory, then disk lookup; on a cold key the first caller becomes the
  /// leader and later callers block until it publishes. A leader that
  /// abandons the key without publish() would wedge its followers — the
  /// batch driver publishes on every path, including failures.
  [[nodiscard]] Acquisition acquire(std::uint64_t key);

  /// Leader completion: stores the circuit (nullptr = synthesis failed,
  /// nothing stored) and wakes the key's followers.
  void publish(std::uint64_t key, const Circuit* circuit);

  /// Plain lookup/insert without single-flight (the single-shot CLI path).
  [[nodiscard]] std::optional<Circuit> lookup(std::uint64_t key);
  void insert(std::uint64_t key, const Circuit& circuit);

  [[nodiscard]] SynthCacheStats stats() const;
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t entry_count() const;

  /// Sweeps the disk store: removes stale .lease / .tmp* litter from dead
  /// processes, then evicts oldest-mtime .tfc files until the store fits
  /// `disk_byte_budget` (no-op budget when 0). Safe to run concurrently
  /// with readers and writers in any process — every removal races only
  /// against tmp+rename republication, and a reader that loses sees a
  /// plain miss. Returns the number of .tfc files removed. Runs
  /// automatically at construction and every `disk_gc_every` stores.
  std::size_t gc_disk() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    Circuit circuit;
    std::size_t bytes = 0;
  };

  /// One in-flight synthesis; followers wait on `cv` until the leader
  /// publishes into `circuit`.
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::optional<Circuit> circuit;
  };

  struct Shard {
    mutable std::mutex m;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map;
    std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> inflight;
    std::size_t bytes = 0;
    SynthCacheStats stats;
  };

  [[nodiscard]] Shard& shard_of(std::uint64_t key) {
    return shards_[(key >> 56) % shards_.size()];
  }

  /// Inserts under the shard lock (already held), evicting past the
  /// per-shard budget.
  void insert_locked(Shard& shard, std::uint64_t key, const Circuit& circuit);

  [[nodiscard]] std::optional<Circuit> load_from_disk(std::uint64_t key) const;
  void store_to_disk(std::uint64_t key, const Circuit& circuit) const;

  /// O_CREAT|O_EXCL claim of `<hex key>.lease`; true iff this process now
  /// owns the key's cross-process flight (tracked in owned_leases_).
  bool try_lease(std::uint64_t key);
  void release_lease(std::uint64_t key);
  /// The leader path's lease protocol after a disk miss. Returns a circuit
  /// when another process published while we polled (adopt as disk hit);
  /// nullopt means: synthesize (with or without the lease).
  [[nodiscard]] std::optional<Circuit> lease_or_wait(std::uint64_t key);

  SynthCacheOptions options_;
  std::size_t shard_budget_ = 0;
  std::vector<Shard> shards_;

  std::mutex lease_m_;
  std::unordered_set<std::uint64_t> owned_leases_;
  mutable std::atomic<std::uint64_t> lease_acquired_{0};
  mutable std::atomic<std::uint64_t> lease_waits_{0};
  mutable std::atomic<std::uint64_t> lease_timeouts_{0};
  mutable std::atomic<std::uint64_t> disk_evictions_{0};
  mutable std::atomic<std::uint64_t> stores_since_gc_{0};
  mutable std::atomic<bool> gc_running_{false};

  /// Live telemetry (obs/telemetry.hpp): handles grabbed once at
  /// construction when the process registry is armed, null otherwise —
  /// every site below is one pointer test with telemetry off.
  Counter* tele_hits_ = nullptr;
  Counter* tele_disk_hits_ = nullptr;
  Counter* tele_misses_ = nullptr;
  Counter* tele_inserts_ = nullptr;
  Counter* tele_evictions_ = nullptr;
  Gauge* tele_bytes_ = nullptr;
  Histogram* tele_follow_us_ = nullptr;    ///< follower cv-wait latency
  std::vector<Gauge*> tele_shard_bytes_;   ///< cache.shard<i>.bytes
};

}  // namespace rmrls
