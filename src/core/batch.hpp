/// \file batch.hpp
/// \brief Batch throughput driver: a thread pool *across* functions
/// (docs/caching.md, docs/parallelism.md).
///
/// PR 2's parallel engine splits one search across threads; this driver is
/// the second level of that split — it runs many independent synthesis
/// jobs concurrently, routing each through the canonical-orbit cache
/// (core/synth_cache.hpp) so duplicate-heavy workloads synthesize each
/// orbit once and relabel the rest. One CancelToken and one Watchdog span
/// the whole batch (docs/robustness.md): a batch deadline or a SIGINT
/// stops every in-flight job and marks the unstarted ones cancelled.
///
/// With a cache, a job synthesizes its spec's *canonical representative*
/// (rev/canonical.hpp) so the cached circuit serves the entire orbit;
/// every cache hit is reconstructed and re-verified against the original
/// spec with the exact PPRM check before it counts. Without a cache the
/// driver degrades to plain per-job synthesize_resilient on the original
/// spec — bit-identical to the single-shot path.

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/resilient.hpp"
#include "core/status.hpp"
#include "core/synth_cache.hpp"
#include "rev/canonical.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

class BatchCheckpoint;

/// One synthesis request of a batch.
struct BatchJob {
  std::string name;  ///< label for outcomes/metrics (e.g. "specs.txt:12")
  TruthTable spec;
  /// Stable job id `<16-hex stable_spec_key>.<occurrence>` used by shard
  /// assignment and checkpoint files (docs/fleet.md); filled by
  /// assign_job_ids over the *whole* corpus, before any shard filtering,
  /// so ids agree across every shard count. Empty = unidentified (no
  /// checkpointing for this job).
  std::string id;
};

/// Outcome of one job, in input order.
struct BatchJobOutcome {
  std::string name;
  /// kOk with a verified circuit; kCancelled for jobs stopped (or never
  /// started) by the batch token; kBudgetExhausted otherwise.
  Status status;
  /// Circuit, accumulated engine counters, and termination reason. For
  /// cache hits the stats are empty — no engine ran.
  SynthesisResult result;
  FallbackEngine engine = FallbackEngine::kNone;
  /// True iff `result.circuit` was re-checked against this job's own spec
  /// (not just the orbit representative) with the exact PPRM check.
  bool verified = false;
  bool cache_hit = false;   ///< served from the cache (memory or disk)
  bool orbit_hit = false;   ///< hit with a non-identity orbit transform
  bool deduped = false;     ///< adopted a concurrent leader's result
  /// True iff a checkpoint said this job already completed in a previous
  /// run: nothing ran, nothing is emitted for it (status stays kOk with an
  /// empty circuit; the CLI suppresses its per-job output entirely).
  bool skipped = false;
  /// Correlation id of this job (obs/telemetry.hpp): stamped into the
  /// job's trace events, the heartbeat `active` set, and the per-job
  /// metrics record. 0 when telemetry is disarmed — disabled runs carry
  /// no ids anywhere, keeping their output byte-identical to v1.
  std::uint64_t trace_id = 0;
  std::chrono::microseconds elapsed{0};
};

/// Batch-level counters (the `rmrls-metrics-v1` fields of the summary
/// record). Every completed job contributes to exactly one of hits /
/// misses / dedup, so hits + misses + dedup <= jobs, with equality when
/// nothing was cancelled.
struct BatchStats {
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;  ///< jobs that ended kOk with a circuit
  std::uint64_t failed = 0;     ///< jobs that ended with a non-kOk status
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;      ///< jobs that invoked synthesis
  std::uint64_t cache_orbit_hits = 0;  ///< subset of hits: relabeled/inverted
  std::uint64_t batch_dedup = 0;       ///< followers served by a leader
  std::uint64_t skipped = 0;  ///< checkpoint-resumed (not in any bucket above)
};

struct BatchOptions {
  /// Per-job cascade configuration. `resilience.deadline`,
  /// `resilience.use_watchdog` and `resilience.cancel_token` are
  /// overridden per job: the batch owns the watchdog and token, and each
  /// job's deadline is the batch time remaining at its start.
  /// `resilience.search.num_threads` is overridden with the search-level
  /// share of `total_threads` (see split_threads).
  ResilienceOptions resilience;

  /// Total worker budget across both levels. 0 = one per hardware thread.
  int total_threads = 1;

  /// Explicit job-level thread count; 0 derives it as
  /// min(jobs, total_threads), giving leftover threads to each search.
  int batch_threads = 0;

  /// Wall-clock budget of the *whole batch*; zero means none.
  std::chrono::milliseconds deadline{0};

  /// Arm one Watchdog for `deadline` over the whole batch.
  bool use_watchdog = true;

  /// Optional caller-owned token (e.g. a SIGINT handler); adopted as the
  /// batch token so its user-reason cancellation reaches every job.
  CancelToken* cancel_token = nullptr;

  /// Orbit cache shared by the jobs; null runs cache-less (each job
  /// synthesizes its original spec directly).
  SynthCache* cache = nullptr;

  /// Canonicalizer configuration (exact-scan cutoff, candidate budget).
  CanonicalOptions canonical;

  /// Optional crash-resume ledger (core/checkpoint.hpp): jobs whose id is
  /// already recorded are skipped wholesale; every job finishing kOk is
  /// marked (and flushed per BatchCheckpoint's own cadence). Jobs with an
  /// empty id pass through unrecorded.
  BatchCheckpoint* checkpoint = nullptr;
};

struct BatchResult {
  std::vector<BatchJobOutcome> outcomes;  ///< 1:1 with the input jobs
  BatchStats stats;
  /// Engine counters accumulated across every job that synthesized.
  SynthesisStats search_stats;
  /// kOk iff every job succeeded; otherwise the first failing job's
  /// status in input order (the CLI exit code follows it).
  Status status;
  bool watchdog_fired = false;
  std::chrono::microseconds elapsed{0};
};

/// Outcome of one cached synthesis (synthesize_cached): the per-request
/// core of a batch job, shared verbatim with the serve daemon
/// (src/serve/server.hpp) so both paths route through the same warm cache
/// with the same verification guarantees.
struct CachedSynthesisOutcome {
  /// kOk with a verified circuit; kCancelled / kBudgetExhausted /
  /// kInternal otherwise (docs/robustness.md).
  Status status;
  SynthesisResult result;
  FallbackEngine engine = FallbackEngine::kNone;
  bool verified = false;   ///< re-checked against the caller's own spec
  bool cache_hit = false;  ///< served from the cache (memory or disk)
  bool orbit_hit = false;  ///< hit with a non-identity orbit transform
  bool deduped = false;    ///< adopted a concurrent leader's result
};

/// Synthesizes `spec` through the canonical-orbit cache (docs/caching.md):
/// canonicalize, single-flight acquire, reconstruct + re-verify every hit,
/// synthesize the orbit representative on a miss and publish it. `cache`
/// may be null — the call then degrades to plain synthesize_resilient on
/// the original spec, bit-identical to the single-shot path. Thread-safe
/// for concurrent callers sharing one cache; never throws on budget,
/// cancellation, or verification failure.
[[nodiscard]] CachedSynthesisOutcome synthesize_cached(
    const TruthTable& spec, SynthCache* cache,
    const CanonicalOptions& canonical, const ResilienceOptions& resilience);

/// How `total` threads are split between the two levels.
struct ThreadSplit {
  int batch_threads = 1;   ///< concurrent jobs
  int search_threads = 1;  ///< SynthesisOptions::num_threads per job
};

/// Resolves the two-level split (docs/parallelism.md): an explicit
/// `batch_threads` wins; otherwise jobs get priority
/// (batch = min(jobs, total)) and each search keeps the integer share
/// total / batch, never below 1. `total <= 0` means one per hardware
/// thread.
[[nodiscard]] ThreadSplit split_threads(int total, int batch_threads,
                                        std::size_t jobs);

/// Fills every job's stable id (docs/fleet.md): 16 lowercase hex digits of
/// stable_spec_key(spec), a dot, then the 0-based occurrence count of that
/// key among *earlier* jobs — so exact-duplicate corpus lines stay
/// distinct, and ids depend only on spec content and relative duplicate
/// order, never on the shard count. Call on the full corpus BEFORE
/// filter_shard.
void assign_job_ids(std::vector<BatchJob>& jobs);

/// True iff `spec` belongs to shard `shard_index` of `shard_count`
/// (docs/fleet.md): the stable spec key is finalizer-mixed (splitmix64) so
/// consecutive permutations spread evenly, then reduced mod shard_count.
/// Every spec belongs to exactly one shard; membership is independent of
/// file order, duplicates, and the process evaluating it.
[[nodiscard]] bool shard_owns(const TruthTable& spec, int shard_index,
                              int shard_count);

/// The subset of `jobs` owned by shard `shard_index` of `shard_count`, in
/// input order. shard_count <= 1 returns the input unchanged (ids and
/// all); shard_index out of range returns an empty vector.
[[nodiscard]] std::vector<BatchJob> filter_shard(std::vector<BatchJob> jobs,
                                                 int shard_index,
                                                 int shard_count);

/// Runs the batch. Always returns; never throws on budget, cancellation,
/// or individual job failure. An empty `jobs` vector is a valid batch (a
/// shard that owns no specs, an empty corpus): it returns kOk with
/// all-zero stats.
[[nodiscard]] BatchResult run_batch(const std::vector<BatchJob>& jobs,
                                    const BatchOptions& options = {});

}  // namespace rmrls
