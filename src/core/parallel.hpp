/// \file parallel.hpp
/// \brief The parallel best-first search engine (docs/parallelism.md).
///
/// The paper's search is embarrassingly parallel at the root: the restart
/// heuristic already treats first-level substitutions as independent entry
/// points. The parallel engine makes that literal — phase 1 expands the
/// root sequentially, phase 2 partitions the first-level subtrees
/// round-robin by priority across a worker pool. Each worker runs the
/// unmodified sequential search over its subtrees (own heap, node arena
/// and Pprm pool); the workers coordinate through exactly three shared
/// structures:
///
///   * SharedBound      — atomic best solution depth; one worker's circuit
///                        immediately tightens every worker's
///                        `bestDepth - 1` pruning.
///   * ShardedSeenTable — striped-mutex transposition table keyed by
///                        Pprm::hash(), so workers never re-explore a
///                        state a peer already enqueued at the same or a
///                        shallower depth.
///   * the node budget + stop flag — SynthesisOptions::max_nodes is a
///                        global budget drawn from atomically; the stop
///                        flag ends every worker when stop-at-first fires.
///
/// `SynthesisOptions::num_threads == 1` never enters this file — the
/// sequential engine runs unchanged and bit-identically.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/options.hpp"
#include "rev/pprm.hpp"

namespace rmrls {

struct SynthesisResult;  // core/search.hpp

namespace detail {

/// Atomic best solution depth shared by all search workers. -1 = none.
class SharedBound {
 public:
  [[nodiscard]] int get() const {
    return best_.load(std::memory_order_relaxed);
  }

  /// Atomically tightens the bound to `depth` if that improves it.
  /// Returns whether this caller won the race — the winner (and only the
  /// winner) owns a circuit of that depth, so exactly one worker records
  /// each strictly improving solution.
  bool try_improve(int depth) {
    int cur = best_.load(std::memory_order_relaxed);
    while (cur < 0 || depth < cur) {
      if (best_.compare_exchange_weak(cur, depth,
                                      std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<int> best_{-1};
};

/// Striped-mutex transposition table: best depth at which each PPRM hash
/// was enqueued by any worker. Shard = independently locked map, picked by
/// a remix of the state hash, so contention falls roughly linearly with
/// the shard count. Same depth-aware rule as the sequential table: a
/// rediscovery at the same or a larger depth is redundant, a shallower one
/// must be re-expanded or optimality suffers.
class ShardedSeenTable {
 public:
  explicit ShardedSeenTable(int shards)
      : shards_(static_cast<std::size_t>(shards < 1 ? 1 : shards)) {}

  ShardedSeenTable(const ShardedSeenTable&) = delete;
  ShardedSeenTable& operator=(const ShardedSeenTable&) = delete;

  /// Returns true when the state should be pruned (already seen at the
  /// same or a shallower depth); otherwise records `depth` and returns
  /// false.
  bool check_and_insert(std::size_t hash, std::int32_t depth) {
    Shard& s = shards_[shard_of(hash)];
    const std::lock_guard<std::mutex> lock(s.m);
    const auto [it, inserted] = s.map.try_emplace(hash, depth);
    if (inserted) return false;
    if (it->second <= depth) {
      ++s.hits;
      return true;
    }
    it->second = depth;
    return false;
  }

  /// Duplicate hits per shard (for SynthesisStats::tt_shard_hits).
  [[nodiscard]] std::vector<std::uint64_t> hit_counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(shards_.size());
    for (const Shard& s : shards_) {
      const std::lock_guard<std::mutex> lock(s.m);
      out.push_back(s.hits);
    }
    return out;
  }

  /// Live occupancy across all shards (telemetry `search.tt_entries`
  /// gauge). Point-in-time under concurrency: each shard is read under
  /// its own lock, not the table as a whole.
  [[nodiscard]] std::uint64_t entry_count() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      const std::lock_guard<std::mutex> lock(s.m);
      total += s.map.size();
    }
    return total;
  }

  /// Total duplicate hits across all shards (telemetry
  /// `search.tt_shard_hits` gauge).
  [[nodiscard]] std::uint64_t total_hits() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      const std::lock_guard<std::mutex> lock(s.m);
      total += s.hits;
    }
    return total;
  }

 private:
  /// One cache line per shard header so neighbouring locks don't
  /// false-share.
  struct alignas(64) Shard {
    mutable std::mutex m;
    std::unordered_map<std::size_t, std::int32_t> map;
    std::uint64_t hits = 0;
  };

  [[nodiscard]] std::size_t shard_of(std::size_t hash) const {
    // Remix before reducing: Pprm::hash()'s low bits also drive the
    // per-shard map's bucketing.
    return static_cast<std::size_t>(splitmix64(hash)) % shards_.size();
  }

  std::vector<Shard> shards_;
};

/// Everything the workers of one parallel search pass share.
struct SharedSearchContext {
  explicit SharedSearchContext(int shards, std::uint64_t node_limit_in)
      : seen(shards), node_limit(node_limit_in) {}

  SharedBound bound;
  ShardedSeenTable seen;
  /// Global node budget (0 = unlimited): every worker pop draws one token.
  std::atomic<std::uint64_t> nodes_spent{0};
  std::uint64_t node_limit = 0;
  /// Raised by the worker that fires stop-at-first; every worker checks it
  /// once per pop.
  std::atomic<bool> stop{false};

  /// Claims one node-expansion token; false when the budget is exhausted.
  bool try_consume_node() {
    if (node_limit == 0) return true;
    return nodes_spent.fetch_add(1, std::memory_order_relaxed) < node_limit;
  }
};

}  // namespace detail

/// Runs one search pass over `start` with the parallel engine
/// (`options.num_threads` workers; 0 = one per hardware thread; <= 1 falls
/// back to the sequential engine). Same contract as Search::run(); see the
/// file comment for the coordination model.
[[nodiscard]] SynthesisResult run_parallel_search(
    const Pprm& start, const SynthesisOptions& options);

/// Dense-kernel overload: identical engine over DensePprm states. The
/// kernel choice is made once per pass by the synthesizer and inherited by
/// every worker — the shared transposition table is keyed by the
/// representation-independent state hash, but mixing representations
/// within one pass would still duplicate per-worker pools for no benefit
/// (docs/parallelism.md).
class DensePprm;
[[nodiscard]] SynthesisResult run_parallel_search(
    const DensePprm& start, const SynthesisOptions& options);

}  // namespace rmrls
