/// \file parallel.hpp
/// \brief The lazy-SMP parallel best-first search engine
///        (docs/parallelism.md).
///
/// The engine borrows the coordination model of modern chess searchers:
/// phase 1 expands the root sequentially and harvests the first-level
/// subtrees; phase 2 gives EVERY worker the full set of subtrees — not a
/// static partition — with a diversified ordering per worker (rotated
/// root order plus a deterministic per-worker priority jitter,
/// SynthesisOptions::order_jitter). Workers coordinate implicitly through
/// exactly three shared structures:
///
///   * SharedBound        — atomic best solution depth; one worker's
///                          circuit immediately tightens every worker's
///                          `bestDepth - 1` pruning.
///   * TranspositionTable — the bounded bucketized table of
///                          core/transposition.hpp. The first worker to
///                          reach a state claims it; every peer re-reaching
///                          it at the same or a deeper depth prunes and
///                          diverges to unexplored lines. This is what
///                          turns N copies of the same root into N
///                          complementary searches (lazy SMP).
///   * the node budget + stop flag — SynthesisOptions::max_nodes is a
///                          global budget drawn from atomically; the stop
///                          flag ends every worker when stop-at-first
///                          fires.
///
/// Compared to the static round-robin partition this replaces, no worker
/// can strand a subtree by going idle (everyone holds every entry point),
/// and the busiest lines are deduplicated through the TT instead of
/// pre-assigned.
///
/// `SynthesisOptions::num_threads == 1` never enters this file — the
/// sequential engine runs unchanged and bit-identically.

#pragma once

#include <atomic>
#include <cstdint>

#include "core/options.hpp"
#include "core/transposition.hpp"
#include "rev/pprm.hpp"

namespace rmrls {

struct SynthesisResult;  // core/search.hpp

namespace detail {

/// Atomic best solution depth shared by all search workers. -1 = none.
class SharedBound {
 public:
  [[nodiscard]] int get() const {
    return best_.load(std::memory_order_relaxed);
  }

  /// Atomically tightens the bound to `depth` if that improves it.
  /// Returns whether this caller won the race — the winner (and only the
  /// winner) owns a circuit of that depth, so exactly one worker records
  /// each strictly improving solution.
  bool try_improve(int depth) {
    int cur = best_.load(std::memory_order_relaxed);
    while (cur < 0 || depth < cur) {
      if (best_.compare_exchange_weak(cur, depth,
                                      std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<int> best_{-1};
};

/// Everything the workers of one parallel search pass share. The
/// transposition table is borrowed, never owned: the pass either inherits
/// the driver's pass-spanning table (SynthesisOptions::tt) or the engine
/// function stack-allocates one for the pass.
struct SharedSearchContext {
  SharedSearchContext(TranspositionTable* tt_in, std::uint64_t node_limit_in)
      : tt(tt_in), node_limit(node_limit_in) {}

  SharedBound bound;
  TranspositionTable* tt = nullptr;
  /// Global node budget (0 = unlimited): every worker pop draws one token.
  std::atomic<std::uint64_t> nodes_spent{0};
  std::uint64_t node_limit = 0;
  /// Raised by the worker that fires stop-at-first; every worker checks it
  /// once per pop.
  std::atomic<bool> stop{false};

  /// Claims one node-expansion token; false when the budget is exhausted.
  bool try_consume_node() {
    if (node_limit == 0) return true;
    return nodes_spent.fetch_add(1, std::memory_order_relaxed) < node_limit;
  }
};

}  // namespace detail

/// Runs one search pass over `start` with the parallel engine
/// (`options.num_threads` workers; 0 = one per hardware thread; <= 1 falls
/// back to the sequential engine). Same contract as Search::run(); see the
/// file comment for the coordination model.
[[nodiscard]] SynthesisResult run_parallel_search(
    const Pprm& start, const SynthesisOptions& options);

/// Dense-kernel overload: identical engine over DensePprm states. The
/// kernel choice is made once per pass by the synthesizer and inherited by
/// every worker — the shared transposition table is keyed by the
/// representation-independent state hash, but mixing representations
/// within one pass would still duplicate per-worker pools for no benefit
/// (docs/parallelism.md).
class DensePprm;
[[nodiscard]] SynthesisResult run_parallel_search(
    const DensePprm& start, const SynthesisOptions& options);

}  // namespace rmrls
