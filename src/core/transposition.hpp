/// \file transposition.hpp
/// \brief Bounded-memory transposition table with depth-preferred + aging
///        replacement (docs/parallelism.md).
///
/// Replaces the grow-only seen-tables (the sequential unordered_map and the
/// parallel ShardedSeenTable) with the fixed-size bucketized layout mature
/// game-tree searchers use: the table is a power-of-two array of 64-byte
/// buckets, four 16-byte entries `{hash, depth, generation}` each, sized
/// once from a megabyte budget (`SynthesisOptions::tt_mb`, CLI `--tt-mb`)
/// and never growing. A full bucket evicts by policy instead of
/// allocating:
///
///   * kAlways          — replace a fixed slot unconditionally (baseline).
///   * kDepthPreferred  — evict the *deepest* entry. RMRLS depth semantics
///                        invert chess's: an entry at depth d prunes every
///                        revisit at depth' >= d, so the shallowest entries
///                        are the most valuable and the deepest the most
///                        expendable.
///   * kAging (default) — evict the entry from the oldest generation
///                        first (depth-preferred among equals), so stale
///                        passes decay out of the table instead of pinning
///                        it.
///
/// Generations make one table safely shareable across the search passes of
/// a whole synthesize() call (iterative deepening ladder + refinement
/// reruns + the broad-scope retry): the driver bumps `new_generation()`
/// per pass, and an entry from a previous generation never prunes — it is
/// refreshed to the current generation on first touch. Within a
/// generation the depth rule is the sequential table's, with the
/// shallower-revisit fix pinned by tests/test_tt_replacement: a state
/// re-reached at the same or a deeper depth prunes, a shallower
/// rediscovery overwrites the stored depth and must be re-expanded.
///
/// Thread safety: striped mutexes (stripe = bucket index mod stripe
/// count, one stripe per SynthesisOptions::tt_shards). Per-stripe hit
/// counters keep the SynthesisStats::tt_shard_hits contract of the table
/// this one replaces; inserts/evictions/occupancy feed the new
/// `tt_inserts` / `tt_evictions` metrics and telemetry gauges.
///
/// Owner tags: every entry carries the byte its writer passed as `owner`.
/// A caller passing `own_only = true` prunes only on entries bearing its
/// own tag — a foreign claim is taken over (owner and depth overwritten)
/// and reported as a miss. Lazy SMP uses this to keep its canonical
/// worker exactly the sequential engine: helpers prune on any entry
/// (first to a state claims it, peers diverge), but none of their claims
/// can cut the canonical worker off a line the sequential search would
/// have explored (docs/parallelism.md).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

namespace rmrls {

/// Replacement policy applied when a bucket is full (ablated in
/// bench/ablation_heuristics).
enum class TTReplacement : std::uint8_t { kAlways, kDepthPreferred, kAging };

[[nodiscard]] constexpr const char* to_string(TTReplacement policy) {
  switch (policy) {
    case TTReplacement::kAlways: return "always";
    case TTReplacement::kDepthPreferred: return "depth_preferred";
    case TTReplacement::kAging: return "aging";
  }
  return "unknown";
}

class TranspositionTable {
 public:
  /// Exact sizing for unit tests: `buckets` is rounded up to a power of
  /// two, each bucket holds kBucketEntries entries.
  struct Config {
    std::size_t buckets = 1;
    int stripes = 1;
    TTReplacement policy = TTReplacement::kAging;
  };

  static constexpr int kBucketEntries = 4;

  /// Budget-based sizing: the largest power-of-two bucket count whose
  /// footprint fits in `mb` megabytes (minimum one bucket). `stripes`
  /// mutexes guard the array; per-stripe hit counts are reported in the
  /// same order.
  TranspositionTable(int mb, int stripes, TTReplacement policy);
  explicit TranspositionTable(const Config& config);

  TranspositionTable(const TranspositionTable&) = delete;
  TranspositionTable& operator=(const TranspositionTable&) = delete;

  /// Returns true when the state should be pruned: already recorded *in
  /// the current generation* at the same or a shallower depth — and, when
  /// `own_only` is set, only if the recording entry bears this caller's
  /// `owner` tag (a foreign entry is claimed over and reported as a
  /// miss). Otherwise records `depth` and `owner` (insert, depth
  /// overwrite, claim takeover, or stale-generation refresh) and returns
  /// false. `depth` must be >= 1 — depth 0 is the root, which is never
  /// tabled, and doubles as the empty-slot marker.
  bool check_and_insert(std::uint64_t hash, std::int32_t depth,
                        std::uint8_t owner = 0, bool own_only = false);

  /// Starts a new search pass: entries of older generations stop pruning
  /// (they refresh on first touch) and become preferred eviction victims
  /// under kAging. The 8-bit counter wraps; after exactly 256 bumps a
  /// surviving entry aliases the current generation again, which costs at
  /// most one wrongly-pruned revisit per entry — bounded staleness, the
  /// standard aging trade.
  void new_generation();
  [[nodiscard]] std::uint8_t generation() const;

  /// Cumulative counters (monotone since construction). Pass-scoped stats
  /// are deltas of two snapshot() calls.
  struct Snapshot {
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::vector<std::uint64_t> stripe_hits;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Duplicate hits per stripe (SynthesisStats::tt_shard_hits order).
  [[nodiscard]] std::vector<std::uint64_t> hit_counts() const;
  [[nodiscard]] std::uint64_t total_hits() const;
  [[nodiscard]] std::uint64_t inserts() const;
  [[nodiscard]] std::uint64_t evictions() const;
  /// Occupied entries (monotone until full; evictions replace in place).
  [[nodiscard]] std::uint64_t entry_count() const;

  /// Hard capacity in entries; entry_count() can never exceed it.
  [[nodiscard]] std::uint64_t capacity() const {
    return static_cast<std::uint64_t>(buckets_) * kBucketEntries;
  }
  /// Bytes held by the bucket array (the table's only unbounded-input
  /// allocation; fixed at construction).
  [[nodiscard]] std::size_t bytes() const {
    return buckets_ * sizeof(Bucket);
  }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::int32_t depth = 0;  ///< 0 = empty slot (tabled depths are >= 1)
    std::uint8_t gen = 0;
    std::uint8_t owner = 0;  ///< writer's tag; see check_and_insert
  };
  /// Naturally 64 bytes (4 x 16-byte entries) — exactly one cache line —
  /// without an alignas that calloc could not honour.
  struct Bucket {
    Entry entries[kBucketEntries];
  };
  static_assert(sizeof(Bucket) == 64, "one cache line per bucket");

  struct alignas(64) Stripe {
    mutable std::mutex m;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t occupied = 0;
  };

  [[nodiscard]] std::size_t stripe_of(std::size_t bucket) const {
    return bucket % num_stripes_;
  }

  std::size_t buckets_ = 0;    // power of two
  std::size_t bucket_mask_ = 0;
  TTReplacement policy_ = TTReplacement::kAging;
  struct FreeDeleter {
    void operator()(Bucket* p) const { std::free(p); }
  };
  /// calloc-backed so untouched pages stay unmapped: a 64 MB default
  /// budget costs nothing for the small runs that never fill it.
  std::unique_ptr<Bucket[], FreeDeleter> table_;
  /// Plain array, not a vector: Stripe holds a mutex and is immovable.
  std::size_t num_stripes_ = 1;
  std::unique_ptr<Stripe[]> stripes_;
  /// Bumped between passes only (never concurrently with lookups from the
  /// bumping thread's own pass); relaxed everywhere.
  std::atomic<std::uint8_t> generation_{0};
};

}  // namespace rmrls
