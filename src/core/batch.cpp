#include "core/batch.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/checkpoint.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rev/equivalence.hpp"
#include "rev/pprm.hpp"
#include "rev/pprm_transform.hpp"

namespace rmrls {

namespace {

using Clock = std::chrono::steady_clock;

int resolve_total(int total) {
  if (total > 0) return total;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::string hex16(std::uint64_t key) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[key & 0xf];
    key >>= 4;
  }
  return out;
}

/// splitmix64 finalizer: stable_spec_key is a plain FNV fold, and its low
/// bits correlate for near-identical permutations; the finalizer spreads
/// them before the mod-N shard reduction. Frozen like the key itself —
/// changing it reshards every deployed corpus (docs/fleet.md).
std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

/// Shared mutable state of one batch run; workers pull job indices from
/// `next` and write only their own outcome slots, so the only lock guards
/// the accumulated counters.
struct BatchContext {
  const std::vector<BatchJob>* jobs = nullptr;
  const BatchOptions* options = nullptr;
  CancelToken* token = nullptr;
  Clock::time_point batch_start{};
  std::vector<BatchJobOutcome>* outcomes = nullptr;

  std::atomic<std::size_t> next{0};
  std::mutex stats_m;
  BatchStats stats;
  SynthesisStats search_stats;

  /// Live telemetry (obs/telemetry.hpp), armed once by run_batch when the
  /// process registry is active; null handles otherwise.
  Telemetry* tele = nullptr;
  Gauge* tele_inflight = nullptr;
  Gauge* tele_completed = nullptr;
  Gauge* tele_failed = nullptr;
  Histogram* tele_job_us = nullptr;
};

/// Milliseconds of batch budget left, clamped to at least 1ms so a job
/// starting at the wire still runs one cooperative poll instead of getting
/// an unlimited deadline from a zero remainder.
std::chrono::milliseconds remaining_deadline(const BatchContext& ctx) {
  if (ctx.options->deadline.count() <= 0) return std::chrono::milliseconds{0};
  const auto left =
      ctx.options->deadline - std::chrono::duration_cast<std::chrono::milliseconds>(
                                  Clock::now() - ctx.batch_start);
  return std::max(std::chrono::milliseconds{1}, left);
}

ResilienceOptions job_resilience(const BatchContext& ctx, int search_threads,
                                 std::uint64_t trace_id) {
  ResilienceOptions r = ctx.options->resilience;
  r.cancel_token = ctx.token;
  // The batch owns the one Watchdog; per-job enforcement is cooperative
  // against whatever batch time is left (docs/robustness.md).
  r.use_watchdog = false;
  r.deadline = remaining_deadline(ctx);
  r.search.num_threads = search_threads;
  r.search.trace_id = trace_id;
  return r;
}

/// Verifies `circuit` against the caller's own spec; fills the outcome on
/// success.
bool adopt_verified(CachedSynthesisOutcome& out, const Pprm& spec_pprm,
                    Circuit circuit) {
  if (!equivalent(circuit, spec_pprm)) return false;
  out.verified = true;
  out.status = Status();
  out.result.success = true;
  out.result.circuit = std::move(circuit);
  out.result.termination = TerminationReason::kSolved;
  return true;
}

void run_one_job(BatchContext& ctx, std::size_t index, int search_threads) {
  const BatchJob& job = (*ctx.jobs)[index];
  BatchJobOutcome& out = (*ctx.outcomes)[index];
  out.name = job.name;
  // Correlation id only when telemetry is armed: disabled runs carry no
  // ids in any stream, so their output stays byte-identical to v1.
  const std::uint64_t trace_id =
      ctx.tele != nullptr ? derive_trace_id(job.name, index) : 0;
  out.trace_id = trace_id;
  if (ctx.tele != nullptr) {
    ctx.tele->add_active(trace_id_hex(trace_id));
    ctx.tele_inflight->add(1);
  }
  const auto job_start = Clock::now();
  const auto finish = [&] {
    out.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - job_start);
    if (ctx.tele != nullptr) {
      ctx.tele_job_us->record(
          static_cast<std::uint64_t>(out.elapsed.count()));
      (out.status.ok() ? ctx.tele_completed : ctx.tele_failed)->add(1);
      ctx.tele_inflight->add(-1);
      ctx.tele->remove_active(trace_id_hex(trace_id));
    }
    std::lock_guard<std::mutex> lock(ctx.stats_m);
    if (out.status.ok()) {
      ++ctx.stats.completed;
    } else {
      ++ctx.stats.failed;
    }
    if (out.cache_hit) {
      ++ctx.stats.cache_hits;
      if (out.orbit_hit) ++ctx.stats.cache_orbit_hits;
    } else if (out.deduped) {
      ++ctx.stats.batch_dedup;
    } else {
      ++ctx.stats.cache_misses;
    }
    accumulate_stats(ctx.search_stats, out.result.stats);
  };

  CachedSynthesisOutcome cached = synthesize_cached(
      job.spec, ctx.options->cache, ctx.options->canonical,
      job_resilience(ctx, search_threads, trace_id));
  out.status = cached.status;
  out.result = std::move(cached.result);
  out.engine = cached.engine;
  out.verified = cached.verified;
  out.cache_hit = cached.cache_hit;
  out.orbit_hit = cached.orbit_hit;
  out.deduped = cached.deduped;
  finish();
}

void worker_loop(BatchContext& ctx, int search_threads) {
  while (true) {
    const std::size_t index =
        ctx.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= ctx.jobs->size()) return;
    const BatchJob& job = (*ctx.jobs)[index];
    BatchCheckpoint* const cp = ctx.options->checkpoint;
    if (cp != nullptr && !job.id.empty() && cp->completed(job.id)) {
      // Resumed: a previous run already synthesized (and emitted) this
      // job. Nothing runs and nothing is re-emitted — the union of the
      // previous run's output and this run's output covers the shard
      // exactly once.
      BatchJobOutcome& out = (*ctx.outcomes)[index];
      out.name = job.name;
      out.skipped = true;
      out.result.circuit = Circuit(job.spec.num_vars());
      std::lock_guard<std::mutex> lock(ctx.stats_m);
      ++ctx.stats.skipped;
      continue;
    }
    if (ctx.token->cancelled()) {
      BatchJobOutcome& out = (*ctx.outcomes)[index];
      out.name = (*ctx.jobs)[index].name;
      out.status =
          ctx.token->reason() == CancelReason::kUser
              ? Status(StatusCode::kCancelled, "batch cancelled")
              : Status(StatusCode::kBudgetExhausted, "batch deadline expired");
      out.result.circuit = Circuit((*ctx.jobs)[index].spec.num_vars());
      if (ctx.tele_failed != nullptr) ctx.tele_failed->add(1);
      std::lock_guard<std::mutex> lock(ctx.stats_m);
      ++ctx.stats.failed;
      continue;
    }
    run_one_job(ctx, index, search_threads);
    if (cp != nullptr && !job.id.empty() &&
        (*ctx.outcomes)[index].status.ok()) {
      // Marked only on success — a failed job is retried on resume. The
      // mark lands *after* the leader's publish inside synthesize_cached,
      // so by checkpoint time the orbit circuit is already in the shared
      // store and a resumed fleet can still serve the orbit's siblings.
      cp->mark(job.id);
    }
  }
}

}  // namespace

CachedSynthesisOutcome synthesize_cached(const TruthTable& spec,
                                         SynthCache* cache,
                                         const CanonicalOptions& canonical,
                                         const ResilienceOptions& resilience) {
  CachedSynthesisOutcome out;
  out.result.circuit = Circuit(spec.num_vars());

  if (cache == nullptr) {
    // Cache-less: identical per-request behaviour to the single-shot CLI
    // path (the --cache-mb 0 bit-identity guarantee).
    ResilientResult r = synthesize_resilient(spec, resilience);
    out.status = r.status;
    out.result = std::move(r.result);
    out.engine = r.engine;
    out.verified = r.verified;
    return out;
  }

  const CanonicalForm form = canonicalize(spec, canonical);
  const Pprm spec_pprm = pprm_of_truth_table(spec);

  SynthCache::Acquisition acq = cache->acquire(form.key);
  if (acq.outcome != SynthCache::Outcome::kLead && acq.circuit.has_value()) {
    // A hash collision (or corrupt disk entry) fails this verification and
    // falls through to a fresh synthesis — hits are never trusted blindly.
    Circuit rebuilt = reconstruct_circuit(*acq.circuit, form.transform);
    if (adopt_verified(out, spec_pprm, std::move(rebuilt))) {
      if (acq.outcome == SynthCache::Outcome::kHit) {
        out.cache_hit = true;
        out.orbit_hit = !form.transform.is_identity();
      } else {
        out.deduped = true;
      }
      return out;
    }
  }

  // Miss (or follower of a failed/collided leader): synthesize the orbit
  // representative so the cached circuit serves every member of the orbit.
  ResilientResult r = synthesize_resilient(form.representative, resilience);
  const bool lead = acq.outcome == SynthCache::Outcome::kLead;
  if (r.status.ok() && r.result.success) {
    if (lead) {
      cache->publish(form.key, &r.result.circuit);
    } else {
      cache->insert(form.key, r.result.circuit);
    }
    Circuit rebuilt = reconstruct_circuit(r.result.circuit, form.transform);
    out.result.stats = r.result.stats;
    out.engine = r.engine;
    if (!adopt_verified(out, spec_pprm, std::move(rebuilt))) {
      out.status = Status(StatusCode::kInternal,
                          "orbit reconstruction failed verification");
      out.result.success = false;
      out.result.termination = r.result.termination;
    }
  } else {
    if (lead) cache->publish(form.key, nullptr);  // release the followers
    out.status = r.status;
    out.result = std::move(r.result);
    out.engine = r.engine;
    out.verified = r.verified;
  }
  return out;
}

ThreadSplit split_threads(int total, int batch_threads, std::size_t jobs) {
  ThreadSplit split;
  const int resolved = resolve_total(total);
  const int job_cap = static_cast<int>(std::max<std::size_t>(1, jobs));
  split.batch_threads =
      batch_threads > 0 ? std::min(batch_threads, job_cap)
                        : std::max(1, std::min(resolved, job_cap));
  split.search_threads = std::max(1, resolved / split.batch_threads);
  return split;
}

void assign_job_ids(std::vector<BatchJob>& jobs) {
  std::unordered_map<std::uint64_t, std::uint64_t> occurrence;
  for (BatchJob& job : jobs) {
    const std::uint64_t key = stable_spec_key(job.spec);
    job.id = hex16(key) + "." + std::to_string(occurrence[key]++);
  }
}

bool shard_owns(const TruthTable& spec, int shard_index, int shard_count) {
  if (shard_count <= 1) return shard_index == 0;
  return mix64(stable_spec_key(spec)) %
             static_cast<std::uint64_t>(shard_count) ==
         static_cast<std::uint64_t>(shard_index);
}

std::vector<BatchJob> filter_shard(std::vector<BatchJob> jobs, int shard_index,
                                   int shard_count) {
  if (shard_count <= 1) return jobs;
  std::vector<BatchJob> owned;
  for (BatchJob& job : jobs) {
    if (shard_owns(job.spec, shard_index, shard_count)) {
      owned.push_back(std::move(job));
    }
  }
  return owned;
}

BatchResult run_batch(const std::vector<BatchJob>& jobs,
                      const BatchOptions& options) {
  const auto start = Clock::now();
  BatchResult result;
  result.outcomes.resize(jobs.size());
  result.stats.jobs = jobs.size();
  if (jobs.empty()) {
    // A legitimate outcome, not caller misuse: an empty corpus, or a
    // shard of a small corpus that owns no specs (docs/fleet.md). The
    // all-zero stats still make a valid summary record.
    return result;
  }

  // Same token-adoption pattern as synthesize_resilient: the caller's
  // token carries user cancellation, the batch Watchdog overlays the
  // deadline reason, CancelToken latches whichever fires first.
  CancelToken local_token;
  CancelToken* const token =
      options.cancel_token != nullptr ? options.cancel_token : &local_token;
  std::unique_ptr<Watchdog> watchdog;
  if (options.deadline.count() > 0 && options.use_watchdog) {
    watchdog = std::make_unique<Watchdog>(*token, options.deadline);
  }

  const ThreadSplit split =
      split_threads(options.total_threads, options.batch_threads, jobs.size());

  // Concurrent jobs would otherwise drive the caller's (single-threaded)
  // sink from several worker threads at once; one lock at the fan-in point
  // keeps every existing sink implementation valid (same idiom as the
  // parallel engine's per-run wrap in core/parallel.cpp).
  BatchOptions opts = options;
  SyncTraceSink synced_sink(opts.resilience.search.trace_sink);
  if (opts.resilience.search.trace_sink != nullptr &&
      split.batch_threads > 1) {
    opts.resilience.search.trace_sink = &synced_sink;
  }

  BatchContext ctx;
  ctx.jobs = &jobs;
  ctx.options = &opts;
  ctx.token = token;
  ctx.batch_start = start;
  ctx.outcomes = &result.outcomes;
  if (Telemetry* t = Telemetry::active()) {
    ctx.tele = t;
    ctx.tele_inflight = &t->gauge("batch.jobs_inflight");
    ctx.tele_completed = &t->gauge("batch.jobs_completed");
    ctx.tele_failed = &t->gauge("batch.jobs_failed");
    ctx.tele_job_us = &t->histogram("batch.job_us");
    t->gauge("batch.jobs_total")
        .set(static_cast<std::int64_t>(jobs.size()));
  }

  if (split.batch_threads <= 1) {
    worker_loop(ctx, split.search_threads);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(split.batch_threads));
    for (int t = 0; t < split.batch_threads; ++t) {
      workers.emplace_back(
          [&ctx, &split] { worker_loop(ctx, split.search_threads); });
    }
    for (std::thread& w : workers) w.join();
  }

  if (watchdog != nullptr) {
    watchdog->disarm();
    result.watchdog_fired = watchdog->fired();
  }
  // Final flush regardless of flush_every: a clean exit leaves the ledger
  // complete even when periodic flushing was throttled.
  if (opts.checkpoint != nullptr) opts.checkpoint->flush();
  result.stats = ctx.stats;
  result.stats.jobs = jobs.size();
  result.search_stats = ctx.search_stats;
  result.search_stats.watchdog_fired |= result.watchdog_fired;

  result.status = Status();
  for (const BatchJobOutcome& out : result.outcomes) {
    if (!out.status.ok()) {
      result.status = out.status;
      break;
    }
  }
  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start);
  return result;
}

}  // namespace rmrls
