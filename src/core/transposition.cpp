#include "core/transposition.hpp"

#include "rev/pprm.hpp"  // splitmix64

namespace rmrls {

namespace {

std::size_t round_down_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

TranspositionTable::TranspositionTable(int mb, int stripes,
                                       TTReplacement policy)
    : policy_(policy) {
  const std::size_t budget = static_cast<std::size_t>(mb < 1 ? 1 : mb) << 20;
  buckets_ = round_down_pow2(budget / sizeof(Bucket));
  if (buckets_ == 0) buckets_ = 1;
  bucket_mask_ = buckets_ - 1;
  table_.reset(
      static_cast<Bucket*>(std::calloc(buckets_, sizeof(Bucket))));
  num_stripes_ = static_cast<std::size_t>(stripes < 1 ? 1 : stripes);
  stripes_ = std::make_unique<Stripe[]>(num_stripes_);
}

TranspositionTable::TranspositionTable(const Config& config)
    : policy_(config.policy) {
  buckets_ = round_up_pow2(config.buckets == 0 ? 1 : config.buckets);
  bucket_mask_ = buckets_ - 1;
  table_.reset(
      static_cast<Bucket*>(std::calloc(buckets_, sizeof(Bucket))));
  num_stripes_ =
      static_cast<std::size_t>(config.stripes < 1 ? 1 : config.stripes);
  stripes_ = std::make_unique<Stripe[]>(num_stripes_);
}

bool TranspositionTable::check_and_insert(std::uint64_t hash,
                                          std::int32_t depth,
                                          std::uint8_t owner,
                                          bool own_only) {
  // Remix before reducing: Pprm::hash()'s low bits also drive other
  // consumers' bucketing. The top two remix bits pick the kAlways victim
  // slot so that policy does not always clobber slot 0.
  const std::uint64_t mix = splitmix64(hash);
  const std::size_t bucket = static_cast<std::size_t>(mix) & bucket_mask_;
  const std::uint8_t gen = generation_.load(std::memory_order_relaxed);
  Stripe& stripe = stripes_[stripe_of(bucket)];
  Entry* entries = table_[bucket].entries;
  const std::lock_guard<std::mutex> lock(stripe.m);

  Entry* empty = nullptr;
  for (int i = 0; i < kBucketEntries; ++i) {
    Entry& e = entries[i];
    if (e.depth == 0) {
      if (empty == nullptr) empty = &e;
      continue;
    }
    if (e.hash != hash) continue;
    if (e.gen == gen) {
      if (own_only && e.owner != owner) {
        // A peer's claim. An own_only searcher (lazy SMP's canonical
        // worker) must keep exactly the sequential engine's coverage, so
        // a foreign claim never prunes it — it takes the claim over and
        // re-expands. The peer revisiting afterwards prunes on this
        // entry like any other, so the subtree is still expanded at most
        // once per searcher that reached it first.
        e.owner = owner;
        e.depth = depth;
        return false;
      }
      if (e.depth <= depth) {
        // Re-visit at the same or a deeper depth: redundant, prune. A
        // *shallower* rediscovery falls through to the overwrite below —
        // the fix tests/test_tt_replacement pins (the pruned path could
        // be the better one).
        ++stripe.hits;
        return true;
      }
      e.depth = depth;
      e.owner = owner;
      return false;
    }
    // A previous pass's entry: refresh instead of pruning, so a table
    // shared across the ID ladder / refinement passes never suppresses
    // the new pass's exploration.
    e.gen = gen;
    e.depth = depth;
    e.owner = owner;
    return false;
  }

  if (empty != nullptr) {
    empty->hash = hash;
    empty->depth = depth;
    empty->gen = gen;
    empty->owner = owner;
    ++stripe.inserts;
    ++stripe.occupied;
    return false;
  }

  // Bucket full: pick a victim by policy.
  Entry* victim = &entries[0];
  switch (policy_) {
    case TTReplacement::kAlways:
      victim = &entries[static_cast<std::size_t>(mix >> 62)];
      break;
    case TTReplacement::kDepthPreferred:
      for (int i = 1; i < kBucketEntries; ++i) {
        if (entries[i].depth > victim->depth) victim = &entries[i];
      }
      break;
    case TTReplacement::kAging:
      for (int i = 1; i < kBucketEntries; ++i) {
        // Wraparound-safe age: how many generations ago the entry was
        // written. Oldest first, deepest among equals.
        const std::uint8_t age_v = static_cast<std::uint8_t>(gen - victim->gen);
        const std::uint8_t age_i =
            static_cast<std::uint8_t>(gen - entries[i].gen);
        if (age_i > age_v ||
            (age_i == age_v && entries[i].depth > victim->depth)) {
          victim = &entries[i];
        }
      }
      break;
  }
  victim->hash = hash;
  victim->depth = depth;
  victim->gen = gen;
  victim->owner = owner;
  ++stripe.inserts;
  ++stripe.evictions;
  return false;
}

void TranspositionTable::new_generation() {
  generation_.fetch_add(1, std::memory_order_relaxed);
}

std::uint8_t TranspositionTable::generation() const {
  return generation_.load(std::memory_order_relaxed);
}

TranspositionTable::Snapshot TranspositionTable::snapshot() const {
  Snapshot s;
  s.stripe_hits.reserve(num_stripes_);
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    const Stripe& stripe = stripes_[i];
    const std::lock_guard<std::mutex> lock(stripe.m);
    s.hits += stripe.hits;
    s.inserts += stripe.inserts;
    s.evictions += stripe.evictions;
    s.stripe_hits.push_back(stripe.hits);
  }
  return s;
}

std::vector<std::uint64_t> TranspositionTable::hit_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(num_stripes_);
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    const Stripe& stripe = stripes_[i];
    const std::lock_guard<std::mutex> lock(stripe.m);
    out.push_back(stripe.hits);
  }
  return out;
}

std::uint64_t TranspositionTable::total_hits() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    const Stripe& stripe = stripes_[i];
    const std::lock_guard<std::mutex> lock(stripe.m);
    total += stripe.hits;
  }
  return total;
}

std::uint64_t TranspositionTable::inserts() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    const Stripe& stripe = stripes_[i];
    const std::lock_guard<std::mutex> lock(stripe.m);
    total += stripe.inserts;
  }
  return total;
}

std::uint64_t TranspositionTable::evictions() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    const Stripe& stripe = stripes_[i];
    const std::lock_guard<std::mutex> lock(stripe.m);
    total += stripe.evictions;
  }
  return total;
}

std::uint64_t TranspositionTable::entry_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    const Stripe& stripe = stripes_[i];
    const std::lock_guard<std::mutex> lock(stripe.m);
    total += stripe.occupied;
  }
  return total;
}

}  // namespace rmrls
