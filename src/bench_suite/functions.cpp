#include "bench_suite/functions.hpp"

#include <bit>
#include <stdexcept>

#include "rev/circuit.hpp"
#include "rev/embedding.hpp"

namespace rmrls::suite {

namespace {

TruthTable table_of(std::vector<std::uint64_t> image) {
  return TruthTable(std::move(image));
}

/// Minimal reversible embedding of a single-output predicate on
/// `num_inputs` lines.
TruthTable embed_predicate(int num_inputs, bool (*predicate)(std::uint64_t)) {
  IrreversibleSpec spec;
  spec.num_inputs = num_inputs;
  spec.num_outputs = 1;
  spec.outputs.resize(std::uint64_t{1} << num_inputs);
  for (std::uint64_t x = 0; x < spec.outputs.size(); ++x) {
    spec.outputs[x] = predicate(x) ? 1 : 0;
  }
  return embed(spec).table;
}

}  // namespace

TruthTable fig1() { return table_of({1, 0, 7, 2, 3, 4, 5, 6}); }

TruthTable example(int number) {
  switch (number) {
    case 1:
      return table_of({1, 0, 3, 2, 5, 7, 4, 6});
    case 2:  // wraparound shift right by one, three variables
      return table_of({7, 0, 1, 2, 3, 4, 5, 6});
    case 3:  // Fredkin gate via Toffoli gates
      return table_of({0, 1, 2, 3, 4, 6, 5, 7});
    case 4:  // swap of rows 3 and 4
      return table_of({0, 1, 2, 4, 3, 5, 6, 7});
    case 5:  // Example 4 extended to four variables (swap rows 7 and 8)
      return table_of(
          {0, 1, 2, 3, 4, 5, 6, 8, 7, 9, 10, 11, 12, 13, 14, 15});
    case 6: {  // wraparound shift left by one, three variables
      return table_of({1, 2, 3, 4, 5, 6, 7, 0});
    }
    case 7: {  // wraparound shift left by one, four variables
      std::vector<std::uint64_t> image(16);
      for (std::uint64_t x = 0; x < 16; ++x) image[x] = (x + 1) % 16;
      return table_of(std::move(image));
    }
    case 8:  // augmented full-adder (Fig. 2 / Fig. 8)
      return table_of({0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5});
    default:
      throw std::invalid_argument("no such worked example");
  }
}

TruthTable rd32() {
  IrreversibleSpec spec;
  spec.num_inputs = 3;
  spec.num_outputs = 2;
  spec.outputs.resize(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    spec.outputs[x] = static_cast<std::uint64_t>(std::popcount(x));
  }
  return embed(spec).table;
}

TruthTable rd53() {
  // The paper states rd53 uses the specification of [18] and prints its
  // 13-gate cascade (Example 9); simulating that cascade recovers the
  // specification exactly. Lines a..g are 0..6.
  Circuit c(7);
  const auto ctl = [](std::initializer_list<int> vars) {
    Cube cube = kConstOne;
    for (int v : vars) cube |= cube_of_var(v);
    return cube;
  };
  c.append(Gate(ctl({0, 1}), 5));        // TOF3(a, b; f)
  c.append(Gate(ctl({1}), 0));           // TOF2(b; a)
  c.append(Gate(ctl({0, 2}), 5));        // TOF3(a, c; f)
  c.append(Gate(ctl({2}), 0));           // TOF2(c; a)
  c.append(Gate(ctl({0, 1, 2, 3}), 6));  // TOF5(a, b, c, d; g)
  c.append(Gate(ctl({0, 3}), 5));        // TOF3(a, d; f)
  c.append(Gate(ctl({0}), 3));           // TOF2(a; d)
  c.append(Gate(ctl({1, 3, 4}), 6));     // TOF4(b, d, e; g)
  c.append(Gate(ctl({2}), 1));           // TOF2(c; b)
  c.append(Gate(ctl({3, 4}), 5));        // TOF3(d, e; f)
  c.append(Gate(ctl({0, 1, 3, 4}), 6));  // TOF5(a, b, d, e; g)
  c.append(Gate(ctl({1, 2, 3, 4}), 6));  // TOF5(b, c, d, e; g)
  c.append(Gate(ctl({3}), 4));           // TOF2(d; e)
  return c.to_truth_table();
}

TruthTable three_17() { return table_of({7, 1, 4, 3, 0, 2, 6, 5}); }

TruthTable four_49() {
  return table_of({15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11});
}

TruthTable alu() {
  return table_of({16, 17, 18, 19, 0,  20, 21, 22, 23, 24, 25,
                   11, 12, 26, 27, 15, 28, 13, 14, 29, 8,  9,
                   10, 30, 31, 1,  2,  3,  4,  5,  6,  7});
}

TruthTable decod24() {
  return table_of({1, 2, 4, 8, 0, 3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15});
}

TruthTable xor5() {
  std::vector<std::uint64_t> image(32);
  for (std::uint64_t x = 0; x < 32; ++x) {
    const std::uint64_t parity = std::popcount(x) & 1;
    image[x] = (x & ~std::uint64_t{1}) | parity;
  }
  return table_of(std::move(image));
}

TruthTable mod5_check(int data_bits) {
  if (data_bits < 3 || data_bits > 20) {
    throw std::invalid_argument("data_bits out of range");
  }
  const int lines = data_bits + 1;
  const std::uint64_t flag = std::uint64_t{1} << data_bits;
  std::vector<std::uint64_t> image(std::uint64_t{1} << lines);
  for (std::uint64_t x = 0; x < image.size(); ++x) {
    const std::uint64_t v = x & (flag - 1);
    image[x] = (v % 5 == 0) ? (x ^ flag) : x;
  }
  return table_of(std::move(image));
}

TruthTable ham3() {
  // [3,1] repetition code decode bijection: output = (corrected data bit,
  // syndrome). Syndrome bits s0 = x0^x2, s1 = x1^x2 identify the flipped
  // position; the all-equal majority value is the data bit.
  std::vector<std::uint64_t> image(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const int b0 = static_cast<int>(x & 1);
    const int b1 = static_cast<int>((x >> 1) & 1);
    const int b2 = static_cast<int>((x >> 2) & 1);
    const int s0 = b0 ^ b2;
    const int s1 = b1 ^ b2;
    int corrected0 = b0;
    if (s0 == 1 && s1 == 0) corrected0 ^= 1;  // error at position 0
    // errors at positions 1/2 leave bit 0 correct already
    image[x] = static_cast<std::uint64_t>(corrected0 | (s0 << 1) | (s1 << 2));
  }
  return table_of(std::move(image));
}

TruthTable ham7() {
  // [7,4] Hamming decode bijection: output = (4 corrected data bits,
  // 3 syndrome bits). Column i of the check matrix is the binary
  // representation of i+1; data live at positions 2, 4, 5, 6.
  std::vector<std::uint64_t> image(128);
  for (std::uint64_t x = 0; x < 128; ++x) {
    int syndrome = 0;
    for (int i = 0; i < 7; ++i) {
      if ((x >> i) & 1) syndrome ^= i + 1;
    }
    std::uint64_t corrected = x;
    if (syndrome != 0) corrected ^= std::uint64_t{1} << (syndrome - 1);
    const std::uint64_t d0 = (corrected >> 2) & 1;
    const std::uint64_t d1 = (corrected >> 4) & 1;
    const std::uint64_t d2 = (corrected >> 5) & 1;
    const std::uint64_t d3 = (corrected >> 6) & 1;
    image[x] = d0 | (d1 << 1) | (d2 << 2) | (d3 << 3) |
               (static_cast<std::uint64_t>(syndrome) << 4);
  }
  return table_of(std::move(image));
}

TruthTable hwb(int num_vars) {
  if (num_vars < 2 || num_vars > 20) {
    throw std::invalid_argument("num_vars out of range");
  }
  const std::uint64_t size = std::uint64_t{1} << num_vars;
  const std::uint64_t mask = size - 1;
  std::vector<std::uint64_t> image(size);
  for (std::uint64_t x = 0; x < size; ++x) {
    const int r = std::popcount(x) % num_vars;
    image[x] = r == 0 ? x : (((x << r) | (x >> (num_vars - r))) & mask);
  }
  return table_of(std::move(image));
}

TruthTable five_one013() {
  return table_of({16, 17, 18, 3,  19, 4,  5,  20, 21, 6,  7,
                   22, 8,  23, 24, 9,  25, 10, 11, 26, 12, 27,
                   28, 13, 14, 29, 30, 15, 31, 0,  1,  2});
}

TruthTable five_one245() {
  return embed_predicate(5, [](std::uint64_t x) {
    const int ones = std::popcount(x);
    return ones == 2 || ones == 4 || ones == 5;
  });
}

TruthTable six_one135() {
  // Odd count of ones == parity: line 0 accumulates the XOR of all lines.
  std::vector<std::uint64_t> image(64);
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t parity = std::popcount(x) & 1;
    image[x] = (x & ~std::uint64_t{1}) | parity;
  }
  return table_of(std::move(image));
}

TruthTable six_one0246() {
  std::vector<std::uint64_t> image(64);
  for (std::uint64_t x = 0; x < 64; ++x) {
    const std::uint64_t even = (std::popcount(x) & 1) ^ 1;
    image[x] = (x & ~std::uint64_t{1}) | even;
  }
  return table_of(std::move(image));
}

TruthTable majority3() {
  return embed_predicate(3, [](std::uint64_t x) { return std::popcount(x) >= 2; });
}

TruthTable majority5() {
  return table_of({0,  1,  2,  3,  4,  5,  6,  27, 7,  8,  9,
                   28, 10, 29, 30, 31, 11, 12, 13, 16, 14, 17,
                   18, 19, 15, 20, 21, 22, 23, 24, 25, 26});
}

TruthTable two_of5() {
  return embed_predicate(5, [](std::uint64_t x) { return std::popcount(x) == 2; });
}

TruthTable mod_adder(int bits_per_operand, std::uint64_t modulus) {
  const int k = bits_per_operand;
  if (k < 2 || k > 10 || modulus < 2 || modulus > (std::uint64_t{1} << k)) {
    throw std::invalid_argument("bad mod-adder parameters");
  }
  const std::uint64_t reg = std::uint64_t{1} << k;
  std::vector<std::uint64_t> image(reg * reg);
  for (std::uint64_t a = 0; a < reg; ++a) {
    for (std::uint64_t b = 0; b < reg; ++b) {
      const std::uint64_t x = a | (b << k);
      // (a, b) -> (a, a+b mod m) on the valid domain, identity elsewhere
      // to complete the permutation.
      const std::uint64_t b_out =
          (a < modulus && b < modulus) ? (a + b) % modulus : b;
      image[x] = a | (b_out << k);
    }
  }
  return table_of(std::move(image));
}

TruthTable sym(int num_inputs, int lo, int hi) {
  if (num_inputs < 2 || num_inputs > 12 || lo > hi) {
    throw std::invalid_argument("bad symmetric-function parameters");
  }
  IrreversibleSpec spec;
  spec.num_inputs = num_inputs;
  spec.num_outputs = 1;
  spec.outputs.resize(std::uint64_t{1} << num_inputs);
  for (std::uint64_t x = 0; x < spec.outputs.size(); ++x) {
    const int ones = std::popcount(x);
    spec.outputs[x] = (ones >= lo && ones <= hi) ? 1 : 0;
  }
  return embed(spec).table;
}

}  // namespace rmrls::suite
