/// \file functions.hpp
/// \brief Constructors for every named function of the paper's evaluation.
///
/// Three provenance classes (recorded per benchmark in registry.hpp):
///   * explicit specs printed in the paper (fig1, Examples 1-8, majority5,
///     decod24, 5one013, alu);
///   * functions defined behaviourally in the paper or the surrounding
///     literature (rd32/rd53 count-of-ones, xor5, mod-k adders, Gray code,
///     parity families, hwb4, shifters, majority/2of5 embeddings);
///   * functions whose exact historical .pla is unavailable offline (ham3,
///     ham7): we use a natural, documented reversible definition (Hamming
///     decode: corrected data bits + syndrome), flagged in EXPERIMENTS.md.

#pragma once

#include <cstdint>

#include "rev/pprm.hpp"
#include "rev/truth_table.hpp"

namespace rmrls::suite {

/// The running example of the paper (Fig. 1): {1, 0, 7, 2, 3, 4, 5, 6}.
[[nodiscard]] TruthTable fig1();

/// Examples 1-8 of Section V-C, by number (throws for others).
[[nodiscard]] TruthTable example(int number);

/// rd32: 3-bit count-of-ones embedded on 4 lines (1 garbage input).
[[nodiscard]] TruthTable rd32();

/// rd53 on 7 lines; the paper uses the spec of [18], recovered here by
/// simulating the Toffoli cascade printed in Example 9.
[[nodiscard]] TruthTable rd53();

/// 3_17 and 4_49, the classic Maslov-suite permutations.
[[nodiscard]] TruthTable three_17();
[[nodiscard]] TruthTable four_49();

/// alu (Example 13) and decod24 (Example 11), explicit specs.
[[nodiscard]] TruthTable alu();
[[nodiscard]] TruthTable decod24();

/// xor5: line 0 becomes the parity of all five lines.
[[nodiscard]] TruthTable xor5();

/// 4mod5 / 5mod5: top line flips when the data value is divisible by 5.
[[nodiscard]] TruthTable mod5_check(int data_bits);

/// ham3 / ham7: Hamming decode bijection (corrected data ++ syndrome).
[[nodiscard]] TruthTable ham3();
[[nodiscard]] TruthTable ham7();

/// hwb4: hidden weighted bit, x -> rotate_left(x, weight(x)).
[[nodiscard]] TruthTable hwb(int num_vars);

/// 5one013 (paper spec) and 5one245 (minimal embedding of the predicate
/// "count of ones in {2,4,5}").
[[nodiscard]] TruthTable five_one013();
[[nodiscard]] TruthTable five_one245();

/// 6one135 / 6one0246: 6-line parity families (odd / even count of ones).
[[nodiscard]] TruthTable six_one135();
[[nodiscard]] TruthTable six_one0246();

/// majority3 / majority5: majority vote, minimal reversible embedding
/// (majority5 uses the paper's printed spec).
[[nodiscard]] TruthTable majority3();
[[nodiscard]] TruthTable majority5();

/// 2of5: "exactly two ones" predicate, minimal embedding.
[[nodiscard]] TruthTable two_of5();

/// mod-2^k and mod-m adders on paired registers: (a, b) -> (a, a+b mod m),
/// identity outside the domain for m not a power of two.
[[nodiscard]] TruthTable mod_adder(int bits_per_operand, std::uint64_t modulus);

/// n-input symmetric predicate: outputs 1 iff the input weight lies in
/// [lo, hi], minimally embedded. sym(6, 2, 4) is the classic 6sym; the
/// paper reports its tool failing on the #sym family (Section V-D).
[[nodiscard]] TruthTable sym(int num_inputs, int lo, int hi);

}  // namespace rmrls::suite
