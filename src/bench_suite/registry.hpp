/// \file registry.hpp
/// \brief Name-indexed registry of the paper's benchmark functions with the
/// published Table IV reference numbers.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rev/pprm.hpp"
#include "rev/truth_table.hpp"

namespace rmrls::suite {

/// Where a benchmark's specification comes from (see functions.hpp).
enum class SpecSource {
  kPaperExplicit,   ///< permutation printed in the paper
  kPaperBehaviour,  ///< behaviour defined in the paper / literature
  kOurDefinition,   ///< natural definition, historical .pla unavailable
};

struct BenchmarkInfo {
  std::string name;
  int lines = 0;
  int real_inputs = 0;
  int garbage_inputs = 0;
  SpecSource source = SpecSource::kPaperBehaviour;
  /// Table IV "Gates"/"Cost" columns (the paper's own results).
  std::optional<int> paper_gates;
  std::optional<long long> paper_cost;
  /// Table IV "[13]" columns (best published at the time), where given.
  std::optional<int> best_gates;
  std::optional<long long> best_cost;
  /// True when Table IV marks the row with a dagger (NCT-library compare).
  bool nct_comparison = false;
};

struct Benchmark {
  BenchmarkInfo info;
  Pprm pprm;                        ///< always available
  std::optional<TruthTable> table;  ///< present when narrow enough (<= 14)
};

/// All registered benchmark names, in Table IV order.
[[nodiscard]] std::vector<std::string> benchmark_names();

/// Looks up one benchmark; throws std::invalid_argument for unknown names.
[[nodiscard]] Benchmark get_benchmark(std::string_view name);

}  // namespace rmrls::suite
