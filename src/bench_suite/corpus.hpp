/// \file corpus.hpp
/// \brief Generated spec corpora for fleet-scale batch benchmarking
/// (docs/fleet.md).
///
/// The fleet harness (bench/fleet_throughput, tools/rmrls_corpus) needs
/// large spec lists with *controlled orbit structure*: the canonical cache
/// (docs/caching.md) pays off exactly when many corpus entries share a
/// wire-relabeling/inversion orbit, so the generator plants repeats as
/// random conjugations (and optional inversions) of earlier base specs at
/// a configurable rate. Base specs draw from the classic benchmark
/// families — hwb and prime-multiplier permutations (Maslov–Miller–Dueck),
/// simulated random NCT cascades, and uniform random permutations — all
/// seeded, so one (family, seed, size) triple names the same corpus on
/// every host.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "rev/truth_table.hpp"

namespace rmrls::suite {

/// Which base-spec generator seeds the corpus.
enum class CorpusFamily {
  kHwb,     ///< hidden-weighted-bit, num_vars cycling [3, max_vars]
  kPrime,   ///< x -> p*x mod 2^n for odd primes p (bijective; MMD family)
  kTof,     ///< simulated random NCT cascades (Section V-E workload)
  kRandom,  ///< uniform random permutations
  kMixed,   ///< round-robin over the four families above
};

/// Parses "hwb" / "prime" / "tof" / "random" / "mixed".
[[nodiscard]] Result<CorpusFamily> parse_corpus_family(
    const std::string& name);

struct CorpusOptions {
  CorpusFamily family = CorpusFamily::kMixed;
  int size = 256;  ///< total specs emitted (bases + planted repeats)

  /// Fraction of entries (in [0, 1]) that are *orbit repeats*: a random
  /// wire conjugation — and, half the time, functional inversion — of a
  /// previously emitted base. 0 generates all-distinct bases; 0.5 makes
  /// every second entry cache-servable once its base has been synthesized.
  double repeat_rate = 0.5;

  int min_vars = 3;  ///< smallest spec width (>= 2)
  int max_vars = 5;  ///< largest spec width (truth-table sizes stay tiny)

  std::uint64_t seed = 1;  ///< same seed, same corpus, any host
};

/// One corpus entry: the spec plus a generator-assigned label (e.g.
/// "hwb4", "prime5_p11.c3" for the 3rd conjugate repeat of prime5_p11).
struct CorpusEntry {
  std::string label;
  TruthTable spec;
};

/// Generates the corpus. Entry order interleaves bases and repeats
/// deterministically (a repeat can only reference an earlier entry).
/// Returns kInvalidArgument for out-of-range options.
[[nodiscard]] Result<std::vector<CorpusEntry>> generate_corpus(
    const CorpusOptions& options);

/// Renders a corpus as a `rmrls --batch` spec file: one
/// `{perm...}  # label` line per entry (io/spec.hpp strips the comment).
[[nodiscard]] std::string write_corpus(const std::vector<CorpusEntry>& corpus);

}  // namespace rmrls::suite
