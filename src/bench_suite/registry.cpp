#include "bench_suite/registry.hpp"

#include <functional>
#include <stdexcept>

#include "bench_suite/functions.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/structural.hpp"

namespace rmrls::suite {

namespace {

struct Entry {
  BenchmarkInfo info;
  std::function<TruthTable()> table;  // null for structural-only benchmarks
  std::function<Pprm()> pprm;         // null -> derived from the table
};

std::optional<int> none_i() { return std::nullopt; }
std::optional<long long> none_c() { return std::nullopt; }

const std::vector<Entry>& entries() {
  static const std::vector<Entry> kEntries = [] {
    std::vector<Entry> v;
    const auto add = [&v](std::string name, int lines, int real, int garbage,
                          SpecSource source, std::optional<int> pg,
                          std::optional<long long> pc, std::optional<int> bg,
                          std::optional<long long> bc, bool nct,
                          std::function<TruthTable()> table,
                          std::function<Pprm()> pprm = nullptr) {
      Entry e;
      e.info = BenchmarkInfo{std::move(name), lines,  real, garbage, source,
                             pg,              pc,     bg,   bc,      nct};
      e.table = std::move(table);
      e.pprm = std::move(pprm);
      v.push_back(std::move(e));
    };

    // Table IV rows, in order. (paper gates/cost, best-published gates/cost)
    // Note: the paper's 2of5 embedding uses 7 lines (5 real + 2 garbage
    // inputs); our minimal embedding needs only 6 (1 garbage input).
    add("2of5", 6, 5, 1, SpecSource::kPaperBehaviour, 20, 100, 15, 107, false,
        [] { return two_of5(); });
    add("rd32", 4, 3, 1, SpecSource::kPaperBehaviour, 4, 8, 4, 8, true,
        [] { return rd32(); });
    add("3_17", 3, 3, 0, SpecSource::kPaperBehaviour, 6, 14, 6, 12, true,
        [] { return three_17(); });
    add("4_49", 4, 4, 0, SpecSource::kPaperBehaviour, 13, 61, 16, 58, false,
        [] { return four_49(); });
    add("alu", 5, 5, 0, SpecSource::kPaperExplicit, 18, 114, none_i(),
        none_c(), false, [] { return alu(); });
    add("rd53", 7, 5, 2, SpecSource::kPaperExplicit, 13, 116, 16, 75, false,
        [] { return rd53(); });
    add("xor5", 5, 5, 0, SpecSource::kPaperBehaviour, 4, 4, 4, 4, true,
        [] { return xor5(); });
    add("4mod5", 5, 4, 1, SpecSource::kPaperBehaviour, 5, 13, 5, 13, true,
        [] { return mod5_check(4); });
    add("5mod5", 6, 5, 1, SpecSource::kPaperBehaviour, 11, 91, 10, 90, false,
        [] { return mod5_check(5); });
    add("ham3", 3, 3, 0, SpecSource::kOurDefinition, 5, 9, 5, 7, true,
        [] { return ham3(); });
    add("ham7", 7, 7, 0, SpecSource::kOurDefinition, 24, 68, 23, 81, false,
        [] { return ham7(); });
    add("hwb4", 4, 4, 0, SpecSource::kPaperBehaviour, 15, 35, 17, 63, true,
        [] { return hwb(4); });
    add("decod24", 4, 4, 0, SpecSource::kPaperExplicit, 11, 31, none_i(),
        none_c(), false, [] { return decod24(); });
    add("shift10", 12, 12, 0, SpecSource::kPaperBehaviour, 27, 1469, 19, 1198,
        false, [] { return truth_table_of_pprm(shifter_pprm(10)); },
        [] { return shifter_pprm(10); });
    add("shift15", 17, 17, 0, SpecSource::kPaperBehaviour, 30, 3500, none_i(),
        none_c(), false, nullptr, [] { return shifter_pprm(15); });
    add("shift28", 30, 30, 0, SpecSource::kPaperBehaviour, 56, 14310,
        none_i(), none_c(), false, nullptr, [] { return shifter_pprm(28); });
    add("5one013", 5, 5, 0, SpecSource::kPaperExplicit, 19, 95, none_i(),
        none_c(), false, [] { return five_one013(); });
    add("5one245", 5, 5, 0, SpecSource::kPaperBehaviour, 20, 104, none_i(),
        none_c(), false, [] { return five_one245(); });
    add("6one135", 6, 6, 0, SpecSource::kPaperBehaviour, 5, 5, none_i(),
        none_c(), true, [] { return six_one135(); });
    add("6one0246", 6, 6, 0, SpecSource::kPaperBehaviour, 6, 6, none_i(),
        none_c(), true, [] { return six_one0246(); });
    add("majority3", 3, 3, 0, SpecSource::kPaperBehaviour, 4, 16, none_i(),
        none_c(), true, [] { return majority3(); });
    add("majority5", 5, 5, 0, SpecSource::kPaperExplicit, 16, 104, none_i(),
        none_c(), false, [] { return majority5(); });
    add("graycode6", 6, 6, 0, SpecSource::kPaperBehaviour, 5, 5, 5, 5, false,
        [] { return truth_table_of_pprm(graycode_pprm(6)); },
        [] { return graycode_pprm(6); });
    add("graycode10", 10, 10, 0, SpecSource::kPaperBehaviour, 9, 9, 9, 9,
        false, [] { return truth_table_of_pprm(graycode_pprm(10)); },
        [] { return graycode_pprm(10); });
    add("graycode20", 20, 20, 0, SpecSource::kPaperBehaviour, 19, 19, 19, 19,
        false, nullptr, [] { return graycode_pprm(20); });
    add("mod5adder", 6, 6, 0, SpecSource::kPaperBehaviour, 19, 127, 21, 125,
        false, [] { return mod_adder(3, 5); });
    add("mod32adder", 10, 10, 0, SpecSource::kPaperBehaviour, 15, 154,
        none_i(), none_c(), false, [] { return mod_adder(5, 32); });
    add("mod15adder", 8, 8, 0, SpecSource::kPaperBehaviour, 10, 71, none_i(),
        none_c(), false, [] { return mod_adder(4, 15); });
    add("mod64adder", 12, 12, 0, SpecSource::kPaperBehaviour, 26, 333,
        none_i(), none_c(), false, [] { return mod_adder(6, 64); });
    return v;
  }();
  return kEntries;
}

}  // namespace

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  names.reserve(entries().size());
  for (const Entry& e : entries()) names.push_back(e.info.name);
  return names;
}

Benchmark get_benchmark(std::string_view name) {
  for (const Entry& e : entries()) {
    if (e.info.name != name) continue;
    Benchmark b;
    b.info = e.info;
    if (e.table) {
      TruthTable tt = e.table();
      b.pprm = e.pprm ? e.pprm() : pprm_of_truth_table(tt);
      if (tt.num_vars() <= 14) b.table = std::move(tt);
    } else {
      b.pprm = e.pprm();
    }
    return b;
  }
  throw std::invalid_argument("unknown benchmark: " + std::string(name));
}

}  // namespace rmrls::suite
