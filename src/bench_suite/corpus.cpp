#include "bench_suite/corpus.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <utility>

#include "bench_suite/functions.hpp"
#include "io/spec.hpp"
#include "rev/canonical.hpp"
#include "rev/random.hpp"

namespace rmrls::suite {

namespace {

/// Odd primes cycled by the kPrime family; x -> p*x mod 2^n is bijective
/// for any odd p (p is a unit mod 2^n).
constexpr int kPrimes[] = {3, 5, 7, 11, 13, 17, 19, 23, 29, 31};

TruthTable prime_multiplier(int num_vars, int p) {
  const std::uint64_t size = std::uint64_t{1} << num_vars;
  std::vector<std::uint64_t> image(size);
  for (std::uint64_t x = 0; x < size; ++x) {
    image[x] = (static_cast<std::uint64_t>(p) * x) & (size - 1);
  }
  return TruthTable(std::move(image));
}

std::vector<int> random_wire_perm(int n, std::mt19937_64& rng) {
  std::vector<int> sigma(static_cast<std::size_t>(n));
  std::iota(sigma.begin(), sigma.end(), 0);
  std::shuffle(sigma.begin(), sigma.end(), rng);
  return sigma;
}

struct BaseSpec {
  std::string label;
  TruthTable spec;
};

/// The next base spec of `family`; `serial` advances the family's own
/// parameter cycle (width, prime, cascade seed) deterministically.
BaseSpec make_base(CorpusFamily family, int serial, int min_vars,
                   int max_vars, std::mt19937_64& rng) {
  const int span = max_vars - min_vars + 1;
  const int n = min_vars + serial % span;
  switch (family) {
    case CorpusFamily::kHwb: {
      // hwb needs n >= 3 to be interesting; clamp narrow corpora up.
      const int w = std::max(3, n);
      return {"hwb" + std::to_string(w), hwb(w)};
    }
    case CorpusFamily::kPrime: {
      const int p = kPrimes[static_cast<std::size_t>(serial) %
                            (sizeof(kPrimes) / sizeof(kPrimes[0]))];
      return {"prime" + std::to_string(n) + "_p" + std::to_string(p),
              prime_multiplier(n, p)};
    }
    case CorpusFamily::kTof: {
      const int gates = 2 + static_cast<int>(rng() % 7u);  // 2..8 gates
      const Circuit c = random_circuit(n, gates, GateLibrary::kNCT, rng);
      return {"tof" + std::to_string(n) + "_g" + std::to_string(gates),
              c.to_truth_table()};
    }
    case CorpusFamily::kRandom:
      return {"rand" + std::to_string(n), random_reversible_function(n, rng)};
    case CorpusFamily::kMixed:
      break;  // handled by the caller's round-robin
  }
  return {"rand" + std::to_string(n), random_reversible_function(n, rng)};
}

}  // namespace

Result<CorpusFamily> parse_corpus_family(const std::string& name) {
  if (name == "hwb") return CorpusFamily::kHwb;
  if (name == "prime") return CorpusFamily::kPrime;
  if (name == "tof") return CorpusFamily::kTof;
  if (name == "random") return CorpusFamily::kRandom;
  if (name == "mixed") return CorpusFamily::kMixed;
  return Status(StatusCode::kInvalidArgument,
                "unknown corpus family '" + name +
                    "' (expected hwb|prime|tof|random|mixed)");
}

Result<std::vector<CorpusEntry>> generate_corpus(
    const CorpusOptions& options) {
  if (options.size < 0) {
    return Status(StatusCode::kInvalidArgument, "corpus size is negative");
  }
  if (options.repeat_rate < 0.0 || options.repeat_rate > 1.0) {
    return Status(StatusCode::kInvalidArgument,
                  "repeat rate must lie in [0, 1]");
  }
  if (options.min_vars < 2 || options.max_vars < options.min_vars ||
      options.max_vars > 16) {
    return Status(StatusCode::kInvalidArgument,
                  "corpus widths must satisfy 2 <= min_vars <= max_vars"
                  " <= 16");
  }

  static constexpr CorpusFamily kRoundRobin[] = {
      CorpusFamily::kHwb, CorpusFamily::kPrime, CorpusFamily::kTof,
      CorpusFamily::kRandom};
  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<CorpusEntry> corpus;
  corpus.reserve(static_cast<std::size_t>(options.size));
  std::vector<std::size_t> base_indices;  // entries usable as repeat bases
  std::vector<int> repeat_counts;         // per corpus entry, for labels
  int serial = 0;
  for (int i = 0; i < options.size; ++i) {
    const bool plant_repeat =
        !base_indices.empty() && coin(rng) < options.repeat_rate;
    if (plant_repeat) {
      const std::size_t pick =
          base_indices[rng() % base_indices.size()];
      const CorpusEntry& base = corpus[pick];
      std::vector<int> sigma =
          random_wire_perm(base.spec.num_vars(), rng);
      TruthTable repeat = conjugate(base.spec, sigma);
      if ((rng() & 1u) != 0) repeat = repeat.inverse();
      const int nth = ++repeat_counts[pick];
      corpus.push_back(CorpusEntry{
          base.label + ".c" + std::to_string(nth), std::move(repeat)});
      repeat_counts.push_back(0);
    } else {
      const CorpusFamily fam =
          options.family == CorpusFamily::kMixed
              ? kRoundRobin[static_cast<std::size_t>(serial) % 4]
              : options.family;
      BaseSpec base = make_base(fam, serial, options.min_vars,
                                options.max_vars, rng);
      ++serial;
      base_indices.push_back(corpus.size());
      corpus.push_back(
          CorpusEntry{std::move(base.label), std::move(base.spec)});
      repeat_counts.push_back(0);
    }
  }
  return corpus;
}

std::string write_corpus(const std::vector<CorpusEntry>& corpus) {
  std::string out;
  out += "# generated by rmrls_corpus (docs/fleet.md); one spec per line,\n";
  out += "# labels in trailing comments.\n";
  for (const CorpusEntry& entry : corpus) {
    out += write_permutation_spec(entry.spec);
    out += "  # ";
    out += entry.label;
    out += "\n";
  }
  return out;
}

}  // namespace rmrls::suite
