/// \file transformation_based.hpp
/// \brief Miller-Maslov-Dueck transformation-based synthesis (DAC'03, [7]).
///
/// The comparator of the paper's Table I. The algorithm scans the truth
/// table in lexicographic order and, for each row, appends Toffoli gates
/// that map the current output back to the row's input without disturbing
/// earlier rows. It is constructive: it *always* terminates with a valid
/// circuit of at most n * 2^n gates. The bidirectional variant may fix a
/// row from the input side instead when that needs fewer gates.

#pragma once

#include "core/cancel.hpp"
#include "rev/circuit.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Basic (output-side only) transformation-based synthesis. When `cancel`
/// is given it is polled once per table row; a cancelled run returns the
/// incomplete cascade built so far, so callers must verify the result
/// (rev/equivalence.hpp) before trusting it — see docs/robustness.md.
[[nodiscard]] Circuit synthesize_transformation_based(
    const TruthTable& spec, CancelToken* cancel = nullptr);

/// Bidirectional variant: per row, choose the cheaper of fixing the output
/// mapping or the input mapping (Section III's description of [7]). Same
/// per-row cancellation contract as synthesize_transformation_based.
[[nodiscard]] Circuit synthesize_transformation_bidir(
    const TruthTable& spec, CancelToken* cancel = nullptr);

/// Output-permutation variant (the other idea Section III quotes from
/// [7]): instead of driving every output back to its own input, try every
/// wire relabeling pi, synthesize the relabeled function bidirectionally,
/// and undo pi with a trailing swap network (3 CNOTs per transposition);
/// the cheapest total wins. The identity relabeling is always tried, so
/// the result is never worse than synthesize_transformation_bidir.
/// Practical up to ~6 lines (n! relabelings).
[[nodiscard]] Circuit synthesize_transformation_perm(const TruthTable& spec);

}  // namespace rmrls
