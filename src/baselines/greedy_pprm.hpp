/// \file greedy_pprm.hpp
/// \brief Naive/greedy PPRM cascade synthesis (no search tree).
///
/// The "naive algorithm" the paper's introduction contrasts against: commit
/// to the single most attractive substitution at every step, with no queue,
/// no backtracking and no look-ahead. Serves as the weakest baseline in the
/// ablation benches; like the heuristic RMRLS configurations, it can fail.

#pragma once

#include "core/options.hpp"
#include "core/search.hpp"
#include "rev/pprm.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Greedy synthesis: repeatedly apply the best-priority substitution until
/// the system is the identity, the step limit is hit, no substitution
/// reduces the term count, or a cooperative stop fires
/// (SynthesisOptions::cancel_token / time_limit). On failure the result
/// carries the incomplete cascade in `partial` / `partial_terms`, which
/// makes this the anytime fallback of the resilience cascade
/// (docs/robustness.md).
[[nodiscard]] SynthesisResult synthesize_greedy(
    const Pprm& spec, const SynthesisOptions& options = {});

[[nodiscard]] SynthesisResult synthesize_greedy(
    const TruthTable& spec, const SynthesisOptions& options = {});

}  // namespace rmrls
