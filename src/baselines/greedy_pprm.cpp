#include "baselines/greedy_pprm.hpp"

#include <chrono>

#include "core/factor_enum.hpp"
#include "rev/pprm_transform.hpp"

namespace rmrls {

SynthesisResult synthesize_greedy(const Pprm& spec,
                                  const SynthesisOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();

  SynthesisResult result;
  result.initial_terms = spec.term_count();
  Pprm state = spec;
  Circuit circuit(spec.num_vars());
  const int max_gates = options.max_gates > 0 ? options.max_gates : 1 << 14;
  Candidate previous{};
  bool have_previous = false;

  while (!state.is_identity() && circuit.gate_count() < max_gates) {
    const std::vector<Candidate> candidates = enumerate_candidates(
        state, options, have_previous ? &previous : nullptr);
    const int terms = state.term_count();
    const int depth = circuit.gate_count() + 1;

    bool found = false;
    Candidate best{};
    Pprm best_state;
    double best_priority = 0.0;
    for (const Candidate& cand : candidates) {
      Pprm next = state;
      const int delta = next.substitute(cand.target, cand.factor);
      ++result.stats.children_created;
      const int elim = -delta;
      if (!cand.is_complement() && elim <= 0) {
        ++result.stats.pruned_elim;
        continue;
      }
      const double priority =
          options.alpha * depth +
          options.beta * static_cast<double>(elim) / depth -
          options.gamma * literal_count(cand.factor);
      if (!found || priority > best_priority) {
        found = true;
        best = cand;
        best_state = std::move(next);
        best_priority = priority;
      }
    }
    if (!found) break;  // stuck: no substitution makes progress
    (void)terms;
    state = std::move(best_state);
    circuit.append(Gate(best.factor, best.target));
    previous = best;
    have_previous = true;
    ++result.stats.nodes_expanded;
  }

  result.stats.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start_time);
  if (state.is_identity()) {
    result.success = true;
    result.circuit = std::move(circuit);
    result.stats.solutions_found = 1;
  } else {
    result.circuit = Circuit(spec.num_vars());
  }
  return result;
}

SynthesisResult synthesize_greedy(const TruthTable& spec,
                                  const SynthesisOptions& options) {
  return synthesize_greedy(pprm_of_truth_table(spec), options);
}

}  // namespace rmrls
