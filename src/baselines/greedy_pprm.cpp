#include "baselines/greedy_pprm.hpp"

#include <chrono>

#include "core/cancel.hpp"
#include "core/factor_enum.hpp"
#include "rev/pprm_transform.hpp"

namespace rmrls {

SynthesisResult synthesize_greedy(const Pprm& spec,
                                  const SynthesisOptions& options) {
  using Clock = std::chrono::steady_clock;
  const auto start_time = Clock::now();
  const bool timed = options.time_limit.count() > 0;
  const auto deadline = start_time + options.time_limit;
  CancelToken* const cancel = options.cancel_token;

  SynthesisResult result;
  result.initial_terms = spec.term_count();
  Pprm state = spec;
  Circuit circuit(spec.num_vars());
  const int max_gates = options.max_gates > 0 ? options.max_gates : 1 << 14;
  Candidate previous{};
  bool have_previous = false;

  // Greedy is the anytime fallback of the resilience cascade
  // (docs/robustness.md): it honors the same cooperative stop sources as
  // the search engine (cancellation token, wall-clock limit), polling per
  // candidate so overshoot stays bounded by one substitution even on wide
  // systems.
  bool stopped = false;
  TerminationReason stop_reason = TerminationReason::kTimeLimit;
  const auto should_stop = [&] {
    if (stopped) return true;
    if (cancel != nullptr && cancel->cancelled()) {
      stopped = true;
      stop_reason = cancel->reason() == CancelReason::kDeadline
                        ? TerminationReason::kTimeLimit
                        : TerminationReason::kCancelled;
      return true;
    }
    if (timed && Clock::now() >= deadline) {
      stopped = true;
      stop_reason = TerminationReason::kTimeLimit;
      return true;
    }
    return false;
  };

  while (!state.is_identity() && circuit.gate_count() < max_gates &&
         !should_stop()) {
    const std::vector<Candidate> candidates = enumerate_candidates(
        state, options, have_previous ? &previous : nullptr);
    const int depth = circuit.gate_count() + 1;

    bool found = false;
    Candidate best{};
    Pprm best_state;
    double best_priority = 0.0;
    for (const Candidate& cand : candidates) {
      if (should_stop()) break;
      Pprm next = state;
      const int delta = next.substitute(cand.target, cand.factor);
      ++result.stats.children_created;
      const int elim = -delta;
      if (!cand.is_complement() && elim <= 0) {
        ++result.stats.pruned_elim;
        continue;
      }
      const double priority =
          options.alpha * depth +
          options.beta * static_cast<double>(elim) / depth -
          options.gamma * literal_count(cand.factor);
      if (!found || priority > best_priority) {
        found = true;
        best = cand;
        best_state = std::move(next);
        best_priority = priority;
      }
    }
    if (stopped) break;
    if (!found) {
      stop_reason = TerminationReason::kQueueExhausted;  // stuck
      break;
    }
    state = std::move(best_state);
    circuit.append(Gate(best.factor, best.target));
    previous = best;
    have_previous = true;
    ++result.stats.nodes_expanded;
  }

  result.stats.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      Clock::now() - start_time);
  if (state.is_identity()) {
    result.success = true;
    result.circuit = std::move(circuit);
    result.stats.solutions_found = 1;
    result.termination = TerminationReason::kSolved;
  } else {
    result.circuit = Circuit(spec.num_vars());
    if (stopped) {
      result.termination = stop_reason;
    } else if (circuit.gate_count() >= max_gates) {
      result.termination = TerminationReason::kNodeBudget;
    } else {
      result.termination = TerminationReason::kQueueExhausted;
    }
    // Preserve the incomplete cascade: a caller out of budget may still
    // want the closest approximation the fallback reached.
    result.partial = std::move(circuit);
    result.partial_terms = state.term_count();
  }
  result.stats.cancelled =
      result.termination == TerminationReason::kCancelled;
  return result;
}

SynthesisResult synthesize_greedy(const TruthTable& spec,
                                  const SynthesisOptions& options) {
  return synthesize_greedy(pprm_of_truth_table(spec), options);
}

}  // namespace rmrls
