#include "baselines/spectral.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <unordered_set>

namespace rmrls {

std::vector<std::int64_t> walsh_spectrum(const std::vector<std::uint8_t>& f) {
  const std::size_t n = f.size();
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("truth vector size must be a power of two");
  }
  std::vector<std::int64_t> s(n);
  for (std::size_t x = 0; x < n; ++x) s[x] = (f[x] & 1) ? -1 : 1;
  for (std::size_t stride = 1; stride < n; stride <<= 1) {
    for (std::size_t x = 0; x < n; ++x) {
      if (x & stride) continue;
      const std::int64_t a = s[x];
      const std::int64_t b = s[x | stride];
      s[x] = a + b;
      s[x | stride] = a - b;
    }
  }
  return s;
}

std::int64_t identity_distance(const TruthTable& f) {
  std::int64_t d = 0;
  for (std::uint64_t x = 0; x < f.size(); ++x) {
    d += std::popcount(f.apply(x) ^ x);
  }
  return d;
}

namespace {

/// The NCT gate library on `n` lines.
std::vector<Gate> nct_library(int n) {
  std::vector<Gate> gates;
  for (int t = 0; t < n; ++t) gates.emplace_back(kConstOne, t);
  for (int c = 0; c < n; ++c) {
    for (int t = 0; t < n; ++t) {
      if (c != t) gates.emplace_back(cube_of_var(c), t);
    }
  }
  for (int c1 = 0; c1 < n; ++c1) {
    for (int c2 = c1 + 1; c2 < n; ++c2) {
      for (int t = 0; t < n; ++t) {
        if (t != c1 && t != c2) {
          gates.emplace_back(cube_of_var(c1) | cube_of_var(c2), t);
        }
      }
    }
  }
  return gates;
}

std::int64_t distance_of(const std::vector<std::uint64_t>& image) {
  std::int64_t d = 0;
  for (std::uint64_t x = 0; x < image.size(); ++x) {
    d += std::popcount(image[x] ^ x);
  }
  return d;
}

/// Secondary objective: total spectral concentration, the sum over
/// outputs of the dominant Rademacher-Walsh coefficient magnitude. Higher
/// means every output is closer to *some* affine function, from which the
/// diagonal measure can usually be driven down; it breaks the plateaus
/// where no gate strictly improves the distance (the pure [18] failure
/// mode).
std::int64_t concentration_of(const std::vector<std::uint64_t>& image,
                              int num_vars) {
  const std::size_t size = image.size();
  std::int64_t total = 0;
  std::vector<std::int64_t> s(size);
  for (int out = 0; out < num_vars; ++out) {
    for (std::size_t x = 0; x < size; ++x) {
      s[x] = ((image[x] >> out) & 1) ? -1 : 1;
    }
    for (std::size_t stride = 1; stride < size; stride <<= 1) {
      for (std::size_t x = 0; x < size; ++x) {
        if (x & stride) continue;
        const std::int64_t a = s[x];
        const std::int64_t b = s[x | stride];
        s[x] = a + b;
        s[x | stride] = a - b;
      }
    }
    std::int64_t best = 0;
    for (std::int64_t v : s) best = std::max(best, std::abs(v));
    total += best;
  }
  return total;
}

/// Lexicographic score: lower distance first, then higher concentration.
struct Score {
  std::int64_t distance = 0;
  std::int64_t concentration = 0;

  [[nodiscard]] bool better_than(const Score& other) const {
    if (distance != other.distance) return distance < other.distance;
    return concentration > other.concentration;
  }
};

Score score_of(const std::vector<std::uint64_t>& image, int num_vars) {
  return {distance_of(image), concentration_of(image, num_vars)};
}

std::size_t hash_image(const std::vector<std::uint64_t>& image) {
  std::size_t h = 1469598103934665603ull;
  for (std::uint64_t v : image) {
    h ^= v;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

SpectralResult synthesize_spectral(const TruthTable& spec,
                                   const SpectralOptions& options) {
  const int n = spec.num_vars();
  const std::vector<Gate> library = nct_library(n);
  std::vector<std::uint64_t> image = spec.image();

  std::vector<Gate> in_gates;   // applied before the remaining function
  std::vector<Gate> out_gates;  // collected output-side, reversed at the end
  SpectralResult result;

  Score current = score_of(image, n);
  std::vector<std::uint64_t> candidate(image.size());
  std::unordered_set<std::size_t> visited{hash_image(image)};
  int sideways = 0;
  while (current.distance != 0) {
    if (result.translations >= options.max_gates) return result;  // fail
    // Sideways moves (equal distance) are allowed within a budget; the
    // visited set keeps them from cycling. Uphill moves never are.
    Score best{current.distance + 1, 0};
    const Gate* best_gate = nullptr;
    bool best_output_side = true;
    for (const Gate& g : library) {
      // Output side: f' = g o f.
      for (std::uint64_t x = 0; x < image.size(); ++x) {
        candidate[x] = g.apply(image[x]);
      }
      Score s = score_of(candidate, n);
      if (s.better_than(best) && !visited.count(hash_image(candidate))) {
        best = s;
        best_gate = &g;
        best_output_side = true;
      }
      if (!options.bidirectional) continue;
      // Input side: f' = f o g.
      for (std::uint64_t x = 0; x < image.size(); ++x) {
        candidate[x] = image[g.apply(x)];
      }
      s = score_of(candidate, n);
      if (s.better_than(best) && !visited.count(hash_image(candidate))) {
        best = s;
        best_gate = &g;
        best_output_side = false;
      }
    }
    if (best_gate == nullptr) return result;  // no translation left
    if (best.distance == current.distance) {
      if (++sideways > options.sideways_limit) return result;  // plateau
    } else {
      sideways = 0;
    }
    if (best_output_side) {
      for (std::uint64_t& y : image) y = best_gate->apply(y);
      out_gates.push_back(*best_gate);
    } else {
      // f' = f o g: permute the domain.
      std::vector<std::uint64_t> next(image.size());
      for (std::uint64_t x = 0; x < image.size(); ++x) {
        next[x] = image[best_gate->apply(x)];
      }
      image = std::move(next);
      in_gates.push_back(*best_gate);
    }
    visited.insert(hash_image(image));
    current = best;
    ++result.translations;
  }

  Circuit c(n);
  for (const Gate& g : in_gates) c.append(g);
  for (auto it = out_gates.rbegin(); it != out_gates.rend(); ++it) {
    c.append(*it);
  }
  result.success = true;
  result.circuit = std::move(c);
  return result;
}

}  // namespace rmrls
