/// \file optimal_bfs.hpp
/// \brief Optimal gate counts for all 3-variable reversible functions.
///
/// Reproduces the "Optimal [16]" columns of the paper's Table I (Shende et
/// al. computed them by iterative deepening). We instead run one breadth-
/// first search over the whole symmetric group S_8 from the identity,
/// applying every library gate; the BFS distance of a permutation is the
/// optimal circuit size. The NCT library has 12 gates on 3 lines
/// (3 NOT + 6 CNOT + 3 TOF3); NCTS adds the 3 SWAP gates.

#pragma once

#include <cstdint>
#include <vector>

#include "rev/fredkin.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Which 3-line gate library the BFS uses.
enum class OptimalLibrary { kNCT, kNCTS };

/// Optimal gate-count oracle over all 8! = 40320 three-variable functions.
/// Also extracts an actual optimal circuit for any function by
/// backtracking the BFS predecessor moves (SWAP gates appear as
/// uncontrolled Fredkin gates in the mixed cascade).
class OptimalCounts3 {
 public:
  explicit OptimalCounts3(OptimalLibrary lib);

  /// Optimal circuit size for `f` (0 for the identity).
  [[nodiscard]] int distance(const TruthTable& f) const;

  /// An optimal circuit for `f`: exactly `distance(f)` gates, verified
  /// realizable from the BFS predecessor chain.
  [[nodiscard]] MixedCircuit circuit(const TruthTable& f) const;

  /// Histogram: entry d = number of functions whose optimum is d gates.
  [[nodiscard]] const std::vector<std::uint64_t>& histogram() const {
    return histogram_;
  }

  /// Average optimal size over all 40320 functions.
  [[nodiscard]] double average() const;

  /// Packs a 3-variable permutation into a 24-bit code (3 bits per image).
  [[nodiscard]] static std::uint32_t pack(const TruthTable& f);

 private:
  std::vector<std::int8_t> dist_;  // indexed by packed code; -1 = invalid
  std::vector<std::int8_t> move_;  // library move that reached the code
  std::vector<MixedGate> library_;
  std::vector<std::uint64_t> histogram_;
};

}  // namespace rmrls
