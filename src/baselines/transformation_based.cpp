#include "baselines/transformation_based.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace rmrls {

namespace {

/// Gates (in application order) mapping word `from` to word `to` while
/// fixing every word < floor. Phase 1 sets the bits `to` has and `from`
/// lacks, controlled on all current ones of the word being moved; phase 2
/// clears the extra bits, controlled on the ones of `to`. Both phases only
/// touch words >= min(from, to), which is >= floor for the callers.
std::vector<Gate> steer(std::uint64_t from, std::uint64_t to) {
  std::vector<Gate> gates;
  std::uint64_t w = from;
  std::uint64_t missing = to & ~w;
  while (missing) {
    const int p = std::countr_zero(missing);
    missing &= missing - 1;
    gates.emplace_back(static_cast<Cube>(w), p);
    w |= std::uint64_t{1} << p;
  }
  std::uint64_t extra = w & ~to;
  while (extra) {
    const int p = std::countr_zero(extra);
    extra &= extra - 1;
    gates.emplace_back(static_cast<Cube>(to), p);
    w ^= std::uint64_t{1} << p;
  }
  return gates;
}

void apply_output_side(std::vector<std::uint64_t>& image, const Gate& g) {
  for (std::uint64_t& y : image) y = g.apply(y);
}

void apply_input_side(std::vector<std::uint64_t>& image, const Gate& g) {
  // f' = f o g: swap the images of the state pairs g exchanges.
  for (std::uint64_t x = 0; x < image.size(); ++x) {
    const std::uint64_t gx = g.apply(x);
    if (gx > x) std::swap(image[x], image[gx]);
  }
}

}  // namespace

Circuit synthesize_transformation_based(const TruthTable& spec,
                                        CancelToken* cancel) {
  const int n = spec.num_vars();
  std::vector<std::uint64_t> image = spec.image();
  std::vector<Gate> out_gates;
  for (std::uint64_t i = 0; i < image.size(); ++i) {
    if (cancel != nullptr && cancel->cancelled()) break;
    if (image[i] == i) continue;
    for (const Gate& g : steer(image[i], i)) {
      apply_output_side(image, g);
      out_gates.push_back(g);
    }
  }
  // spec = G1^-1 o ... o Gm^-1 with G1 collected first; Toffoli gates are
  // self-inverse, so the cascade is the collected list reversed.
  Circuit c(n);
  for (auto it = out_gates.rbegin(); it != out_gates.rend(); ++it) {
    c.append(*it);
  }
  return c;
}

Circuit synthesize_transformation_bidir(const TruthTable& spec,
                                        CancelToken* cancel) {
  const int n = spec.num_vars();
  std::vector<std::uint64_t> image = spec.image();
  std::vector<std::uint64_t> inverse(image.size());
  for (std::uint64_t x = 0; x < image.size(); ++x) inverse[image[x]] = x;

  std::vector<Gate> in_gates;
  std::vector<Gate> out_gates;
  const auto gate_cost = [](std::uint64_t a, std::uint64_t b) {
    return std::popcount(a ^ b);
  };

  for (std::uint64_t i = 0; i < image.size(); ++i) {
    if (cancel != nullptr && cancel->cancelled()) break;
    if (image[i] == i) continue;
    const std::uint64_t y = image[i];
    const std::uint64_t x = inverse[i];
    if (gate_cost(y, i) <= gate_cost(x, i)) {
      // Fix at the output side: map y -> i.
      for (const Gate& g : steer(y, i)) {
        apply_output_side(image, g);
        out_gates.push_back(g);
      }
    } else {
      // Fix at the input side, so that f'(i) = f(x) = i. Appending gate h
      // to the input cascade composes the remaining function as f o h, so
      // the steering sequence (which moves i to x first-gate-first) must
      // be appended in reverse.
      const std::vector<Gate> gates = steer(i, x);
      for (auto it = gates.rbegin(); it != gates.rend(); ++it) {
        apply_input_side(image, *it);
        in_gates.push_back(*it);
      }
    }
    for (std::uint64_t z = 0; z < image.size(); ++z) inverse[image[z]] = z;
  }

  Circuit c(n);
  for (const Gate& g : in_gates) c.append(g);
  for (auto it = out_gates.rbegin(); it != out_gates.rend(); ++it) {
    c.append(*it);
  }
  return c;
}


namespace {

/// Moves bit `from` of every state to bit `to[from]`.
std::uint64_t permute_bits(std::uint64_t x, const std::vector<int>& to) {
  std::uint64_t y = 0;
  for (std::size_t from = 0; from < to.size(); ++from) {
    y |= ((x >> from) & 1) << to[from];
  }
  return y;
}

/// Appends a swap network realizing the wire permutation `to` (bit `from`
/// must end up at position `to[from]`), 3 CNOTs per transposition.
void append_wire_permutation(Circuit& c, std::vector<int> to) {
  for (int from = 0; from < static_cast<int>(to.size()); ++from) {
    while (to[static_cast<std::size_t>(from)] != from) {
      const int other = to[static_cast<std::size_t>(from)];
      // Swap lines `from` and `other`.
      c.append(Gate(cube_of_var(from), other));
      c.append(Gate(cube_of_var(other), from));
      c.append(Gate(cube_of_var(from), other));
      std::swap(to[static_cast<std::size_t>(from)],
                to[static_cast<std::size_t>(other)]);
    }
  }
}

}  // namespace

Circuit synthesize_transformation_perm(const TruthTable& spec) {
  const int n = spec.num_vars();
  if (n > 6) {
    throw std::invalid_argument(
        "output-permutation search enumerates n! relabelings; use <= 6 "
        "lines or synthesize_transformation_bidir");
  }
  std::vector<int> pi(static_cast<std::size_t>(n));
  std::iota(pi.begin(), pi.end(), 0);
  Circuit best;
  bool have_best = false;
  do {
    // Relabeled spec: outputs permuted by pi, i.e. the synthesized core
    // realizes pi(spec(x)); undoing pi afterwards restores spec.
    std::vector<std::uint64_t> image(spec.size());
    for (std::uint64_t x = 0; x < spec.size(); ++x) {
      image[x] = permute_bits(spec.apply(x), pi);
    }
    Circuit candidate = synthesize_transformation_bidir(
        TruthTable(std::move(image)));
    // Undo pi: bit pi[i] currently holds output i, so move it back.
    std::vector<int> undo(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) undo[static_cast<std::size_t>(pi[i])] = i;
    append_wire_permutation(candidate, std::move(undo));
    if (!have_best || candidate.gate_count() < best.gate_count()) {
      best = std::move(candidate);
      have_best = true;
    }
  } while (std::next_permutation(pi.begin(), pi.end()));
  return best;
}

}  // namespace rmrls
