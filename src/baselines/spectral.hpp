/// \file spectral.hpp
/// \brief Spectral greedy synthesis in the style of Miller & Dueck [18]
/// (Section III of the paper).
///
/// The method of [18] repeatedly applies the single "translation" (one
/// gate, at the input or the output side) that most improves a complexity
/// measure of the remaining function, with no backtracking or look-ahead;
/// "an error is declared if no translation can be found". Our complexity
/// measure is the distance-to-identity D(f) = sum_x wt(f(x) XOR x), which
/// equals the diagonal Rademacher-Walsh residue: for each output i the
/// spectral coefficient of f_i against x_i is 2^n - 2 m_i with m_i the
/// mismatch count, so maximizing spectral gain and minimizing D coincide.
/// The Walsh-Hadamard transform itself is exposed for tests and analysis.

#pragma once

#include <cstdint>
#include <vector>

#include "rev/circuit.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// In-place Walsh-Hadamard transform of a +/-1-encoded vector (pass the
/// 0/1 truth vector; it is re-encoded internally). Returns the spectrum:
/// coefficient S_w = sum_x (-1)^(f(x) XOR <w,x>).
[[nodiscard]] std::vector<std::int64_t> walsh_spectrum(
    const std::vector<std::uint8_t>& f);

/// The complexity measure: total Hamming distance from the identity.
/// Zero iff `f` is the identity.
[[nodiscard]] std::int64_t identity_distance(const TruthTable& f);

struct SpectralOptions {
  bool bidirectional = true;  ///< allow input-side translations too
  int max_gates = 4096;       ///< safety cap (the measure can plateau)
  /// Consecutive distance-neutral ("sideways") translations allowed
  /// before declaring the error; such moves pick the best concentration
  /// gain and never revisit a seen state. 0 reproduces the pure strict
  /// [18] rule, which fails on most functions.
  int sideways_limit = 12;
};

struct SpectralResult {
  bool success = false;
  Circuit circuit;
  int translations = 0;  ///< greedy steps taken
};

/// Greedy spectral synthesis over the NCT library. Fails (per [18]) when
/// no gate strictly decreases the measure.
[[nodiscard]] SpectralResult synthesize_spectral(
    const TruthTable& spec, const SpectralOptions& options = {});

}  // namespace rmrls
