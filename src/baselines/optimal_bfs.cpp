#include "baselines/optimal_bfs.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <stdexcept>

#include "rev/gate.hpp"

namespace rmrls {

namespace {

constexpr int kStates = 8;
constexpr std::uint32_t kCodes = 1u << 24;  // 8 images x 3 bits

std::uint32_t pack_image(const std::array<std::uint8_t, kStates>& image) {
  std::uint32_t code = 0;
  for (int x = 0; x < kStates; ++x) {
    code |= static_cast<std::uint32_t>(image[x]) << (3 * x);
  }
  return code;
}

/// All single-gate permutations of the library.
std::vector<MixedGate> library_gates(OptimalLibrary lib) {
  std::vector<MixedGate> gates;
  for (int t = 0; t < 3; ++t) {
    gates.push_back(MixedGate::toffoli(Gate(kConstOne, t)));  // 3 NOT
  }
  for (int c = 0; c < 3; ++c) {
    for (int t = 0; t < 3; ++t) {
      if (c != t) {
        gates.push_back(MixedGate::toffoli(Gate(cube_of_var(c), t)));  // CNOT
      }
    }
  }
  for (int t = 0; t < 3; ++t) {  // 3 TOF3
    Cube controls = 0;
    for (int v = 0; v < 3; ++v) {
      if (v != t) controls |= cube_of_var(v);
    }
    gates.push_back(MixedGate::toffoli(Gate(controls, t)));
  }
  if (lib == OptimalLibrary::kNCTS) {
    for (int a = 0; a < 3; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        gates.push_back(MixedGate::fredkin(kConstOne, a, b));  // 3 SWAP
      }
    }
  }
  return gates;
}

}  // namespace

OptimalCounts3::OptimalCounts3(OptimalLibrary lib)
    : dist_(kCodes, std::int8_t{-1}),
      move_(kCodes, std::int8_t{-1}),
      library_(library_gates(lib)) {
  // State maps of every library gate, for the BFS inner loop.
  std::vector<std::array<std::uint8_t, kStates>> moves;
  moves.reserve(library_.size());
  for (const MixedGate& g : library_) {
    std::array<std::uint8_t, kStates> m{};
    for (int x = 0; x < kStates; ++x) {
      m[x] = static_cast<std::uint8_t>(g.apply(static_cast<std::uint64_t>(x)));
    }
    moves.push_back(m);
  }

  std::array<std::uint8_t, kStates> identity{};
  for (int x = 0; x < kStates; ++x) identity[x] = static_cast<std::uint8_t>(x);

  std::deque<std::array<std::uint8_t, kStates>> frontier;
  dist_[pack_image(identity)] = 0;
  frontier.push_back(identity);
  std::uint64_t reached = 1;
  while (!frontier.empty()) {
    const auto cur = frontier.front();
    frontier.pop_front();
    const int d = dist_[pack_image(cur)];
    for (std::size_t mv = 0; mv < moves.size(); ++mv) {
      // Appending gate g to circuit C gives the permutation g o C.
      std::array<std::uint8_t, kStates> next{};
      for (int x = 0; x < kStates; ++x) next[x] = moves[mv][cur[x]];
      const std::uint32_t code = pack_image(next);
      if (dist_[code] < 0) {
        dist_[code] = static_cast<std::int8_t>(d + 1);
        move_[code] = static_cast<std::int8_t>(mv);
        frontier.push_back(next);
        ++reached;
      }
    }
  }
  if (reached != 40320) {
    throw std::logic_error("BFS did not reach all of S_8");
  }
  histogram_.assign(16, 0);
  int max_d = 0;
  for (std::uint32_t code = 0; code < kCodes; ++code) {
    if (dist_[code] >= 0) {
      ++histogram_[static_cast<std::size_t>(dist_[code])];
      max_d = std::max<int>(max_d, dist_[code]);
    }
  }
  histogram_.resize(static_cast<std::size_t>(max_d) + 1);
}

std::uint32_t OptimalCounts3::pack(const TruthTable& f) {
  if (f.num_vars() != 3) throw std::invalid_argument("need a 3-line table");
  std::uint32_t code = 0;
  for (int x = 0; x < kStates; ++x) {
    code |= static_cast<std::uint32_t>(f.apply(static_cast<std::uint64_t>(x)))
            << (3 * x);
  }
  return code;
}

int OptimalCounts3::distance(const TruthTable& f) const {
  const std::int8_t d = dist_[pack(f)];
  if (d < 0) throw std::logic_error("unreachable permutation");
  return d;
}

MixedCircuit OptimalCounts3::circuit(const TruthTable& f) const {
  // BFS appended gates at the output side (F = g o F_prev), so walking
  // predecessors from f to the identity yields the cascade back to front:
  // F_prev = g^-1 o F = g o F (all library gates are involutions).
  std::array<std::uint8_t, kStates> cur{};
  for (int x = 0; x < kStates; ++x) {
    cur[x] = static_cast<std::uint8_t>(f.apply(static_cast<std::uint64_t>(x)));
  }
  std::vector<MixedGate> reversed;
  std::uint32_t code = pack(f);
  while (dist_[code] > 0) {
    const MixedGate& g = library_[static_cast<std::size_t>(move_[code])];
    reversed.push_back(g);
    for (int x = 0; x < kStates; ++x) {
      cur[x] = static_cast<std::uint8_t>(
          g.apply(static_cast<std::uint64_t>(cur[x])));
    }
    code = pack_image(cur);
  }
  MixedCircuit out(3);
  for (auto it = reversed.rbegin(); it != reversed.rend(); ++it) {
    out.append(*it);
  }
  return out;
}

double OptimalCounts3::average() const {
  double weighted = 0;
  for (std::size_t d = 0; d < histogram_.size(); ++d) {
    weighted += static_cast<double>(d) * static_cast<double>(histogram_[d]);
  }
  return weighted / 40320.0;
}

}  // namespace rmrls
