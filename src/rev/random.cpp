#include "rev/random.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rmrls {

TruthTable random_reversible_function(int num_vars, std::mt19937_64& rng) {
  if (num_vars < 1 || num_vars > 24) {
    throw std::invalid_argument("num_vars out of range for explicit tables");
  }
  std::vector<std::uint64_t> image(std::uint64_t{1} << num_vars);
  std::iota(image.begin(), image.end(), 0);
  std::shuffle(image.begin(), image.end(), rng);
  return TruthTable(std::move(image));
}

Circuit random_circuit(int num_lines, int gate_count, GateLibrary lib,
                       std::mt19937_64& rng) {
  if (num_lines < 1 || num_lines > kMaxVariables) {
    throw std::invalid_argument("num_lines out of range");
  }
  if (lib == GateLibrary::kNCTS) {
    throw std::invalid_argument("SWAP gates are not Toffoli cascades");
  }
  Circuit c(num_lines);
  std::uniform_int_distribution<int> target_dist(0, num_lines - 1);
  const int max_controls =
      lib == GateLibrary::kNCT ? std::min(2, num_lines - 1) : num_lines - 1;
  std::uniform_int_distribution<int> ctrl_count_dist(0, max_controls);
  for (int i = 0; i < gate_count; ++i) {
    const int target = target_dist(rng);
    const int num_controls = ctrl_count_dist(rng);
    // Choose `num_controls` distinct lines other than the target.
    std::vector<int> pool;
    pool.reserve(num_lines - 1);
    for (int v = 0; v < num_lines; ++v) {
      if (v != target) pool.push_back(v);
    }
    std::shuffle(pool.begin(), pool.end(), rng);
    Cube controls = kConstOne;
    for (int j = 0; j < num_controls; ++j) controls |= cube_of_var(pool[j]);
    c.append(Gate(controls, target));
  }
  return c;
}

}  // namespace rmrls
