#include "rev/equivalence.hpp"

#include <stdexcept>

namespace rmrls {

bool equivalent(const Circuit& a, const Circuit& b) {
  if (a.num_lines() != b.num_lines()) {
    throw std::invalid_argument("comparing circuits of different width");
  }
  // Compare the canonical PPRMs directly. (Appending b's mirror to a and
  // checking for the identity is also exact but can blow up the
  // intermediate expansions exponentially on wide carry-chain circuits.)
  return a.to_pprm() == b.to_pprm();
}

bool equivalent(const Circuit& c, const Pprm& spec) {
  if (c.num_lines() != spec.num_vars()) {
    throw std::invalid_argument("comparing circuit and spec of different width");
  }
  return c.to_pprm() == spec;
}

bool equivalent(const MixedCircuit& a, const Circuit& b) {
  return equivalent(a.to_toffoli(), b);
}

bool equivalent(const MixedCircuit& a, const MixedCircuit& b) {
  return equivalent(a.to_toffoli(), b.to_toffoli());
}

}  // namespace rmrls
