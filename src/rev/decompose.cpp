#include "rev/decompose.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

namespace rmrls {

namespace {

std::vector<int> bits_of(Cube mask) {
  std::vector<int> out;
  while (mask) {
    out.push_back(std::countr_zero(mask));
    mask &= mask - 1;
  }
  return out;
}

/// Emits the borrowed-ancilla ladder for controls `c` (size m >= 3),
/// target t, dirty spares `a` (size >= m-2). 4(m-2) TOF3 gates; every
/// spare is toggled an even number of times, so its value is restored.
void emit_ladder(const std::vector<int>& c, int t, const std::vector<int>& a,
                 std::vector<Gate>& out) {
  const int m = static_cast<int>(c.size());
  const auto tof3 = [&out](int x, int y, int target) {
    out.emplace_back(cube_of_var(x) | cube_of_var(y), target);
  };
  const auto half = [&] {
    // top: T(c_m, a_{m-2} -> t)
    tof3(c[static_cast<std::size_t>(m - 1)],
         a[static_cast<std::size_t>(m - 3)], t);
    // down-chain: T(c_{i+1}, a_{i-1} -> a_i) for i = m-2 .. 2
    for (int i = m - 2; i >= 2; --i) {
      tof3(c[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i - 2)],
           a[static_cast<std::size_t>(i - 1)]);
    }
    // base: T(c_1, c_2 -> a_1)
    tof3(c[0], c[1], a[0]);
    // up-chain
    for (int i = 2; i <= m - 2; ++i) {
      tof3(c[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i - 2)],
           a[static_cast<std::size_t>(i - 1)]);
    }
  };
  half();
  half();
}

/// Recursively decomposes C^m(X) with controls `c`, target t, on the line
/// set `all` (a mask). Emits into `out`.
void decompose_controls(const std::vector<int>& c, int t, Cube all,
                        std::vector<Gate>& out) {
  const int m = static_cast<int>(c.size());
  if (m <= 2) {
    Cube controls = kConstOne;
    for (int v : c) controls |= cube_of_var(v);
    out.emplace_back(controls, t);
    return;
  }
  Cube support = cube_of_var(t);
  for (int v : c) support |= cube_of_var(v);
  const std::vector<int> spare = bits_of(all & ~support);
  if (static_cast<int>(spare.size()) >= m - 2) {
    emit_ladder(c, t, spare, out);
    return;
  }
  if (spare.empty()) {
    throw std::logic_error("decompose_controls needs at least one spare");
  }
  // Split (Lemma 7.3-style): C^m(X) = A B A B with
  //   A = C^k(X) on controls c_1..c_k, target f,
  //   B = C^{m-k+1}(X) on controls c_{k+1}..c_m + f, target t.
  const int f = spare[0];
  const int k = (m + 1) / 2;
  const std::vector<int> first(c.begin(), c.begin() + k);
  std::vector<int> second(c.begin() + k, c.end());
  second.push_back(f);
  for (int round = 0; round < 2; ++round) {
    decompose_controls(first, f, all, out);
    decompose_controls(second, t, all, out);
  }
}

}  // namespace

std::vector<Gate> decompose_gate(const Gate& gate, int num_lines,
                                 FullWidthPolicy policy) {
  if (gate.size() <= 3) return {gate};
  if (gate.size() >= num_lines) {
    // No spare line at all: parity-impossible for width >= 4.
    if (policy == FullWidthPolicy::kKeep) return {gate};
    throw std::invalid_argument(
        "a full-width Toffoli (odd permutation) has no NCT network; "
        "add a line or use FullWidthPolicy::kKeep");
  }
  const Cube all = num_lines == kMaxVariables
                       ? ~Cube{0}
                       : (Cube{1} << num_lines) - 1;
  std::vector<Gate> out;
  decompose_controls(bits_of(gate.controls), gate.target, all, out);
  return out;
}

Circuit decompose_to_nct(const Circuit& c, FullWidthPolicy policy) {
  Circuit out(c.num_lines());
  for (const Gate& g : c.gates()) {
    for (const Gate& piece : decompose_gate(g, c.num_lines(), policy)) {
      out.append(piece);
    }
  }
  return out;
}

}  // namespace rmrls
