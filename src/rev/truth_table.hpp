/// \file truth_table.hpp
/// \brief Reversible functions as explicit permutations of {0, ..., 2^n - 1}.
///
/// The paper specifies reversible functions either as truth tables or as
/// permutations on the integers 0..2^n-1 (Section II-A); this class is the
/// permutation form. It is the exact, exhaustively-checkable representation
/// used for every function small enough to enumerate (n <= ~20); wider
/// functions use structural PPRMs instead (see structural.hpp).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rmrls {

/// An n-line reversible function stored as the image vector
/// `table[x] = f(x)`. Construction validates bijectivity.
class TruthTable {
 public:
  TruthTable() = default;

  /// Builds from an image vector; `image.size()` must be a power of two and
  /// the vector must be a permutation of `0..image.size()-1`.
  /// Throws std::invalid_argument otherwise.
  explicit TruthTable(std::vector<std::uint64_t> image);

  /// The identity function on `n` lines.
  [[nodiscard]] static TruthTable identity(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }
  [[nodiscard]] std::uint64_t size() const { return image_.size(); }

  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const {
    return image_[x];
  }
  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const {
    return image_[x];
  }

  [[nodiscard]] const std::vector<std::uint64_t>& image() const {
    return image_;
  }

  /// Functional composition: `(this->then(g))(x) == g(this(x))`.
  [[nodiscard]] TruthTable then(const TruthTable& g) const;

  /// The inverse permutation.
  [[nodiscard]] TruthTable inverse() const;

  [[nodiscard]] bool is_identity() const;

  /// Permutation parity: true if the permutation is even. Relevant to the
  /// synthesis-theory results of Shende et al. [16].
  [[nodiscard]] bool is_even() const;

  /// Renders as the paper's permutation notation, e.g. "{1, 0, 7, 2, ...}".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TruthTable&, const TruthTable&) = default;

 private:
  std::vector<std::uint64_t> image_;
  int num_vars_ = 0;
};

}  // namespace rmrls
