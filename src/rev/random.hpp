/// \file random.hpp
/// \brief Seeded generators for random reversible functions and circuits.
///
/// Section V of the paper evaluates on (a) uniformly random reversible
/// functions of 4-5 variables and (b) random Toffoli cascades of 6-16
/// variables with a bounded gate count, later re-synthesized from their
/// simulated specification. Both generators live here; all randomness is
/// an explicit std::mt19937_64 so every experiment is reproducible.

#pragma once

#include <cstdint>
#include <random>

#include "rev/circuit.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Gate libraries of the paper. GT: generalized Toffoli gates of any width.
/// NCT: NOT, CNOT, and the 3-bit Toffoli only. NCTS additionally allows
/// SWAP (used only by the optimal-baseline comparisons of Table I).
enum class GateLibrary { kGT, kNCT, kNCTS };

/// A uniformly random permutation of {0..2^n-1} (Fisher-Yates).
[[nodiscard]] TruthTable random_reversible_function(int num_vars,
                                                    std::mt19937_64& rng);

/// A random cascade per Section V-E: `gate_count` gates, each drawn from
/// `lib` with a uniformly random target; for GT the number of controls is
/// uniform in [0, num_lines-1], for NCT it is uniform in {0, 1, 2}. Control
/// lines are a uniform random subset of the remaining lines.
[[nodiscard]] Circuit random_circuit(int num_lines, int gate_count,
                                     GateLibrary lib, std::mt19937_64& rng);

}  // namespace rmrls
