/// \file circuit_stats.hpp
/// \brief Structural statistics of Toffoli cascades.
///
/// Reports the quantities the reversible-logic literature tabulates beside
/// gate count and quantum cost: the gate-size histogram (how GT-heavy a
/// cascade is), which library it fits (NCT vs GT), line utilization, and
/// logical depth — the minimum number of layers when gates that satisfy
/// the moving rule may execute side by side.

#pragma once

#include <array>
#include <string>

#include "rev/circuit.hpp"

namespace rmrls {

struct CircuitStats {
  int gates = 0;
  int lines = 0;
  /// size_histogram[m] = number of gates of width m (m up to 64).
  std::array<int, kMaxVariables + 1> size_histogram{};
  int max_gate_size = 0;
  bool fits_nct = false;  ///< every gate has width <= 3
  int used_lines = 0;     ///< lines touched by at least one gate
  int controls_total = 0; ///< sum of control counts (the gamma objective)
  /// Greedy-layered logical depth: gates are packed into the earliest
  /// layer after their last non-commuting predecessor.
  int depth = 0;
};

[[nodiscard]] CircuitStats analyze(const Circuit& c);

/// Multi-line human-readable rendering.
[[nodiscard]] std::string stats_to_string(const CircuitStats& s);

}  // namespace rmrls
