#include "rev/structural.hpp"

#include <stdexcept>

namespace rmrls {

Pprm graycode_pprm(int num_vars) {
  if (num_vars < 1 || num_vars > kMaxVariables) {
    throw std::invalid_argument("num_vars out of range");
  }
  Pprm p(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    p.output(i).toggle(cube_of_var(i));
    if (i + 1 < num_vars) p.output(i).toggle(cube_of_var(i + 1));
  }
  return p;
}

std::uint64_t graycode_eval(int num_vars, std::uint64_t x) {
  const std::uint64_t mask = num_vars == kMaxVariables
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << num_vars) - 1;
  return (x ^ (x >> 1)) & mask;
}

Circuit shifter_reference_circuit(int data_lines) {
  if (data_lines < 4 || data_lines + 2 > kMaxVariables) {
    throw std::invalid_argument("data_lines out of range");
  }
  Circuit c(data_lines + 2);
  // Controlled +1: data bit i flips when s0 and all lower data bits are 1.
  // Applied top-down so lower bits are read before being modified.
  for (int i = data_lines - 1; i >= 0; --i) {
    Cube controls = cube_of_var(0);  // s0
    for (int j = 0; j < i; ++j) controls |= cube_of_var(2 + j);
    c.append(Gate(controls, 2 + i));
  }
  // Controlled +2: data bit i >= 1 flips when s1 and data bits 1..i-1 are 1.
  for (int i = data_lines - 1; i >= 1; --i) {
    Cube controls = cube_of_var(1);  // s1
    for (int j = 1; j < i; ++j) controls |= cube_of_var(2 + j);
    c.append(Gate(controls, 2 + i));
  }
  return c;
}

Pprm shifter_pprm(int data_lines) {
  return shifter_reference_circuit(data_lines).to_pprm();
}

std::uint64_t shifter_eval(int data_lines, std::uint64_t x) {
  const std::uint64_t shift = x & 3;
  const std::uint64_t data = x >> 2;
  const std::uint64_t mask = (std::uint64_t{1} << data_lines) - 1;
  return (((data + shift) & mask) << 2) | shift;
}

}  // namespace rmrls
