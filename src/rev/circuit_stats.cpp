#include "rev/circuit_stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace rmrls {

CircuitStats analyze(const Circuit& c) {
  CircuitStats s;
  s.gates = c.gate_count();
  s.lines = c.num_lines();
  Cube touched = 0;
  // Per-gate earliest layer: one past the latest layer of any earlier
  // gate it does not commute with.
  std::vector<int> layer(c.gates().size(), 1);
  for (std::size_t i = 0; i < c.gates().size(); ++i) {
    const Gate& g = c.gates()[i];
    const int m = g.size();
    ++s.size_histogram[static_cast<std::size_t>(m)];
    s.max_gate_size = std::max(s.max_gate_size, m);
    s.controls_total += m - 1;
    touched |= g.controls | cube_of_var(g.target);
    for (std::size_t j = 0; j < i; ++j) {
      if (!c.gates()[j].commutes_with(g)) {
        layer[i] = std::max(layer[i], layer[j] + 1);
      }
    }
    s.depth = std::max(s.depth, layer[i]);
  }
  s.fits_nct = s.max_gate_size <= 3;
  s.used_lines = literal_count(touched);
  return s;
}

std::string stats_to_string(const CircuitStats& s) {
  std::ostringstream os;
  os << s.gates << " gates on " << s.lines << " lines (" << s.used_lines
     << " used), depth " << s.depth << ", library "
     << (s.fits_nct ? "NCT" : "GT") << ", " << s.controls_total
     << " controls total\n";
  os << "gate sizes:";
  for (int m = 1; m <= s.max_gate_size; ++m) {
    if (s.size_histogram[static_cast<std::size_t>(m)] == 0) continue;
    os << "  TOF" << m << " x"
       << s.size_histogram[static_cast<std::size_t>(m)];
  }
  os << "\n";
  return os.str();
}

}  // namespace rmrls
