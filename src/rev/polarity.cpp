#include "rev/polarity.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace rmrls {

PolarityGate::PolarityGate(Cube controls_in, Cube polarity_in, int target_in)
    : controls(controls_in),
      polarity(polarity_in),
      target(static_cast<std::uint8_t>(target_in)) {
  if (target_in < 0 || target_in >= kMaxVariables) {
    throw std::invalid_argument("gate target out of range");
  }
  if (cube_has_var(controls_in, target_in)) {
    throw std::invalid_argument("gate target cannot also be a control");
  }
  if (polarity_in & ~controls_in) {
    throw std::invalid_argument("polarity bit outside the control set");
  }
}

std::string polarity_gate_to_string(const PolarityGate& g, int num_vars) {
  std::ostringstream os;
  os << "TOF" << g.size() << "(";
  bool first = true;
  for (int v = 0; v < num_vars; ++v) {
    if (!cube_has_var(g.controls, v)) continue;
    if (!first) os << ", ";
    os << cube_to_string(cube_of_var(v), num_vars);
    if (!cube_has_var(g.polarity, v)) os << "'";
    first = false;
  }
  if (!first) os << "; ";
  os << cube_to_string(cube_of_var(g.target), num_vars) << ")";
  return os.str();
}

PolarityCircuit::PolarityCircuit(int num_lines) : num_lines_(num_lines) {
  if (num_lines < 0 || num_lines > kMaxVariables) {
    throw std::invalid_argument("num_lines out of range");
  }
}

PolarityCircuit::PolarityCircuit(const Circuit& c)
    : PolarityCircuit(c.num_lines()) {
  for (const Gate& g : c.gates()) append(PolarityGate::positive(g));
}

void PolarityCircuit::append(const PolarityGate& g) {
  const Cube line_mask = num_lines_ == kMaxVariables
                             ? ~Cube{0}
                             : (Cube{1} << num_lines_) - 1;
  if (g.target >= num_lines_ || (g.controls & ~line_mask) != 0) {
    throw std::invalid_argument("gate touches a line outside the circuit");
  }
  gates_.push_back(g);
}

std::uint64_t PolarityCircuit::simulate(std::uint64_t x) const {
  for (const PolarityGate& g : gates_) x = g.apply(x);
  return x;
}

Circuit PolarityCircuit::to_positive() const {
  Circuit out(num_lines_);
  // Lines currently inverted by a pending sandwich NOT: emitting the next
  // gate first reconciles this set with what the gate needs, so adjacent
  // sandwiches over the same line cancel instead of doubling up.
  Cube inverted = 0;
  const auto reconcile = [&](Cube wanted) {
    Cube flip = inverted ^ wanted;
    while (flip) {
      const int v = std::countr_zero(flip);
      flip &= flip - 1;
      out.append(Gate(kConstOne, v));
    }
    inverted = wanted;
  };
  for (const PolarityGate& g : gates_) {
    reconcile(g.negative_controls());
    out.append(Gate(g.controls, g.target));
  }
  reconcile(0);
  return out;
}

std::string PolarityCircuit::to_string() const {
  if (gates_.empty()) return "(empty)";
  std::ostringstream os;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (i != 0) os << " ";
    os << polarity_gate_to_string(gates_[i], num_lines_);
  }
  return os.str();
}

namespace {

bool commutes(const PolarityGate& a, const Gate& b) {
  if (a.target == b.target) return true;
  return !cube_has_var(b.controls, a.target) &&
         !cube_has_var(a.controls, b.target);
}

}  // namespace

PolarityCompressResult compress_polarity(const Circuit& c) {
  // Work on the lifted gate list; fold NOT pairs around a single gate.
  std::vector<PolarityGate> gates;
  gates.reserve(static_cast<std::size_t>(c.gate_count()));
  for (const Gate& g : c.gates()) gates.push_back(PolarityGate::positive(g));

  PolarityCompressResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      const PolarityGate& head = gates[i];
      if (head.size() != 1) continue;  // need a NOT to open the sandwich
      const int line = head.target;
      const Gate head_plain(kConstOne, line);
      // Find a matching closing NOT; everything between must either be
      // the (unique) gate we flip a control of, or commute with the NOT.
      std::size_t mid = 0;
      bool have_mid = false;
      bool blocked = false;
      std::size_t j = i + 1;
      for (; j < gates.size(); ++j) {
        const PolarityGate& g = gates[j];
        if (g.size() == 1 && g.target == line) break;  // closing NOT
        if (cube_has_var(g.controls, line)) {
          if (have_mid) {
            blocked = true;  // two gates read the line: cannot fold once
            break;
          }
          mid = j;
          have_mid = true;
          continue;
        }
        if (!commutes(g, head_plain)) {
          blocked = true;
          break;
        }
      }
      if (blocked || j >= gates.size() || !have_mid) continue;
      // Fold: flip the polarity of `line` on the middle gate, drop NOTs.
      PolarityGate& m = gates[mid];
      m = PolarityGate(m.controls, m.polarity ^ cube_of_var(line), m.target);
      gates.erase(gates.begin() + static_cast<std::ptrdiff_t>(j));
      gates.erase(gates.begin() + static_cast<std::ptrdiff_t>(i));
      ++result.sandwiches_folded;
      result.gates_saved += 2;
      changed = true;
      break;
    }
  }
  PolarityCircuit out(c.num_lines());
  for (const PolarityGate& g : gates) out.append(g);
  result.circuit = std::move(out);
  return result;
}

}  // namespace rmrls
