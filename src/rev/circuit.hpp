/// \file circuit.hpp
/// \brief Cascades of Toffoli gates.
///
/// Reversible circuits are linear cascades: no fanout, no feedback (paper,
/// Section I). Gates apply left to right: `simulate(x)` feeds `x` through
/// `gates()[0]` first.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rev/gate.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

class Pprm;

/// A Toffoli-gate cascade on `num_lines` lines.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_lines);
  Circuit(int num_lines, std::vector<Gate> gates);

  [[nodiscard]] int num_lines() const { return num_lines_; }
  [[nodiscard]] int gate_count() const {
    return static_cast<int>(gates_.size());
  }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }

  /// Appends `g` at the output end. Throws if the gate touches a line
  /// outside the circuit.
  void append(const Gate& g);
  /// Inserts `g` at the input end.
  void prepend(const Gate& g);

  /// Feeds basis state `x` through the cascade, first gate first.
  [[nodiscard]] std::uint64_t simulate(std::uint64_t x) const;

  /// Exhaustive simulation into a permutation. Only for `num_lines` small
  /// enough to enumerate (throws above 24 lines).
  [[nodiscard]] TruthTable to_truth_table() const;

  /// The PPRM system realized by the cascade, built by reverse-order gate
  /// substitution into the identity — works at any width, no truth table.
  [[nodiscard]] Pprm to_pprm() const;

  /// The mirror cascade (gates reversed); Toffoli gates are self-inverse,
  /// so this is the functional inverse.
  [[nodiscard]] Circuit inverse() const;

  /// The same cascade with line `i` renamed to `perm[i]` (controls and
  /// targets alike). Realizes the conjugated function
  /// P_perm o f o P_perm^-1, the wire-relabeling half of the orbit cache
  /// (rev/canonical.hpp). Throws std::invalid_argument unless `perm` is a
  /// permutation of 0..num_lines-1.
  [[nodiscard]] Circuit relabel_wires(const std::vector<int>& perm) const;

  /// Concatenation: `this` followed by `tail`.
  [[nodiscard]] Circuit then(const Circuit& tail) const;

  /// Widest gate in the cascade (0 for an empty circuit).
  [[nodiscard]] int max_gate_size() const;

  /// One-line rendering in the paper's notation:
  /// "TOF3(c, a; b) TOF1(a)".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Circuit&, const Circuit&) = default;

 private:
  std::vector<Gate> gates_;
  int num_lines_ = 0;
};

}  // namespace rmrls
