#include "rev/embedding_search.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "rev/quantum_cost.hpp"

namespace rmrls {

namespace {

std::uint64_t extract_bits(std::uint64_t x, Cube mask) {
  std::uint64_t out = 0;
  int i = 0;
  while (mask) {
    const int b = std::countr_zero(mask);
    mask &= mask - 1;
    out |= ((x >> b) & 1) << i++;
  }
  return out;
}

struct Shape {
  int garbage = 0;
  int lines = 0;
  std::uint64_t rows = 0;
};

Shape shape_of(const IrreversibleSpec& spec) {
  std::unordered_map<std::uint64_t, std::uint64_t> multiplicity;
  std::uint64_t p = 0;
  for (std::uint64_t y : spec.outputs) p = std::max(p, ++multiplicity[y]);
  Shape s;
  while ((std::uint64_t{1} << s.garbage) < p) ++s.garbage;
  s.lines = std::max(spec.num_inputs, spec.num_outputs + s.garbage);
  s.rows = std::uint64_t{1} << spec.num_inputs;
  return s;
}

/// Assembles an embedding from per-row garbage tags (which must be unique
/// within each output-value group) and a fill policy for don't-care rows.
Embedding assemble(const IrreversibleSpec& spec, const Shape& s,
                   const std::vector<std::uint64_t>& tags,
                   bool identity_fill) {
  const std::uint64_t size = std::uint64_t{1} << s.lines;
  constexpr std::uint64_t kUnassigned = ~std::uint64_t{0};
  std::vector<std::uint64_t> image(size, kUnassigned);
  std::vector<bool> used(size, false);
  for (std::uint64_t x = 0; x < s.rows; ++x) {
    const std::uint64_t full =
        spec.outputs[x] | (tags[x] << spec.num_outputs);
    if (full >= size || used[full]) {
      throw std::invalid_argument("invalid garbage tag assignment");
    }
    image[x] = full;
    used[full] = true;
  }
  if (identity_fill) {
    for (std::uint64_t x = s.rows; x < size; ++x) {
      if (!used[x]) {
        image[x] = x;
        used[x] = true;
      }
    }
  }
  std::uint64_t next = 0;
  for (std::uint64_t x = s.rows; x < size; ++x) {
    if (image[x] != kUnassigned) continue;
    while (used[next]) ++next;
    image[x] = next;
    used[next] = true;
  }
  Embedding e;
  e.table = TruthTable(std::move(image));
  e.real_inputs = spec.num_inputs;
  e.constant_inputs = s.lines - spec.num_inputs;
  e.real_outputs = spec.num_outputs;
  e.garbage_outputs = s.lines - spec.num_outputs;
  return e;
}

/// Occurrence-counter tags (the baseline embed() uses).
std::vector<std::uint64_t> counter_tags(const IrreversibleSpec& spec,
                                        const Shape& s) {
  std::vector<std::uint64_t> tags(s.rows);
  std::unordered_map<std::uint64_t, std::uint64_t> occurrence;
  for (std::uint64_t x = 0; x < s.rows; ++x) {
    tags[x] = occurrence[spec.outputs[x]]++;
  }
  return tags;
}

/// Greedy minimal input-bit subset distinguishing every output group;
/// empty optional when no subset fits in the garbage width.
std::optional<Cube> distinguishing_bits(const IrreversibleSpec& spec,
                                        const Shape& s) {
  Cube chosen = 0;
  const auto distinct_everywhere = [&](Cube bits) {
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> groups;
    for (std::uint64_t x = 0; x < s.rows; ++x) {
      groups[spec.outputs[x]].push_back(
          static_cast<std::uint64_t>(std::popcount(bits)) == 0
              ? 0
              : extract_bits(x, bits));
    }
    for (auto& [y, vals] : groups) {
      std::sort(vals.begin(), vals.end());
      if (std::adjacent_find(vals.begin(), vals.end()) != vals.end()) {
        return false;
      }
    }
    return true;
  };
  for (int round = 0; round < s.garbage; ++round) {
    if (distinct_everywhere(chosen)) break;
    // Add the bit that resolves the most collisions.
    int best_bit = -1;
    std::uint64_t best_collisions = ~std::uint64_t{0};
    for (int bit = 0; bit < spec.num_inputs; ++bit) {
      if (cube_has_var(chosen, bit)) continue;
      const Cube trial = chosen | cube_of_var(bit);
      std::unordered_map<std::uint64_t, std::uint64_t> seen;
      std::uint64_t collisions = 0;
      for (std::uint64_t x = 0; x < s.rows; ++x) {
        const std::uint64_t key =
            spec.outputs[x] | (extract_bits(x, trial) << spec.num_outputs);
        collisions += seen[key]++;
      }
      if (collisions < best_collisions) {
        best_collisions = collisions;
        best_bit = bit;
      }
    }
    if (best_bit < 0) break;
    chosen |= cube_of_var(best_bit);
  }
  if (!distinct_everywhere(chosen)) return std::nullopt;
  return chosen;
}

}  // namespace

Embedding embed_input_echo(const IrreversibleSpec& spec) {
  const Shape s = shape_of(spec);
  const std::optional<Cube> bits = distinguishing_bits(spec, s);
  if (!bits) return embed(spec);  // no compact echo exists
  std::vector<std::uint64_t> tags(s.rows);
  for (std::uint64_t x = 0; x < s.rows; ++x) tags[x] = extract_bits(x, *bits);
  return assemble(spec, s, tags, /*identity_fill=*/true);
}

Embedding embed_identity_fill(const IrreversibleSpec& spec) {
  const Shape s = shape_of(spec);
  return assemble(spec, s, counter_tags(spec, s), /*identity_fill=*/true);
}

EmbeddingSearchResult find_best_embedding(
    const IrreversibleSpec& spec, const EmbeddingSearchOptions& options) {
  const Shape s = shape_of(spec);

  std::vector<Embedding> portfolio;
  portfolio.push_back(embed(spec));
  portfolio.push_back(embed_identity_fill(spec));
  portfolio.push_back(embed_input_echo(spec));

  std::mt19937_64 rng(options.seed);
  for (int attempt = 0; attempt < options.random_attempts; ++attempt) {
    // Shuffle the tag order within every output group.
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> members;
    for (std::uint64_t x = 0; x < s.rows; ++x) {
      members[spec.outputs[x]].push_back(x);
    }
    std::vector<std::uint64_t> tags(s.rows);
    for (auto& [y, rows] : members) {
      std::vector<std::uint64_t> order(rows.size());
      for (std::uint64_t i = 0; i < rows.size(); ++i) order[i] = i;
      std::shuffle(order.begin(), order.end(), rng);
      for (std::uint64_t i = 0; i < rows.size(); ++i) {
        tags[rows[i]] = order[i];
      }
    }
    portfolio.push_back(assemble(spec, s, tags, /*identity_fill=*/true));
  }

  EmbeddingSearchResult result;
  long long best_cost = 0;
  for (Embedding& e : portfolio) {
    ++result.attempts;
    SynthesisResult r = synthesize(e.table, options.synthesis);
    if (!r.success) continue;
    ++result.solved;
    const long long cost = quantum_cost(r.circuit);
    const bool better =
        !result.synthesis.success ||
        r.circuit.gate_count() < result.synthesis.circuit.gate_count() ||
        (r.circuit.gate_count() == result.synthesis.circuit.gate_count() &&
         cost < best_cost);
    if (better) {
      result.embedding = std::move(e);
      result.synthesis = std::move(r);
      best_cost = cost;
    }
  }
  return result;
}

}  // namespace rmrls
