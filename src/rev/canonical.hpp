/// \file canonical.hpp
/// \brief Canonical orbit representatives of reversible functions under
/// wire relabeling and inversion (docs/caching.md).
///
/// Two specs that differ only by a renaming of input/output wires, or by
/// functional inversion, are the *same* synthesis problem: a circuit for
/// sigma o pi o sigma^-1 becomes a circuit for pi by relabeling its lines
/// (permutation-group conjugation, cf. "Application of Permutation Group
/// Theory in Reversible Logic Synthesis"), and Toffoli cascades invert by
/// reversal (Maslov/Dueck/Miller). canonicalize() maps a spec to the
/// lexicographically minimal member of its orbit
///
///     { P_sigma o pi^{+-1} o P_sigma^-1 : sigma in S_n }
///
/// together with the transform needed to rebuild a circuit for the
/// original spec from one for the representative. One cached circuit per
/// orbit then serves up to 2 * n! equivalent requests
/// (core/synth_cache.hpp).

#pragma once

#include <cstdint>
#include <vector>

#include "rev/circuit.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Knobs of canonicalize(). Defaults keep the scan exact where it is cheap
/// and signature-pruned where it is not; beyond `max_vars` the orbit
/// degenerates to the spec itself (identity transform, self hash).
struct CanonicalOptions {
  /// Widest spec scanned over all n! relabelings (exact lexicographic
  /// minimum over the full orbit). 6! = 720 candidates.
  int exact_max_vars = 6;

  /// Widest spec eligible for orbit canonicalization at all (the CLI's
  /// --canonical-cap). Above it the representative is the spec itself, so
  /// the cache still deduplicates exact resubmissions, just not orbits.
  int max_vars = 12;

  /// Ceiling on signature-consistent relabelings tried above
  /// `exact_max_vars`. Highly symmetric specs (every wire signature equal)
  /// would degenerate to n!; past this budget the canonicalizer falls back
  /// to the identity orbit instead of stalling the request path.
  std::uint64_t max_candidates = 40320;  // 8!
};

/// How to turn a circuit for the canonical representative back into one
/// for the original spec (and vice versa). `sigma` is the wire relabeling
/// with representative = P_sigma o spec' o P_sigma^-1 where spec' is the
/// spec or, when `inverted`, its functional inverse.
struct OrbitTransform {
  std::vector<int> sigma;  ///< line i of spec' is line sigma[i] of the rep
  bool inverted = false;   ///< the rep canonicalizes spec^-1, not spec

  /// True when reconstruction is a no-op (rep == spec).
  [[nodiscard]] bool is_identity() const {
    if (inverted) return false;
    for (std::size_t i = 0; i < sigma.size(); ++i) {
      if (sigma[i] != static_cast<int>(i)) return false;
    }
    return true;
  }
};

/// A spec reduced to its orbit representative. `key` is the Pprm::hash()
/// of the representative's PPRM expansion — the same hash family (seeded
/// by kSystemHashSeed / fold_output_hash) the search engines' sparse and
/// dense transposition tables agree on, so every layer of the system keys
/// one function the same way.
struct CanonicalForm {
  TruthTable representative;
  OrbitTransform transform;
  std::uint64_t key = 0;
};

/// Canonicalizes `spec`: exact minimal scan for n <= exact_max_vars,
/// signature-pruned scan up to max_vars, identity orbit beyond. Every
/// member of one orbit maps to the same representative and key (the
/// property tests/test_canonical.cpp pins across both scan regimes).
[[nodiscard]] CanonicalForm canonicalize(const TruthTable& spec,
                                         const CanonicalOptions& options = {});

/// The conjugated function P_sigma o f o P_sigma^-1: wire i of `f` becomes
/// wire sigma[i]. Throws std::invalid_argument unless `sigma` is a
/// permutation of 0..n-1.
[[nodiscard]] TruthTable conjugate(const TruthTable& f,
                                   const std::vector<int>& sigma);

/// Rebuilds a circuit for the *original* spec from a circuit realizing the
/// canonical representative: relabel by sigma^-1, then mirror if the orbit
/// entered through the inverse.
[[nodiscard]] Circuit reconstruct_circuit(const Circuit& canonical_circuit,
                                          const OrbitTransform& transform);

/// Forward direction: turns a circuit for the original spec into one for
/// the representative (what the single-shot CLI inserts into the cache, so
/// the emitted circuit itself stays untouched by caching).
[[nodiscard]] Circuit canonical_circuit_of(const Circuit& circuit,
                                           const OrbitTransform& transform);

/// Applies the inverse transform to the representative, recovering the
/// original spec (the truth-table-level round-trip the tests check).
[[nodiscard]] TruthTable reconstruct_spec(const TruthTable& representative,
                                          const OrbitTransform& transform);

/// Stable fleet-sharding key of a spec (docs/fleet.md): FNV-1a over the
/// normalized permutation image — byte-for-byte what hashing the
/// canonically written spec line would produce, so it depends only on the
/// function itself, never on file order, whitespace, the process, or the
/// C++ library's hash seed. This value is a WIRE FORMAT: it names
/// checkpoint entries and decides `--shard i/N` membership across
/// processes and releases, so the constants below must never change.
///
/// Unlike CanonicalForm::key this is NOT orbit-invariant: two orbit
/// members get different shard keys (and may land in different shards);
/// the shared disk store and the lease protocol dedupe the orbit across
/// shards instead.
[[nodiscard]] std::uint64_t stable_spec_key(const TruthTable& spec);

}  // namespace rmrls
