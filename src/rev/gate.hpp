/// \file gate.hpp
/// \brief Generalized Toffoli gates.
///
/// An m-bit Toffoli gate TOFm(c_1, ..., c_{m-1}; t) passes its control lines
/// through and inverts the target line when all controls are 1 (paper,
/// eq. 1). TOF1 is NOT, TOF2 is CNOT/Feynman. Controls are a positive-literal
/// cube; the gate is exactly the PPRM substitution `v_t <- v_t XOR controls`.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "rev/cube.hpp"

namespace rmrls {

/// A generalized Toffoli gate: invert `target` when every line in
/// `controls` carries 1. Invariant: `controls` never includes `target`.
struct Gate {
  Cube controls = kConstOne;
  std::uint8_t target = 0;

  Gate() = default;
  Gate(Cube controls_in, int target_in)
      : controls(controls_in), target(static_cast<std::uint8_t>(target_in)) {
    if (target_in < 0 || target_in >= kMaxVariables) {
      throw std::invalid_argument("gate target out of range");
    }
    if (cube_has_var(controls_in, target_in)) {
      throw std::invalid_argument("gate target cannot also be a control");
    }
  }

  /// Gate width m: number of controls plus the target.
  [[nodiscard]] int size() const { return literal_count(controls) + 1; }

  /// Applies the gate to basis state `x` (bit i of x = line i).
  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const {
    if ((x & controls) == controls) x ^= std::uint64_t{1} << target;
    return x;
  }

  /// Two Toffoli gates may be interchanged in a cascade when neither
  /// target feeds the other's controls (the "moving rule" of the template
  /// literature [20]-[22]); gates sharing a target always commute.
  [[nodiscard]] bool commutes_with(const Gate& g) const {
    if (target == g.target) return true;
    return !cube_has_var(g.controls, target) &&
           !cube_has_var(controls, g.target);
  }

  friend bool operator==(const Gate&, const Gate&) = default;
};

/// Renders in the paper's notation, e.g. "TOF3(a, c; b)".
[[nodiscard]] std::string gate_to_string(const Gate& g,
                                         int num_vars = kMaxVariables);

}  // namespace rmrls
