#include "rev/circuit.hpp"

#include <sstream>
#include <stdexcept>

#include "rev/pprm.hpp"

namespace rmrls {

std::string gate_to_string(const Gate& g, int num_vars) {
  std::ostringstream os;
  os << "TOF" << g.size() << "(";
  bool first = true;
  for (int v = 0; v < num_vars; ++v) {
    if (!cube_has_var(g.controls, v)) continue;
    if (!first) os << ", ";
    os << cube_to_string(cube_of_var(v), num_vars);
    first = false;
  }
  if (!first) os << "; ";
  os << cube_to_string(cube_of_var(g.target), num_vars) << ")";
  return os.str();
}

Circuit::Circuit(int num_lines) : num_lines_(num_lines) {
  if (num_lines < 0 || num_lines > kMaxVariables) {
    throw std::invalid_argument("num_lines out of range");
  }
}

Circuit::Circuit(int num_lines, std::vector<Gate> gates) : Circuit(num_lines) {
  for (const Gate& g : gates) append(g);
}

namespace {
void check_gate_fits(const Gate& g, int num_lines) {
  const Cube line_mask =
      num_lines == kMaxVariables ? ~Cube{0} : (Cube{1} << num_lines) - 1;
  if (g.target >= num_lines || (g.controls & ~line_mask) != 0) {
    throw std::invalid_argument("gate touches a line outside the circuit");
  }
}
}  // namespace

void Circuit::append(const Gate& g) {
  check_gate_fits(g, num_lines_);
  gates_.push_back(g);
}

void Circuit::prepend(const Gate& g) {
  check_gate_fits(g, num_lines_);
  gates_.insert(gates_.begin(), g);
}

std::uint64_t Circuit::simulate(std::uint64_t x) const {
  for (const Gate& g : gates_) x = g.apply(x);
  return x;
}

TruthTable Circuit::to_truth_table() const {
  if (num_lines_ > 24) {
    throw std::invalid_argument(
        "truth table too large; use to_pprm() or sampled checks");
  }
  std::vector<std::uint64_t> image(std::uint64_t{1} << num_lines_);
  for (std::uint64_t x = 0; x < image.size(); ++x) image[x] = simulate(x);
  return TruthTable(std::move(image));
}

Pprm Circuit::to_pprm() const {
  // The cascade realizes F = G_k o ... o G_1 (G_1 applied first). Writing
  // F's outputs over its inputs means substituting the gates into the
  // identity system from the *last* gate backwards: each substitution
  // composes one more gate at the input side.
  Pprm p = Pprm::identity(num_lines_);
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    p.substitute(it->target, it->controls);
  }
  return p;
}

Circuit Circuit::inverse() const {
  Circuit inv(num_lines_);
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) inv.append(*it);
  return inv;
}

Circuit Circuit::relabel_wires(const std::vector<int>& perm) const {
  if (static_cast<int>(perm.size()) != num_lines_) {
    throw std::invalid_argument("wire permutation has the wrong size");
  }
  std::uint64_t seen = 0;
  for (const int v : perm) {
    if (v < 0 || v >= num_lines_ || ((seen >> v) & 1u) != 0) {
      throw std::invalid_argument("wire relabeling is not a permutation");
    }
    seen |= std::uint64_t{1} << v;
  }
  Circuit out(num_lines_);
  for (const Gate& g : gates_) {
    Cube controls = kConstOne;
    for (int v = 0; v < num_lines_; ++v) {
      if (cube_has_var(g.controls, v)) controls |= cube_of_var(perm[v]);
    }
    out.append(Gate(controls, perm[g.target]));
  }
  return out;
}

Circuit Circuit::then(const Circuit& tail) const {
  if (tail.num_lines_ != num_lines_) {
    throw std::invalid_argument("concatenating circuits of different width");
  }
  Circuit out = *this;
  for (const Gate& g : tail.gates_) out.append(g);
  return out;
}

int Circuit::max_gate_size() const {
  int m = 0;
  for (const Gate& g : gates_) m = std::max(m, g.size());
  return m;
}

std::string Circuit::to_string() const {
  if (gates_.empty()) return "(empty)";
  std::ostringstream os;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (i != 0) os << " ";
    os << gate_to_string(gates_[i], num_lines_);
  }
  return os.str();
}

}  // namespace rmrls
