/// \file structural.hpp
/// \brief Direct PPRM construction for wide, structured function families.
///
/// The widest benchmarks of the paper (shift15 with 17 lines, shift28 with
/// 30 lines, graycode20) cannot be represented as explicit truth tables, but
/// their PPRM expansions are tiny and regular. This module builds those
/// expansions symbolically, plus reference evaluators used to verify
/// synthesized circuits by (sampled or exhaustive) simulation.

#pragma once

#include <cstdint>

#include "rev/circuit.hpp"
#include "rev/pprm.hpp"

namespace rmrls {

/// Gray-code converter on `n` lines: out_i = x_i XOR x_{i+1} for i < n-1,
/// out_{n-1} = x_{n-1}. Linear, so its PPRM has 2n-1 terms.
[[nodiscard]] Pprm graycode_pprm(int num_vars);

/// Reference evaluator for graycode_pprm.
[[nodiscard]] std::uint64_t graycode_eval(int num_vars, std::uint64_t x);

/// Shifter of Section V-C, Example 14. Per Examples 6/7, a "wraparound
/// shift by one position" maps the value sequence {0, 1, ..., 2^k - 1} to
/// {1, 2, ..., 0}, i.e. adds 1 modulo 2^k. The shifter has two control
/// lines s0, s1 (lines 0 and 1) whose value is *added* to the k-bit data
/// word (lines 2 .. k+1), modulo 2^k; controls pass through.
[[nodiscard]] Pprm shifter_pprm(int data_lines);

/// Reference evaluator for shifter_pprm (total width = data_lines + 2).
[[nodiscard]] std::uint64_t shifter_eval(int data_lines, std::uint64_t x);

/// The textbook realization the PPRM is derived from: a controlled +1
/// ripple chain (control s0) followed by a controlled +2 chain (control
/// s1); 2k - 1 generalized Toffoli gates, matching the best published
/// shift10 result the paper compares against (19 gates).
[[nodiscard]] Circuit shifter_reference_circuit(int data_lines);

}  // namespace rmrls
