/// \file embedding_search.hpp
/// \brief Searching over garbage/don't-care assignments (the paper's
/// Section VI future work).
///
/// The paper: "We currently preassign values to don't-care outputs. It
/// would be better if we could find a way to dynamically assign these
/// values during synthesis." Which reversible embedding an irreversible
/// function gets changes circuit size dramatically (the hand-tuned adder
/// embedding of Fig. 2(b) needs 4 gates; a naive one needs three times
/// that). This module generates a portfolio of embeddings — the
/// occurrence-counter baseline, an input-echo embedding (garbage mirrors a
/// distinguishing subset of the inputs, the paper's "g_o = a" trick),
/// identity-preferring don't-care completion, and seeded random tag
/// shuffles — synthesizes each under a shared budget, and returns the best.

#pragma once

#include <cstdint>

#include "core/synthesizer.hpp"
#include "rev/embedding.hpp"

namespace rmrls {

struct EmbeddingSearchOptions {
  /// Random tag-shuffle attempts on top of the deterministic strategies.
  int random_attempts = 4;
  std::uint64_t seed = 1;
  /// Search options per attempt (budget applies to each attempt).
  SynthesisOptions synthesis;
};

struct EmbeddingSearchResult {
  Embedding embedding;        ///< the winning embedding
  SynthesisResult synthesis;  ///< its circuit (success == false if none won)
  int attempts = 0;           ///< embeddings tried
  int solved = 0;             ///< embeddings that synthesized at all
};

/// Tries the strategy portfolio and returns the embedding whose circuit
/// has the fewest gates (ties: lower quantum cost).
[[nodiscard]] EmbeddingSearchResult find_best_embedding(
    const IrreversibleSpec& spec, const EmbeddingSearchOptions& options = {});

/// The input-echo embedding alone: garbage outputs replicate a minimal
/// distinguishing subset of the inputs (generalizes the paper's Fig. 2(b)
/// "extra garbage output set equal to input a or b"). Falls back to the
/// occurrence counter when no small subset distinguishes a group.
[[nodiscard]] Embedding embed_input_echo(const IrreversibleSpec& spec);

/// The identity-preferring embedding: like embed(), but don't-care rows
/// (nonzero constant inputs) map to themselves whenever the code is still
/// free, keeping the function close to the identity.
[[nodiscard]] Embedding embed_identity_fill(const IrreversibleSpec& spec);

}  // namespace rmrls
