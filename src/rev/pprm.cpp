#include "rev/pprm.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rmrls {

std::string cube_to_string(Cube c, int num_vars) {
  if (c == kConstOne) return "1";
  std::string out;
  for (int v = 0; v < num_vars; ++v) {
    if (!cube_has_var(c, v)) continue;
    if (num_vars <= 26) {
      out.push_back(static_cast<char>('a' + v));
    } else {
      out += "x" + std::to_string(v);
      out.push_back('.');
    }
  }
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

CubeList::CubeList(std::vector<Cube> cubes) : cubes_(std::move(cubes)) {
  std::sort(cubes_.begin(), cubes_.end());
  // XOR semantics: pairs of identical cubes cancel.
  std::vector<Cube> kept;
  kept.reserve(cubes_.size());
  for (std::size_t i = 0; i < cubes_.size();) {
    std::size_t j = i;
    while (j < cubes_.size() && cubes_[j] == cubes_[i]) ++j;
    if ((j - i) % 2 == 1) {
      kept.push_back(cubes_[i]);
      hash_ ^= cube_hash(cubes_[i]);
    }
    i = j;
  }
  cubes_ = std::move(kept);
}

void CubeList::toggle(Cube c) {
  auto it = std::lower_bound(cubes_.begin(), cubes_.end(), c);
  if (it != cubes_.end() && *it == c) {
    cubes_.erase(it);
  } else {
    cubes_.insert(it, c);
  }
  hash_ ^= cube_hash(c);
}

void CubeList::toggle_all(const CubeList& other) {
  // Merge as a sorted symmetric difference.
  std::vector<Cube> merged;
  merged.reserve(cubes_.size() + other.cubes_.size());
  auto a = cubes_.begin();
  auto b = other.cubes_.begin();
  while (a != cubes_.end() && b != other.cubes_.end()) {
    if (*a < *b) {
      merged.push_back(*a++);
    } else if (*b < *a) {
      merged.push_back(*b++);
    } else {
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, cubes_.end());
  merged.insert(merged.end(), b, other.cubes_.end());
  cubes_ = std::move(merged);
  hash_ ^= other.hash_;  // symmetric difference: toggled cubes cancel
}

bool CubeList::contains(Cube c) const {
  return std::binary_search(cubes_.begin(), cubes_.end(), c);
}

bool CubeList::eval(std::uint64_t x) const {
  bool acc = false;
  for (Cube c : cubes_) acc ^= cube_eval(c, x);
  return acc;
}

bool CubeList::depends_on(int t) const {
  const Cube bit = cube_of_var(t);
  for (Cube c : cubes_) {
    if (c & bit) return true;
  }
  return false;
}

int CubeList::substitute(int t, Cube f) {
  const Cube bit = cube_of_var(t);
  if (f & bit) throw std::invalid_argument("factor contains target variable");
  // (v_t XOR f) * rest = v_t*rest XOR f*rest: every cube containing v_t
  // contributes one extra cube with v_t replaced by f.
  std::vector<Cube> added;
  for (Cube c : cubes_) {
    if (c & bit) added.push_back((c & ~bit) | f);
  }
  if (added.empty()) return 0;
  const int before = size();
  toggle_all(CubeList{std::move(added)});
  return size() - before;
}

int CubeList::substitute_into(int t, Cube f, CubeList& dst) const {
  const Cube bit = cube_of_var(t);
  if (f & bit) throw std::invalid_argument("factor contains target variable");
  // Rewritten cubes, sorted and XOR-deduplicated. The scratch buffer is
  // per-thread so parallel search workers never contend (and after warmup
  // this function performs no allocation beyond dst's own growth).
  static thread_local std::vector<Cube> scratch;
  scratch.clear();
  for (Cube c : cubes_) {
    if (c & bit) scratch.push_back((c & ~bit) | f);
  }
  if (scratch.empty()) {  // no cube contains v_t: the result is a copy
    dst.cubes_ = cubes_;  // vector assignment reuses dst's capacity
    dst.hash_ = hash_;
    return 0;
  }
  std::sort(scratch.begin(), scratch.end());
  std::uint64_t rewritten_hash = 0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < scratch.size();) {
    std::size_t j = i;
    while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
    if ((j - i) % 2 == 1) {
      scratch[kept++] = scratch[i];
      rewritten_hash ^= cube_hash(scratch[i]);
    }
    i = j;
  }
  // Merge the sorted symmetric difference of cubes_ and the rewritten
  // terms directly into dst.
  dst.cubes_.clear();
  dst.cubes_.reserve(cubes_.size() + kept);
  auto a = cubes_.begin();
  const auto a_end = cubes_.end();
  std::size_t b = 0;
  while (a != a_end && b < kept) {
    if (*a < scratch[b]) {
      dst.cubes_.push_back(*a++);
    } else if (scratch[b] < *a) {
      dst.cubes_.push_back(scratch[b++]);
    } else {
      ++a;
      ++b;
    }
  }
  dst.cubes_.insert(dst.cubes_.end(), a, a_end);
  dst.cubes_.insert(dst.cubes_.end(), scratch.begin() + b,
                    scratch.begin() + kept);
  dst.hash_ = hash_ ^ rewritten_hash;
  return dst.size() - size();
}

int CubeList::substitute_delta(int t, Cube f) const {
  const Cube bit = cube_of_var(t);
  if (f & bit) throw std::invalid_argument("factor contains target variable");
  // Rewritten cubes can collide with each other (two sources differing
  // only inside f's bits map to the same cube), so group before counting.
  // A stack buffer covers the common case; this runs once per candidate
  // per node expansion, the hottest loop in the search.
  constexpr std::size_t kStack = 64;
  Cube stack_buf[kStack];
  std::vector<Cube> heap_buf;
  std::size_t count = 0;
  Cube* added = stack_buf;
  for (Cube c : cubes_) {
    if (!(c & bit)) continue;
    if (count == kStack && heap_buf.empty()) {
      heap_buf.assign(stack_buf, stack_buf + kStack);
    }
    if (!heap_buf.empty() || count >= kStack) {
      heap_buf.push_back((c & ~bit) | f);
    } else {
      stack_buf[count] = (c & ~bit) | f;
    }
    ++count;
  }
  if (count == 0) return 0;
  if (!heap_buf.empty()) added = heap_buf.data();
  std::sort(added, added + count);
  int delta = 0;
  for (std::size_t i = 0; i < count;) {
    std::size_t j = i;
    while (j < count && added[j] == added[i]) ++j;
    if ((j - i) % 2 == 1) delta += contains(added[i]) ? -1 : 1;
    i = j;
  }
  return delta;
}

std::string CubeList::to_string(int num_vars) const {
  if (cubes_.empty()) return "0";
  std::string out;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i != 0) out += " + ";
    out += cube_to_string(cubes_[i], num_vars);
  }
  return out;
}

Pprm::Pprm(int num_vars) {
  if (num_vars < 0 || num_vars > kMaxVariables) {
    throw std::invalid_argument("num_vars out of range");
  }
  outs_.resize(static_cast<std::size_t>(num_vars));
}

Pprm Pprm::identity(int num_vars) {
  Pprm p(num_vars);
  for (int i = 0; i < num_vars; ++i) p.outs_[i].toggle(cube_of_var(i));
  return p;
}

int Pprm::term_count() const {
  int n = 0;
  for (const CubeList& o : outs_) n += o.size();
  return n;
}

bool Pprm::is_identity() const {
  for (int i = 0; i < num_vars(); ++i) {
    if (!outs_[i].is_single_var(i)) return false;
  }
  return true;
}

int Pprm::substitute(int t, Cube f) {
  int delta = 0;
  for (CubeList& o : outs_) delta += o.substitute(t, f);
  return delta;
}

int Pprm::substitute_into(int t, Cube f, Pprm& dst) const {
  // Reuses dst's per-output cube buffers; dst must not alias *this.
  dst.outs_.resize(outs_.size());
  int delta = 0;
  for (std::size_t i = 0; i < outs_.size(); ++i) {
    delta += outs_[i].substitute_into(t, f, dst.outs_[i]);
  }
  return delta;
}

int Pprm::substitute_delta(int t, Cube f) const {
  int delta = 0;
  for (const CubeList& o : outs_) delta += o.substitute_delta(t, f);
  return delta;
}

std::uint64_t Pprm::eval(std::uint64_t x) const {
  std::uint64_t y = 0;
  for (int i = 0; i < num_vars(); ++i) {
    if (outs_[i].eval(x)) y |= std::uint64_t{1} << i;
  }
  return y;
}

std::string Pprm::to_string() const {
  std::ostringstream os;
  const int n = num_vars();
  for (int i = 0; i < n; ++i) {
    os << cube_to_string(cube_of_var(i), n) << "_out = "
       << outs_[i].to_string(n) << "\n";
  }
  return os.str();
}

std::size_t Pprm::hash() const {
  // Folds the incrementally maintained per-output hashes (the combiner is
  // shared with DensePprm::hash so both representations of one system
  // hash identically). O(num_vars) instead of a pass over every cube —
  // the transposition table hashes every materialized child, so this is
  // a search hot path.
  std::uint64_t h = kSystemHashSeed;
  for (std::size_t i = 0; i < outs_.size(); ++i) {
    h = fold_output_hash(h, outs_[i].raw_hash(), i);
  }
  return static_cast<std::size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const Pprm& p) {
  return os << p.to_string();
}

}  // namespace rmrls
