#include "rev/pprm_dense.hpp"

#include <bit>
#include <ostream>
#include <stdexcept>

namespace rmrls {

namespace {

[[nodiscard]] std::size_t words_for(int num_vars) {
  return num_vars > 6 ? std::size_t{1} << (num_vars - 6) : std::size_t{1};
}

/// Thread-local toggle-image scratch: one spectrum's worth of words,
/// reused across calls so the search hot path performs no allocation
/// after warmup (same pattern as CubeList::substitute_into's buffer).
[[nodiscard]] std::uint64_t* scratch_words(std::size_t words) {
  static thread_local std::vector<std::uint64_t> scratch;
  if (scratch.size() < words) scratch.resize(words);
  return scratch.data();
}

}  // namespace

DensePprm::DensePprm(int num_vars) {
  if (num_vars < 0 || num_vars > kMaxDenseVariables) {
    throw std::invalid_argument("num_vars out of dense range");
  }
  num_vars_ = num_vars;
  words_ = words_for(num_vars);
  bits_.assign(static_cast<std::size_t>(num_vars) * words_, 0);
  out_hash_.assign(static_cast<std::size_t>(num_vars), 0);
  out_count_.assign(static_cast<std::size_t>(num_vars), 0);
}

DensePprm::DensePprm(const Pprm& sparse) : DensePprm(sparse.num_vars()) {
  const Cube limit = Cube{1} << num_vars_;
  for (int o = 0; o < num_vars_; ++o) {
    std::uint64_t* w = bits_.data() + words_ * static_cast<std::size_t>(o);
    std::uint64_t h = 0;
    for (Cube c : sparse.output(o).cubes()) {
      if (c >= limit) {
        throw std::invalid_argument("cube outside dense coefficient range");
      }
      w[c >> 6] |= std::uint64_t{1} << (c & 63);
      h ^= cube_hash(c);
    }
    out_hash_[static_cast<std::size_t>(o)] = h;
    out_count_[static_cast<std::size_t>(o)] = sparse.output(o).size();
  }
}

DensePprm DensePprm::identity(int num_vars) {
  DensePprm p(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    const Cube c = cube_of_var(i);
    p.bits_[p.words_ * static_cast<std::size_t>(i) + (c >> 6)] |=
        std::uint64_t{1} << (c & 63);
    p.out_hash_[static_cast<std::size_t>(i)] = cube_hash(c);
    p.out_count_[static_cast<std::size_t>(i)] = 1;
  }
  return p;
}

int DensePprm::term_count() const {
  int n = 0;
  for (const std::int32_t c : out_count_) n += c;
  return n;
}

bool DensePprm::is_identity() const {
  for (int i = 0; i < num_vars_; ++i) {
    if (out_count_[static_cast<std::size_t>(i)] != 1 ||
        !output_contains(i, cube_of_var(i))) {
      return false;
    }
  }
  return true;
}

bool DensePprm::build_toggle_image(const std::uint64_t* s, int t, Cube f,
                                   std::uint64_t* w) const {
  // Step 1 — gather: w[x] = s[x | v_t] for every index x with v_t clear,
  // 0 elsewhere. For t >= 6 the v_t-half occupies whole words at stride
  // 2^(t-6); below, positions interleave within words and a masked shift
  // does the move (the carry out of `x + 2^t` lands exactly on the
  // positions the mask discards, so no cross-contamination).
  std::uint64_t any = 0;
  if (t >= 6) {
    const std::size_t stride = std::size_t{1} << (t - 6);
    for (std::size_t base = 0; base < words_; base += 2 * stride) {
      for (std::size_t k = 0; k < stride; ++k) {
        any |= (w[base + k] = s[base + stride + k]);
        w[base + stride + k] = 0;
      }
    }
  } else {
    const int sh = 1 << t;
    for (std::size_t i = 0; i < words_; ++i) {
      any |= (w[i] = (s[i] & kDenseVarMask[t]) >> sh);
    }
  }
  if (any == 0) return false;  // no coefficient contains v_t

  // Step 2 — fold along every variable j of f. The index map
  // `x -> x | f` is an OR, so sources differing only inside f's bits
  // collide; folding one variable at a time resolves the collisions as
  // GF(2) parities: after variable j, w[x] (for x with j set) holds
  // w_old[x] XOR w_old[x ^ 2^j], and positions with j clear go to zero.
  // After all of f the support is exactly {x : x contains f, v_t clear}
  // with the correct parities.
  for (Cube rest = f; rest != 0; rest &= rest - 1) {
    const int j = std::countr_zero(rest);
    if (j >= 6) {
      const std::size_t stride = std::size_t{1} << (j - 6);
      for (std::size_t base = 0; base < words_; base += 2 * stride) {
        for (std::size_t k = 0; k < stride; ++k) {
          w[base + stride + k] ^= w[base + k];
          w[base + k] = 0;
        }
      }
    } else {
      const int sh = 1 << j;
      for (std::size_t i = 0; i < words_; ++i) {
        w[i] = (w[i] ^ (w[i] << sh)) & kDenseVarMask[j];
      }
    }
  }
  return true;
}

int DensePprm::apply_toggle_image(int o, const std::uint64_t* image) {
  std::uint64_t* s = bits_.data() + words_ * static_cast<std::size_t>(o);
  std::uint64_t h = out_hash_[static_cast<std::size_t>(o)];
  int delta = 0;
  for (std::size_t i = 0; i < words_; ++i) {
    std::uint64_t toggled = image[i];
    if (toggled == 0) continue;
    const std::uint64_t before = s[i];
    s[i] = before ^ toggled;
    delta += std::popcount(s[i]) - std::popcount(before);
    const std::uint64_t base = static_cast<std::uint64_t>(i) << 6;
    do {
      h ^= cube_hash(base + static_cast<unsigned>(std::countr_zero(toggled)));
      toggled &= toggled - 1;
    } while (toggled != 0);
  }
  out_hash_[static_cast<std::size_t>(o)] = h;
  out_count_[static_cast<std::size_t>(o)] += delta;
  return delta;
}

int DensePprm::substitute(int t, Cube f) {
  if (f & cube_of_var(t)) {
    throw std::invalid_argument("factor contains target variable");
  }
  std::uint64_t* image = scratch_words(words_);
  int delta = 0;
  for (int o = 0; o < num_vars_; ++o) {
    if (!build_toggle_image(output_bits(o), t, f, image)) continue;
    delta += apply_toggle_image(o, image);
  }
  return delta;
}

int DensePprm::substitute_into(int t, Cube f, DensePprm& dst) const {
  if (f & cube_of_var(t)) {
    throw std::invalid_argument("factor contains target variable");
  }
  // Reuses dst's buffers; assign() on equal sizes never reallocates.
  dst.num_vars_ = num_vars_;
  dst.words_ = words_;
  dst.bits_ = bits_;
  dst.out_hash_ = out_hash_;
  dst.out_count_ = out_count_;
  std::uint64_t* image = scratch_words(words_);
  int delta = 0;
  for (int o = 0; o < num_vars_; ++o) {
    if (!build_toggle_image(output_bits(o), t, f, image)) continue;
    delta += dst.apply_toggle_image(o, image);
  }
  return delta;
}

int DensePprm::substitute_delta(int t, Cube f) const {
  if (f & cube_of_var(t)) {
    throw std::invalid_argument("factor contains target variable");
  }
  // Same passes as substitute_into, reduced to popcounts: the candidate
  // pricing loop (the search's hottest call) never touches a hash or a
  // destination buffer.
  std::uint64_t* image = scratch_words(words_);
  int delta = 0;
  for (int o = 0; o < num_vars_; ++o) {
    const std::uint64_t* s = output_bits(o);
    if (!build_toggle_image(s, t, f, image)) continue;
    for (std::size_t i = 0; i < words_; ++i) {
      if (image[i] == 0) continue;
      delta += std::popcount(s[i] ^ image[i]) - std::popcount(s[i]);
    }
  }
  return delta;
}

std::uint64_t DensePprm::eval(std::uint64_t x) const {
  std::uint64_t y = 0;
  for (int o = 0; o < num_vars_; ++o) {
    const std::uint64_t* s = output_bits(o);
    bool acc = false;
    for (std::size_t i = 0; i < words_; ++i) {
      std::uint64_t word = s[i];
      const std::uint64_t base = static_cast<std::uint64_t>(i) << 6;
      while (word != 0) {
        const Cube c =
            base + static_cast<unsigned>(std::countr_zero(word));
        word &= word - 1;
        acc ^= cube_eval(c, x);
      }
    }
    if (acc) y |= std::uint64_t{1} << o;
  }
  return y;
}

std::size_t DensePprm::hash() const {
  std::uint64_t h = kSystemHashSeed;
  for (std::size_t i = 0; i < out_hash_.size(); ++i) {
    h = fold_output_hash(h, out_hash_[i], i);
  }
  return static_cast<std::size_t>(h);
}

Pprm DensePprm::to_pprm() const {
  Pprm p(num_vars_);
  for (int o = 0; o < num_vars_; ++o) {
    const std::uint64_t* s = output_bits(o);
    std::vector<Cube> cubes;
    cubes.reserve(static_cast<std::size_t>(output_term_count(o)));
    for (std::size_t i = 0; i < words_; ++i) {
      std::uint64_t word = s[i];
      const std::uint64_t base = static_cast<std::uint64_t>(i) << 6;
      while (word != 0) {
        cubes.push_back(base +
                        static_cast<unsigned>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
    p.output(o) = CubeList(std::move(cubes));
  }
  return p;
}

std::string DensePprm::to_string() const { return to_pprm().to_string(); }

std::ostream& operator<<(std::ostream& os, const DensePprm& p) {
  return os << p.to_string();
}

}  // namespace rmrls
