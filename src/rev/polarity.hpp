/// \file polarity.hpp
/// \brief Mixed-polarity (negative-control) Toffoli gates.
///
/// The paper's gate model is positive-polarity only, but the surrounding
/// ecosystem (RevLib, template libraries) routinely uses negative
/// controls: a control that fires on 0 instead of 1. A negative control
/// is the NOT-sandwich `TOF1(c) TOF(C; t) TOF1(c)` collapsed into one
/// gate; most cost models price both polarities identically, so
/// compressing sandwiches is a free gate-count reduction.
///
/// This module provides the gate/circuit types, exact conversion in both
/// directions, and the sandwich-compression pass.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rev/circuit.hpp"

namespace rmrls {

/// A Toffoli gate with per-control polarity: fires when every line in
/// `controls` matches `polarity` (bit set = positive, fire on 1).
/// Invariants: `polarity subset of controls`, target not in controls.
struct PolarityGate {
  Cube controls = kConstOne;
  Cube polarity = kConstOne;
  std::uint8_t target = 0;

  PolarityGate() = default;
  PolarityGate(Cube controls_in, Cube polarity_in, int target_in);

  /// Lifts a positive-polarity gate.
  [[nodiscard]] static PolarityGate positive(const Gate& g) {
    return PolarityGate(g.controls, g.controls, g.target);
  }

  [[nodiscard]] int size() const { return literal_count(controls) + 1; }
  [[nodiscard]] Cube negative_controls() const {
    return controls & ~polarity;
  }

  [[nodiscard]] std::uint64_t apply(std::uint64_t x) const {
    if ((x & controls) == polarity) x ^= std::uint64_t{1} << target;
    return x;
  }

  friend bool operator==(const PolarityGate&, const PolarityGate&) = default;
};

/// Renders e.g. "TOF3(a, b'; c)" (prime marks a negative control).
[[nodiscard]] std::string polarity_gate_to_string(
    const PolarityGate& g, int num_vars = kMaxVariables);

/// A cascade of mixed-polarity Toffoli gates.
class PolarityCircuit {
 public:
  PolarityCircuit() = default;
  explicit PolarityCircuit(int num_lines);
  explicit PolarityCircuit(const Circuit& c);  // lift, all positive

  [[nodiscard]] int num_lines() const { return num_lines_; }
  [[nodiscard]] int gate_count() const {
    return static_cast<int>(gates_.size());
  }
  [[nodiscard]] const std::vector<PolarityGate>& gates() const {
    return gates_;
  }

  void append(const PolarityGate& g);

  [[nodiscard]] std::uint64_t simulate(std::uint64_t x) const;

  /// Exact expansion back to positive-polarity gates: each negative
  /// control becomes a NOT sandwich; adjacent sandwich NOTs on the same
  /// line cancel during emission.
  [[nodiscard]] Circuit to_positive() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PolarityCircuit&,
                         const PolarityCircuit&) = default;

 private:
  std::vector<PolarityGate> gates_;
  int num_lines_ = 0;
};

struct PolarityCompressResult {
  PolarityCircuit circuit;
  int sandwiches_folded = 0;  ///< NOT pairs absorbed into polarities
  int gates_saved = 0;        ///< 2 per folded sandwich
};

/// Folds `TOF1(c) g TOF1(c)` patterns (with `c` a control of `g`, found
/// through commuting neighbours) into negative controls, repeatedly.
/// Function-preserving; gate count strictly decreases per fold.
[[nodiscard]] PolarityCompressResult compress_polarity(const Circuit& c);

}  // namespace rmrls
