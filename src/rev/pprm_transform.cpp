#include "rev/pprm_transform.hpp"

#include <bit>
#include <stdexcept>

namespace rmrls {

void reed_muller_transform(std::vector<std::uint8_t>& f) {
  const std::size_t n = f.size();
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("truth vector size must be a power of two");
  }
  for (std::size_t stride = 1; stride < n; stride <<= 1) {
    for (std::size_t x = 0; x < n; ++x) {
      if (x & stride) f[x] ^= f[x ^ stride];
    }
  }
}

CubeList pprm_of_truth_vector(std::vector<std::uint8_t> f) {
  reed_muller_transform(f);
  std::vector<Cube> cubes;
  for (std::size_t x = 0; x < f.size(); ++x) {
    if (f[x] & 1) cubes.push_back(static_cast<Cube>(x));
  }
  return CubeList(std::move(cubes));
}

Pprm pprm_of_truth_table(const TruthTable& tt) {
  const int n = tt.num_vars();
  Pprm p(n);
  std::vector<std::uint8_t> f(tt.size());
  for (int out = 0; out < n; ++out) {
    for (std::uint64_t x = 0; x < tt.size(); ++x) {
      f[x] = static_cast<std::uint8_t>((tt.apply(x) >> out) & 1);
    }
    p.output(out) = pprm_of_truth_vector(f);
  }
  return p;
}

TruthTable truth_table_of_pprm(const Pprm& p) {
  if (p.num_vars() > 24) {
    throw std::invalid_argument("PPRM too wide to enumerate");
  }
  std::vector<std::uint64_t> image(std::uint64_t{1} << p.num_vars());
  for (std::uint64_t x = 0; x < image.size(); ++x) image[x] = p.eval(x);
  return TruthTable(std::move(image));  // validates bijectivity
}

}  // namespace rmrls
