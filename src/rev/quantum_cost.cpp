#include "rev/quantum_cost.hpp"

#include <stdexcept>

namespace rmrls {

long long toffoli_cost(int gate_size, int free_lines) {
  if (gate_size < 1) throw std::invalid_argument("gate size must be >= 1");
  if (free_lines < 0) throw std::invalid_argument("negative free lines");
  switch (gate_size) {
    case 1:
    case 2:
      return 1;
    case 3:
      return 5;
    case 4:
      return 13;
    default:
      break;
  }
  // m >= 5: the borrowed-line decomposition costs 12(m-3)+2; without a
  // spare line fall back to the exponential construction 2^m - 3.
  if (free_lines >= 1) return 12LL * (gate_size - 3) + 2;
  if (gate_size >= 62) throw std::invalid_argument("cost overflow");
  return (1LL << gate_size) - 3;
}

long long quantum_cost(const Circuit& c) {
  long long total = 0;
  for (const Gate& g : c.gates()) {
    total += toffoli_cost(g.size(), c.num_lines() - g.size());
  }
  return total;
}

}  // namespace rmrls
