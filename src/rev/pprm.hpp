/// \file pprm.hpp
/// \brief Multi-output positive-polarity Reed-Muller (PPRM) expansions.
///
/// The synthesizer's working state (paper, Section IV) is the PPRM expansion
/// of every output of a reversible function. An expansion is an XOR of cubes;
/// we keep it as a sorted, duplicate-free vector with symmetric-difference
/// (XOR) insertion semantics, which makes term cancellation automatic.
///
/// The gate primitive of the whole algorithm is the substitution
/// `v_t <- v_t XOR f` for a factor cube `f` not containing `v_t`; applying it
/// to an expansion adds, for every cube `c` containing `v_t`, the cube
/// `(c \ {v_t}) | f` (with cancellation). The substitution corresponds
/// one-to-one to the Toffoli gate with target `t` and controls `f`.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rev/cube.hpp"

namespace rmrls {

/// SplitMix64 finalizer: the per-cube mixer behind the incremental hashes.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash of one cube as used by the incremental expansion hash.
[[nodiscard]] constexpr std::uint64_t cube_hash(Cube c) noexcept {
  return splitmix64(static_cast<std::uint64_t>(c));
}

/// Seed of the whole-system hash. Pprm::hash() and DensePprm::hash()
/// (rev/pprm_dense.hpp) fold per-output raw hashes with the same
/// seed/salt, so both representations of one system hash identically —
/// the transposition-table contract the cross-representation tests pin.
inline constexpr std::uint64_t kSystemHashSeed = 0x243f6a8885a308d3ull;

/// Folds output `index`'s raw hash (XOR of cube_hash over its terms)
/// into a running system hash; salting by the index makes term movement
/// between outputs change the result.
[[nodiscard]] constexpr std::uint64_t fold_output_hash(
    std::uint64_t acc, std::uint64_t raw_hash, std::size_t index) noexcept {
  return acc + splitmix64(raw_hash + 0x9e3779b97f4a7c15ull * (index + 1));
}

/// A single-output PPRM expansion: an XOR of cubes, stored sorted and unique.
class CubeList {
 public:
  CubeList() = default;

  /// Builds from an arbitrary cube sequence, cancelling duplicate pairs
  /// (XOR semantics: an even number of occurrences vanishes).
  explicit CubeList(std::vector<Cube> cubes);

  /// XOR a single cube into the expansion (inserts it, or removes an
  /// existing identical cube).
  void toggle(Cube c);

  /// XOR a whole expansion into this one.
  void toggle_all(const CubeList& other);

  /// True if the expansion contains cube `c`.
  [[nodiscard]] bool contains(Cube c) const;

  /// Number of terms.
  [[nodiscard]] int size() const { return static_cast<int>(cubes_.size()); }
  [[nodiscard]] bool empty() const { return cubes_.empty(); }

  /// True if the expansion is exactly the single term `v_t`.
  [[nodiscard]] bool is_single_var(int t) const {
    return cubes_.size() == 1 && cubes_[0] == cube_of_var(t);
  }

  /// Evaluate at input assignment `x` (GF(2) sum of products).
  [[nodiscard]] bool eval(std::uint64_t x) const;

  /// Applies `v_t <- v_t XOR f`. Precondition: `f` does not contain `v_t`.
  /// Returns the change in term count (negative when terms cancelled).
  int substitute(int t, Cube f);

  /// Builds the result of `substitute(t, f)` applied to *this* directly
  /// into `dst` (whose buffers are reused — the search engine passes
  /// pooled destinations so the hot path stops allocating). `*this` is
  /// untouched. Returns the change in term count.
  int substitute_into(int t, Cube f, CubeList& dst) const;

  /// Term-count change `substitute(t, f)` would cause, without mutating.
  /// The search engine uses this to price every candidate and only
  /// materializes the children it actually enqueues.
  [[nodiscard]] int substitute_delta(int t, Cube f) const;

  /// True if any cube contains variable `t`.
  [[nodiscard]] bool depends_on(int t) const;

  /// Sorted, duplicate-free view of the terms.
  [[nodiscard]] const std::vector<Cube>& cubes() const { return cubes_; }

  /// Order-independent hash of the expansion, maintained incrementally:
  /// the XOR of cube_hash() over the terms. XOR is its own inverse, so a
  /// toggle is one mix and a symmetric difference is one XOR — no pass
  /// over the cubes is ever needed.
  [[nodiscard]] std::uint64_t raw_hash() const { return hash_; }

  /// Renders as e.g. "b + c + ac" (the paper writes XOR as +/oplus).
  [[nodiscard]] std::string to_string(int num_vars = kMaxVariables) const;

  friend bool operator==(const CubeList& a, const CubeList& b) {
    return a.cubes_ == b.cubes_;  // hash_ is derived, not identity
  }

 private:
  std::vector<Cube> cubes_;     // sorted ascending, no duplicates
  std::uint64_t hash_ = 0;      // XOR of cube_hash over cubes_
};

/// The PPRM expansions of every output of an n-line reversible function.
/// Output `i` is paired with input variable `v_i` throughout, as in the
/// paper: synthesis finishes when `out_i = v_i` for every `i`.
class Pprm {
 public:
  Pprm() = default;

  /// An all-outputs-empty system on `n` lines (not the identity).
  explicit Pprm(int num_vars);

  /// The identity system: `out_i = v_i`.
  [[nodiscard]] static Pprm identity(int num_vars);

  [[nodiscard]] int num_vars() const { return static_cast<int>(outs_.size()); }

  [[nodiscard]] const CubeList& output(int i) const { return outs_[i]; }
  [[nodiscard]] CubeList& output(int i) { return outs_[i]; }

  /// Total number of terms across all outputs (the paper's `terms`).
  [[nodiscard]] int term_count() const;

  /// True if every output is exactly its paired variable.
  [[nodiscard]] bool is_identity() const;

  /// Applies `v_t <- v_t XOR f` to every output.
  /// Precondition: `f` does not contain `v_t`.
  /// Returns the change in total term count.
  int substitute(int t, Cube f);

  /// Builds the result of `substitute(t, f)` applied to *this* into `dst`,
  /// reusing dst's per-output buffers (the search engine passes pooled
  /// systems). `*this` is untouched. Returns the change in term count.
  int substitute_into(int t, Cube f, Pprm& dst) const;

  /// Total term-count change `substitute(t, f)` would cause, read-only.
  [[nodiscard]] int substitute_delta(int t, Cube f) const;

  /// Evaluates all outputs at assignment `x`; bit `i` of the result is
  /// output `i`.
  [[nodiscard]] std::uint64_t eval(std::uint64_t x) const;

  /// Multi-line human-readable rendering, one output per line.
  [[nodiscard]] std::string to_string() const;

  /// Order-independent hash of the whole system (for transposition tables).
  /// O(num_vars): combines the incrementally maintained per-output hashes,
  /// never walking the cubes.
  [[nodiscard]] std::size_t hash() const;

  friend bool operator==(const Pprm&, const Pprm&) = default;

 private:
  std::vector<CubeList> outs_;
};

std::ostream& operator<<(std::ostream& os, const Pprm& p);

/// Free list of search states for the hot path: every materialized child
/// that gets pruned (and every expanded queue entry) returns here, and
/// the next materialization reuses its buffers instead of reallocating.
/// Works for any representation the engine is instantiated over (Pprm or
/// DensePprm). Single-threaded; each search worker owns one.
template <class State>
class StatePool {
 public:
  /// A recycled system (buffers intact) or a fresh empty one.
  [[nodiscard]] State acquire() {
    if (free_.empty()) return State();
    State p = std::move(free_.back());
    free_.pop_back();
    return p;
  }

  void release(State&& p) {
    if (free_.size() < kMaxRetained) free_.push_back(std::move(p));
  }

  [[nodiscard]] std::size_t size() const { return free_.size(); }

 private:
  /// Enough to cover a full expansion's churn; beyond this the pool would
  /// just hoard the peak queue's memory.
  static constexpr std::size_t kMaxRetained = 1024;
  std::vector<State> free_;
};

using PprmPool = StatePool<Pprm>;

}  // namespace rmrls
