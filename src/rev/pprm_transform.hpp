/// \file pprm_transform.hpp
/// \brief Exact PPRM extraction from truth tables and back.
///
/// For a completely specified function the PPRM expansion is canonical
/// (paper, Section II-C) and equals the GF(2) Moebius transform of the truth
/// vector: coefficient a_S = XOR of f(x) over all x that are subsets of S.
/// The butterfly implementation below is O(n 2^n) per output and is its own
/// inverse, which the test suite exploits as a round-trip property.

#pragma once

#include <cstdint>
#include <vector>

#include "rev/pprm.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// In-place GF(2) Moebius (Reed-Muller) transform of a truth vector of
/// length 2^n. Self-inverse: applying twice restores the input.
void reed_muller_transform(std::vector<std::uint8_t>& f);

/// PPRM expansion of a single output given its truth vector (bit x of the
/// function = `f[x]`, values 0/1).
[[nodiscard]] CubeList pprm_of_truth_vector(std::vector<std::uint8_t> f);

/// PPRM system of a reversible function. Output i of the system is bit i of
/// the permutation image.
[[nodiscard]] Pprm pprm_of_truth_table(const TruthTable& tt);

/// Exhaustive evaluation of a PPRM system back into a permutation. Throws
/// std::invalid_argument if the system is not bijective or too wide to
/// enumerate (> 24 variables).
[[nodiscard]] TruthTable truth_table_of_pprm(const Pprm& p);

}  // namespace rmrls
