/// \file fredkin.hpp
/// \brief Fredkin (controlled-swap) gates and mixed Toffoli/Fredkin
/// cascades.
///
/// The paper's future-work section proposes incorporating Fredkin gates:
/// "A Fredkin gate is equivalent to three Toffoli gates. Thus, the use of
/// Fredkin gates could yield a significant improvement in circuit
/// quality." This module provides the gate, mixed cascades, and the
/// equivalence both ways; templates/fredkinize.hpp extracts Fredkin gates
/// from synthesized Toffoli cascades.
///
/// A generalized Fredkin gate FRE(C; x, y) swaps lines x and y when every
/// control in C is 1. It equals the Toffoli triple
///   TOF(C + {y}; x) TOF(C + {x}; y) TOF(C + {y}; x).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rev/circuit.hpp"
#include "rev/gate.hpp"

namespace rmrls {

/// One gate of a mixed cascade: a generalized Toffoli (target `a`; `b`
/// unused) or a generalized Fredkin (swap pair `a`, `b`).
struct MixedGate {
  enum class Kind { kToffoli, kFredkin };

  Kind kind = Kind::kToffoli;
  Cube controls = kConstOne;
  std::uint8_t a = 0;
  std::uint8_t b = 0;

  [[nodiscard]] static MixedGate toffoli(const Gate& g) {
    return {Kind::kToffoli, g.controls, g.target, 0};
  }
  [[nodiscard]] static MixedGate fredkin(Cube controls, int x, int y);

  /// Lines the gate touches: controls plus target(s).
  [[nodiscard]] int size() const {
    return literal_count(controls) + (kind == Kind::kFredkin ? 2 : 1);
  }

  [[nodiscard]] std::uint64_t apply(std::uint64_t state) const;

  friend bool operator==(const MixedGate&, const MixedGate&) = default;
};

/// Renders as "TOF3(a, b; c)" or "FRE3(c; a, b)".
[[nodiscard]] std::string mixed_gate_to_string(const MixedGate& g,
                                               int num_vars = kMaxVariables);

/// A cascade over the NCT+Fredkin (NCTSF-style) library.
class MixedCircuit {
 public:
  MixedCircuit() = default;
  explicit MixedCircuit(int num_lines);

  /// Lifts a pure Toffoli cascade.
  explicit MixedCircuit(const Circuit& c);

  [[nodiscard]] int num_lines() const { return num_lines_; }
  [[nodiscard]] int gate_count() const {
    return static_cast<int>(gates_.size());
  }
  [[nodiscard]] const std::vector<MixedGate>& gates() const { return gates_; }

  void append(const MixedGate& g);

  [[nodiscard]] std::uint64_t simulate(std::uint64_t x) const;

  /// Expands every Fredkin gate into its Toffoli triple.
  [[nodiscard]] Circuit to_toffoli() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MixedCircuit&, const MixedCircuit&) = default;

 private:
  std::vector<MixedGate> gates_;
  int num_lines_ = 0;
};

/// Quantum cost of a mixed cascade. A Fredkin with m-1 controls prices as
/// the equal-width Toffoli plus two CNOTs, except the 3-bit Fredkin whose
/// direct realization costs 5 like the 3-bit Toffoli [13].
[[nodiscard]] long long quantum_cost(const MixedCircuit& c);

}  // namespace rmrls
