/// \file equivalence.hpp
/// \brief Exact equivalence checking for reversible circuits of any width.
///
/// Two cascades realize the same function iff their PPRM systems are
/// identical — the PPRM is canonical (paper, Section II-C) and is computed
/// here by reverse gate substitution, so the check is exact even at widths
/// where truth tables are unthinkable (shift28's 30 lines, or the full 64
/// the cube encoding supports). Complements simulation-based
/// `implements()` checks with a formal one.

#pragma once

#include "rev/circuit.hpp"
#include "rev/fredkin.hpp"
#include "rev/pprm.hpp"

namespace rmrls {

/// Exact: true iff `a` and `b` realize the same permutation.
/// Throws std::invalid_argument when the widths differ.
[[nodiscard]] bool equivalent(const Circuit& a, const Circuit& b);

/// Exact: true iff `c` realizes exactly the PPRM system `spec`.
[[nodiscard]] bool equivalent(const Circuit& c, const Pprm& spec);

/// Mixed cascades are checked through their Toffoli expansions.
[[nodiscard]] bool equivalent(const MixedCircuit& a, const Circuit& b);
[[nodiscard]] bool equivalent(const MixedCircuit& a, const MixedCircuit& b);

}  // namespace rmrls
