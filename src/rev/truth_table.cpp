#include "rev/truth_table.hpp"

#include <bit>
#include <sstream>
#include <stdexcept>

namespace rmrls {

TruthTable::TruthTable(std::vector<std::uint64_t> image)
    : image_(std::move(image)) {
  const std::size_t n = image_.size();
  if (n == 0 || !std::has_single_bit(n)) {
    throw std::invalid_argument("truth table size must be a power of two");
  }
  num_vars_ = std::countr_zero(n);
  std::vector<bool> seen(n, false);
  for (std::uint64_t y : image_) {
    if (y >= n || seen[y]) {
      throw std::invalid_argument("image vector is not a permutation");
    }
    seen[y] = true;
  }
}

TruthTable TruthTable::identity(int num_vars) {
  std::vector<std::uint64_t> image(std::uint64_t{1} << num_vars);
  for (std::uint64_t x = 0; x < image.size(); ++x) image[x] = x;
  return TruthTable(std::move(image));
}

TruthTable TruthTable::then(const TruthTable& g) const {
  if (g.num_vars_ != num_vars_) {
    throw std::invalid_argument("composing tables of different width");
  }
  std::vector<std::uint64_t> image(image_.size());
  for (std::uint64_t x = 0; x < image_.size(); ++x) {
    image[x] = g.image_[image_[x]];
  }
  return TruthTable(std::move(image));
}

TruthTable TruthTable::inverse() const {
  std::vector<std::uint64_t> image(image_.size());
  for (std::uint64_t x = 0; x < image_.size(); ++x) image[image_[x]] = x;
  return TruthTable(std::move(image));
}

bool TruthTable::is_identity() const {
  for (std::uint64_t x = 0; x < image_.size(); ++x) {
    if (image_[x] != x) return false;
  }
  return true;
}

bool TruthTable::is_even() const {
  // Parity = (number of elements - number of cycles) mod 2.
  std::vector<bool> visited(image_.size(), false);
  std::uint64_t transpositions = 0;
  for (std::uint64_t x = 0; x < image_.size(); ++x) {
    if (visited[x]) continue;
    std::uint64_t len = 0;
    for (std::uint64_t y = x; !visited[y]; y = image_[y]) {
      visited[y] = true;
      ++len;
    }
    transpositions += len - 1;
  }
  return transpositions % 2 == 0;
}

std::string TruthTable::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::uint64_t x = 0; x < image_.size(); ++x) {
    if (x != 0) os << ", ";
    os << image_[x];
  }
  os << "}";
  return os.str();
}

}  // namespace rmrls
