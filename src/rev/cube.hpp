/// \file cube.hpp
/// \brief Positive-polarity product terms ("cubes") for Reed-Muller algebra.
///
/// A PPRM expansion is an XOR of products of *uncomplemented* variables, so a
/// product term is fully described by the set of variables it contains. We
/// encode that set as a 64-bit mask: bit `i` set means variable `v_i` appears
/// in the product. The empty mask is the constant-1 term. This caps the
/// library at 64 circuit lines, comfortably above the paper's largest
/// benchmark (shift28, 30 lines).

#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace rmrls {

/// A positive-polarity product term over at most 64 variables.
/// Bit `i` set <=> variable `v_i` is a factor of the product.
/// `Cube{0}` denotes the constant 1.
using Cube = std::uint64_t;

/// Maximum number of circuit lines supported by the cube encoding.
inline constexpr int kMaxVariables = 64;

/// The constant-1 product term.
inline constexpr Cube kConstOne = 0;

/// Mask with only variable `v` set. Precondition: `0 <= v < kMaxVariables`.
[[nodiscard]] constexpr Cube cube_of_var(int v) noexcept {
  return Cube{1} << v;
}

/// Number of literals in the product (0 for the constant 1).
[[nodiscard]] constexpr int literal_count(Cube c) noexcept {
  return std::popcount(c);
}

/// True if variable `v` appears in the product.
[[nodiscard]] constexpr bool cube_has_var(Cube c, int v) noexcept {
  return (c >> v) & 1u;
}

/// Evaluate the product at input assignment `x` (bit `i` of `x` = value of
/// `v_i`). The constant-1 cube evaluates to true everywhere.
[[nodiscard]] constexpr bool cube_eval(Cube c, std::uint64_t x) noexcept {
  return (x & c) == c;
}

/// Render a cube using variable names `a, b, c, ...` (variable 0 = `a`),
/// matching the paper's notation; the constant term renders as "1".
[[nodiscard]] std::string cube_to_string(Cube c, int num_vars = kMaxVariables);

}  // namespace rmrls
