/// \file decompose.hpp
/// \brief Decomposition of generalized Toffoli gates into the NCT library.
///
/// The paper's abstract defers to "other algorithms ... that can convert
/// an n-bit Toffoli gate into a cascade of smaller Toffoli gates"; this
/// module implements them, following Barenco et al. [12]:
///
///  * the borrowed-ancilla ladder (Lemma 7.2-style): an m-control Toffoli
///    with m-2 *dirty* spare lines becomes 4(m-2) three-bit Toffolis;
///  * the split (Lemma 7.3-style): with only one spare line f,
///    C^m(X) = A B A B where A = C^k(X) targeting f (k = ceil(m/2)) and
///    B uses f as an extra control — both halves then have enough spare
///    lines for the ladder; applied recursively.
///
/// Spare lines are only borrowed: their values are restored, so the
/// rewrite is correct for every initial assignment (a tested property).
///
/// A parity obstruction makes one case impossible: a full-width gate
/// (m = lines - 1 >= 3) is an odd permutation while every narrower gate
/// on >= 4 lines is even, so no NCT network exists. Policy choices below.

#pragma once

#include "rev/circuit.hpp"

namespace rmrls {

/// What to do with a full-width gate that provably cannot be decomposed.
enum class FullWidthPolicy {
  kThrow,  ///< std::invalid_argument
  kKeep,   ///< leave the wide gate in place (partial decomposition)
};

/// Rewrites every gate of width > 3 into NOT/CNOT/TOF3 gates using
/// borrowed lines. The result realizes the same permutation.
[[nodiscard]] Circuit decompose_to_nct(
    const Circuit& c, FullWidthPolicy policy = FullWidthPolicy::kThrow);

/// Decomposes a single gate on a circuit with `num_lines` lines.
/// Precondition: the gate fits the circuit. Throws (or keeps, per policy)
/// when `gate.size() == num_lines >= 4`.
[[nodiscard]] std::vector<Gate> decompose_gate(
    const Gate& gate, int num_lines,
    FullWidthPolicy policy = FullWidthPolicy::kThrow);

}  // namespace rmrls
