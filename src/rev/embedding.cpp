#include "rev/embedding.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace rmrls {

Embedding embed(const IrreversibleSpec& spec) {
  if (spec.num_inputs < 1 || spec.num_outputs < 1 ||
      spec.num_inputs >= 24 || spec.num_outputs >= 24) {
    throw std::invalid_argument("embedding spec out of supported range");
  }
  const std::uint64_t rows = std::uint64_t{1} << spec.num_inputs;
  if (spec.outputs.size() != rows) {
    throw std::invalid_argument("output vector size mismatch");
  }
  for (std::uint64_t y : spec.outputs) {
    if (y >> spec.num_outputs) {
      throw std::invalid_argument("output word wider than num_outputs");
    }
  }

  // Garbage outputs: enough to disambiguate the most repeated output word.
  std::unordered_map<std::uint64_t, std::uint64_t> multiplicity;
  std::uint64_t p = 0;
  for (std::uint64_t y : spec.outputs) p = std::max(p, ++multiplicity[y]);
  int garbage = 0;
  while ((std::uint64_t{1} << garbage) < p) ++garbage;

  const int lines = std::max(spec.num_inputs, spec.num_outputs + garbage);
  if (lines > 24) throw std::invalid_argument("embedding too wide");
  const int constant_inputs = lines - spec.num_inputs;
  const int garbage_outputs = lines - spec.num_outputs;

  // Rows with all-zero constant inputs get the real outputs, disambiguated
  // by an occurrence counter in the garbage lines.
  const std::uint64_t size = std::uint64_t{1} << lines;
  constexpr std::uint64_t kUnassigned = ~std::uint64_t{0};
  std::vector<std::uint64_t> image(size, kUnassigned);
  std::vector<bool> used(size, false);
  std::unordered_map<std::uint64_t, std::uint64_t> occurrence;
  for (std::uint64_t x = 0; x < rows; ++x) {
    const std::uint64_t y = spec.outputs[x];
    const std::uint64_t tag = occurrence[y]++;
    const std::uint64_t full = y | (tag << spec.num_outputs);
    image[x] = full;
    used[full] = true;
  }
  // Complete the permutation: remaining rows take unused codes in order.
  std::uint64_t next = 0;
  for (std::uint64_t x = rows; x < size; ++x) {
    while (used[next]) ++next;
    image[x] = next;
    used[next] = true;
  }
  Embedding e;
  e.table = TruthTable(std::move(image));
  e.real_inputs = spec.num_inputs;
  e.constant_inputs = constant_inputs;
  e.real_outputs = spec.num_outputs;
  e.garbage_outputs = garbage_outputs;
  return e;
}

}  // namespace rmrls
