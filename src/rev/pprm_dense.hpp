/// \file pprm_dense.hpp
/// \brief Dense (bitset) PPRM spectra with word-parallel substitution.
///
/// The sparse representation (pprm.hpp) stores an expansion as a sorted
/// cube vector, so the gate primitive `v_t <- v_t XOR f` costs a pass of
/// comparisons over every term. For n small enough that the *whole*
/// coefficient spectrum of an output fits in 2^n bits, the same
/// substitution collapses to a handful of word-parallel shift/mask/XOR
/// passes over 2^n / 64 machine words, and pricing a candidate
/// (`substitute_delta`) to popcounts — the bit-slicing family behind the
/// fast Moebius transform in pprm_transform.cpp. See docs/dense_pprm.md
/// for the layout and the kernel's two regimes (whole-word moves when a
/// variable index is >= 6, masked intra-word shuffles below).
///
/// DensePprm mirrors the subset of Pprm's interface the search engine
/// needs (core/search.hpp is templated over the representation), and its
/// hash() folds per-output raw hashes exactly like Pprm::hash(), so the
/// two representations of one system make identical transposition-table
/// decisions. The synthesizer picks the representation per search pass
/// via SynthesisOptions::dense_threshold.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rev/cube.hpp"
#include "rev/pprm.hpp"

namespace rmrls {

/// Hard cap on dense width: 2^26 coefficient bits (8 MiB) per output is
/// already far beyond where the dense kernel can win; the sparse engine
/// is the large-n fallback (ROADMAP, Soeken et al.'s BDD line of work).
inline constexpr int kMaxDenseVariables = 26;

/// Intra-word masks of the kernel's small-variable regime: bit x of
/// kDenseVarMask[j] is set iff coefficient index x (within one
/// 64-coefficient word) contains variable j. The same constants drive the
/// butterfly stages of any 64-wide bit-sliced GF(2) transform.
inline constexpr std::uint64_t kDenseVarMask[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

/// The PPRM spectra of every output of an n-line reversible function,
/// stored dense: bit m of output o's bitset is the coefficient of the
/// cube with variable mask m. Same output-i-pairs-with-variable-i
/// convention as Pprm.
class DensePprm {
 public:
  DensePprm() = default;

  /// An all-outputs-empty system on `n` lines (not the identity).
  explicit DensePprm(int num_vars);

  /// Densifies a sparse system (the synthesizer's conversion point).
  /// Throws std::invalid_argument if `sparse` is wider than
  /// kMaxDenseVariables or contains a cube over variables >= num_vars().
  explicit DensePprm(const Pprm& sparse);

  /// The identity system: `out_i = v_i`.
  [[nodiscard]] static DensePprm identity(int num_vars);

  [[nodiscard]] int num_vars() const { return num_vars_; }

  /// 64-bit words per output spectrum (1 for n <= 6, else 2^(n-6)).
  [[nodiscard]] std::size_t words_per_output() const { return words_; }

  /// The coefficient bitset of output `i` (words_per_output() words).
  [[nodiscard]] const std::uint64_t* output_bits(int i) const {
    return bits_.data() + words_ * static_cast<std::size_t>(i);
  }

  /// Number of terms of output `i` (cached popcount).
  [[nodiscard]] int output_term_count(int i) const {
    return out_count_[static_cast<std::size_t>(i)];
  }

  /// True if output `i`'s expansion contains cube `c`.
  [[nodiscard]] bool output_contains(int i, Cube c) const {
    return (output_bits(i)[c >> 6] >> (c & 63)) & 1u;
  }

  /// Incrementally maintained XOR-of-cube_hash over output `i`'s terms;
  /// equals CubeList::raw_hash() of the same expansion.
  [[nodiscard]] std::uint64_t output_raw_hash(int i) const {
    return out_hash_[static_cast<std::size_t>(i)];
  }

  /// Total number of terms across all outputs (the paper's `terms`).
  [[nodiscard]] int term_count() const;

  /// True if every output is exactly its paired variable.
  [[nodiscard]] bool is_identity() const;

  /// Applies `v_t <- v_t XOR f` to every output, in place.
  /// Precondition: `f` does not contain `v_t`.
  /// Returns the change in total term count.
  int substitute(int t, Cube f);

  /// Builds the result of `substitute(t, f)` into `dst`, reusing dst's
  /// buffers (the search engine passes pooled systems). `*this` is
  /// untouched; `dst` must not alias it. Returns the term-count change.
  int substitute_into(int t, Cube f, DensePprm& dst) const;

  /// Term-count change `substitute(t, f)` would cause, without mutating:
  /// the same word passes as substitute_into but reduced to popcounts.
  [[nodiscard]] int substitute_delta(int t, Cube f) const;

  /// Evaluates all outputs at assignment `x`; bit `i` of the result is
  /// output `i`.
  [[nodiscard]] std::uint64_t eval(std::uint64_t x) const;

  /// Order-independent hash of the whole system. Folds the per-output raw
  /// hashes with the same seed/salt as Pprm::hash(), so dense and sparse
  /// forms of one system collide by construction (the transposition-table
  /// contract the cross-representation tests pin down).
  [[nodiscard]] std::size_t hash() const;

  /// Sparsifies back (tests, printing, interop with sparse-only passes).
  [[nodiscard]] Pprm to_pprm() const;

  /// Multi-line human-readable rendering, one output per line.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DensePprm& a, const DensePprm& b) {
    return a.num_vars_ == b.num_vars_ && a.bits_ == b.bits_;
  }

 private:
  /// Writes into `w` (words_per_output() words) the toggle image of one
  /// substitution on spectrum `s`: the parity-fold of s's v_t-half under
  /// the index map `c -> (c \ {v_t}) | f`. Returns false (w undefined
  /// beyond zeroed gather) when no coefficient contains v_t, i.e. the
  /// output is untouched by the substitution.
  bool build_toggle_image(const std::uint64_t* s, int t, Cube f,
                          std::uint64_t* w) const;

  /// XORs `image` into output `o`, maintaining the cached count and raw
  /// hash. Returns the output's term-count change.
  int apply_toggle_image(int o, const std::uint64_t* image);

  int num_vars_ = 0;
  std::size_t words_ = 0;               // words per output
  std::vector<std::uint64_t> bits_;     // num_vars_ * words_, output-major
  std::vector<std::uint64_t> out_hash_; // XOR of cube_hash per output
  std::vector<std::int32_t> out_count_; // popcount per output
};

std::ostream& operator<<(std::ostream& os, const DensePprm& p);

/// Pool alias for the dense representation (see StatePool in pprm.hpp).
using DensePprmPool = StatePool<DensePprm>;

}  // namespace rmrls
