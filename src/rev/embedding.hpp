/// \file embedding.hpp
/// \brief Reversible embedding of irreversible multi-output functions.
///
/// Section II-A of the paper: an irreversible function is made reversible by
/// appending garbage outputs until the input->output mapping is unique. If
/// the most frequent output pattern occurs p times, ceil(log2 p) garbage
/// outputs suffice; constant inputs are then added to balance line counts.
/// Rows where a constant input is nonzero are don't-cares; we complete them
/// deterministically with the unused output codes in ascending order.

#pragma once

#include <cstdint>
#include <vector>

#include "rev/truth_table.hpp"

namespace rmrls {

/// An irreversible, completely specified multi-output Boolean function:
/// `outputs[x]` is the packed output word for input `x` (bit j = output j).
struct IrreversibleSpec {
  int num_inputs = 0;
  int num_outputs = 0;
  std::vector<std::uint64_t> outputs;  // size 2^num_inputs
};

/// A reversible embedding. Line layout: original inputs occupy lines
/// 0..num_inputs-1 and constant inputs the lines above; original outputs
/// occupy lines 0..num_outputs-1 and garbage outputs the lines above.
struct Embedding {
  TruthTable table;
  int real_inputs = 0;
  int constant_inputs = 0;
  int real_outputs = 0;
  int garbage_outputs = 0;

  [[nodiscard]] int lines() const { return real_inputs + constant_inputs; }
};

/// Builds the minimal-garbage embedding of `spec`.
/// Throws std::invalid_argument on malformed specs.
[[nodiscard]] Embedding embed(const IrreversibleSpec& spec);

}  // namespace rmrls
