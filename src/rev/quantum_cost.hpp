/// \file quantum_cost.hpp
/// \brief Quantum-cost model for generalized Toffoli cascades.
///
/// Implements the cost table the paper takes from Maslov's benchmark page
/// [13] (derived from the Barenco et al. constructions [12]):
///
///   * NOT (TOF1) and CNOT (TOF2) cost 1;
///   * TOF3 costs 5; TOF4 costs 13;
///   * an m-bit Toffoli with m >= 5 costs 2^m - 3 when no unused line is
///     available, and 12(m-3) + 2 when at least one line of the circuit is
///     neither a control nor the target (the gate can borrow it).
///
/// Anchor points from the paper's Table IV validate the mapping: graycode6
/// (five CNOTs) has cost 5 and rd32 (three CNOTs + one TOF3) has cost 8.

#pragma once

#include "rev/circuit.hpp"
#include "rev/gate.hpp"

namespace rmrls {

/// Cost of one m-bit Toffoli gate on a circuit with `free_lines` lines that
/// the gate does not touch. Throws for m < 1.
[[nodiscard]] long long toffoli_cost(int gate_size, int free_lines);

/// Sum of gate costs; each gate of size m on an L-line circuit has
/// `L - m` free lines.
[[nodiscard]] long long quantum_cost(const Circuit& c);

}  // namespace rmrls
