#include "rev/fredkin.hpp"

#include <sstream>
#include <stdexcept>

#include "rev/quantum_cost.hpp"

namespace rmrls {

MixedGate MixedGate::fredkin(Cube controls, int x, int y) {
  if (x == y) throw std::invalid_argument("Fredkin pair must differ");
  if (x < 0 || y < 0 || x >= kMaxVariables || y >= kMaxVariables) {
    throw std::invalid_argument("Fredkin line out of range");
  }
  if (cube_has_var(controls, x) || cube_has_var(controls, y)) {
    throw std::invalid_argument("Fredkin pair cannot also be controls");
  }
  return {Kind::kFredkin, controls, static_cast<std::uint8_t>(x),
          static_cast<std::uint8_t>(y)};
}

std::uint64_t MixedGate::apply(std::uint64_t state) const {
  if ((state & controls) != controls) return state;
  if (kind == Kind::kToffoli) return state ^ (std::uint64_t{1} << a);
  const std::uint64_t bit_a = (state >> a) & 1;
  const std::uint64_t bit_b = (state >> b) & 1;
  if (bit_a != bit_b) {
    state ^= (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
  }
  return state;
}

std::string mixed_gate_to_string(const MixedGate& g, int num_vars) {
  if (g.kind == MixedGate::Kind::kToffoli) {
    return gate_to_string(Gate(g.controls, g.a), num_vars);
  }
  std::ostringstream os;
  os << "FRE" << g.size() << "(";
  bool first = true;
  for (int v = 0; v < num_vars; ++v) {
    if (!cube_has_var(g.controls, v)) continue;
    if (!first) os << ", ";
    os << cube_to_string(cube_of_var(v), num_vars);
    first = false;
  }
  if (!first) os << "; ";
  os << cube_to_string(cube_of_var(g.a), num_vars) << ", "
     << cube_to_string(cube_of_var(g.b), num_vars) << ")";
  return os.str();
}

MixedCircuit::MixedCircuit(int num_lines) : num_lines_(num_lines) {
  if (num_lines < 0 || num_lines > kMaxVariables) {
    throw std::invalid_argument("num_lines out of range");
  }
}

MixedCircuit::MixedCircuit(const Circuit& c) : MixedCircuit(c.num_lines()) {
  for (const Gate& g : c.gates()) append(MixedGate::toffoli(g));
}

void MixedCircuit::append(const MixedGate& g) {
  const Cube line_mask = num_lines_ == kMaxVariables
                             ? ~Cube{0}
                             : (Cube{1} << num_lines_) - 1;
  Cube touched = g.controls | cube_of_var(g.a);
  if (g.kind == MixedGate::Kind::kFredkin) touched |= cube_of_var(g.b);
  if (touched & ~line_mask) {
    throw std::invalid_argument("gate touches a line outside the circuit");
  }
  gates_.push_back(g);
}

std::uint64_t MixedCircuit::simulate(std::uint64_t x) const {
  for (const MixedGate& g : gates_) x = g.apply(x);
  return x;
}

Circuit MixedCircuit::to_toffoli() const {
  Circuit out(num_lines_);
  for (const MixedGate& g : gates_) {
    if (g.kind == MixedGate::Kind::kToffoli) {
      out.append(Gate(g.controls, g.a));
    } else {
      // FRE(C; a, b) = TOF(C+{b}; a) TOF(C+{a}; b) TOF(C+{b}; a).
      const Gate outer(g.controls | cube_of_var(g.b), g.a);
      const Gate inner(g.controls | cube_of_var(g.a), g.b);
      out.append(outer);
      out.append(inner);
      out.append(outer);
    }
  }
  return out;
}

std::string MixedCircuit::to_string() const {
  if (gates_.empty()) return "(empty)";
  std::ostringstream os;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (i != 0) os << " ";
    os << mixed_gate_to_string(gates_[i], num_lines_);
  }
  return os.str();
}

long long quantum_cost(const MixedCircuit& c) {
  long long total = 0;
  for (const MixedGate& g : c.gates()) {
    const int free_lines = c.num_lines() - g.size();
    if (g.kind == MixedGate::Kind::kToffoli) {
      total += toffoli_cost(g.size(), free_lines);
    } else if (g.size() == 3) {
      total += 5;  // direct 3-bit Fredkin realization [13]
    } else {
      total += toffoli_cost(g.size(), free_lines) + 2;
    }
  }
  return total;
}

}  // namespace rmrls
