#include "rev/canonical.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "rev/pprm.hpp"
#include "rev/pprm_transform.hpp"

namespace rmrls {

namespace {

/// Relocates each set bit i of `x` to position sigma[i].
std::uint64_t permute_bits(std::uint64_t x, const std::vector<int>& sigma) {
  std::uint64_t y = 0;
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    y |= ((x >> i) & 1u) << sigma[i];
  }
  return y;
}

void check_permutation(const std::vector<int>& sigma, int n) {
  if (static_cast<int>(sigma.size()) != n) {
    throw std::invalid_argument("wire permutation has the wrong size");
  }
  std::uint64_t seen = 0;
  for (const int v : sigma) {
    if (v < 0 || v >= n || ((seen >> v) & 1u) != 0) {
      throw std::invalid_argument("wire relabeling is not a permutation");
    }
    seen |= std::uint64_t{1} << v;
  }
}

std::vector<int> inverse_of(const std::vector<int>& sigma) {
  std::vector<int> inv(sigma.size());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    inv[sigma[i]] = static_cast<int>(i);
  }
  return inv;
}

std::vector<int> identity_perm(int n) {
  std::vector<int> id(n);
  for (int i = 0; i < n; ++i) id[i] = i;
  return id;
}

/// The conjugated image vector built directly (no TruthTable revalidation
/// on the canonicalizer's inner loop).
std::vector<std::uint64_t> conjugate_image(
    const std::vector<std::uint64_t>& image, const std::vector<int>& sigma) {
  std::vector<std::uint64_t> out(image.size());
  for (std::uint64_t x = 0; x < image.size(); ++x) {
    out[permute_bits(x, sigma)] = permute_bits(image[x], sigma);
  }
  return out;
}

/// Per-wire relabeling invariant: for every input Hamming weight w, how
/// often output bit i is 1 and how often it differs from input bit i.
/// Conjugation by sigma carries wire i's signature to wire sigma[i]
/// unchanged (weight-w inputs map onto weight-w inputs), so only
/// signature-compatible relabelings can reach the orbit minimum — the
/// pruning that keeps n > exact_max_vars tractable (docs/caching.md).
using WireSignature = std::vector<std::uint32_t>;

std::vector<WireSignature> wire_signatures(
    const std::vector<std::uint64_t>& image, int n) {
  std::vector<WireSignature> sigs(
      n, WireSignature(2 * static_cast<std::size_t>(n + 1), 0));
  for (std::uint64_t x = 0; x < image.size(); ++x) {
    const int w = std::popcount(x);
    const std::uint64_t y = image[x];
    for (int i = 0; i < n; ++i) {
      const std::uint32_t out_bit = (y >> i) & 1u;
      sigs[i][w] += out_bit;
      sigs[i][n + 1 + w] += out_bit ^ static_cast<std::uint32_t>((x >> i) & 1u);
    }
  }
  return sigs;
}

/// Wires holding equal signatures, plus the consecutive positions (in
/// signature-sorted order) they may occupy in the representative.
struct SignatureBlock {
  std::vector<int> members;    // ascending; permuted during enumeration
  std::vector<int> positions;  // ascending, |positions| == |members|
};

/// Groups wires into signature blocks, sorted by signature so every orbit
/// member derives the identical block/position structure. A single block
/// containing every wire enumerates all n! relabelings — the exact scan
/// reuses this machinery with signatures disabled.
std::vector<SignatureBlock> signature_blocks(
    const std::vector<std::uint64_t>& image, int n, bool use_signatures) {
  std::vector<SignatureBlock> blocks;
  if (!use_signatures) {
    SignatureBlock all;
    all.members = identity_perm(n);
    all.positions = all.members;
    blocks.push_back(std::move(all));
    return blocks;
  }
  const std::vector<WireSignature> sigs = wire_signatures(image, n);
  std::vector<int> order = identity_perm(n);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (sigs[a] != sigs[b]) return sigs[a] < sigs[b];
    return a < b;
  });
  for (int pos = 0; pos < n; ++pos) {
    const int wire = order[pos];
    if (blocks.empty() ||
        sigs[blocks.back().members.front()] != sigs[wire]) {
      blocks.emplace_back();
    }
    blocks.back().members.push_back(wire);
    blocks.back().positions.push_back(pos);
  }
  return blocks;
}

/// Product of |block|! with saturation at `cap + 1`.
std::uint64_t count_candidates(const std::vector<SignatureBlock>& blocks,
                               std::uint64_t cap) {
  std::uint64_t total = 1;
  for (const SignatureBlock& b : blocks) {
    for (std::uint64_t k = 2; k <= b.members.size(); ++k) {
      if (total > cap / k) return cap + 1;
      total *= k;
    }
  }
  return total;
}

struct Best {
  std::vector<std::uint64_t> image;
  std::vector<int> sigma;
  bool inverted = false;
};

/// Scans every signature-consistent relabeling of `image` and folds the
/// lexicographically smallest conjugate into `best`.
void scan_side(const std::vector<std::uint64_t>& image, int n, bool inverted,
               bool use_signatures, Best& best) {
  std::vector<SignatureBlock> blocks =
      signature_blocks(image, n, use_signatures);
  std::vector<int> sigma(n);
  while (true) {
    for (const SignatureBlock& b : blocks) {
      for (std::size_t j = 0; j < b.members.size(); ++j) {
        sigma[b.members[j]] = b.positions[j];
      }
    }
    std::vector<std::uint64_t> candidate = conjugate_image(image, sigma);
    if (best.image.empty() || candidate < best.image) {
      best.image = std::move(candidate);
      best.sigma = sigma;
      best.inverted = inverted;
    }
    // Odometer over per-block permutations: advance the first block that
    // has a next permutation, resetting the wrapped ones.
    std::size_t b = 0;
    while (b < blocks.size() &&
           !std::next_permutation(blocks[b].members.begin(),
                                  blocks[b].members.end())) {
      ++b;  // wrapped back to sorted order; carry into the next block
    }
    if (b == blocks.size()) break;
  }
}

std::uint64_t key_of(const TruthTable& representative) {
  return pprm_of_truth_table(representative).hash();
}

}  // namespace

TruthTable conjugate(const TruthTable& f, const std::vector<int>& sigma) {
  check_permutation(sigma, f.num_vars());
  return TruthTable(conjugate_image(f.image(), sigma));
}

CanonicalForm canonicalize(const TruthTable& spec,
                           const CanonicalOptions& options) {
  const int n = spec.num_vars();
  CanonicalForm out;
  out.representative = spec;
  out.transform.sigma = identity_perm(n);
  out.transform.inverted = false;

  if (n < 1 || n > options.max_vars) {
    // Identity orbit: the cache still deduplicates exact resubmissions.
    out.key = key_of(out.representative);
    return out;
  }

  const bool use_signatures = n > options.exact_max_vars;
  if (use_signatures) {
    // The candidate budget must be judged for both sides — the signature
    // multisets of pi and pi^-1 generally differ — and the fallback must
    // trigger symmetrically or orbit members would disagree on their key.
    const TruthTable inv = spec.inverse();
    if (count_candidates(signature_blocks(spec.image(), n, true),
                         options.max_candidates) > options.max_candidates ||
        count_candidates(signature_blocks(inv.image(), n, true),
                         options.max_candidates) > options.max_candidates) {
      out.key = key_of(out.representative);
      return out;
    }
  }

  Best best;
  scan_side(spec.image(), n, /*inverted=*/false, use_signatures, best);
  scan_side(spec.inverse().image(), n, /*inverted=*/true, use_signatures,
            best);

  out.representative = TruthTable(std::move(best.image));
  out.transform.sigma = std::move(best.sigma);
  out.transform.inverted = best.inverted;
  out.key = key_of(out.representative);
  return out;
}

Circuit reconstruct_circuit(const Circuit& canonical_circuit,
                            const OrbitTransform& transform) {
  check_permutation(transform.sigma, canonical_circuit.num_lines());
  Circuit c = canonical_circuit.relabel_wires(inverse_of(transform.sigma));
  return transform.inverted ? c.inverse() : c;
}

Circuit canonical_circuit_of(const Circuit& circuit,
                             const OrbitTransform& transform) {
  check_permutation(transform.sigma, circuit.num_lines());
  const Circuit base = transform.inverted ? circuit.inverse() : circuit;
  return base.relabel_wires(transform.sigma);
}

TruthTable reconstruct_spec(const TruthTable& representative,
                            const OrbitTransform& transform) {
  const TruthTable conj =
      conjugate(representative, inverse_of(transform.sigma));
  return transform.inverted ? conj.inverse() : conj;
}

std::uint64_t stable_spec_key(const TruthTable& spec) {
  // FNV-1a, 64-bit. Frozen constants: this key is persisted in checkpoint
  // files and decides shard membership across processes, so it must hash
  // identically forever (docs/fleet.md). Each image value is folded as 8
  // little-endian bytes after a num_vars prefix byte, which is exactly the
  // information content of the normalized spec line.
  constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t h = kOffset;
  const auto fold = [&](std::uint64_t byte) {
    h ^= byte & 0xffu;
    h *= kPrime;
  };
  fold(static_cast<std::uint64_t>(spec.num_vars()));
  for (const std::uint64_t v : spec.image()) {
    for (int b = 0; b < 8; ++b) fold(v >> (8 * b));
  }
  return h;
}

}  // namespace rmrls
