/// \file simplify.hpp
/// \brief Template-based post-synthesis simplification.
///
/// The paper reports (Section V-A) that post-processing RMRLS circuits with
/// Maslov's Toffoli templates [20]-[22] improved the 3-variable average from
/// 6.10 to 6.05 gates. This pass implements the dominant rules:
///
///   * duplicate deletion: two adjacent identical gates cancel;
///   * the moving rule: gates g1 g2 = g2 g1 when neither target feeds the
///     other's controls (or the targets coincide), used to bring equal
///     gates together;
///   * control merging: t(C+{x}; t) t(C; t) t(C+{x}; t) = ... is *not*
///     applied — only rules that never grow the circuit are used.
///
/// The pass is strictly non-increasing in gate count and preserves the
/// realized permutation (a tested invariant).

#pragma once

#include "obs/phase_profile.hpp"
#include "rev/circuit.hpp"

namespace rmrls {

struct SimplifyResult {
  Circuit circuit;
  int removed_gates = 0;
  int passes = 0;
};

/// Applies duplicate deletion under the moving rule until a fixpoint.
/// A non-null `profile` records the pass's wall time and invocation count
/// under Phase::kTemplateSimplify.
[[nodiscard]] SimplifyResult simplify_templates(
    const Circuit& c, PhaseProfile* profile = nullptr);

}  // namespace rmrls
