/// \file fredkinize.hpp
/// \brief Fredkin extraction from Toffoli cascades (the paper's proposed
/// future work, Section VI).
///
/// Scans a synthesized cascade for the controlled-swap triple
/// `TOF(C+{y}; x) TOF(C+{x}; y) TOF(C+{y}; x)` — in either orientation —
/// and replaces it with a single generalized Fredkin gate. The triple is
/// matched through commuting neighbours (the moving rule), so patterns
/// separated by independent gates are still found. The result realizes
/// the same permutation with fewer gates and never costs more (tested
/// invariants).

#pragma once

#include "rev/circuit.hpp"
#include "rev/fredkin.hpp"

namespace rmrls {

struct FredkinizeResult {
  MixedCircuit circuit;
  int fredkin_gates = 0;   ///< how many triples were replaced
  int gates_saved = 0;     ///< Toffoli count reduction (2 per replacement)
};

/// Extracts Fredkin gates from `c`.
[[nodiscard]] FredkinizeResult fredkinize(const Circuit& c);

}  // namespace rmrls
