#include "templates/simplify.hpp"

#include <vector>

namespace rmrls {

namespace {

/// Tries to cancel gates[i] against a later equal gate reachable through
/// commuting neighbours. On success removes both and returns true.
bool cancel_forward(std::vector<Gate>& gates, std::size_t i) {
  for (std::size_t j = i + 1; j < gates.size(); ++j) {
    if (gates[j] == gates[i]) {
      gates.erase(gates.begin() + static_cast<std::ptrdiff_t>(j));
      gates.erase(gates.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
    if (!gates[i].commutes_with(gates[j])) return false;
  }
  return false;
}

}  // namespace

SimplifyResult simplify_templates(const Circuit& c, PhaseProfile* profile) {
  const ScopedPhaseTimer timer(profile, Phase::kTemplateSimplify);
  std::vector<Gate> gates = c.gates();
  SimplifyResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.passes;
    for (std::size_t i = 0; i < gates.size();) {
      if (cancel_forward(gates, i)) {
        result.removed_gates += 2;
        changed = true;
        // Rescan from the previous position: the cancellation may have
        // brought a new pair together.
        i = i == 0 ? 0 : i - 1;
      } else {
        ++i;
      }
    }
  }
  result.circuit = Circuit(c.num_lines(), std::move(gates));
  return result;
}

}  // namespace rmrls
