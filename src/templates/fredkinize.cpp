#include "templates/fredkinize.hpp"

#include <bit>
#include <optional>
#include <vector>

namespace rmrls {

namespace {

/// Working item: an original Toffoli gate or an already-extracted Fredkin.
/// Extracted Fredkins act as movement barriers (conservative but simple).
struct Item {
  bool is_fredkin = false;
  Gate toffoli;
  MixedGate fredkin;
};

/// A found triple: outer gates at `i` and `k`, inner at `j`.
struct Triple {
  std::size_t i = 0, j = 0, k = 0;
  MixedGate replacement;
};

std::optional<Triple> find_triple(const std::vector<Item>& items,
                                  std::size_t i) {
  if (items[i].is_fredkin) return std::nullopt;
  const Gate& outer = items[i].toffoli;
  // The outer gate TOF(C+{y}; x): every control y is a possible swap
  // partner for the target x.
  Cube candidates = outer.controls;
  while (candidates) {
    const int y = std::countr_zero(candidates);
    candidates &= candidates - 1;
    const Cube common = outer.controls & ~cube_of_var(y);
    const Gate inner(common | cube_of_var(outer.target), y);
    // Move right from i looking for the inner gate; everything passed
    // must commute with the outer gate.
    std::size_t j = i + 1;
    while (j < items.size() && !items[j].is_fredkin &&
           !(items[j].toffoli == inner) &&
           items[j].toffoli.commutes_with(outer)) {
      ++j;
    }
    if (j >= items.size() || items[j].is_fredkin ||
        !(items[j].toffoli == inner)) {
      continue;
    }
    // Move right from j looking for the closing outer gate; everything
    // passed must commute with it so it can slide left to the block.
    std::size_t k = j + 1;
    while (k < items.size() && !items[k].is_fredkin &&
           !(items[k].toffoli == outer) &&
           items[k].toffoli.commutes_with(outer)) {
      ++k;
    }
    if (k >= items.size() || items[k].is_fredkin ||
        !(items[k].toffoli == outer)) {
      continue;
    }
    return Triple{i, j, k, MixedGate::fredkin(common, outer.target, y)};
  }
  return std::nullopt;
}

}  // namespace

FredkinizeResult fredkinize(const Circuit& c) {
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(c.gate_count()));
  for (const Gate& g : c.gates()) items.push_back({false, g, MixedGate{}});

  FredkinizeResult result;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::optional<Triple> t = find_triple(items, i);
      if (!t) continue;
      // Replace the inner position with the Fredkin gate and drop the two
      // outer gates (erase the later index first).
      items[t->j] = Item{true, Gate{}, t->replacement};
      items.erase(items.begin() + static_cast<std::ptrdiff_t>(t->k));
      items.erase(items.begin() + static_cast<std::ptrdiff_t>(t->i));
      ++result.fredkin_gates;
      result.gates_saved += 2;
      changed = true;
      break;  // indices shifted; rescan
    }
  }

  MixedCircuit out(c.num_lines());
  for (const Item& item : items) {
    out.append(item.is_fredkin ? item.fredkin
                               : MixedGate::toffoli(item.toffoli));
  }
  result.circuit = std::move(out);
  return result;
}

}  // namespace rmrls
