#include "io/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rmrls {

TextTable::TextTable(std::vector<std::string> header) {
  if (header.empty()) throw std::invalid_argument("empty table header");
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != rows_[0].size()) {
    throw std::invalid_argument("row arity does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c != 0) os << "  ";
      os << std::string(widths[c] - rows_[r][c].size(), ' ') << rows_[r][c];
    }
    os << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c == 0 ? 0 : 2);
      }
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace rmrls
