/// \file spec.hpp
/// \brief Parsing of reversible specifications in permutation form.
///
/// The paper specifies reversible functions as permutations of
/// {0, ..., 2^n - 1} (Section II-A), e.g. "{1, 0, 7, 2, 3, 4, 5, 6}".
/// This parser accepts that notation, with or without braces, separated by
/// commas and/or whitespace, plus `#` comments.

#pragma once

#include <string>
#include <vector>

#include "core/status.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {

/// Parses a permutation spec. Never throws on bad input: malformed text
/// returns a kParseError Status (with the 1-based line of the offending
/// character), a well-formed but semantically invalid function — image not
/// a power-of-two size, out-of-range or repeated entries — returns
/// kInvalidSpec (docs/robustness.md). `filename` only labels the
/// diagnostics.
[[nodiscard]] Result<TruthTable> parse_permutation_spec_checked(
    const std::string& text, const std::string& filename = "<spec>");

/// Throwing convenience wrapper around parse_permutation_spec_checked:
/// throws std::invalid_argument carrying the same diagnostic.
[[nodiscard]] TruthTable parse_permutation_spec(const std::string& text);

/// One entry of a batch spec list, labelled `filename:line` for outcomes
/// and diagnostics.
struct NamedSpec {
  std::string name;
  TruthTable table;
};

/// Parses a spec-list file (`rmrls --batch`): one permutation spec per
/// line, `#` comments and blank lines skipped. Never throws: the first
/// malformed line returns its kParseError / kInvalidSpec Status with the
/// real file line number. A file with no specs at all parses to an empty
/// vector — a valid (zero-job) batch, not an error (docs/fleet.md).
[[nodiscard]] Result<std::vector<NamedSpec>> parse_permutation_batch_checked(
    const std::string& text, const std::string& filename = "<batch>");

/// Renders in the paper's brace notation (inverse of the parser).
[[nodiscard]] std::string write_permutation_spec(const TruthTable& tt);

}  // namespace rmrls
