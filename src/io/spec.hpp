/// \file spec.hpp
/// \brief Parsing of reversible specifications in permutation form.
///
/// The paper specifies reversible functions as permutations of
/// {0, ..., 2^n - 1} (Section II-A), e.g. "{1, 0, 7, 2, 3, 4, 5, 6}".
/// This parser accepts that notation, with or without braces, separated by
/// commas and/or whitespace, plus `#` comments.

#pragma once

#include <string>

#include "rev/truth_table.hpp"

namespace rmrls {

/// Parses a permutation spec. Throws std::invalid_argument on malformed
/// text or a non-bijective image vector.
[[nodiscard]] TruthTable parse_permutation_spec(const std::string& text);

/// Renders in the paper's brace notation (inverse of the parser).
[[nodiscard]] std::string write_permutation_spec(const TruthTable& tt);

}  // namespace rmrls
