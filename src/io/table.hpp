/// \file table.hpp
/// \brief Fixed-width text tables for the benchmark harnesses.
///
/// Every bench binary prints its reproduction of a paper table through this
/// helper so the outputs line up and are diffable run-to-run.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rmrls {

/// A simple right-aligned text table. Add a header row, then data rows of
/// the same arity; print() pads columns to their widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; its size must match the header's.
  void add_row(std::vector<std::string> row);

  /// Renders with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

/// Formats a double with `digits` decimals (locale-independent).
[[nodiscard]] std::string fixed(double value, int digits = 2);

}  // namespace rmrls
