#include "io/tfc.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rmrls {

namespace {

std::string line_name(int v, int num_lines) {
  if (num_lines <= 26) return std::string(1, static_cast<char>('a' + v));
  return "x" + std::to_string(v);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(ch))) {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

std::string write_tfc(const Circuit& c) {
  std::ostringstream os;
  const int n = c.num_lines();
  const auto names = [n] {
    std::string s;
    for (int v = 0; v < n; ++v) {
      if (v != 0) s += ",";
      s += line_name(v, n);
    }
    return s;
  }();
  os << ".v " << names << "\n.i " << names << "\n.o " << names << "\nBEGIN\n";
  for (const Gate& g : c.gates()) {
    os << "t" << g.size() << " ";
    bool first = true;
    for (int v = 0; v < n; ++v) {
      if (!cube_has_var(g.controls, v)) continue;
      if (!first) os << ",";
      os << line_name(v, n);
      first = false;
    }
    if (!first) os << ",";
    os << line_name(g.target, n) << "\n";
  }
  os << "END\n";
  return os.str();
}

Result<Circuit> read_tfc_checked(const std::string& text,
                                 const std::string& filename) {
  const auto fail = [&](int line_no, const std::string& what) {
    return Status::parse_error(filename, line_no, what);
  };
  std::istringstream is(text);
  std::string line;
  std::map<std::string, int> line_index;
  bool in_body = false;
  bool done = false;
  std::vector<Gate> gates;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;  // blank line
    if (done) return fail(line_no, "content after END");
    if (head == ".v") {
      std::string rest;
      std::getline(ls, rest);
      for (const std::string& name : split_commas(rest)) {
        if (line_index.count(name)) {
          return fail(line_no, "duplicate line " + name);
        }
        const int idx = static_cast<int>(line_index.size());
        if (idx >= kMaxVariables) {
          return fail(line_no, "more than " + std::to_string(kMaxVariables) +
                                   " lines");
        }
        line_index[name] = idx;
      }
      continue;
    }
    if (head == ".i" || head == ".o" || head == ".c" || head == ".ol") {
      continue;  // metadata we do not need
    }
    if (head == "BEGIN") {
      if (line_index.empty()) return fail(line_no, "BEGIN before .v");
      in_body = true;
      continue;
    }
    if (head == "END") {
      if (!in_body) return fail(line_no, "END before BEGIN");
      done = true;
      continue;
    }
    if (!in_body) return fail(line_no, "gate outside BEGIN/END");
    if (head.size() < 2 || head[0] != 't') {
      return fail(line_no, "unsupported gate '" + head + "' (Toffoli only)");
    }
    int arity = 0;
    const char* const first = head.data() + 1;
    const char* const last = head.data() + head.size();
    const auto [ptr, ec] = std::from_chars(first, last, arity);
    if (ec != std::errc{} || ptr != last || arity < 1) {
      return fail(line_no, "bad gate arity in '" + head + "'");
    }
    std::string rest;
    std::getline(ls, rest);
    const std::vector<std::string> operands = split_commas(rest);
    if (static_cast<int>(operands.size()) != arity) {
      return fail(line_no, "expected " + std::to_string(arity) + " operands");
    }
    Cube controls = kConstOne;
    int target = -1;
    for (std::size_t i = 0; i < operands.size(); ++i) {
      const auto it = line_index.find(operands[i]);
      if (it == line_index.end()) {
        return fail(line_no, "unknown line '" + operands[i] + "'");
      }
      if (i + 1 == operands.size()) {
        target = it->second;
      } else {
        controls |= cube_of_var(it->second);
      }
    }
    if (cube_has_var(controls, target)) {
      return fail(line_no, "target repeated as control");
    }
    gates.emplace_back(controls, target);
  }
  if (!done) return fail(line_no, "missing END");
  return Circuit(static_cast<int>(line_index.size()), std::move(gates));
}

Circuit read_tfc(const std::string& text) {
  Result<Circuit> r = read_tfc_checked(text, "tfc");
  if (!r.ok()) throw std::invalid_argument(r.status().to_string());
  return std::move(r).value();
}

}  // namespace rmrls
