#include "io/real_format.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rmrls {

namespace {

std::string line_name(int v, int num_lines) {
  if (num_lines <= 26) return std::string(1, static_cast<char>('a' + v));
  return "x" + std::to_string(v);
}

}  // namespace

std::string write_real(const RealCircuit& rc) {
  const int n = rc.circuit.num_lines();
  if (!rc.constants.empty() && static_cast<int>(rc.constants.size()) != n) {
    throw std::invalid_argument(".constants width mismatch");
  }
  if (!rc.garbage.empty() && static_cast<int>(rc.garbage.size()) != n) {
    throw std::invalid_argument(".garbage width mismatch");
  }
  std::ostringstream os;
  os << ".version 2.0\n.numvars " << n << "\n.variables";
  for (int v = 0; v < n; ++v) os << " " << line_name(v, n);
  os << "\n";
  if (!rc.constants.empty()) os << ".constants " << rc.constants << "\n";
  if (!rc.garbage.empty()) os << ".garbage " << rc.garbage << "\n";
  os << ".begin\n";
  for (const MixedGate& g : rc.circuit.gates()) {
    os << (g.kind == MixedGate::Kind::kFredkin ? "f" : "t") << g.size();
    for (int v = 0; v < n; ++v) {
      if (cube_has_var(g.controls, v)) os << " " << line_name(v, n);
    }
    os << " " << line_name(g.a, n);
    if (g.kind == MixedGate::Kind::kFredkin) os << " " << line_name(g.b, n);
    os << "\n";
  }
  os << ".end\n";
  return os.str();
}

std::string write_real(const MixedCircuit& c) {
  RealCircuit rc;
  rc.circuit = c;
  return write_real(rc);
}

Result<RealCircuit> read_real_checked(const std::string& text,
                                      const std::string& filename) {
  const auto fail = [&](int line_no, const std::string& what) {
    return Status::parse_error(filename, line_no, what);
  };
  std::istringstream is(text);
  std::string line;
  std::map<std::string, int> line_index;
  int declared_vars = -1;
  RealCircuit rc;
  bool in_body = false;
  bool done = false;
  std::vector<MixedGate> gates;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;
    if (done) return fail(line_no, "content after .end");
    if (head == ".version") continue;
    if (head == ".numvars") {
      if (!(ls >> declared_vars) || declared_vars < 1 ||
          declared_vars > kMaxVariables) {
        return fail(line_no, "bad .numvars");
      }
      continue;
    }
    if (head == ".variables") {
      std::string name;
      while (ls >> name) {
        if (line_index.count(name)) {
          return fail(line_no, "duplicate line " + name);
        }
        const int idx = static_cast<int>(line_index.size());
        if (idx >= kMaxVariables) {
          return fail(line_no, "more than " + std::to_string(kMaxVariables) +
                                   " lines");
        }
        line_index[name] = idx;
      }
      continue;
    }
    if (head == ".constants") {
      ls >> rc.constants;
      continue;
    }
    if (head == ".garbage") {
      ls >> rc.garbage;
      continue;
    }
    if (head == ".inputs" || head == ".outputs" || head == ".inputbus" ||
        head == ".outputbus") {
      continue;  // metadata we do not need
    }
    if (head == ".begin") {
      if (line_index.empty()) return fail(line_no, ".begin before .variables");
      if (declared_vars >= 0 &&
          declared_vars != static_cast<int>(line_index.size())) {
        return fail(line_no, ".numvars disagrees with .variables");
      }
      in_body = true;
      continue;
    }
    if (head == ".end") {
      if (!in_body) return fail(line_no, ".end before .begin");
      done = true;
      continue;
    }
    if (!in_body) return fail(line_no, "gate outside .begin/.end");
    if (head.size() < 2 || (head[0] != 't' && head[0] != 'f')) {
      return fail(line_no, "unsupported gate '" + head + "' (t*/f* only)");
    }
    const bool fredkin = head[0] == 'f';
    int arity = 0;
    const char* const first = head.data() + 1;
    const char* const last = head.data() + head.size();
    const auto [ptr, ec] = std::from_chars(first, last, arity);
    if (ec != std::errc{} || ptr != last || arity < 1) {
      return fail(line_no, "bad gate arity in '" + head + "'");
    }
    std::vector<int> operands;
    std::string name;
    while (ls >> name) {
      if (!name.empty() && (name[0] == '-' || name[0] == '+')) {
        return fail(line_no,
                    "negative/positive control markers are unsupported");
      }
      const auto it = line_index.find(name);
      if (it == line_index.end()) {
        return fail(line_no, "unknown line '" + name + "'");
      }
      operands.push_back(it->second);
    }
    if (static_cast<int>(operands.size()) != arity) {
      return fail(line_no, "expected " + std::to_string(arity) + " operands");
    }
    const int target_count = fredkin ? 2 : 1;
    if (arity < target_count) return fail(line_no, "too few operands");
    Cube controls = kConstOne;
    for (std::size_t i = 0; i + target_count < operands.size(); ++i) {
      controls |= cube_of_var(operands[i]);
    }
    // Gate constructors still guard their own invariants (target repeated
    // as control, Fredkin pair aliasing); relabel those as parse errors of
    // this line.
    try {
      if (fredkin) {
        gates.push_back(MixedGate::fredkin(controls,
                                           operands[operands.size() - 2],
                                           operands.back()));
      } else {
        gates.push_back(MixedGate::toffoli(Gate(controls, operands.back())));
      }
    } catch (const std::invalid_argument& e) {
      return fail(line_no, e.what());
    }
  }
  if (!done) return fail(line_no, "missing .end");
  MixedCircuit c(static_cast<int>(line_index.size()));
  for (const MixedGate& g : gates) c.append(g);
  rc.circuit = std::move(c);
  return rc;
}

RealCircuit read_real(const std::string& text) {
  Result<RealCircuit> r = read_real_checked(text, ".real");
  if (!r.ok()) throw std::invalid_argument(r.status().to_string());
  return std::move(r).value();
}

}  // namespace rmrls
