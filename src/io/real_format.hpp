/// \file real_format.hpp
/// \brief Reader/writer for the RevLib .real circuit format.
///
/// RevLib (the successor of the Maslov benchmark page [13] the paper
/// compares against) interchanges circuits as .real files:
///
///     # comment
///     .version 2.0
///     .numvars 3
///     .variables a b c
///     .constants --0
///     .garbage --1
///     .begin
///     t3 a b c
///     f1 a b
///     .end
///
/// `tN` is an N-operand Toffoli (last operand = target), `fN` an
/// N-operand Fredkin (last two operands = the swap pair). Only positive
/// controls are supported (matching this library's gate model); lines with
/// negative-control markers are rejected with a clear error.

#pragma once

#include <string>

#include "core/status.hpp"
#include "rev/fredkin.hpp"

namespace rmrls {

/// Metadata carried alongside the gate list.
struct RealCircuit {
  MixedCircuit circuit;
  /// Per line: '-' = primary input, '0'/'1' = constant input.
  std::string constants;
  /// Per line: '-' = primary output, '1' = garbage output.
  std::string garbage;
};

/// Serializes to .real text (version 2.0 header).
[[nodiscard]] std::string write_real(const RealCircuit& rc);
[[nodiscard]] std::string write_real(const MixedCircuit& c);

/// Parses .real text. Never throws on malformed input or unsupported gate
/// kinds: every failure returns a kParseError Status whose diagnostic
/// renders as `filename:line: reason` (docs/robustness.md). `filename`
/// only labels the diagnostics.
[[nodiscard]] Result<RealCircuit> read_real_checked(
    const std::string& text, const std::string& filename = "<real>");

/// Throwing convenience wrapper around read_real_checked: throws
/// std::invalid_argument carrying the same line-numbered diagnostic.
[[nodiscard]] RealCircuit read_real(const std::string& text);

}  // namespace rmrls
