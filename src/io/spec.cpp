#include "io/spec.hpp"

#include <cctype>
#include <stdexcept>
#include <vector>

namespace rmrls {

Result<TruthTable> parse_permutation_spec_checked(const std::string& text,
                                                  const std::string& filename) {
  const auto fail = [&](int line_no, const std::string& what) {
    return Status::parse_error(filename, line_no, what);
  };
  std::vector<std::uint64_t> image;
  std::uint64_t value = 0;
  bool in_number = false;
  bool in_comment = false;
  int line_no = 1;
  for (char ch : text) {
    if (ch == '\n') {
      in_comment = false;
      ++line_no;
    }
    if (in_comment) continue;
    if (ch == '#') {
      in_comment = true;
      ch = ' ';  // terminate any pending number
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      const auto digit = static_cast<std::uint64_t>(ch - '0');
      // Reject instead of silently wrapping modulo 2^64: a wrapped entry
      // would alias a small valid one and corrupt the permutation.
      if (value > (~std::uint64_t{0} - digit) / 10) {
        return fail(line_no, "entry too large for 64 bits");
      }
      value = value * 10 + digit;
      in_number = true;
      continue;
    }
    if (in_number) {
      image.push_back(value);
      value = 0;
      in_number = false;
    }
    if (ch == '{' || ch == '}' || ch == ',' ||
        std::isspace(static_cast<unsigned char>(ch))) {
      continue;
    }
    return fail(line_no,
                std::string("unexpected character '") + ch +
                    "' in permutation spec");
  }
  if (in_number) image.push_back(value);
  if (image.empty()) return fail(line_no, "empty permutation spec");
  // The text was well-formed; what remains is semantic validation (size a
  // power of two, bijective image), which TruthTable's constructor owns.
  try {
    return TruthTable(std::move(image));
  } catch (const std::invalid_argument& e) {
    return Status::invalid_spec(filename, e.what());
  }
}

Result<std::vector<NamedSpec>> parse_permutation_batch_checked(
    const std::string& text, const std::string& filename) {
  std::vector<NamedSpec> specs;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? eol : eol - pos);
    ++line_no;
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;

    std::string body = line.substr(0, line.find('#'));
    const bool blank =
        body.find_first_not_of(" \t\r\f\v") == std::string::npos;
    if (blank) continue;

    Result<TruthTable> parsed =
        parse_permutation_spec_checked(body, filename);
    if (!parsed.ok()) {
      // Re-anchor the per-line diagnostic at the real file line, keeping
      // the kParseError / kInvalidSpec distinction intact.
      return Status(parsed.status().code(), parsed.status().message(),
                    filename, line_no);
    }
    specs.push_back(NamedSpec{filename + ":" + std::to_string(line_no),
                              std::move(parsed).value()});
  }
  // An all-blank/comment file parses to an empty batch — a valid input
  // (docs/fleet.md: a generated shard corpus may legitimately be empty);
  // run_batch and the CLI report jobs_total=0 and exit 0.
  return specs;
}

TruthTable parse_permutation_spec(const std::string& text) {
  Result<TruthTable> r = parse_permutation_spec_checked(text, "<spec>");
  if (!r.ok()) throw std::invalid_argument(r.status().to_string());
  return std::move(r).value();
}

std::string write_permutation_spec(const TruthTable& tt) {
  return tt.to_string();
}

}  // namespace rmrls
