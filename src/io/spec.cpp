#include "io/spec.hpp"

#include <cctype>
#include <stdexcept>
#include <vector>

namespace rmrls {

TruthTable parse_permutation_spec(const std::string& text) {
  std::vector<std::uint64_t> image;
  std::uint64_t value = 0;
  bool in_number = false;
  bool in_comment = false;
  for (char ch : text) {
    if (in_comment) {
      if (ch == '\n') in_comment = false;
      continue;
    }
    if (ch == '#') {
      in_comment = true;
      ch = ' ';  // terminate any pending number
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      value = value * 10 + static_cast<std::uint64_t>(ch - '0');
      in_number = true;
      continue;
    }
    if (in_number) {
      image.push_back(value);
      value = 0;
      in_number = false;
    }
    if (ch == '{' || ch == '}' || ch == ',' ||
        std::isspace(static_cast<unsigned char>(ch))) {
      continue;
    }
    throw std::invalid_argument(std::string("unexpected character '") + ch +
                                "' in permutation spec");
  }
  if (in_number) image.push_back(value);
  if (image.empty()) throw std::invalid_argument("empty permutation spec");
  return TruthTable(std::move(image));  // validates size and bijectivity
}

std::string write_permutation_spec(const TruthTable& tt) {
  return tt.to_string();
}

}  // namespace rmrls
