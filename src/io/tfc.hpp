/// \file tfc.hpp
/// \brief Reader/writer for the .tfc circuit interchange format.
///
/// The de-facto exchange format of the reversible-logic community (used by
/// Maslov's benchmark page [13] and RevKit). Example:
///
///     # comment
///     .v a,b,c
///     .i a,b,c
///     .o a,b,c
///     BEGIN
///     t3 a,c,b
///     t1 a
///     END
///
/// A `tN` line lists N-1 controls followed by the target. Line names map to
/// variables in `.v` declaration order (line 0 first).

#pragma once

#include <iosfwd>
#include <string>

#include "rev/circuit.hpp"

namespace rmrls {

/// Serializes `c` to .tfc text. Lines are named a, b, c, ... (x0, x1, ...
/// above 26 lines).
[[nodiscard]] std::string write_tfc(const Circuit& c);

/// Parses .tfc text. Throws std::invalid_argument with a line-numbered
/// message on malformed input.
[[nodiscard]] Circuit read_tfc(const std::string& text);

}  // namespace rmrls
