/// \file tfc.hpp
/// \brief Reader/writer for the .tfc circuit interchange format.
///
/// The de-facto exchange format of the reversible-logic community (used by
/// Maslov's benchmark page [13] and RevKit). Example:
///
///     # comment
///     .v a,b,c
///     .i a,b,c
///     .o a,b,c
///     BEGIN
///     t3 a,c,b
///     t1 a
///     END
///
/// A `tN` line lists N-1 controls followed by the target. Line names map to
/// variables in `.v` declaration order (line 0 first).

#pragma once

#include <iosfwd>
#include <string>

#include "core/status.hpp"
#include "rev/circuit.hpp"

namespace rmrls {

/// Serializes `c` to .tfc text. Lines are named a, b, c, ... (x0, x1, ...
/// above 26 lines).
[[nodiscard]] std::string write_tfc(const Circuit& c);

/// Parses .tfc text. Never throws on malformed input: every failure
/// returns a kParseError Status whose diagnostic renders as
/// `filename:line: reason` (docs/robustness.md). `filename` only labels
/// the diagnostics.
[[nodiscard]] Result<Circuit> read_tfc_checked(
    const std::string& text, const std::string& filename = "<tfc>");

/// Throwing convenience wrapper around read_tfc_checked: throws
/// std::invalid_argument carrying the same line-numbered diagnostic.
[[nodiscard]] Circuit read_tfc(const std::string& text);

}  // namespace rmrls
