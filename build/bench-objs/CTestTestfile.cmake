# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-objs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_json_emit "/root/repo/build/bench/table1_all3var" "--samples" "4" "--json" "/root/repo/build/bench-objs/table1_metrics.jsonl")
set_tests_properties(bench_json_emit PROPERTIES  FIXTURES_SETUP "bench_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;33;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_json_schema "/root/repo/build/tools/metrics_check" "/root/repo/build/bench-objs/table1_metrics.jsonl")
set_tests_properties(bench_json_schema PROPERTIES  FIXTURES_REQUIRED "bench_json" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;37;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_bad_number "/root/repo/build/bench/table1_all3var" "--samples" "abc")
set_tests_properties(bench_bad_number PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_help "/root/repo/build/bench/table1_all3var" "--help")
set_tests_properties(bench_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
