# Empty compiler generated dependencies file for table1_all3var.
# This may be replaced when dependencies are built.
