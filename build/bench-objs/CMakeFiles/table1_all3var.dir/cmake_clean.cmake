file(REMOVE_RECURSE
  "../bench/table1_all3var"
  "../bench/table1_all3var.pdb"
  "CMakeFiles/table1_all3var.dir/table1_all3var.cpp.o"
  "CMakeFiles/table1_all3var.dir/table1_all3var.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_all3var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
