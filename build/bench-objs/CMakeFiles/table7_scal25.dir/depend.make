# Empty dependencies file for table7_scal25.
# This may be replaced when dependencies are built.
