file(REMOVE_RECURSE
  "../bench/table7_scal25"
  "../bench/table7_scal25.pdb"
  "CMakeFiles/table7_scal25.dir/table7_scal25.cpp.o"
  "CMakeFiles/table7_scal25.dir/table7_scal25.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_scal25.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
