file(REMOVE_RECURSE
  "../bench/nct_decomposition"
  "../bench/nct_decomposition.pdb"
  "CMakeFiles/nct_decomposition.dir/nct_decomposition.cpp.o"
  "CMakeFiles/nct_decomposition.dir/nct_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nct_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
