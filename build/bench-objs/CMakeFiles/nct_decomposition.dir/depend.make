# Empty dependencies file for nct_decomposition.
# This may be replaced when dependencies are built.
