file(REMOVE_RECURSE
  "../bench/table6_scal20"
  "../bench/table6_scal20.pdb"
  "CMakeFiles/table6_scal20.dir/table6_scal20.cpp.o"
  "CMakeFiles/table6_scal20.dir/table6_scal20.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_scal20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
