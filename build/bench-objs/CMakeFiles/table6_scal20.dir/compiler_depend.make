# Empty compiler generated dependencies file for table6_scal20.
# This may be replaced when dependencies are built.
