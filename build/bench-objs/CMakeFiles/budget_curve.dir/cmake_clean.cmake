file(REMOVE_RECURSE
  "../bench/budget_curve"
  "../bench/budget_curve.pdb"
  "CMakeFiles/budget_curve.dir/budget_curve.cpp.o"
  "CMakeFiles/budget_curve.dir/budget_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
