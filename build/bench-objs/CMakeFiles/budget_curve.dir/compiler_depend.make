# Empty compiler generated dependencies file for budget_curve.
# This may be replaced when dependencies are built.
