# Empty dependencies file for hard_families.
# This may be replaced when dependencies are built.
