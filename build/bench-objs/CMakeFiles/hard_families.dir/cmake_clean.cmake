file(REMOVE_RECURSE
  "../bench/hard_families"
  "../bench/hard_families.pdb"
  "CMakeFiles/hard_families.dir/hard_families.cpp.o"
  "CMakeFiles/hard_families.dir/hard_families.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
