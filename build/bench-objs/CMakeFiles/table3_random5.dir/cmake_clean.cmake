file(REMOVE_RECURSE
  "../bench/table3_random5"
  "../bench/table3_random5.pdb"
  "CMakeFiles/table3_random5.dir/table3_random5.cpp.o"
  "CMakeFiles/table3_random5.dir/table3_random5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_random5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
