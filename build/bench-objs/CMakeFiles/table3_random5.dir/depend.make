# Empty dependencies file for table3_random5.
# This may be replaced when dependencies are built.
