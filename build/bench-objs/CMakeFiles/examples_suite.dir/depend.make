# Empty dependencies file for examples_suite.
# This may be replaced when dependencies are built.
