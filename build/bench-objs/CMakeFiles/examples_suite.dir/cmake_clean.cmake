file(REMOVE_RECURSE
  "../bench/examples_suite"
  "../bench/examples_suite.pdb"
  "CMakeFiles/examples_suite.dir/examples_suite.cpp.o"
  "CMakeFiles/examples_suite.dir/examples_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/examples_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
