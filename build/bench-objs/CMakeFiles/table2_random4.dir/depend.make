# Empty dependencies file for table2_random4.
# This may be replaced when dependencies are built.
