file(REMOVE_RECURSE
  "../bench/table2_random4"
  "../bench/table2_random4.pdb"
  "CMakeFiles/table2_random4.dir/table2_random4.cpp.o"
  "CMakeFiles/table2_random4.dir/table2_random4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_random4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
