# Empty dependencies file for table5_scal15.
# This may be replaced when dependencies are built.
