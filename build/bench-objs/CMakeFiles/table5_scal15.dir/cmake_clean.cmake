file(REMOVE_RECURSE
  "../bench/table5_scal15"
  "../bench/table5_scal15.pdb"
  "CMakeFiles/table5_scal15.dir/table5_scal15.cpp.o"
  "CMakeFiles/table5_scal15.dir/table5_scal15.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_scal15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
