file(REMOVE_RECURSE
  "../bench/ablation_heuristics"
  "../bench/ablation_heuristics.pdb"
  "CMakeFiles/ablation_heuristics.dir/ablation_heuristics.cpp.o"
  "CMakeFiles/ablation_heuristics.dir/ablation_heuristics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
