# Empty compiler generated dependencies file for rmrls.
# This may be replaced when dependencies are built.
