
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/greedy_pprm.cpp" "src/CMakeFiles/rmrls.dir/baselines/greedy_pprm.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/baselines/greedy_pprm.cpp.o.d"
  "/root/repo/src/baselines/optimal_bfs.cpp" "src/CMakeFiles/rmrls.dir/baselines/optimal_bfs.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/baselines/optimal_bfs.cpp.o.d"
  "/root/repo/src/baselines/spectral.cpp" "src/CMakeFiles/rmrls.dir/baselines/spectral.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/baselines/spectral.cpp.o.d"
  "/root/repo/src/baselines/transformation_based.cpp" "src/CMakeFiles/rmrls.dir/baselines/transformation_based.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/baselines/transformation_based.cpp.o.d"
  "/root/repo/src/bench_suite/functions.cpp" "src/CMakeFiles/rmrls.dir/bench_suite/functions.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/bench_suite/functions.cpp.o.d"
  "/root/repo/src/bench_suite/registry.cpp" "src/CMakeFiles/rmrls.dir/bench_suite/registry.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/bench_suite/registry.cpp.o.d"
  "/root/repo/src/core/factor_enum.cpp" "src/CMakeFiles/rmrls.dir/core/factor_enum.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/core/factor_enum.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/rmrls.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/CMakeFiles/rmrls.dir/core/search.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/core/search.cpp.o.d"
  "/root/repo/src/core/synthesizer.cpp" "src/CMakeFiles/rmrls.dir/core/synthesizer.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/core/synthesizer.cpp.o.d"
  "/root/repo/src/esop/esop.cpp" "src/CMakeFiles/rmrls.dir/esop/esop.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/esop/esop.cpp.o.d"
  "/root/repo/src/esop/minimize.cpp" "src/CMakeFiles/rmrls.dir/esop/minimize.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/esop/minimize.cpp.o.d"
  "/root/repo/src/io/real_format.cpp" "src/CMakeFiles/rmrls.dir/io/real_format.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/io/real_format.cpp.o.d"
  "/root/repo/src/io/spec.cpp" "src/CMakeFiles/rmrls.dir/io/spec.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/io/spec.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/CMakeFiles/rmrls.dir/io/table.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/io/table.cpp.o.d"
  "/root/repo/src/io/tfc.cpp" "src/CMakeFiles/rmrls.dir/io/tfc.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/io/tfc.cpp.o.d"
  "/root/repo/src/obs/json.cpp" "src/CMakeFiles/rmrls.dir/obs/json.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/obs/json.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/rmrls.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/phase_profile.cpp" "src/CMakeFiles/rmrls.dir/obs/phase_profile.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/obs/phase_profile.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/rmrls.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/obs/trace.cpp.o.d"
  "/root/repo/src/rev/circuit.cpp" "src/CMakeFiles/rmrls.dir/rev/circuit.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/circuit.cpp.o.d"
  "/root/repo/src/rev/circuit_stats.cpp" "src/CMakeFiles/rmrls.dir/rev/circuit_stats.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/circuit_stats.cpp.o.d"
  "/root/repo/src/rev/decompose.cpp" "src/CMakeFiles/rmrls.dir/rev/decompose.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/decompose.cpp.o.d"
  "/root/repo/src/rev/embedding.cpp" "src/CMakeFiles/rmrls.dir/rev/embedding.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/embedding.cpp.o.d"
  "/root/repo/src/rev/embedding_search.cpp" "src/CMakeFiles/rmrls.dir/rev/embedding_search.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/embedding_search.cpp.o.d"
  "/root/repo/src/rev/equivalence.cpp" "src/CMakeFiles/rmrls.dir/rev/equivalence.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/equivalence.cpp.o.d"
  "/root/repo/src/rev/fredkin.cpp" "src/CMakeFiles/rmrls.dir/rev/fredkin.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/fredkin.cpp.o.d"
  "/root/repo/src/rev/polarity.cpp" "src/CMakeFiles/rmrls.dir/rev/polarity.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/polarity.cpp.o.d"
  "/root/repo/src/rev/pprm.cpp" "src/CMakeFiles/rmrls.dir/rev/pprm.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/pprm.cpp.o.d"
  "/root/repo/src/rev/pprm_transform.cpp" "src/CMakeFiles/rmrls.dir/rev/pprm_transform.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/pprm_transform.cpp.o.d"
  "/root/repo/src/rev/quantum_cost.cpp" "src/CMakeFiles/rmrls.dir/rev/quantum_cost.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/quantum_cost.cpp.o.d"
  "/root/repo/src/rev/random.cpp" "src/CMakeFiles/rmrls.dir/rev/random.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/random.cpp.o.d"
  "/root/repo/src/rev/structural.cpp" "src/CMakeFiles/rmrls.dir/rev/structural.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/structural.cpp.o.d"
  "/root/repo/src/rev/truth_table.cpp" "src/CMakeFiles/rmrls.dir/rev/truth_table.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/rev/truth_table.cpp.o.d"
  "/root/repo/src/templates/fredkinize.cpp" "src/CMakeFiles/rmrls.dir/templates/fredkinize.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/templates/fredkinize.cpp.o.d"
  "/root/repo/src/templates/simplify.cpp" "src/CMakeFiles/rmrls.dir/templates/simplify.cpp.o" "gcc" "src/CMakeFiles/rmrls.dir/templates/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
