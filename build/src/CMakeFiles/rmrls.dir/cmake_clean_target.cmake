file(REMOVE_RECURSE
  "librmrls.a"
)
