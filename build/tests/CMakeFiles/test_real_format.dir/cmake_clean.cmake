file(REMOVE_RECURSE
  "CMakeFiles/test_real_format.dir/test_real_format.cpp.o"
  "CMakeFiles/test_real_format.dir/test_real_format.cpp.o.d"
  "test_real_format"
  "test_real_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_real_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
