# Empty compiler generated dependencies file for test_real_format.
# This may be replaced when dependencies are built.
