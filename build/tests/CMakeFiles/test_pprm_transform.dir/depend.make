# Empty dependencies file for test_pprm_transform.
# This may be replaced when dependencies are built.
