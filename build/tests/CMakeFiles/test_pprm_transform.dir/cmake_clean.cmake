file(REMOVE_RECURSE
  "CMakeFiles/test_pprm_transform.dir/test_pprm_transform.cpp.o"
  "CMakeFiles/test_pprm_transform.dir/test_pprm_transform.cpp.o.d"
  "test_pprm_transform"
  "test_pprm_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pprm_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
