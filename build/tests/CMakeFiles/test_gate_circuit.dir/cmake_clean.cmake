file(REMOVE_RECURSE
  "CMakeFiles/test_gate_circuit.dir/test_gate_circuit.cpp.o"
  "CMakeFiles/test_gate_circuit.dir/test_gate_circuit.cpp.o.d"
  "test_gate_circuit"
  "test_gate_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
