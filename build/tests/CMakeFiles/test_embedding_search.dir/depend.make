# Empty dependencies file for test_embedding_search.
# This may be replaced when dependencies are built.
