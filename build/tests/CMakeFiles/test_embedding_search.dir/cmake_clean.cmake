file(REMOVE_RECURSE
  "CMakeFiles/test_embedding_search.dir/test_embedding_search.cpp.o"
  "CMakeFiles/test_embedding_search.dir/test_embedding_search.cpp.o.d"
  "test_embedding_search"
  "test_embedding_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedding_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
