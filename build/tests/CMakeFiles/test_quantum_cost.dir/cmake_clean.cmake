file(REMOVE_RECURSE
  "CMakeFiles/test_quantum_cost.dir/test_quantum_cost.cpp.o"
  "CMakeFiles/test_quantum_cost.dir/test_quantum_cost.cpp.o.d"
  "test_quantum_cost"
  "test_quantum_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantum_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
