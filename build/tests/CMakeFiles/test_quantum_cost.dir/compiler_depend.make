# Empty compiler generated dependencies file for test_quantum_cost.
# This may be replaced when dependencies are built.
