file(REMOVE_RECURSE
  "CMakeFiles/test_polarity.dir/test_polarity.cpp.o"
  "CMakeFiles/test_polarity.dir/test_polarity.cpp.o.d"
  "test_polarity"
  "test_polarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
