# Empty compiler generated dependencies file for test_polarity.
# This may be replaced when dependencies are built.
