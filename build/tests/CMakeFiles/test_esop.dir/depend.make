# Empty dependencies file for test_esop.
# This may be replaced when dependencies are built.
