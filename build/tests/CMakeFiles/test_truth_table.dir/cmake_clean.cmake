file(REMOVE_RECURSE
  "CMakeFiles/test_truth_table.dir/test_truth_table.cpp.o"
  "CMakeFiles/test_truth_table.dir/test_truth_table.cpp.o.d"
  "test_truth_table"
  "test_truth_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truth_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
