# Empty compiler generated dependencies file for test_structural.
# This may be replaced when dependencies are built.
