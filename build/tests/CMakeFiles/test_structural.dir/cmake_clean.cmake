file(REMOVE_RECURSE
  "CMakeFiles/test_structural.dir/test_structural.cpp.o"
  "CMakeFiles/test_structural.dir/test_structural.cpp.o.d"
  "test_structural"
  "test_structural.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structural.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
