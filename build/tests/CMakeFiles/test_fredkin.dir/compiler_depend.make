# Empty compiler generated dependencies file for test_fredkin.
# This may be replaced when dependencies are built.
