file(REMOVE_RECURSE
  "CMakeFiles/test_fredkin.dir/test_fredkin.cpp.o"
  "CMakeFiles/test_fredkin.dir/test_fredkin.cpp.o.d"
  "test_fredkin"
  "test_fredkin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fredkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
