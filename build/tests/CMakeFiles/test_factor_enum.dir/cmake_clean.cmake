file(REMOVE_RECURSE
  "CMakeFiles/test_factor_enum.dir/test_factor_enum.cpp.o"
  "CMakeFiles/test_factor_enum.dir/test_factor_enum.cpp.o.d"
  "test_factor_enum"
  "test_factor_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factor_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
