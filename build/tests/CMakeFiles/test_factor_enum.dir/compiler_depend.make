# Empty compiler generated dependencies file for test_factor_enum.
# This may be replaced when dependencies are built.
