file(REMOVE_RECURSE
  "CMakeFiles/test_options_matrix.dir/test_options_matrix.cpp.o"
  "CMakeFiles/test_options_matrix.dir/test_options_matrix.cpp.o.d"
  "test_options_matrix"
  "test_options_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_options_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
