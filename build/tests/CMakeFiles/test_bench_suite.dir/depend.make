# Empty dependencies file for test_bench_suite.
# This may be replaced when dependencies are built.
