file(REMOVE_RECURSE
  "CMakeFiles/test_bench_suite.dir/test_bench_suite.cpp.o"
  "CMakeFiles/test_bench_suite.dir/test_bench_suite.cpp.o.d"
  "test_bench_suite"
  "test_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
