# Empty dependencies file for test_pprm.
# This may be replaced when dependencies are built.
