file(REMOVE_RECURSE
  "CMakeFiles/test_pprm.dir/test_pprm.cpp.o"
  "CMakeFiles/test_pprm.dir/test_pprm.cpp.o.d"
  "test_pprm"
  "test_pprm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pprm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
