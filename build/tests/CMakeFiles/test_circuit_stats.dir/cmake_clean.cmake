file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_stats.dir/test_circuit_stats.cpp.o"
  "CMakeFiles/test_circuit_stats.dir/test_circuit_stats.cpp.o.d"
  "test_circuit_stats"
  "test_circuit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
