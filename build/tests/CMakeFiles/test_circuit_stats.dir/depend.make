# Empty dependencies file for test_circuit_stats.
# This may be replaced when dependencies are built.
