# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_fig1 "/root/repo/build/tools/rmrls" "--perm" "{1, 0, 7, 2, 3, 4, 5, 6}")
set_tests_properties(cli_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list "/root/repo/build/tools/rmrls" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_benchmark "/root/repo/build/tools/rmrls" "--benchmark" "3_17" "--templates" "--fredkin")
set_tests_properties(cli_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_args "/root/repo/build/tools/rmrls" "--nonsense")
set_tests_properties(cli_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
