# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_fig1 "/root/repo/build/tools/rmrls" "--perm" "{1, 0, 7, 2, 3, 4, 5, 6}")
set_tests_properties(cli_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list "/root/repo/build/tools/rmrls" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_benchmark "/root/repo/build/tools/rmrls" "--benchmark" "3_17" "--templates" "--fredkin")
set_tests_properties(cli_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_args "/root/repo/build/tools/rmrls" "--nonsense")
set_tests_properties(cli_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build/tools/rmrls" "--help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_metrics "/root/repo/build/tools/rmrls" "--benchmark" "3_17" "--templates" "--metrics-out" "/root/repo/build/tools/cli_metrics.jsonl" "--trace" "/root/repo/build/tools/cli_trace.jsonl" "--progress")
set_tests_properties(cli_metrics PROPERTIES  FIXTURES_SETUP "cli_metrics_out" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_metrics_schema "/root/repo/build/tools/metrics_check" "/root/repo/build/tools/cli_metrics.jsonl")
set_tests_properties(cli_metrics_schema PROPERTIES  FIXTURES_REQUIRED "cli_metrics_out" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
