file(REMOVE_RECURSE
  "CMakeFiles/rmrls_cli.dir/rmrls_main.cpp.o"
  "CMakeFiles/rmrls_cli.dir/rmrls_main.cpp.o.d"
  "rmrls"
  "rmrls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmrls_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
