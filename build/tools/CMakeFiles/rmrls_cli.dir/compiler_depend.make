# Empty compiler generated dependencies file for rmrls_cli.
# This may be replaced when dependencies are built.
