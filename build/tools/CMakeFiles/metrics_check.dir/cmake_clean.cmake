file(REMOVE_RECURSE
  "CMakeFiles/metrics_check.dir/metrics_check.cpp.o"
  "CMakeFiles/metrics_check.dir/metrics_check.cpp.o.d"
  "metrics_check"
  "metrics_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
