# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adder_embedding "/root/repo/build/examples/adder_embedding")
set_tests_properties(example_adder_embedding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_benchmark_explorer "/root/repo/build/examples/benchmark_explorer" "3_17")
set_tests_properties(example_benchmark_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_random_search "/root/repo/build/examples/random_search" "10" "8" "1")
set_tests_properties(example_random_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_esop_pipeline "/root/repo/build/examples/esop_pipeline")
set_tests_properties(example_esop_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_toolchain_tour "/root/repo/build/examples/toolchain_tour" "3_17")
set_tests_properties(example_toolchain_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
