# Empty compiler generated dependencies file for random_search.
# This may be replaced when dependencies are built.
