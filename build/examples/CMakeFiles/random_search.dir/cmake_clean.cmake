file(REMOVE_RECURSE
  "CMakeFiles/random_search.dir/random_search.cpp.o"
  "CMakeFiles/random_search.dir/random_search.cpp.o.d"
  "random_search"
  "random_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
