# Empty dependencies file for adder_embedding.
# This may be replaced when dependencies are built.
