file(REMOVE_RECURSE
  "CMakeFiles/adder_embedding.dir/adder_embedding.cpp.o"
  "CMakeFiles/adder_embedding.dir/adder_embedding.cpp.o.d"
  "adder_embedding"
  "adder_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
