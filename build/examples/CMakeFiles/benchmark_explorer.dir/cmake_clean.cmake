file(REMOVE_RECURSE
  "CMakeFiles/benchmark_explorer.dir/benchmark_explorer.cpp.o"
  "CMakeFiles/benchmark_explorer.dir/benchmark_explorer.cpp.o.d"
  "benchmark_explorer"
  "benchmark_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
