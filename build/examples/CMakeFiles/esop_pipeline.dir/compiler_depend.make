# Empty compiler generated dependencies file for esop_pipeline.
# This may be replaced when dependencies are built.
