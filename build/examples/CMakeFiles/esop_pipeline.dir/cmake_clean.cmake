file(REMOVE_RECURSE
  "CMakeFiles/esop_pipeline.dir/esop_pipeline.cpp.o"
  "CMakeFiles/esop_pipeline.dir/esop_pipeline.cpp.o.d"
  "esop_pipeline"
  "esop_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esop_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
