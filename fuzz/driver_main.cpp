/// \file driver_main.cpp
/// \brief Standalone driver for the fuzz harnesses when libFuzzer is
/// unavailable (GCC builds; docs/robustness.md).
///
/// Usage:
///   fuzz_X [--smoke SECONDS] PATH...
///
/// Every PATH that is a file is replayed through LLVMFuzzerTestOneInput;
/// a directory replays every regular file inside it (one level). With
/// --smoke N the driver additionally runs a deterministic mutation loop
/// for ~N seconds: corpus seeds are XOR-flipped, truncated, spliced and
/// byte-injected by a fixed-seed xorshift generator, so the smoke run is
/// reproducible and needs no coverage feedback. Exit 0 means no harness
/// trap and no sanitizer report.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

struct XorShift64 {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

void run_one(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

std::string mutate(const std::vector<std::string>& corpus, XorShift64& rng) {
  std::string s = corpus.empty()
                      ? std::string()
                      : corpus[rng.next() % corpus.size()];
  const int edits = 1 + static_cast<int>(rng.next() % 8);
  for (int e = 0; e < edits; ++e) {
    switch (rng.next() % 5) {
      case 0:  // flip a byte
        if (!s.empty()) {
          s[rng.next() % s.size()] ^= static_cast<char>(rng.next() & 0xff);
        }
        break;
      case 1:  // truncate
        if (!s.empty()) s.resize(rng.next() % s.size());
        break;
      case 2:  // insert a byte
        s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                                 s.empty() ? 0 : rng.next() % (s.size() + 1)),
                 static_cast<char>(rng.next() & 0xff));
        break;
      case 3: {  // splice a window of another seed
        if (corpus.empty()) break;
        const std::string& other = corpus[rng.next() % corpus.size()];
        if (other.empty()) break;
        const std::size_t from = rng.next() % other.size();
        const std::size_t len = rng.next() % (other.size() - from + 1);
        s += other.substr(from, len);
        break;
      }
      default:  // repeat the tail (tickles "content after END" paths)
        if (!s.empty()) s += s.substr(s.size() / 2);
        break;
    }
    if (s.size() > 1 << 16) s.resize(1 << 16);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  long smoke_seconds = 0;
  std::vector<std::string> corpus;
  std::uint64_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --smoke\n";
        return 2;
      }
      smoke_seconds = std::strtol(argv[++i], nullptr, 10);
      continue;
    }
    std::vector<fs::path> files;
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      for (const fs::directory_entry& e : fs::directory_iterator(arg, ec)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
    } else {
      files.emplace_back(arg);
    }
    for (const fs::path& p : files) {
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        std::cerr << "cannot open " << p << "\n";
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      corpus.push_back(buf.str());
      run_one(corpus.back());
      ++replayed;
    }
  }
  std::uint64_t mutated = 0;
  if (smoke_seconds > 0) {
    XorShift64 rng{0x524d524c53ull};  // fixed seed: reproducible smoke
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(smoke_seconds);
    while (std::chrono::steady_clock::now() < deadline) {
      // Check the clock every batch, not every input.
      for (int b = 0; b < 256; ++b) {
        run_one(mutate(corpus, rng));
        ++mutated;
      }
    }
  }
  std::cout << "replayed " << replayed << " seed(s), mutated " << mutated
            << " input(s), no crashes\n";
  return 0;
}
