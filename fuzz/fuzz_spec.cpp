/// \file fuzz_spec.cpp
/// \brief Fuzz harness for the hardened permutation-spec parser
/// (docs/robustness.md).
///
/// parse_permutation_spec_checked must never throw or trip a sanitizer;
/// every accepted table must round-trip through the brace-notation writer.

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/spec.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const rmrls::Result<rmrls::TruthTable> r =
      rmrls::parse_permutation_spec_checked(text);
  if (!r.ok()) return 0;
  const std::string rendered = rmrls::write_permutation_spec(r.value());
  const rmrls::Result<rmrls::TruthTable> again =
      rmrls::parse_permutation_spec_checked(rendered);
  if (!again.ok() || !(again.value() == r.value())) __builtin_trap();
  return 0;
}
