/// \file fuzz_serve.cpp
/// \brief Fuzz harness for the serve daemon's wire layer
/// (docs/serving.md, docs/robustness.md).
///
/// The FrameSplitter and parse_request_checked sit directly on untrusted
/// socket bytes, so they must never throw, trip a sanitizer, or loop on
/// any input. The harness replays each input twice through the splitter —
/// once in one feed, once byte-at-a-time like a --slow-ms client — and
/// requires both framings to agree; every extracted frame then goes
/// through the request parser, which must return a Status rather than
/// misbehave.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/frame.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);

  rmrls::FrameSplitter bulk;
  bulk.feed(bytes, size);
  std::vector<std::string> bulk_frames;
  while (std::optional<std::string> f = bulk.next()) {
    // Frames are lines: the splitter must have consumed the terminator.
    if (f->find('\n') != std::string::npos) __builtin_trap();
    if (f->size() > rmrls::kMaxFrameBytes) __builtin_trap();
    bulk_frames.push_back(*std::move(f));
  }

  rmrls::FrameSplitter trickle;
  std::vector<std::string> trickle_frames;
  for (std::size_t i = 0; i < size; ++i) {
    trickle.feed(bytes + i, 1);
    while (std::optional<std::string> f = trickle.next())
      trickle_frames.push_back(*std::move(f));
  }
  // Chunking must not change what the peer said.
  if (bulk.overflowed() != trickle.overflowed()) __builtin_trap();
  if (bulk_frames != trickle_frames) __builtin_trap();

  for (const std::string& frame : bulk_frames) {
    const rmrls::Result<rmrls::ServeRequest> r =
        rmrls::parse_request_checked(frame, "fuzz");
    if (r.ok()) {
      // An accepted submit must carry a constructed spec, never the
      // default-constructed empty table.
      if (r.value().op == rmrls::ServeOp::kSubmit && r.value().spec.size() == 0)
        __builtin_trap();
    }
  }
  return 0;
}
