/// \file fuzz_tfc.cpp
/// \brief Fuzz harness for the hardened .tfc parser (docs/robustness.md).
///
/// The contract under fuzzing: read_tfc_checked never throws, never trips
/// a sanitizer, and every accepted circuit survives a write/parse
/// round-trip unchanged. Built with libFuzzer under Clang or the
/// standalone driver (driver_main.cpp) under GCC.

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/tfc.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const rmrls::Result<rmrls::Circuit> r = rmrls::read_tfc_checked(text);
  if (!r.ok()) return 0;  // rejected with a diagnostic: fine
  // Accepted input: the circuit must round-trip through the writer.
  const std::string rendered = rmrls::write_tfc(r.value());
  const rmrls::Result<rmrls::Circuit> again =
      rmrls::read_tfc_checked(rendered);
  if (!again.ok() || !(again.value() == r.value())) __builtin_trap();
  return 0;
}
