/// \file fuzz_real.cpp
/// \brief Fuzz harness for the hardened .real parser (docs/robustness.md).
///
/// read_real_checked must never throw or trip a sanitizer, and every
/// accepted circuit must survive a write/parse round-trip with the same
/// gate list.

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/real_format.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const rmrls::Result<rmrls::RealCircuit> r =
      rmrls::read_real_checked(text);
  if (!r.ok()) return 0;
  // The writer validates metadata widths; a parsed circuit whose
  // .constants/.garbage disagree with the gate list is legal input text,
  // so only round-trip the gate list itself.
  rmrls::RealCircuit canonical;
  canonical.circuit = r.value().circuit;
  const std::string rendered = rmrls::write_real(canonical);
  const rmrls::Result<rmrls::RealCircuit> again =
      rmrls::read_real_checked(rendered);
  if (!again.ok() ||
      again.value().circuit.gate_count() != r.value().circuit.gate_count()) {
    __builtin_trap();
  }
  return 0;
}
