/// \file rmrls_corpus.cpp
/// \brief Spec-corpus generator for fleet benchmarking (docs/fleet.md).
///
/// Emits an `rmrls --batch` spec file with controlled orbit-repeat
/// structure (bench_suite/corpus.hpp): base specs from the classic
/// hwb / prime-multiplier / simulated-Toffoli / random families, plus
/// planted repeats that are random wire conjugations (and inversions) of
/// earlier bases. Deterministic for a given --seed, so a (family, size,
/// seed) triple names the same corpus on every machine of a fleet.

#include <fstream>
#include <iostream>
#include <string>

#include "bench_suite/corpus.hpp"
#include "core/status.hpp"

namespace {

void help(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " [options]\n"
        "\n"
        "Writes a spec corpus (one permutation per line, labels in '#'\n"
        "comments) to stdout or --out, suitable for `rmrls --batch` and\n"
        "`bench/fleet_throughput` (docs/fleet.md).\n"
        "\n"
        "  --family F        hwb | prime | tof | random | mixed (default\n"
        "                    mixed: round-robin over all four)\n"
        "  --size N          total specs (default 256)\n"
        "  --repeat-rate X   fraction in [0,1] of entries that are orbit\n"
        "                    repeats of earlier bases (default 0.5)\n"
        "  --min-vars N      narrowest spec (default 3, min 2)\n"
        "  --max-vars N      widest spec (default 5, max 16)\n"
        "  --seed N          RNG seed (default 1); same seed, same corpus\n"
        "  --out FILE        write to FILE instead of stdout\n"
        "  --help, -h        this text\n"
        "\n"
        "Exit codes: 0 success; 2 usage; 6 internal error.\n";
}

[[noreturn]] void bad_number(const std::string& arg, const std::string& v) {
  std::cerr << "invalid number for " << arg << ": '" << v << "'\n";
  std::exit(2);
}

long long num_ll(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const long long n = std::stoll(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

double num_d(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const double n = std::stod(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmrls;
  suite::CorpusOptions options;
  std::string out_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--family") {
      Result<suite::CorpusFamily> fam = suite::parse_corpus_family(next());
      if (!fam.ok()) {
        std::cerr << "error: " << fam.status().to_string() << "\n";
        return 2;
      }
      options.family = fam.value();
    } else if (arg == "--size") {
      options.size = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--repeat-rate") {
      options.repeat_rate = num_d(arg, next());
    } else if (arg == "--min-vars") {
      options.min_vars = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--max-vars") {
      options.max_vars = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(num_ll(arg, next()));
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--help" || arg == "-h") {
      help(argv[0], std::cout);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      help(argv[0], std::cerr);
      return 2;
    }
  }

  try {
    Result<std::vector<suite::CorpusEntry>> corpus =
        suite::generate_corpus(options);
    if (!corpus.ok()) {
      std::cerr << "error: " << corpus.status().to_string() << "\n";
      return 2;
    }
    const std::string text = suite::write_corpus(corpus.value());
    if (out_file.empty()) {
      std::cout << text;
      return 0;
    }
    std::ofstream out(out_file);
    if (!out) {
      std::cerr << "cannot open " << out_file << " for writing\n";
      return 2;
    }
    out << text;
    out.flush();
    if (!out) {
      std::cerr << "write to " << out_file << " failed\n";
      return 6;
    }
    std::cerr << "wrote " << corpus.value().size() << " specs to "
              << out_file << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 6;
  }
}
