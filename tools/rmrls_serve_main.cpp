/// \file rmrls_serve_main.cpp
/// \brief `rmrls-serve`: the long-lived synthesis daemon (docs/serving.md).
///
/// Binds a unix-domain socket (or loopback TCP port), then serves
/// newline-delimited JSON requests until SIGTERM/SIGINT/SIGHUP or a
/// shutdown frame begins the graceful drain. One process-wide warm
/// SynthCache and one bounded worker pool outlive every request — the
/// whole point of running a daemon instead of one CLI process per spec.

#include <cstdint>
#include <iostream>
#include <string>

#include "core/status.hpp"
#include "serve/server.hpp"

namespace {

void help(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " (--socket PATH | --port N) [options]\n"
        "\n"
        "Listen address (exactly one):\n"
        "  --socket PATH      unix-domain socket (preferred; filesystem\n"
        "                     permissions apply). A stale socket file from\n"
        "                     a crashed daemon is replaced.\n"
        "  --port N           loopback TCP on 127.0.0.1:N; 0 picks an\n"
        "                     ephemeral port (printed on startup)\n"
        "\n"
        "Capacity:\n"
        "  --workers N        executor threads (default 2)\n"
        "  --search-threads N SynthesisOptions::num_threads per job\n"
        "                     (default 1)\n"
        "  --queue-cap N      admission queue bound (default 64); submits\n"
        "                     past it are shed with status \"unavailable\"\n"
        "                     (client exit code 7)\n"
        "\n"
        "Deadlines (ms):\n"
        "  --time-ms N        per-request default deadline (default 2000)\n"
        "  --max-time-ms N    clamp on a request's own time_ms (default\n"
        "                     30000)\n"
        "  --drain-ms N       graceful-drain budget after SIGTERM /\n"
        "                     shutdown; in-flight jobs still running at\n"
        "                     the deadline are cancelled (default 5000)\n"
        "\n"
        "Cache:\n"
        "  --cache-mb N       warm SynthCache budget (default 64)\n"
        "  --cache-dir DIR    on-disk TFC store shared across restarts\n"
        "\n"
        "Observability (docs/observability.md):\n"
        "  --metrics-out FILE JSONL sink: one rmrls-metrics-v1 record per\n"
        "                     job (with trace_id and serve_status) plus\n"
        "                     rmrls-metrics-v2 heartbeats\n"
        "  --heartbeat-ms N   arm live telemetry; one heartbeat every N ms\n"
        "                     to --metrics-out and to sessions subscribed\n"
        "                     with {\"op\":\"watch\"}\n"
        "\n"
        "  --help, -h         this text\n"
        "\n"
        "Exit codes: 0 clean drain; 2 usage / bind failure.\n"
        "Protocol: docs/serving.md (schema rmrls-serve-v1).\n";
}

int usage(const char* argv0) {
  help(argv0, std::cerr);
  return 2;
}

bool num_ll(const char* text, long long& out) {
  char* end = nullptr;
  out = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

long long bad_number(const char* flag) {
  std::cerr << "error: " << flag << " needs a non-negative integer\n";
  std::exit(2);
}

long long arg_number(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) return bad_number(flag);
  long long v = 0;
  if (!num_ll(argv[++i], v) || v < 0) return bad_number(flag);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmrls;
  ServeOptions options;
  bool address_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help(argv[0], std::cout);
      return 0;
    } else if (arg == "--socket") {
      if (i + 1 >= argc) return usage(argv[0]);
      options.socket_path = argv[++i];
      address_set = true;
    } else if (arg == "--port") {
      options.tcp_port = static_cast<int>(arg_number(argc, argv, i, "--port"));
      address_set = true;
    } else if (arg == "--workers") {
      options.workers =
          static_cast<int>(arg_number(argc, argv, i, "--workers"));
    } else if (arg == "--search-threads") {
      options.search_threads =
          static_cast<int>(arg_number(argc, argv, i, "--search-threads"));
    } else if (arg == "--queue-cap") {
      options.queue_cap =
          static_cast<std::size_t>(arg_number(argc, argv, i, "--queue-cap"));
    } else if (arg == "--time-ms") {
      options.default_deadline =
          std::chrono::milliseconds(arg_number(argc, argv, i, "--time-ms"));
    } else if (arg == "--max-time-ms") {
      options.max_deadline = std::chrono::milliseconds(
          arg_number(argc, argv, i, "--max-time-ms"));
    } else if (arg == "--drain-ms") {
      options.drain_deadline =
          std::chrono::milliseconds(arg_number(argc, argv, i, "--drain-ms"));
    } else if (arg == "--poll-ms") {
      options.poll_interval =
          std::chrono::milliseconds(arg_number(argc, argv, i, "--poll-ms"));
    } else if (arg == "--cache-mb") {
      options.cache_bytes =
          static_cast<std::size_t>(arg_number(argc, argv, i, "--cache-mb"))
          << 20;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) return usage(argv[0]);
      options.cache_dir = argv[++i];
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) return usage(argv[0]);
      options.metrics_path = argv[++i];
    } else if (arg == "--heartbeat-ms") {
      options.heartbeat_interval = std::chrono::milliseconds(
          arg_number(argc, argv, i, "--heartbeat-ms"));
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!address_set) {
    std::cerr << "error: need --socket PATH or --port N\n";
    return usage(argv[0]);
  }

  ServeDaemon daemon(std::move(options));
  const Status bound = daemon.start();
  if (!bound.ok()) {
    std::cerr << "error: " << bound.to_string() << "\n";
    return 2;
  }
  // One parseable line so wrappers (tests, rmrls_client --spawn) can wait
  // for readiness and learn an ephemeral TCP port.
  std::cout << "rmrls-serve listening on " << daemon.bound_address()
            << std::endl;
  const int rc = daemon.run();
  const ServeStats stats = daemon.stats();
  std::cerr << "rmrls-serve drained: " << stats.requests << " requests, "
            << stats.completed << " completed, " << stats.failed
            << " failed, " << stats.shed << " shed, "
            << stats.disconnect_cancelled << " cancelled by disconnect\n";
  return rc;
}
