/// \file rmrls_client.cpp
/// \brief `rmrls_client`: command-line client (and test driver) for the
/// rmrls-serve daemon (docs/serving.md).
///
/// Speaks the rmrls-serve-v1 newline-delimited JSON protocol over a
/// unix-domain socket or loopback TCP. Doubles as the fault-injection
/// harness the serve tests are built on: it can spawn the daemon itself
/// (--spawn), trickle bytes (--slow-ms), send raw garbage (--raw),
/// disconnect with work in flight (--disconnect), and validate every
/// streamed heartbeat with the shared MetricsValidator (--validate).
///
/// Exit code is the *worst* outcome across all requests, using the same
/// exit-code contract as `rmrls` itself — so a shed request surfaces as
/// exit 7 (kUnavailable) and a cancelled one as exit 5, scriptable
/// without parsing JSON.

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/status.hpp"
#include "obs/json.hpp"
#include "obs/metrics_validate.hpp"
#include "obs/telemetry.hpp"
#include "serve/frame.hpp"

namespace {

using Clock = std::chrono::steady_clock;

void help(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " (--socket PATH | --port N) [ops] [options]\n"
        "\n"
        "Connection:\n"
        "  --socket PATH      daemon's unix-domain socket\n"
        "  --port N           daemon's loopback TCP port\n"
        "  --spawn BIN        fork+exec BIN as the daemon (passing\n"
        "                     --socket PATH), retry-connect until ready,\n"
        "                     and reap it on exit. Requires --socket.\n"
        "  --daemon-arg ARG   extra argv token for --spawn (repeatable)\n"
        "  --timeout-ms N     overall client deadline (default 30000)\n"
        "\n"
        "Operations (run in order: ping, watch, raw, submit, stats,\n"
        "shutdown):\n"
        "  --ping             liveness probe\n"
        "  --submit SPEC      synthesize a permutation (repeatable),\n"
        "                     e.g. \"{1,0,7,2,3,4,5,6}\"\n"
        "  --time-ms N        per-submit deadline sent with each request\n"
        "  --tfc              ask for the circuit as TFC text\n"
        "  --watch N          subscribe to heartbeats; wait for N of them\n"
        "  --stats            fetch daemon counters\n"
        "  --shutdown         ask the daemon to drain after the other ops\n"
        "\n"
        "Fault injection (test harness; docs/serving.md):\n"
        "  --raw LINE         send LINE verbatim (repeatable); expects one\n"
        "                     response frame (an error, for garbage)\n"
        "  --slow-ms N        trickle request bytes one at a time with N ms\n"
        "                     pauses (slow-client simulation)\n"
        "  --disconnect       close the socket as soon as every submit is\n"
        "                     acknowledged, abandoning the results\n"
        "  --validate         check every received heartbeat with the\n"
        "                     shared MetricsValidator; any violation is an\n"
        "                     internal error (exit 6)\n"
        "\n"
        "Exit codes: worst across responses — 0 ok; 2 usage; 3 parse /\n"
        "invalid spec; 4 budget exhausted; 5 cancelled; 6 internal or\n"
        "protocol violation; 7 unavailable (shed / draining).\n";
}

int usage(const char* argv0) {
  help(argv0, std::cerr);
  return 2;
}

bool num_ll(const char* text, long long& out) {
  char* end = nullptr;
  out = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

long long arg_number(int argc, char** argv, int& i, const char* flag) {
  long long v = 0;
  if (i + 1 >= argc || !num_ll(argv[++i], v) || v < 0) {
    std::cerr << "error: " << flag << " needs a non-negative integer\n";
    std::exit(2);
  }
  return v;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends all of `data`, optionally trickling it byte by byte.
/// MSG_NOSIGNAL: a daemon that hangs up mid-send (oversized frame, drain)
/// must come back as EPIPE, not kill the client with SIGPIPE.
bool send_all(int fd, const std::string& data, long long slow_ms) {
  if (slow_ms <= 0) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  for (const char c : data) {
    for (;;) {
      const ssize_t n = ::send(fd, &c, 1, MSG_NOSIGNAL);
      if (n == 1) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
  }
  return true;
}

struct Options {
  std::string socket_path;
  int port = -1;
  std::string spawn_bin;
  std::vector<std::string> daemon_args;
  long long timeout_ms = 30000;
  bool ping = false;
  std::vector<std::string> submits;
  long long time_ms = 0;
  bool tfc = false;
  long long watch = 0;
  bool stats = false;
  bool shutdown = false;
  std::vector<std::string> raws;
  long long slow_ms = 0;
  bool disconnect = false;
  bool validate = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rmrls;
  Options o;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help(argv[0], std::cout);
      return 0;
    } else if (arg == "--socket") {
      if (i + 1 >= argc) return usage(argv[0]);
      o.socket_path = argv[++i];
    } else if (arg == "--port") {
      o.port = static_cast<int>(arg_number(argc, argv, i, "--port"));
    } else if (arg == "--spawn") {
      if (i + 1 >= argc) return usage(argv[0]);
      o.spawn_bin = argv[++i];
    } else if (arg == "--daemon-arg") {
      if (i + 1 >= argc) return usage(argv[0]);
      o.daemon_args.push_back(argv[++i]);
    } else if (arg == "--timeout-ms") {
      o.timeout_ms = arg_number(argc, argv, i, "--timeout-ms");
    } else if (arg == "--ping") {
      o.ping = true;
    } else if (arg == "--submit") {
      if (i + 1 >= argc) return usage(argv[0]);
      o.submits.push_back(argv[++i]);
    } else if (arg == "--time-ms") {
      o.time_ms = arg_number(argc, argv, i, "--time-ms");
    } else if (arg == "--tfc") {
      o.tfc = true;
    } else if (arg == "--watch") {
      o.watch = arg_number(argc, argv, i, "--watch");
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg == "--shutdown") {
      o.shutdown = true;
    } else if (arg == "--raw") {
      if (i + 1 >= argc) return usage(argv[0]);
      o.raws.push_back(argv[++i]);
    } else if (arg == "--slow-ms") {
      o.slow_ms = arg_number(argc, argv, i, "--slow-ms");
    } else if (arg == "--disconnect") {
      o.disconnect = true;
    } else if (arg == "--validate") {
      o.validate = true;
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (o.socket_path.empty() && o.port < 0) {
    std::cerr << "error: need --socket PATH or --port N\n";
    return usage(argv[0]);
  }
  if (!o.spawn_bin.empty() && o.socket_path.empty()) {
    std::cerr << "error: --spawn needs --socket\n";
    return usage(argv[0]);
  }

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(o.timeout_ms);

  // Spawn the daemon if asked: plain fork+exec, stdout/stderr inherited
  // so test logs show both sides interleaved.
  pid_t daemon_pid = -1;
  if (!o.spawn_bin.empty()) {
    daemon_pid = ::fork();
    if (daemon_pid < 0) {
      std::cerr << "error: fork: " << std::strerror(errno) << "\n";
      return 6;
    }
    if (daemon_pid == 0) {
      std::vector<char*> args;
      args.push_back(const_cast<char*>(o.spawn_bin.c_str()));
      args.push_back(const_cast<char*>("--socket"));
      args.push_back(const_cast<char*>(o.socket_path.c_str()));
      for (const std::string& a : o.daemon_args) {
        args.push_back(const_cast<char*>(a.c_str()));
      }
      args.push_back(nullptr);
      ::execv(o.spawn_bin.c_str(), args.data());
      std::cerr << "error: exec " << o.spawn_bin << ": "
                << std::strerror(errno) << "\n";
      ::_exit(127);
    }
  }

  // Connect, retrying while the daemon comes up (spawned or racing).
  int fd = -1;
  for (;;) {
    fd = o.socket_path.empty() ? connect_tcp(o.port)
                               : connect_unix(o.socket_path);
    if (fd >= 0) break;
    if (Clock::now() >= deadline) {
      std::cerr << "error: could not connect within " << o.timeout_ms
                << " ms\n";
      if (daemon_pid > 0) {
        ::kill(daemon_pid, SIGKILL);
        ::waitpid(daemon_pid, nullptr, 0);
      }
      return 6;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // ---- Send phase (ordered: ping, watch, raw, submit, stats) ----------
  int worst = 0;
  const auto bump = [&](int code) { worst = std::max(worst, code); };
  std::string out;
  long long expect_simple = 0;  // pong/watch-ack/stats frames still due
  if (o.ping) {
    JsonObject j;
    j.field("op", "ping").field("id", "ping");
    out += j.str();
    out += '\n';
    ++expect_simple;
  }
  if (o.watch > 0) {
    JsonObject j;
    j.field("op", "watch").field("id", "watch").field("enable", true);
    out += j.str();
    out += '\n';
    ++expect_simple;
  }
  for (const std::string& raw : o.raws) {
    out += raw;
    out += '\n';
  }
  long long expect_raw = static_cast<long long>(o.raws.size());
  for (std::size_t i = 0; i < o.submits.size(); ++i) {
    JsonObject j;
    j.field("op", "submit").field("id", "c" + std::to_string(i));
    j.field("spec", o.submits[i]);
    if (o.time_ms > 0) {
      j.field("time_ms", static_cast<std::int64_t>(o.time_ms));
    }
    if (o.tfc) j.field("tfc", true);
    out += j.str();
    out += '\n';
  }
  if (o.stats) {
    JsonObject j;
    j.field("op", "stats").field("id", "stats");
    out += j.str();
    out += '\n';
    ++expect_simple;
  }
  if (!send_all(fd, out, o.slow_ms)) {
    std::cerr << "error: send failed: " << std::strerror(errno) << "\n";
    ::close(fd);
    return 6;
  }

  // ---- Receive phase --------------------------------------------------
  long long pending_accept = static_cast<long long>(o.submits.size());
  long long pending_result = static_cast<long long>(o.submits.size());
  long long heartbeats_seen = 0;
  bool shutdown_sent = false;
  bool shutdown_acked = false;
  MetricsValidator validator;
  bool validation_failed = false;
  FrameSplitter splitter;
  bool peer_closed = false;

  const auto done = [&] {
    if (expect_simple > 0 || expect_raw > 0 || pending_accept > 0) {
      return false;
    }
    if (!o.disconnect && pending_result > 0) return false;
    if (heartbeats_seen < o.watch) return false;
    if (o.shutdown && !shutdown_acked) return false;
    return true;
  };

  const auto handle_line = [&](const std::string& line) {
    const auto parsed = json_parse(line);
    if (!parsed || !parsed->is_object()) {
      std::cerr << "protocol error: unparseable frame: " << line << "\n";
      bump(6);
      return;
    }
    const JsonValue* schema = parsed->find("schema");
    const std::string schema_tag =
        schema != nullptr && schema->is_string() ? schema->string : "";
    if (schema_tag == kMetricsSchemaV2) {
      ++heartbeats_seen;
      if (o.validate &&
          !validator.check_line(line, "heartbeat#" +
                                          std::to_string(heartbeats_seen))) {
        validation_failed = true;
      }
      return;
    }
    if (schema_tag != kServeSchemaV1) {
      std::cerr << "protocol error: unknown schema in: " << line << "\n";
      bump(6);
      return;
    }
    const JsonValue* record = parsed->find("record");
    const std::string kind =
        record != nullptr && record->is_string() ? record->string : "";
    const JsonValue* idv = parsed->find("id");
    const std::string id =
        idv != nullptr && idv->is_string() ? idv->string : "";
    std::cout << line << "\n";
    if (kind == "pong" || kind == "stats" || kind == "watch") {
      --expect_simple;
    } else if (kind == "accepted") {
      --pending_accept;
    } else if (kind == "result") {
      --pending_result;
      const JsonValue* code = parsed->find("exit_code");
      if (code != nullptr && code->is_number()) {
        bump(static_cast<int>(code->number));
      }
    } else if (kind == "shutdown") {
      shutdown_acked = true;
    } else if (kind == "error") {
      const JsonValue* code = parsed->find("exit_code");
      if (code != nullptr && code->is_number()) {
        bump(static_cast<int>(code->number));
      } else {
        bump(6);
      }
      if (!id.empty() && id.rfind('c', 0) == 0) {
        // A submit that never became a job (shed, bad spec).
        --pending_accept;
        --pending_result;
      } else {
        --expect_raw;
      }
    } else {
      std::cerr << "protocol error: unknown record '" << kind << "'\n";
      bump(6);
    }
  };

  bool timed_out = false;
  while (!done()) {
    if (Clock::now() >= deadline) {
      timed_out = true;
      break;
    }
    // Once everything except the drain ack is settled, ask for shutdown.
    if (o.shutdown && !shutdown_sent && expect_simple == 0 &&
        expect_raw == 0 && pending_accept == 0 &&
        (o.disconnect || pending_result == 0) &&
        heartbeats_seen >= o.watch) {
      JsonObject j;
      j.field("op", "shutdown").field("id", "shutdown");
      if (!send_all(fd, j.str() + "\n", o.slow_ms)) {
        bump(6);
        break;
      }
      shutdown_sent = true;
    }
    if (peer_closed) break;
    pollfd pfd{fd, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                            1, std::min<long long>(left.count(), 100))));
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    char buf[16384];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {
      peer_closed = true;
    } else if (n > 0) {
      splitter.feed(buf, static_cast<std::size_t>(n));
      while (std::optional<std::string> line = splitter.next()) {
        handle_line(*line);
        if (o.disconnect && pending_accept == 0 && expect_simple == 0 &&
            expect_raw == 0) {
          break;  // acknowledged: time to vanish mid-request
        }
      }
    } else if (errno != EINTR) {
      peer_closed = true;
    }
    if (o.disconnect && pending_accept == 0 && expect_simple == 0 &&
        expect_raw == 0) {
      break;
    }
  }
  ::close(fd);

  if (timed_out) {
    std::cerr << "error: timed out with "
              << (pending_result > 0 ? pending_result : 0)
              << " results pending\n";
    bump(6);
  }
  if (peer_closed && !done() && !o.disconnect && !timed_out) {
    std::cerr << "error: daemon closed the connection early\n";
    bump(6);
  }
  if (validation_failed) {
    for (const std::string& e : validator.errors()) {
      std::cerr << "validate: " << e << "\n";
    }
    bump(6);
  }
  if (o.validate) {
    std::cerr << "validated " << validator.heartbeats() << " heartbeats, "
              << (validation_failed ? "FAIL" : "ok") << "\n";
  }

  if (daemon_pid > 0) {
    // Reap the daemon. If nobody asked it to stop, SIGTERM triggers its
    // graceful drain (serve/signals.hpp).
    if (!o.shutdown) ::kill(daemon_pid, SIGTERM);
    int wstatus = 0;
    ::waitpid(daemon_pid, &wstatus, 0);
    const int drc = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128;
    std::cerr << "daemon exited with code " << drc << "\n";
    if (drc != 0) bump(6);
  }
  return worst;
}
