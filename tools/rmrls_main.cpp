/// \file rmrls_main.cpp
/// \brief Command-line front end of the RMRLS synthesizer.
///
/// Usage:
///   rmrls --perm "{1, 0, 7, 2, 3, 4, 5, 6}" [options]
///   rmrls --spec FILE        (permutation spec file)
///   rmrls --benchmark NAME   (named function from the paper's suite)
///   rmrls --list             (list benchmark names)
///
/// Options:
///   --alpha X --beta X --gamma X   priority weights (default 0.3 0.6 0.1)
///   --greedy K                     keep best K substitutions per variable
///   --max-gates N                  circuit size cap
///   --max-nodes N                  search-node budget (default 200000)
///   --time-ms N                    wall-clock limit
///   --first                        stop at the first valid circuit
///   --no-extra                     basic substitutions only (Section IV-A)
///   --templates                    post-process with template pass
///   --tfc                          print the circuit in .tfc format
///   --fredkin                      extract Fredkin gates (mixed output)
///   --bidir                        also try the inverse direction
///   --resynth FILE.tfc             resynthesize an existing cascade
///   --scope c|additional|any       non-reducing substitution scope
///   --cbudget N --restart N --tt/--no-tt --cumul   search knobs

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/spec.hpp"
#include "io/tfc.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/fredkinize.hpp"
#include "templates/simplify.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " (--perm SPEC | --spec FILE | --benchmark NAME | --list)"
               " [options]\n"
               "run with no arguments for the full option list in the file"
               " header comment\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmrls;
  std::string perm_text;
  std::string spec_file;
  std::string benchmark;
  SynthesisOptions options;
  bool run_templates = false;
  bool run_fredkinize = false;
  bool bidirectional = false;
  bool emit_tfc = false;
  std::string tfc_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--perm") {
      perm_text = next();
    } else if (arg == "--spec") {
      spec_file = next();
    } else if (arg == "--benchmark") {
      benchmark = next();
    } else if (arg == "--list") {
      for (const std::string& name : suite::benchmark_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--alpha") {
      options.alpha = std::stod(next());
    } else if (arg == "--beta") {
      options.beta = std::stod(next());
    } else if (arg == "--gamma") {
      options.gamma = std::stod(next());
    } else if (arg == "--greedy") {
      options.greedy_k = std::stoi(next());
    } else if (arg == "--max-gates") {
      options.max_gates = std::stoi(next());
    } else if (arg == "--max-nodes") {
      options.max_nodes = std::stoull(next());
    } else if (arg == "--time-ms") {
      options.time_limit = std::chrono::milliseconds(std::stoll(next()));
    } else if (arg == "--stage-elim") {
      options.cumulative_elim_priority = false;
    } else if (arg == "--cumul") {
      options.cumulative_elim_priority = true;
    } else if (arg == "--tt") {
      options.use_transposition_table = true;
    } else if (arg == "--no-tt") {
      options.use_transposition_table = false;
    } else if (arg == "--cbudget") {
      options.exempt_budget = std::stoi(next());
    } else if (arg == "--scope") {
      const std::string s = next();
      options.exempt_scope =
          s == "any"        ? SynthesisOptions::ExemptScope::kAny
          : s == "additional" ? SynthesisOptions::ExemptScope::kAdditional
                              : SynthesisOptions::ExemptScope::kComplement;
    } else if (arg == "--restart") {
      options.restart_interval = std::stoull(next());
    } else if (arg == "--first") {
      options.stop_at_first_solution = true;
    } else if (arg == "--no-extra") {
      options.allow_relaxed_targets = false;
      options.allow_complement = false;
    } else if (arg == "--templates") {
      run_templates = true;
    } else if (arg == "--fredkin") {
      run_fredkinize = true;
    } else if (arg == "--bidir") {
      bidirectional = true;
    } else if (arg == "--resynth") {
      tfc_file = next();
    } else if (arg == "--tfc") {
      emit_tfc = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  try {
    Pprm spec;
    std::optional<TruthTable> table_spec;
    if (!tfc_file.empty()) {
      // Resynthesis mode: read a cascade and search for a better one
      // realizing the same function.
      std::ifstream in(tfc_file);
      if (!in) {
        std::cerr << "cannot open " << tfc_file << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const Circuit original = read_tfc(buf.str());
      std::cerr << "resynthesizing " << original.gate_count()
                << "-gate cascade on " << original.num_lines() << " lines\n";
      spec = original.to_pprm();
    } else if (!perm_text.empty()) {
      table_spec = parse_permutation_spec(perm_text);
      spec = pprm_of_truth_table(*table_spec);
    } else if (!spec_file.empty()) {
      std::ifstream in(spec_file);
      if (!in) {
        std::cerr << "cannot open " << spec_file << "\n";
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      spec = pprm_of_truth_table(parse_permutation_spec(buf.str()));
    } else if (!benchmark.empty()) {
      spec = suite::get_benchmark(benchmark).pprm;
    } else {
      return usage(argv[0]);
    }

    const SynthesisResult result =
        bidirectional && table_spec
            ? synthesize_bidirectional(*table_spec, options)
            : synthesize(spec, options);
    if (bidirectional && !table_spec) {
      std::cerr << "note: --bidir needs an explicit permutation spec;"
                   " running forward only\n";
    }
    if (!result.success) {
      std::cerr << "synthesis failed within budget ("
                << result.stats.nodes_expanded << " nodes expanded)\n";
      return 1;
    }
    Circuit circuit = result.circuit;
    if (run_templates) {
      circuit = simplify_templates(circuit).circuit;
    }
    if (!implements(circuit, spec)) {
      std::cerr << "internal error: circuit fails verification\n";
      return 1;
    }
    if (run_fredkinize) {
      const FredkinizeResult fr = fredkinize(circuit);
      std::cout << fr.circuit.to_string() << "\n";
      std::cout << "gates: " << fr.circuit.gate_count() << " ("
                << fr.fredkin_gates << " Fredkin)"
                << "  quantum cost: " << quantum_cost(fr.circuit)
                << "  nodes: " << result.stats.nodes_expanded << "\n";
      return 0;
    }
    // Stats go to stderr in .tfc mode so stdout stays a valid .tfc file.
    std::ostream& stats_out = emit_tfc ? std::cerr : std::cout;
    if (emit_tfc) {
      std::cout << write_tfc(circuit);
    } else {
      std::cout << circuit.to_string() << "\n";
    }
    stats_out << "gates: " << circuit.gate_count()
              << "  quantum cost: " << quantum_cost(circuit)
              << "  nodes: " << result.stats.nodes_expanded
              << "  time: " << result.stats.elapsed.count() << " us\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
