/// \file rmrls_main.cpp
/// \brief Command-line front end of the RMRLS synthesizer.
///
/// Run `rmrls --help` for the full option list (the help() function below
/// is the authoritative reference).

#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "bench_suite/registry.hpp"
#include "core/batch.hpp"
#include "core/cancel.hpp"
#include "core/checkpoint.hpp"
#include "core/resilient.hpp"
#include "core/status.hpp"
#include "core/synth_cache.hpp"
#include "core/synthesizer.hpp"
#include "io/spec.hpp"
#include "io/tfc.hpp"
#include "rev/canonical.hpp"
#include "rev/equivalence.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profile.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/fredkinize.hpp"
#include "templates/simplify.hpp"

namespace {

/// Ctrl-C cancels the run cooperatively: the engines drain within one
/// candidate evaluation and the CLI exits with the kCancelled code (5),
/// after writing metrics. CancelToken::cancel is a lock-free atomic CAS,
/// safe to call from a signal handler.
rmrls::CancelToken g_cancel;

void handle_cancel_signal(int) {
  // Async-signal-safe by construction: one lock-free CAS, no allocation,
  // no logging (docs/robustness.md). The main thread notices the token
  // and does the reporting outside signal context.
  g_cancel.cancel(rmrls::CancelReason::kUser);
}

/// SIGINT (Ctrl-C), SIGTERM (service managers / `kill`) and SIGHUP
/// (closed terminal) all request the same graceful wind-down: cancel
/// cooperatively, write metrics, exit 5.
void install_cancel_signals() {
  std::signal(SIGINT, handle_cancel_signal);
  std::signal(SIGTERM, handle_cancel_signal);
#ifdef SIGHUP
  std::signal(SIGHUP, handle_cancel_signal);
#endif
}

void help(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " (--perm SPEC | --spec FILE | --batch FILE | --benchmark NAME"
        " | --resynth FILE | --list) [options]\n"
        "\n"
        "Input (exactly one):\n"
        "  --perm SPEC        inline permutation, e.g. \"{1, 0, 7, 2, 3, 4,"
        " 5, 6}\"\n"
        "  --spec FILE        permutation spec file (same syntax)\n"
        "  --batch FILE       spec-list file: one permutation per line,"
        " '#'\n"
        "                     comments; jobs run concurrently through the\n"
        "                     orbit cache (docs/caching.md)\n"
        "  --benchmark NAME   named function from the paper's suite\n"
        "  --resynth FILE     resynthesize an existing .tfc cascade\n"
        "  --list             list benchmark names and exit\n"
        "\n"
        "Search options:\n"
        "  --alpha X --beta X --gamma X\n"
        "                     eq. (4) priority weights (default 0.3 0.6"
        " 0.1)\n"
        "  --greedy K         keep best K substitutions per variable (0 ="
        " all)\n"
        "  --max-gates N      circuit size cap (0 = unlimited)\n"
        "  --max-nodes N      search-node budget (default 200000)\n"
        "  --time-ms N        wall-clock limit in milliseconds\n"
        "  --first            stop at the first valid circuit\n"
        "  --no-extra         basic substitutions only (Section IV-A)\n"
        "  --scope c|additional|any\n"
        "                     non-reducing substitution scope\n"
        "  --cbudget N        non-reducing substitutions per path (-1 ="
        " auto)\n"
        "  --restart N        restart interval in expansions (0 = off)\n"
        "  --queue N          queued-candidate cap (default 2^20); with\n"
        "                     --tt-mb this bounds the search's resident\n"
        "                     memory on long runs (overflow counts\n"
        "                     dropped_queue_full)\n"
        "  --threads N        parallel search workers (default 1 ="
        " sequential\n"
        "                     engine, bit-reproducible; 0 = one per"
        " hardware\n"
        "                     thread); see docs/parallelism.md\n"
        "  --oversubscribe    allow more workers than hardware threads\n"
        "                     (default: --threads is clamped to the core\n"
        "                     count; oversubscribed lazy SMP only wastes\n"
        "                     time re-deriving peers' states)\n"
        "  --tt-shards N      lock stripes of the shared transposition\n"
        "                     table (parallel engine only, default 16)\n"
        "  --tt-mb N          transposition-table memory budget in MiB\n"
        "                     (default 64); the table is bounded and"
        " evicts\n"
        "                     by --tt-policy instead of growing\n"
        "  --tt-policy P      replacement policy: always | depth | aging\n"
        "                     (default aging); see docs/parallelism.md\n"
        "  --no-history       disable the history heuristic (learned\n"
        "                     (target, factor-class) ordering bonus)\n"
        "  --no-id            disable iterative deepening on the gate"
        " bound\n"
        "                     (single full-depth pass, pre-PR-7 behaviour)\n"
        "  --dense-threshold N\n"
        "                     widest system (in variables) eligible for"
        " the\n"
        "                     word-parallel dense spectrum kernel (default"
        " 14,\n"
        "                     0 = always sparse); see docs/dense_pprm.md\n"
        "  --tt / --no-tt     transposition table on/off\n"
        "  --cumul / --stage-elim\n"
        "                     cumulative vs per-stage elimination priority\n"
        "\n"
        "Caching and batch throughput (docs/caching.md):\n"
        "  --cache-mb N       in-memory orbit-cache budget in MiB (0 ="
        " off;\n"
        "                     default 64 in --batch mode, otherwise 0, or"
        " 64\n"
        "                     when --cache-dir is given)\n"
        "  --cache-dir DIR    on-disk circuit store (one .tfc per"
        " canonical\n"
        "                     key); persists cache entries across runs\n"
        "  --canonical-cap N  widest spec (in variables) canonicalized to"
        " its\n"
        "                     orbit representative (default 12); wider"
        " specs\n"
        "                     are cached by exact identity only\n"
        "  --batch-threads N  concurrent jobs in --batch mode (0 = auto:\n"
        "                     min(jobs, --threads), leftover threads go to\n"
        "                     each search; docs/parallelism.md). --time-ms\n"
        "                     bounds the *whole batch* under one watchdog.\n"
        "\n"
        "Fleet scale-out (docs/fleet.md, --batch mode only):\n"
        "  --shard I/N        run only shard I of N (0-based): each spec\n"
        "                     line is assigned to exactly one shard by a\n"
        "                     stable content hash, so N processes over the\n"
        "                     same file partition it without coordination\n"
        "  --checkpoint FILE  record completed job ids (tmp+rename); on\n"
        "                     restart those jobs are skipped and the run\n"
        "                     resumes where the dead one stopped\n"
        "  --cache-gc-mb N    byte budget of the --cache-dir store in MiB\n"
        "                     (0 = unbounded); oldest .tfc files are\n"
        "                     garbage-collected past it, and stale lease/\n"
        "                     tmp litter from dead processes is swept\n"
        "\n"
        "Resilience (docs/robustness.md):\n"
        "  --resilient        fallback cascade: best-first, then greedy,\n"
        "                     then transformation-based; the winner is\n"
        "                     verified and labelled in the metrics. With\n"
        "                     --time-ms the whole cascade shares the\n"
        "                     wall-clock budget under a watchdog.\n"
        "  --no-watchdog      enforce --time-ms cooperatively only (no\n"
        "                     watchdog thread)\n"
        "\n"
        "Post-processing and output:\n"
        "  --templates        post-process with the template pass\n"
        "  --fredkin          extract Fredkin gates (mixed output)\n"
        "  --bidir            also try the inverse direction\n"
        "  --tfc              print the circuit in .tfc format\n"
        "\n"
        "Observability:\n"
        "  --trace FILE       write typed search events as JSONL\n"
        "  --trace-interval N sample node-expansion/prune events every Nth\n"
        "                     expansion (default 1 = every event)\n"
        "  --metrics-out FILE write one JSON metrics record (counters,\n"
        "                     per-phase timings, termination reason,"
        " circuit\n"
        "                     stats); schema rmrls-metrics-v1, see\n"
        "                     docs/observability.md\n"
        "  --heartbeat-ms N   arm live telemetry and write one heartbeat\n"
        "                     record every N ms (schema rmrls-metrics-v2:\n"
        "                     counters, gauges, histograms, uptime) into\n"
        "                     --metrics-out (stderr without it). In --batch\n"
        "                     mode each job also gets a trace_id correlated\n"
        "                     across job records, trace events and the\n"
        "                     heartbeats' active set\n"
        "  --progress         human-readable search progress on stderr\n"
        "\n"
        "  --help, -h         this text\n"
        "\n"
        "Exit codes: 0 success; 2 usage / invalid argument; 3 unreadable\n"
        "or malformed input; 4 budget exhausted without a circuit;\n"
        "5 cancelled (SIGINT/SIGTERM/SIGHUP); 6 internal error\n"
        "(verification failure); 7 server unavailable (rmrls-serve load\n"
        "shed — retryable, see docs/serving.md).\n";
}

int usage(const char* argv0) {
  help(argv0, std::cerr);
  return 2;
}

// Numeric option values parse with a diagnostic and exit(2) instead of an
// uncaught std::invalid_argument abort (same contract as the bench
// harnesses' --help/--samples parsing in bench/bench_common.hpp).
[[noreturn]] void bad_number(const std::string& arg, const std::string& v) {
  std::cerr << "invalid number for " << arg << ": '" << v << "'\n";
  std::exit(2);
}

long long num_ll(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const long long n = std::stoll(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

unsigned long long num_ull(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

double num_d(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const double n = std::stod(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmrls;
  std::string perm_text;
  std::string spec_file;
  std::string benchmark;
  std::string batch_file;
  std::string cache_dir;
  long long cache_mb = -1;  // sentinel: 64 in batch / with --cache-dir, else 0
  long long cache_gc_mb = 0;  // disk-store budget, 0 = unbounded
  int canonical_cap = -1;
  int batch_threads = 0;
  int shard_index = 0;
  int shard_count = 1;
  std::string checkpoint_file;
  SynthesisOptions options;
  bool run_templates = false;
  bool run_fredkinize = false;
  bool bidirectional = false;
  bool resilient_mode = false;
  bool use_watchdog = true;
  bool emit_tfc = false;
  std::string tfc_file;
  std::string trace_file;
  std::string metrics_file;
  long long heartbeat_ms = 0;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--perm") {
      perm_text = next();
    } else if (arg == "--spec") {
      spec_file = next();
    } else if (arg == "--benchmark") {
      benchmark = next();
    } else if (arg == "--batch") {
      batch_file = next();
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--cache-mb") {
      cache_mb = num_ll(arg, next());
      if (cache_mb < 0) bad_number(arg, std::to_string(cache_mb));
    } else if (arg == "--canonical-cap") {
      canonical_cap = static_cast<int>(num_ll(arg, next()));
      if (canonical_cap < 0) bad_number(arg, std::to_string(canonical_cap));
    } else if (arg == "--batch-threads") {
      batch_threads = static_cast<int>(num_ll(arg, next()));
      if (batch_threads < 0) bad_number(arg, std::to_string(batch_threads));
    } else if (arg == "--shard") {
      const std::string v = next();
      const std::size_t slash = v.find('/');
      if (slash == std::string::npos) bad_number(arg, v);
      shard_index =
          static_cast<int>(num_ll(arg, v.substr(0, slash)));
      shard_count = static_cast<int>(num_ll(arg, v.substr(slash + 1)));
      if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
        std::cerr << "--shard wants I/N with 0 <= I < N, got '" << v
                  << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--checkpoint") {
      checkpoint_file = next();
    } else if (arg == "--cache-gc-mb") {
      cache_gc_mb = num_ll(arg, next());
      if (cache_gc_mb < 0) bad_number(arg, std::to_string(cache_gc_mb));
    } else if (arg == "--list") {
      for (const std::string& name : suite::benchmark_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--alpha") {
      options.alpha = num_d(arg, next());
    } else if (arg == "--beta") {
      options.beta = num_d(arg, next());
    } else if (arg == "--gamma") {
      options.gamma = num_d(arg, next());
    } else if (arg == "--greedy") {
      options.greedy_k = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--max-gates") {
      options.max_gates = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--max-nodes") {
      options.max_nodes = num_ull(arg, next());
    } else if (arg == "--time-ms") {
      options.time_limit = std::chrono::milliseconds(num_ll(arg, next()));
    } else if (arg == "--stage-elim") {
      options.cumulative_elim_priority = false;
    } else if (arg == "--cumul") {
      options.cumulative_elim_priority = true;
    } else if (arg == "--tt") {
      options.use_transposition_table = true;
    } else if (arg == "--no-tt") {
      options.use_transposition_table = false;
    } else if (arg == "--cbudget") {
      options.exempt_budget = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--scope") {
      const std::string s = next();
      options.exempt_scope =
          s == "any"        ? SynthesisOptions::ExemptScope::kAny
          : s == "additional" ? SynthesisOptions::ExemptScope::kAdditional
                              : SynthesisOptions::ExemptScope::kComplement;
    } else if (arg == "--restart") {
      options.restart_interval = num_ull(arg, next());
    } else if (arg == "--threads") {
      options.num_threads = static_cast<int>(num_ll(arg, next()));
      if (options.num_threads < 0) bad_number(arg, std::to_string(options.num_threads));
    } else if (arg == "--queue") {
      const long long v = num_ll(arg, next());
      if (v < 1) bad_number(arg, std::to_string(v));
      options.max_queue = static_cast<std::size_t>(v);
    } else if (arg == "--oversubscribe") {
      options.allow_oversubscription = true;
    } else if (arg == "--tt-shards") {
      options.tt_shards = static_cast<int>(num_ll(arg, next()));
      if (options.tt_shards < 1) bad_number(arg, std::to_string(options.tt_shards));
    } else if (arg == "--tt-mb") {
      options.tt_mb = static_cast<int>(num_ll(arg, next()));
      if (options.tt_mb < 1) bad_number(arg, std::to_string(options.tt_mb));
    } else if (arg == "--tt-policy") {
      const std::string s = next();
      if (s == "always") {
        options.tt_replacement = TTReplacement::kAlways;
      } else if (s == "depth") {
        options.tt_replacement = TTReplacement::kDepthPreferred;
      } else if (s == "aging") {
        options.tt_replacement = TTReplacement::kAging;
      } else {
        std::cerr << "--tt-policy wants always|depth|aging, got '" << s
                  << "'\n";
        return usage(argv[0]);
      }
    } else if (arg == "--no-history") {
      options.use_history = false;
    } else if (arg == "--no-id") {
      options.iterative_deepening = false;
    } else if (arg == "--dense-threshold") {
      options.dense_threshold = static_cast<int>(num_ll(arg, next()));
      if (options.dense_threshold < 0) {
        bad_number(arg, std::to_string(options.dense_threshold));
      }
    } else if (arg == "--first") {
      options.stop_at_first_solution = true;
    } else if (arg == "--no-extra") {
      options.allow_relaxed_targets = false;
      options.allow_complement = false;
    } else if (arg == "--templates") {
      run_templates = true;
    } else if (arg == "--fredkin") {
      run_fredkinize = true;
    } else if (arg == "--bidir") {
      bidirectional = true;
    } else if (arg == "--resilient") {
      resilient_mode = true;
    } else if (arg == "--no-watchdog") {
      use_watchdog = false;
    } else if (arg == "--resynth") {
      tfc_file = next();
    } else if (arg == "--tfc") {
      emit_tfc = true;
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--trace-interval") {
      options.trace_sample_interval = num_ull(arg, next());
    } else if (arg == "--metrics-out") {
      metrics_file = next();
    } else if (arg == "--heartbeat-ms") {
      heartbeat_ms = num_ll(arg, next());
      if (heartbeat_ms < 1) bad_number(arg, std::to_string(heartbeat_ms));
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--help" || arg == "-h") {
      help(argv[0], std::cout);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  try {
    // Observability: assemble the requested sinks (both --trace and
    // --progress may be active at once) and the phase profile.
    std::ofstream trace_out;
    std::unique_ptr<JsonlTraceSink> jsonl_sink;
    std::unique_ptr<ProgressTraceSink> progress_sink;
    MultiTraceSink multi_sink;
    if (!trace_file.empty()) {
      trace_out.open(trace_file);
      if (!trace_out) {
        std::cerr << "cannot open " << trace_file << " for writing\n";
        return 1;
      }
      jsonl_sink = std::make_unique<JsonlTraceSink>(trace_out);
      multi_sink.add(jsonl_sink.get());
    }
    if (progress) {
      progress_sink = std::make_unique<ProgressTraceSink>(std::cerr);
      multi_sink.add(progress_sink.get());
    }
    if (jsonl_sink || progress_sink) options.trace_sink = &multi_sink;
    PhaseProfile profile;
    if (!metrics_file.empty()) options.phase_profile = &profile;

    // The metrics stream opens before the run (not after, as the v1-only
    // code did) so heartbeat records can interleave with it; the per-run /
    // per-job v1 records are still written after the snapshotter stopped,
    // so the two writers never race on the stream.
    std::ofstream metrics_out;
    if (!metrics_file.empty()) {
      metrics_out.open(metrics_file);
      if (!metrics_out) {
        std::cerr << "cannot open " << metrics_file << " for writing\n";
        return 1;
      }
    }
    // Live telemetry (docs/observability.md): arming must precede the
    // construction of everything that caches instrument handles (caches,
    // engines, the batch driver).
    std::unique_ptr<Snapshotter> snapshotter;
    if (heartbeat_ms > 0) {
      Telemetry& telemetry = Telemetry::enable();
      telemetry.reset();
      snapshotter = std::make_unique<Snapshotter>(
          telemetry, std::chrono::milliseconds(heartbeat_ms),
          metrics_file.empty() ? static_cast<std::ostream&>(std::cerr)
                               : static_cast<std::ostream&>(metrics_out));
    }

    // Input handling is fail-soft (docs/robustness.md): the checked
    // parsers return a Status whose diagnostic carries file:line, and the
    // Status category picks the exit code.
    const auto input_error = [](const Status& status) {
      std::cerr << "error: " << status.to_string() << "\n";
      return exit_code_for(status.code());
    };

    if (!batch_file.empty()) {
      if (!perm_text.empty() || !spec_file.empty() || !benchmark.empty() ||
          !tfc_file.empty()) {
        std::cerr << "error: --batch cannot be combined with another input\n";
        return usage(argv[0]);
      }
      std::ifstream in(batch_file);
      if (!in) {
        std::cerr << "error: cannot open " << batch_file << "\n";
        return exit_code_for(StatusCode::kParseError);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      Result<std::vector<NamedSpec>> parsed =
          parse_permutation_batch_checked(buf.str(), batch_file);
      if (!parsed.ok()) return input_error(parsed.status());

      std::vector<BatchJob> jobs;
      for (NamedSpec& s : parsed.value()) {
        jobs.push_back(BatchJob{std::move(s.name), std::move(s.table)});
      }
      // Ids are assigned over the FULL corpus before shard filtering so a
      // job keeps the same id whatever N is (docs/fleet.md) — a checkpoint
      // written at --shard 0/4 still resumes correctly at 0/8.
      assign_job_ids(jobs);
      jobs = filter_shard(std::move(jobs), shard_index, shard_count);

      std::optional<BatchCheckpoint> checkpoint;
      if (!checkpoint_file.empty()) {
        Result<BatchCheckpoint> opened = BatchCheckpoint::open(checkpoint_file);
        if (!opened.ok()) return input_error(opened.status());
        checkpoint.emplace(std::move(opened).value());
        // Write (or rewrite) the file before any job runs, so a run killed
        // mid-corpus always leaves a loadable ledger behind.
        checkpoint->flush();
      }

      install_cancel_signals();
      BatchOptions bopts;
      bopts.resilience.search = options;
      bopts.resilience.search.time_limit = std::chrono::milliseconds{0};
      bopts.total_threads = options.num_threads;
      bopts.batch_threads = batch_threads;
      bopts.deadline = options.time_limit;  // bounds the whole batch
      bopts.use_watchdog = use_watchdog;
      bopts.cancel_token = &g_cancel;
      if (canonical_cap >= 0) bopts.canonical.max_vars = canonical_cap;
      if (checkpoint.has_value()) bopts.checkpoint = &*checkpoint;
      const long long mb = cache_mb < 0 ? 64 : cache_mb;
      std::unique_ptr<SynthCache> cache;
      if (mb > 0) {
        SynthCacheOptions copts;
        copts.byte_budget = static_cast<std::size_t>(mb) << 20;
        copts.dir = cache_dir;
        copts.disk_byte_budget = static_cast<std::size_t>(cache_gc_mb) << 20;
        cache = std::make_unique<SynthCache>(std::move(copts));
        bopts.cache = cache.get();
      }

      const BatchResult br = run_batch(jobs, bopts);
      // Final gauge/counter state is in place now; the flush heartbeat
      // must land before the v1 records start using the stream.
      if (snapshotter != nullptr) snapshotter->stop();

      for (const BatchJobOutcome& out : br.outcomes) {
        // Checkpoint-resumed jobs were already emitted by the run that
        // completed them; re-printing would duplicate output in the union.
        if (out.skipped) continue;
        if (!out.status.ok()) {
          std::cerr << out.name << ": " << out.status.to_string() << "\n";
          continue;
        }
        if (emit_tfc) {
          std::cout << "# " << out.name << "\n"
                    << write_tfc(out.result.circuit);
        } else {
          std::cout << out.name << ": " << out.result.circuit.to_string()
                    << "\n";
        }
      }
      std::cerr << "batch: " << br.stats.jobs << " jobs, "
                << br.stats.completed << " ok, " << br.stats.failed
                << " failed, " << br.stats.skipped << " resumed, "
                << br.stats.cache_hits << " cache hits ("
                << br.stats.cache_orbit_hits << " via orbit), "
                << br.stats.cache_misses << " misses, "
                << br.stats.batch_dedup << " deduped, "
                << br.elapsed.count() << " us\n";

      if (!metrics_file.empty()) {
        MetricsWriter writer(metrics_out);
        std::int64_t total_gates = 0;
        std::int64_t total_cost = 0;
        for (const BatchJobOutcome& job : br.outcomes) {
          if (job.skipped) continue;  // emitted by the run that completed it
          MetricsRegistry record;
          record.set("name", job.name)
              .set("vars", job.result.circuit.num_lines())
              .set("success", job.status.ok());
          if (job.trace_id != 0) {
            // Span correlation (docs/observability.md): the same 16-hex id
            // this job's trace events and the heartbeats' active set carry.
            record.set("trace_id", trace_id_hex(job.trace_id));
          }
          record.add_stats(job.result.stats, job.result.termination);
          record.set("fallback_engine",
                     std::string_view(to_string(job.engine)));
          record.set("verified", job.verified);
          record.set("cache_hit", job.cache_hit)
              .set("cache_orbit_hit", job.orbit_hit)
              .set("batch_deduped", job.deduped);
          if (job.status.ok()) {
            record.add_circuit(job.result.circuit);
            total_gates += job.result.circuit.gate_count();
            total_cost +=
                static_cast<std::int64_t>(quantum_cost(job.result.circuit));
          } else {
            record.set("gates", -1).set("quantum_cost", -1);
          }
          writer.write(record);
        }
        // One summary record carrying the batch-level counters; gates is
        // the total across jobs so the success/gates invariant holds.
        MetricsRegistry summary;
        const bool ok = br.status.ok();
        const TerminationReason summary_termination =
            ok ? TerminationReason::kSolved
            : br.status.code() == StatusCode::kCancelled
                ? TerminationReason::kCancelled
                : br.search_stats.watchdog_fired
                      ? TerminationReason::kTimeLimit
                      : TerminationReason::kQueueExhausted;
        summary.set("name", batch_file).set("success", ok);
        summary.add_stats(br.search_stats, summary_termination);
        summary.set("batch_jobs", br.stats.jobs)
            .set("batch_completed", br.stats.completed)
            .set("batch_failed", br.stats.failed)
            .set("cache_hits", br.stats.cache_hits)
            .set("cache_misses", br.stats.cache_misses)
            .set("cache_orbit_hits", br.stats.cache_orbit_hits)
            .set("batch_dedup", br.stats.batch_dedup)
            .set("batch_skipped", br.stats.skipped);
        if (shard_count > 1) {
          // Lets tools/metrics_report label the per-shard breakdown rows
          // without inferring shards from filenames.
          summary.set("shard", std::to_string(shard_index) + "/" +
                                   std::to_string(shard_count));
        }
        if (ok) {
          summary.set("gates", total_gates).set("quantum_cost", total_cost);
        } else {
          summary.set("gates", -1).set("quantum_cost", -1);
        }
        writer.write(summary);
      }
      return exit_code_for(br.status.code());
    }

    Pprm spec;
    std::string input_name;
    std::optional<TruthTable> table_spec;
    if (!tfc_file.empty()) {
      // Resynthesis mode: read a cascade and search for a better one
      // realizing the same function.
      std::ifstream in(tfc_file);
      if (!in) {
        std::cerr << "error: cannot open " << tfc_file << "\n";
        return exit_code_for(StatusCode::kParseError);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      Result<Circuit> parsed = read_tfc_checked(buf.str(), tfc_file);
      if (!parsed.ok()) return input_error(parsed.status());
      const Circuit original = std::move(parsed).value();
      std::cerr << "resynthesizing " << original.gate_count()
                << "-gate cascade on " << original.num_lines() << " lines\n";
      spec = original.to_pprm();
      input_name = tfc_file;
    } else if (!perm_text.empty()) {
      Result<TruthTable> parsed =
          parse_permutation_spec_checked(perm_text, "<perm>");
      if (!parsed.ok()) return input_error(parsed.status());
      table_spec = std::move(parsed).value();
      spec = pprm_of_truth_table(*table_spec);
      input_name = "perm";
    } else if (!spec_file.empty()) {
      std::ifstream in(spec_file);
      if (!in) {
        std::cerr << "error: cannot open " << spec_file << "\n";
        return exit_code_for(StatusCode::kParseError);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      Result<TruthTable> parsed =
          parse_permutation_spec_checked(buf.str(), spec_file);
      if (!parsed.ok()) return input_error(parsed.status());
      table_spec = std::move(parsed).value();
      spec = pprm_of_truth_table(*table_spec);
      input_name = spec_file;
    } else if (!benchmark.empty()) {
      try {
        spec = suite::get_benchmark(benchmark).pprm;
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return exit_code_for(StatusCode::kInvalidArgument);
      }
      input_name = benchmark;
    } else {
      return usage(argv[0]);
    }

    // Ctrl-C / SIGTERM / SIGHUP cancel cooperatively from here on (user
    // reason -> exit 5).
    install_cancel_signals();
    options.cancel_token = &g_cancel;

    // Single-shot orbit cache (docs/caching.md): off unless sized
    // explicitly or given a disk store; only permutation-table inputs
    // canonicalize. A verified hit skips synthesis entirely; a miss
    // synthesizes as before and inserts the *representative's* circuit
    // (forward transform), so the emitted circuit is byte-identical to a
    // cache-less run.
    const long long single_mb =
        cache_mb >= 0 ? cache_mb : (cache_dir.empty() ? 0 : 64);
    std::unique_ptr<SynthCache> cache;
    CanonicalForm canonical_form;
    bool cache_enabled = false;
    bool cache_hit = false;
    if (single_mb > 0 && table_spec.has_value()) {
      SynthCacheOptions copts;
      copts.byte_budget = static_cast<std::size_t>(single_mb) << 20;
      copts.dir = cache_dir;
      cache = std::make_unique<SynthCache>(std::move(copts));
      CanonicalOptions canon;
      if (canonical_cap >= 0) canon.max_vars = canonical_cap;
      canonical_form = canonicalize(*table_spec, canon);
      cache_enabled = true;
    }

    SynthesisResult result;
    FallbackEngine engine = FallbackEngine::kNone;
    bool verified = false;
    Status run_status;
    if (cache_enabled) {
      if (std::optional<Circuit> cached = cache->lookup(canonical_form.key)) {
        Circuit rebuilt =
            reconstruct_circuit(*cached, canonical_form.transform);
        // Mandatory re-verification: a hash collision or corrupt disk
        // entry fails here and degrades to a plain miss.
        if (equivalent(rebuilt, spec)) {
          result.success = true;
          result.circuit = std::move(rebuilt);
          result.initial_terms = spec.term_count();
          result.termination = TerminationReason::kSolved;
          verified = true;
          cache_hit = true;
        }
      }
    }
    if (!cache_hit && resilient_mode) {
      ResilienceOptions ropts;
      ropts.search = options;
      ropts.search.time_limit = std::chrono::milliseconds{0};
      ropts.deadline = options.time_limit;  // the cascade owns the clock
      ropts.use_watchdog = use_watchdog;
      ropts.cancel_token = &g_cancel;
      if (bidirectional) {
        std::cerr << "note: --resilient runs the forward cascade;"
                     " --bidir is ignored\n";
      }
      ResilientResult rr = table_spec
                               ? synthesize_resilient(*table_spec, ropts)
                               : synthesize_resilient(spec, ropts);
      result = std::move(rr.result);
      engine = rr.engine;
      verified = rr.verified;
      run_status = rr.status;
    } else if (!cache_hit) {
      // The watchdog backstops --time-ms even if a pass wedges between
      // cooperative deadline polls.
      std::unique_ptr<Watchdog> watchdog;
      if (use_watchdog && options.time_limit.count() > 0) {
        watchdog = std::make_unique<Watchdog>(g_cancel, options.time_limit);
      }
      result = bidirectional && table_spec
                   ? synthesize_bidirectional(*table_spec, options)
                   : synthesize(spec, options);
      if (bidirectional && !table_spec) {
        std::cerr << "note: --bidir needs an explicit permutation spec;"
                     " running forward only\n";
      }
      if (watchdog != nullptr) {
        watchdog->disarm();
        result.stats.watchdog_fired = watchdog->fired();
      }
    }
    if (cache_enabled && !cache_hit && result.success) {
      cache->insert(
          canonical_form.key,
          canonical_circuit_of(result.circuit, canonical_form.transform));
    }
    // Flush the final heartbeat before the v1 record shares the stream.
    if (snapshotter != nullptr) snapshotter->stop();
    // One JSONL record per run: counters + termination + phase timings +
    // circuit stats (gates/cost -1 when the synthesis failed).
    const auto write_metrics = [&](const Circuit* circuit) {
      if (metrics_file.empty()) return true;
      MetricsRegistry record;
      record.set("name", input_name).set("vars", spec.num_vars());
      record.set("success", result.success);
      record.add_stats(result.stats, result.termination);
      if (resilient_mode) {
        // Degradation visibility: which engine of the cascade won (or
        // "none") and whether the winner passed exact verification.
        record.set("fallback_engine", std::string_view(to_string(engine)));
        record.set("verified", verified);
      }
      if (cache_enabled) {
        record.set("cache_hits", std::uint64_t{cache_hit ? 1u : 0u});
        record.set("cache_misses", std::uint64_t{cache_hit ? 0u : 1u});
      }
      record.add_profile(profile);
      if (circuit != nullptr) {
        record.add_circuit(*circuit);
      } else {
        record.set("gates", -1).set("quantum_cost", -1);
      }
      MetricsWriter(metrics_out).write(record);
      return true;
    };

    if (!result.success) {
      std::cerr << "synthesis failed within budget ("
                << result.stats.nodes_expanded << " nodes expanded,"
                   " termination: "
                << to_string(result.termination) << ")\n";
      if (result.partial_terms >= 0) {
        std::cerr << "best partial cascade: " << result.partial.gate_count()
                  << " gates, " << result.partial_terms
                  << " terms remaining\n";
      }
      write_metrics(nullptr);
      if (resilient_mode) return exit_code_for(run_status.code());
      return exit_code_for(result.termination == TerminationReason::kCancelled
                               ? StatusCode::kCancelled
                               : StatusCode::kBudgetExhausted);
    }
    Circuit circuit = result.circuit;
    if (run_templates) {
      circuit = simplify_templates(circuit, options.phase_profile).circuit;
    }
    if (!implements(circuit, spec)) {
      std::cerr << "internal error: circuit fails verification\n";
      return exit_code_for(StatusCode::kInternal);
    }
    if (!write_metrics(&circuit)) return 1;
    if (run_fredkinize) {
      const FredkinizeResult fr = fredkinize(circuit);
      std::cout << fr.circuit.to_string() << "\n";
      std::cout << "gates: " << fr.circuit.gate_count() << " ("
                << fr.fredkin_gates << " Fredkin)"
                << "  quantum cost: " << quantum_cost(fr.circuit)
                << "  nodes: " << result.stats.nodes_expanded
                << "  termination: " << to_string(result.termination)
                << "\n";
      return 0;
    }
    // Stats go to stderr in .tfc mode so stdout stays a valid .tfc file.
    std::ostream& stats_out = emit_tfc ? std::cerr : std::cout;
    if (emit_tfc) {
      std::cout << write_tfc(circuit);
    } else {
      std::cout << circuit.to_string() << "\n";
    }
    stats_out << "gates: " << circuit.gate_count()
              << "  quantum cost: " << quantum_cost(circuit)
              << "  nodes: " << result.stats.nodes_expanded
              << "  time: " << result.stats.elapsed.count() << " us"
              << "  termination: " << to_string(result.termination) << "\n";
    if (!metrics_file.empty()) {
      stats_out << "\nphase profile:\n" << profile.to_string();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code_for(StatusCode::kInternal);
  }
}
