/// \file rmrls_main.cpp
/// \brief Command-line front end of the RMRLS synthesizer.
///
/// Run `rmrls --help` for the full option list (the help() function below
/// is the authoritative reference).

#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "bench_suite/registry.hpp"
#include "core/cancel.hpp"
#include "core/resilient.hpp"
#include "core/status.hpp"
#include "core/synthesizer.hpp"
#include "io/spec.hpp"
#include "io/tfc.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_profile.hpp"
#include "obs/trace.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/fredkinize.hpp"
#include "templates/simplify.hpp"

namespace {

/// Ctrl-C cancels the run cooperatively: the engines drain within one
/// candidate evaluation and the CLI exits with the kCancelled code (5),
/// after writing metrics. CancelToken::cancel is a lock-free atomic CAS,
/// safe to call from a signal handler.
rmrls::CancelToken g_cancel;

void handle_sigint(int) { g_cancel.cancel(rmrls::CancelReason::kUser); }

void help(const char* argv0, std::ostream& os) {
  os << "usage: " << argv0
     << " (--perm SPEC | --spec FILE | --benchmark NAME | --resynth FILE"
        " | --list) [options]\n"
        "\n"
        "Input (exactly one):\n"
        "  --perm SPEC        inline permutation, e.g. \"{1, 0, 7, 2, 3, 4,"
        " 5, 6}\"\n"
        "  --spec FILE        permutation spec file (same syntax)\n"
        "  --benchmark NAME   named function from the paper's suite\n"
        "  --resynth FILE     resynthesize an existing .tfc cascade\n"
        "  --list             list benchmark names and exit\n"
        "\n"
        "Search options:\n"
        "  --alpha X --beta X --gamma X\n"
        "                     eq. (4) priority weights (default 0.3 0.6"
        " 0.1)\n"
        "  --greedy K         keep best K substitutions per variable (0 ="
        " all)\n"
        "  --max-gates N      circuit size cap (0 = unlimited)\n"
        "  --max-nodes N      search-node budget (default 200000)\n"
        "  --time-ms N        wall-clock limit in milliseconds\n"
        "  --first            stop at the first valid circuit\n"
        "  --no-extra         basic substitutions only (Section IV-A)\n"
        "  --scope c|additional|any\n"
        "                     non-reducing substitution scope\n"
        "  --cbudget N        non-reducing substitutions per path (-1 ="
        " auto)\n"
        "  --restart N        restart interval in expansions (0 = off)\n"
        "  --threads N        parallel search workers (default 1 ="
        " sequential\n"
        "                     engine, bit-reproducible; 0 = one per"
        " hardware\n"
        "                     thread); see docs/parallelism.md\n"
        "  --tt-shards N      shards of the shared transposition table\n"
        "                     (parallel engine only, default 16)\n"
        "  --dense-threshold N\n"
        "                     widest system (in variables) eligible for"
        " the\n"
        "                     word-parallel dense spectrum kernel (default"
        " 14,\n"
        "                     0 = always sparse); see docs/dense_pprm.md\n"
        "  --tt / --no-tt     transposition table on/off\n"
        "  --cumul / --stage-elim\n"
        "                     cumulative vs per-stage elimination priority\n"
        "\n"
        "Resilience (docs/robustness.md):\n"
        "  --resilient        fallback cascade: best-first, then greedy,\n"
        "                     then transformation-based; the winner is\n"
        "                     verified and labelled in the metrics. With\n"
        "                     --time-ms the whole cascade shares the\n"
        "                     wall-clock budget under a watchdog.\n"
        "  --no-watchdog      enforce --time-ms cooperatively only (no\n"
        "                     watchdog thread)\n"
        "\n"
        "Post-processing and output:\n"
        "  --templates        post-process with the template pass\n"
        "  --fredkin          extract Fredkin gates (mixed output)\n"
        "  --bidir            also try the inverse direction\n"
        "  --tfc              print the circuit in .tfc format\n"
        "\n"
        "Observability:\n"
        "  --trace FILE       write typed search events as JSONL\n"
        "  --trace-interval N sample node-expansion/prune events every Nth\n"
        "                     expansion (default 1 = every event)\n"
        "  --metrics-out FILE write one JSON metrics record (counters,\n"
        "                     per-phase timings, termination reason,"
        " circuit\n"
        "                     stats); schema rmrls-metrics-v1, see\n"
        "                     docs/observability.md\n"
        "  --progress         human-readable search progress on stderr\n"
        "\n"
        "  --help, -h         this text\n"
        "\n"
        "Exit codes: 0 success; 2 usage / invalid argument; 3 unreadable\n"
        "or malformed input; 4 budget exhausted without a circuit;\n"
        "5 cancelled (SIGINT); 6 internal error (verification failure).\n";
}

int usage(const char* argv0) {
  help(argv0, std::cerr);
  return 2;
}

// Numeric option values parse with a diagnostic and exit(2) instead of an
// uncaught std::invalid_argument abort (same contract as the bench
// harnesses' --help/--samples parsing in bench/bench_common.hpp).
[[noreturn]] void bad_number(const std::string& arg, const std::string& v) {
  std::cerr << "invalid number for " << arg << ": '" << v << "'\n";
  std::exit(2);
}

long long num_ll(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const long long n = std::stoll(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

unsigned long long num_ull(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const unsigned long long n = std::stoull(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

double num_d(const std::string& arg, const std::string& v) {
  try {
    std::size_t used = 0;
    const double n = std::stod(v, &used);
    if (used != v.size()) bad_number(arg, v);
    return n;
  } catch (const std::exception&) {
    bad_number(arg, v);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rmrls;
  std::string perm_text;
  std::string spec_file;
  std::string benchmark;
  SynthesisOptions options;
  bool run_templates = false;
  bool run_fredkinize = false;
  bool bidirectional = false;
  bool resilient_mode = false;
  bool use_watchdog = true;
  bool emit_tfc = false;
  std::string tfc_file;
  std::string trace_file;
  std::string metrics_file;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--perm") {
      perm_text = next();
    } else if (arg == "--spec") {
      spec_file = next();
    } else if (arg == "--benchmark") {
      benchmark = next();
    } else if (arg == "--list") {
      for (const std::string& name : suite::benchmark_names()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg == "--alpha") {
      options.alpha = num_d(arg, next());
    } else if (arg == "--beta") {
      options.beta = num_d(arg, next());
    } else if (arg == "--gamma") {
      options.gamma = num_d(arg, next());
    } else if (arg == "--greedy") {
      options.greedy_k = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--max-gates") {
      options.max_gates = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--max-nodes") {
      options.max_nodes = num_ull(arg, next());
    } else if (arg == "--time-ms") {
      options.time_limit = std::chrono::milliseconds(num_ll(arg, next()));
    } else if (arg == "--stage-elim") {
      options.cumulative_elim_priority = false;
    } else if (arg == "--cumul") {
      options.cumulative_elim_priority = true;
    } else if (arg == "--tt") {
      options.use_transposition_table = true;
    } else if (arg == "--no-tt") {
      options.use_transposition_table = false;
    } else if (arg == "--cbudget") {
      options.exempt_budget = static_cast<int>(num_ll(arg, next()));
    } else if (arg == "--scope") {
      const std::string s = next();
      options.exempt_scope =
          s == "any"        ? SynthesisOptions::ExemptScope::kAny
          : s == "additional" ? SynthesisOptions::ExemptScope::kAdditional
                              : SynthesisOptions::ExemptScope::kComplement;
    } else if (arg == "--restart") {
      options.restart_interval = num_ull(arg, next());
    } else if (arg == "--threads") {
      options.num_threads = static_cast<int>(num_ll(arg, next()));
      if (options.num_threads < 0) bad_number(arg, std::to_string(options.num_threads));
    } else if (arg == "--tt-shards") {
      options.tt_shards = static_cast<int>(num_ll(arg, next()));
      if (options.tt_shards < 1) bad_number(arg, std::to_string(options.tt_shards));
    } else if (arg == "--dense-threshold") {
      options.dense_threshold = static_cast<int>(num_ll(arg, next()));
      if (options.dense_threshold < 0) {
        bad_number(arg, std::to_string(options.dense_threshold));
      }
    } else if (arg == "--first") {
      options.stop_at_first_solution = true;
    } else if (arg == "--no-extra") {
      options.allow_relaxed_targets = false;
      options.allow_complement = false;
    } else if (arg == "--templates") {
      run_templates = true;
    } else if (arg == "--fredkin") {
      run_fredkinize = true;
    } else if (arg == "--bidir") {
      bidirectional = true;
    } else if (arg == "--resilient") {
      resilient_mode = true;
    } else if (arg == "--no-watchdog") {
      use_watchdog = false;
    } else if (arg == "--resynth") {
      tfc_file = next();
    } else if (arg == "--tfc") {
      emit_tfc = true;
    } else if (arg == "--trace") {
      trace_file = next();
    } else if (arg == "--trace-interval") {
      options.trace_sample_interval = num_ull(arg, next());
    } else if (arg == "--metrics-out") {
      metrics_file = next();
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--help" || arg == "-h") {
      help(argv[0], std::cout);
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    }
  }

  try {
    // Observability: assemble the requested sinks (both --trace and
    // --progress may be active at once) and the phase profile.
    std::ofstream trace_out;
    std::unique_ptr<JsonlTraceSink> jsonl_sink;
    std::unique_ptr<ProgressTraceSink> progress_sink;
    MultiTraceSink multi_sink;
    if (!trace_file.empty()) {
      trace_out.open(trace_file);
      if (!trace_out) {
        std::cerr << "cannot open " << trace_file << " for writing\n";
        return 1;
      }
      jsonl_sink = std::make_unique<JsonlTraceSink>(trace_out);
      multi_sink.add(jsonl_sink.get());
    }
    if (progress) {
      progress_sink = std::make_unique<ProgressTraceSink>(std::cerr);
      multi_sink.add(progress_sink.get());
    }
    if (jsonl_sink || progress_sink) options.trace_sink = &multi_sink;
    PhaseProfile profile;
    if (!metrics_file.empty()) options.phase_profile = &profile;

    // Input handling is fail-soft (docs/robustness.md): the checked
    // parsers return a Status whose diagnostic carries file:line, and the
    // Status category picks the exit code.
    const auto input_error = [](const Status& status) {
      std::cerr << "error: " << status.to_string() << "\n";
      return exit_code_for(status.code());
    };
    Pprm spec;
    std::string input_name;
    std::optional<TruthTable> table_spec;
    if (!tfc_file.empty()) {
      // Resynthesis mode: read a cascade and search for a better one
      // realizing the same function.
      std::ifstream in(tfc_file);
      if (!in) {
        std::cerr << "error: cannot open " << tfc_file << "\n";
        return exit_code_for(StatusCode::kParseError);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      Result<Circuit> parsed = read_tfc_checked(buf.str(), tfc_file);
      if (!parsed.ok()) return input_error(parsed.status());
      const Circuit original = std::move(parsed).value();
      std::cerr << "resynthesizing " << original.gate_count()
                << "-gate cascade on " << original.num_lines() << " lines\n";
      spec = original.to_pprm();
      input_name = tfc_file;
    } else if (!perm_text.empty()) {
      Result<TruthTable> parsed =
          parse_permutation_spec_checked(perm_text, "<perm>");
      if (!parsed.ok()) return input_error(parsed.status());
      table_spec = std::move(parsed).value();
      spec = pprm_of_truth_table(*table_spec);
      input_name = "perm";
    } else if (!spec_file.empty()) {
      std::ifstream in(spec_file);
      if (!in) {
        std::cerr << "error: cannot open " << spec_file << "\n";
        return exit_code_for(StatusCode::kParseError);
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      Result<TruthTable> parsed =
          parse_permutation_spec_checked(buf.str(), spec_file);
      if (!parsed.ok()) return input_error(parsed.status());
      table_spec = std::move(parsed).value();
      spec = pprm_of_truth_table(*table_spec);
      input_name = spec_file;
    } else if (!benchmark.empty()) {
      try {
        spec = suite::get_benchmark(benchmark).pprm;
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return exit_code_for(StatusCode::kInvalidArgument);
      }
      input_name = benchmark;
    } else {
      return usage(argv[0]);
    }

    // Ctrl-C cancels cooperatively from here on (user reason -> exit 5).
    std::signal(SIGINT, handle_sigint);
    options.cancel_token = &g_cancel;

    SynthesisResult result;
    FallbackEngine engine = FallbackEngine::kNone;
    bool verified = false;
    Status run_status;
    if (resilient_mode) {
      ResilienceOptions ropts;
      ropts.search = options;
      ropts.search.time_limit = std::chrono::milliseconds{0};
      ropts.deadline = options.time_limit;  // the cascade owns the clock
      ropts.use_watchdog = use_watchdog;
      ropts.cancel_token = &g_cancel;
      if (bidirectional) {
        std::cerr << "note: --resilient runs the forward cascade;"
                     " --bidir is ignored\n";
      }
      ResilientResult rr = table_spec
                               ? synthesize_resilient(*table_spec, ropts)
                               : synthesize_resilient(spec, ropts);
      result = std::move(rr.result);
      engine = rr.engine;
      verified = rr.verified;
      run_status = rr.status;
    } else {
      // The watchdog backstops --time-ms even if a pass wedges between
      // cooperative deadline polls.
      std::unique_ptr<Watchdog> watchdog;
      if (use_watchdog && options.time_limit.count() > 0) {
        watchdog = std::make_unique<Watchdog>(g_cancel, options.time_limit);
      }
      result = bidirectional && table_spec
                   ? synthesize_bidirectional(*table_spec, options)
                   : synthesize(spec, options);
      if (bidirectional && !table_spec) {
        std::cerr << "note: --bidir needs an explicit permutation spec;"
                     " running forward only\n";
      }
      if (watchdog != nullptr) {
        watchdog->disarm();
        result.stats.watchdog_fired = watchdog->fired();
      }
    }
    // One JSONL record per run: counters + termination + phase timings +
    // circuit stats (gates/cost -1 when the synthesis failed).
    const auto write_metrics = [&](const Circuit* circuit) {
      if (metrics_file.empty()) return true;
      std::ofstream out(metrics_file);
      if (!out) {
        std::cerr << "cannot open " << metrics_file << " for writing\n";
        return false;
      }
      MetricsRegistry record;
      record.set("name", input_name).set("vars", spec.num_vars());
      record.set("success", result.success);
      record.add_stats(result.stats, result.termination);
      if (resilient_mode) {
        // Degradation visibility: which engine of the cascade won (or
        // "none") and whether the winner passed exact verification.
        record.set("fallback_engine", std::string_view(to_string(engine)));
        record.set("verified", verified);
      }
      record.add_profile(profile);
      if (circuit != nullptr) {
        record.add_circuit(*circuit);
      } else {
        record.set("gates", -1).set("quantum_cost", -1);
      }
      MetricsWriter(out).write(record);
      return true;
    };

    if (!result.success) {
      std::cerr << "synthesis failed within budget ("
                << result.stats.nodes_expanded << " nodes expanded,"
                   " termination: "
                << to_string(result.termination) << ")\n";
      if (result.partial_terms >= 0) {
        std::cerr << "best partial cascade: " << result.partial.gate_count()
                  << " gates, " << result.partial_terms
                  << " terms remaining\n";
      }
      write_metrics(nullptr);
      if (resilient_mode) return exit_code_for(run_status.code());
      return exit_code_for(result.termination == TerminationReason::kCancelled
                               ? StatusCode::kCancelled
                               : StatusCode::kBudgetExhausted);
    }
    Circuit circuit = result.circuit;
    if (run_templates) {
      circuit = simplify_templates(circuit, options.phase_profile).circuit;
    }
    if (!implements(circuit, spec)) {
      std::cerr << "internal error: circuit fails verification\n";
      return exit_code_for(StatusCode::kInternal);
    }
    if (!write_metrics(&circuit)) return 1;
    if (run_fredkinize) {
      const FredkinizeResult fr = fredkinize(circuit);
      std::cout << fr.circuit.to_string() << "\n";
      std::cout << "gates: " << fr.circuit.gate_count() << " ("
                << fr.fredkin_gates << " Fredkin)"
                << "  quantum cost: " << quantum_cost(fr.circuit)
                << "  nodes: " << result.stats.nodes_expanded
                << "  termination: " << to_string(result.termination)
                << "\n";
      return 0;
    }
    // Stats go to stderr in .tfc mode so stdout stays a valid .tfc file.
    std::ostream& stats_out = emit_tfc ? std::cerr : std::cout;
    if (emit_tfc) {
      std::cout << write_tfc(circuit);
    } else {
      std::cout << circuit.to_string() << "\n";
    }
    stats_out << "gates: " << circuit.gate_count()
              << "  quantum cost: " << quantum_cost(circuit)
              << "  nodes: " << result.stats.nodes_expanded
              << "  time: " << result.stats.elapsed.count() << " us"
              << "  termination: " << to_string(result.termination) << "\n";
    if (!metrics_file.empty()) {
      stats_out << "\nphase profile:\n" << profile.to_string();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code_for(StatusCode::kInternal);
  }
}
