/// \file metrics_report.cpp
/// \brief Merges rmrls metrics JSONL files into a fleet summary
/// (docs/observability.md).
///
/// Usage: metrics_report [--label NAME] FILE [[--label NAME] FILE...]
///
/// The ROADMAP's merged-metrics summary tool: every input file is first
/// validated against the shared rules (obs/metrics_validate.hpp — same
/// rules as metrics_check), then aggregated:
///
///   * per-key percentile tables (p50/p95/p99/max) from the final
///     heartbeat's histograms, bucket-merged across files — estimates at
///     log2 bucket upper edges;
///   * an exact per-job wall-time row computed from the v1 job records
///     themselves;
///   * cache hit-rate and throughput summaries;
///   * a final-heartbeat health line (uptime, jobs done/failed/in-flight);
///   * with several inputs (the fleet case, docs/fleet.md): a per-shard
///     breakdown table, one row per input file, labelled by the preceding
///     --label or, failing that, the file's basename; a summary record's
///     `shard` field (rmrls --shard) is shown alongside.
///
/// Exit 0 on success, 1 on validation errors or no records, 2 on usage.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics_validate.hpp"
#include "obs/telemetry.hpp"

namespace {

using rmrls::HistogramSnapshot;
using rmrls::JsonValue;

/// Everything the report needs from the parsed streams.
struct Aggregate {
  std::uint64_t files = 0;
  std::uint64_t records = 0;
  std::uint64_t heartbeats = 0;
  std::vector<double> job_elapsed_us;  ///< v1 job records (not summaries)
  std::uint64_t jobs_succeeded = 0;
  std::uint64_t jobs_failed = 0;
  /// Serve-daemon request records (those carrying `serve_status`;
  /// docs/serving.md): request latency is the daemon-side elapsed_us of
  /// the jobs that actually ran, shed requests counted separately.
  std::vector<double> serve_elapsed_us;
  std::uint64_t serve_ok = 0;
  std::uint64_t serve_failed = 0;
  std::uint64_t serve_shed = 0;
  /// Cache counters: heartbeat `cache.*` counters win when present (they
  /// see every engine-level event); otherwise batch summary records.
  double cache_hits = 0, cache_misses = 0, cache_evictions = 0;
  bool cache_from_heartbeat = false;
  bool cache_seen = false;
  /// Final heartbeat per file, merged: bucket-wise histogram sums,
  /// counter sums, max uptime.
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, double> counters;
  double max_uptime_ns = 0;
  std::string last_health;  ///< rendered from the last file's heartbeat
};

/// Per-input-file (= per fleet shard) slice of the same counters, for the
/// breakdown table (docs/fleet.md).
struct ShardRow {
  std::string label;  ///< --label, or the file's basename
  std::string shard;  ///< the summary record's "shard" field, if present
  std::uint64_t jobs = 0;  ///< v1 job records in this file
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double skipped = 0;  ///< batch_skipped of the summary (resumed jobs)
  double cache_hits = 0, cache_misses = 0;
  bool cache_seen = false;
  double elapsed_us = 0;  ///< sum of per-job wall time
};

/// The --label for an input, defaulting to its basename without the
/// extension ("out_4_2.jsonl" -> "out_4_2").
std::string infer_label(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

void merge_histogram(HistogramSnapshot& into, const JsonValue& h) {
  const JsonValue* count = h.find("count");
  const JsonValue* sum = h.find("sum");
  const JsonValue* buckets = h.find("buckets");
  into.count += static_cast<std::uint64_t>(count->number);
  into.sum += static_cast<std::uint64_t>(sum->number);
  if (buckets->array.size() > into.buckets.size()) {
    into.buckets.resize(buckets->array.size(), 0);
  }
  for (std::size_t b = 0; b < buckets->array.size(); ++b) {
    into.buckets[b] += static_cast<std::uint64_t>(buckets->array[b].number);
  }
}

double gauge_of(const JsonValue& heartbeat, const char* name) {
  const JsonValue* gauges = heartbeat.find("gauges");
  const JsonValue* g = gauges != nullptr ? gauges->find(name) : nullptr;
  return g != nullptr && g->is_number() ? g->number : 0.0;
}

/// Folds one file's *final* heartbeat into the aggregate (cumulative
/// records: the last one subsumes every earlier one of that stream).
void absorb_final_heartbeat(Aggregate& agg, const JsonValue& hb) {
  const JsonValue* histograms = hb.find("histograms");
  for (const auto& [name, h] : histograms->object) {
    merge_histogram(agg.histograms[name], h);
  }
  const JsonValue* counters = hb.find("counters");
  for (const auto& [name, c] : counters->object) {
    agg.counters[name] += c.number;
  }
  const JsonValue* uptime = hb.find("uptime_ns");
  agg.max_uptime_ns = std::max(agg.max_uptime_ns, uptime->number);

  const JsonValue* hits = counters->find("cache.hits");
  const JsonValue* misses = counters->find("cache.misses");
  if (hits != nullptr && misses != nullptr) {
    if (!agg.cache_from_heartbeat) {
      // First heartbeat-sourced cache numbers replace any summary-record
      // ones gathered so far.
      agg.cache_hits = agg.cache_misses = agg.cache_evictions = 0;
      agg.cache_from_heartbeat = true;
    }
    agg.cache_seen = true;
    agg.cache_hits += hits->number;
    agg.cache_misses += misses->number;
    const JsonValue* ev = counters->find("cache.evictions");
    if (ev != nullptr) agg.cache_evictions += ev->number;
  }

  std::ostringstream health;
  const JsonValue* seq = hb.find("seq");
  health << "final heartbeat: seq " << static_cast<std::uint64_t>(seq->number)
         << ", uptime " << std::fixed << std::setprecision(2)
         << uptime->number * 1e-9 << "s";
  const double total = gauge_of(hb, "batch.jobs_total");
  if (total > 0) {
    health << ", jobs " << gauge_of(hb, "batch.jobs_completed") << "/"
           << total << " done, " << gauge_of(hb, "batch.jobs_failed")
           << " failed, " << gauge_of(hb, "batch.jobs_inflight")
           << " in flight";
  }
  const JsonValue* active = hb.find("active");
  if (active != nullptr && !active->array.empty()) {
    health << ", active";
    for (const JsonValue& id : active->array) health << " " << id.string;
  }
  agg.last_health = health.str();
}

void absorb_v1(Aggregate& agg, ShardRow& row, const JsonValue& v) {
  if (v.find("batch_jobs") != nullptr) {
    // Batch summary record: cache counters (unless heartbeats already
    // provided engine-level ones), not a job sample.
    const JsonValue* hits = v.find("cache_hits");
    const JsonValue* misses = v.find("cache_misses");
    if (hits != nullptr && misses != nullptr) {
      row.cache_seen = true;
      row.cache_hits += hits->number;
      row.cache_misses += misses->number;
      if (!agg.cache_from_heartbeat) {
        agg.cache_seen = true;
        agg.cache_hits += hits->number;
        agg.cache_misses += misses->number;
      }
    }
    const JsonValue* skipped = v.find("batch_skipped");
    if (skipped != nullptr && skipped->is_number()) {
      row.skipped += skipped->number;
    }
    const JsonValue* shard = v.find("shard");
    if (shard != nullptr && shard->is_string()) row.shard = shard->string;
    return;
  }
  const JsonValue* elapsed = v.find("elapsed_us");
  agg.job_elapsed_us.push_back(elapsed->number);
  ++row.jobs;
  row.elapsed_us += elapsed->number;
  const JsonValue* success = v.find("success");
  if (success->boolean) {
    ++agg.jobs_succeeded;
    ++row.ok;
  } else {
    ++agg.jobs_failed;
    ++row.failed;
  }
  const JsonValue* serve_status = v.find("serve_status");
  if (serve_status != nullptr && serve_status->is_string()) {
    if (serve_status->string == "unavailable") {
      // Shed at admission: never ran, so it contributes no latency sample.
      ++agg.serve_shed;
    } else {
      agg.serve_elapsed_us.push_back(elapsed->number);
      if (success->boolean) {
        ++agg.serve_ok;
      } else {
        ++agg.serve_failed;
      }
    }
  }
}

double exact_quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, q * static_cast<double>(sorted.size()) + 0.5));
  return sorted[std::min(rank, sorted.size()) - 1];
}

void print_row(const std::string& name, std::uint64_t count, double p50,
               double p95, double p99, double max, const char* note) {
  std::cout << "  " << std::left << std::setw(28) << name << std::right
            << std::setw(8) << count << std::setw(12)
            << static_cast<std::uint64_t>(p50) << std::setw(12)
            << static_cast<std::uint64_t>(p95) << std::setw(12)
            << static_cast<std::uint64_t>(p99) << std::setw(12)
            << static_cast<std::uint64_t>(max) << note << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // `--label NAME` applies to the next FILE; unlabelled files fall back
  // to their basename.
  struct Input {
    std::string path;
    std::string label;
  };
  std::vector<Input> inputs;
  std::string pending_label;
  for (int f = 1; f < argc; ++f) {
    const std::string arg = argv[f];
    if (arg == "--label") {
      if (f + 1 >= argc) {
        std::cerr << "missing value for --label\n";
        return 2;
      }
      pending_label = argv[++f];
      continue;
    }
    inputs.push_back(Input{
        arg, pending_label.empty() ? infer_label(arg) : pending_label});
    pending_label.clear();
  }
  if (inputs.empty()) {
    std::cerr << "usage: metrics_report [--label NAME] FILE"
                 " [[--label NAME] FILE...]\n";
    return 2;
  }
  if (!pending_label.empty()) {
    std::cerr << "--label '" << pending_label << "' names no file\n";
    return 2;
  }
  rmrls::MetricsValidator validator;
  Aggregate agg;
  std::vector<ShardRow> rows;
  for (const Input& input : inputs) {
    std::ifstream in(input.path);
    if (!in) {
      std::cerr << "cannot open " << input.path << "\n";
      return 1;
    }
    validator.begin_stream();
    ++agg.files;
    ShardRow row;
    row.label = input.label;
    std::string line;
    std::uint64_t lineno = 0;
    std::optional<JsonValue> final_heartbeat;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      const std::string where =
          input.path + ":" + std::to_string(lineno);
      if (!validator.check_line(line, where)) continue;
      ++agg.records;
      auto parsed = rmrls::json_parse(line);  // validated above; parses
      const JsonValue* record = parsed->find("record");
      if (record != nullptr && record->string == "heartbeat") {
        ++agg.heartbeats;
        final_heartbeat = std::move(*parsed);
      } else {
        absorb_v1(agg, row, *parsed);
      }
    }
    if (final_heartbeat) absorb_final_heartbeat(agg, *final_heartbeat);
    rows.push_back(std::move(row));
  }
  for (const std::string& error : validator.errors()) {
    std::cerr << error << "\n";
  }
  if (!validator.errors().empty()) return 1;
  if (agg.records == 0) {
    std::cerr << "no metrics records found\n";
    return 1;
  }

  std::cout << "metrics_report: " << agg.files << " file(s), " << agg.records
            << " record(s), " << agg.job_elapsed_us.size()
            << " job record(s), " << agg.heartbeats << " heartbeat(s)\n";

  if (!agg.histograms.empty() || !agg.job_elapsed_us.empty()) {
    std::cout << "\n  " << std::left << std::setw(28) << "key" << std::right
              << std::setw(8) << "count" << std::setw(12) << "p50"
              << std::setw(12) << "p95" << std::setw(12) << "p99"
              << std::setw(12) << "max" << "\n";
    for (const auto& [name, h] : agg.histograms) {
      if (h.count == 0) continue;
      print_row(name, h.count, static_cast<double>(h.quantile(0.50)),
                static_cast<double>(h.quantile(0.95)),
                static_cast<double>(h.quantile(0.99)),
                static_cast<double>(h.quantile(1.0)), "  (log2 est)");
    }
    if (!agg.job_elapsed_us.empty()) {
      std::vector<double> sorted = agg.job_elapsed_us;
      std::sort(sorted.begin(), sorted.end());
      print_row("job elapsed_us", sorted.size(),
                exact_quantile(sorted, 0.50), exact_quantile(sorted, 0.95),
                exact_quantile(sorted, 0.99), sorted.back(), "  (exact)");
    }
    if (!agg.serve_elapsed_us.empty()) {
      std::vector<double> sorted = agg.serve_elapsed_us;
      std::sort(sorted.begin(), sorted.end());
      print_row("serve request_us", sorted.size(),
                exact_quantile(sorted, 0.50), exact_quantile(sorted, 0.95),
                exact_quantile(sorted, 0.99), sorted.back(), "  (exact)");
    }
  }

  if (agg.serve_ok + agg.serve_failed + agg.serve_shed > 0) {
    const std::uint64_t total =
        agg.serve_ok + agg.serve_failed + agg.serve_shed;
    std::cout << "\nserve: " << total << " request(s) (" << agg.serve_ok
              << " ok, " << agg.serve_failed << " failed, " << agg.serve_shed
              << " shed)";
    if (total > 0) {
      std::cout << " — " << std::fixed << std::setprecision(1)
                << 100.0 * static_cast<double>(agg.serve_shed) /
                       static_cast<double>(total)
                << "% shed";
    }
    std::cout << "\n";
  }

  if (agg.cache_seen) {
    const double lookups = agg.cache_hits + agg.cache_misses;
    std::cout << "\ncache: " << agg.cache_hits << " hit(s), "
              << agg.cache_misses << " miss(es)";
    if (agg.cache_from_heartbeat) {
      std::cout << ", " << agg.cache_evictions << " eviction(s)";
    }
    if (lookups > 0) {
      std::cout << " — " << std::fixed << std::setprecision(1)
                << 100.0 * agg.cache_hits / lookups << "% hit rate";
    }
    std::cout << "\n";
  }

  if (rows.size() > 1) {
    // Per-shard breakdown (docs/fleet.md): one row per input file. The
    // merged numbers above remain the fleet truth; this table shows how
    // evenly the hash sharding spread the work and which shard resumed.
    std::cout << "\nper-shard breakdown:\n  " << std::left << std::setw(20)
              << "label" << std::setw(8) << "shard" << std::right
              << std::setw(7) << "jobs" << std::setw(7) << "ok"
              << std::setw(8) << "failed" << std::setw(9) << "resumed"
              << std::setw(8) << "hit%" << std::setw(12) << "job_time_s"
              << "\n";
    for (const ShardRow& row : rows) {
      const double lookups = row.cache_hits + row.cache_misses;
      std::ostringstream hit_rate;
      if (row.cache_seen && lookups > 0) {
        hit_rate << std::fixed << std::setprecision(1)
                 << 100.0 * row.cache_hits / lookups;
      } else {
        hit_rate << "-";
      }
      std::cout << "  " << std::left << std::setw(20) << row.label
                << std::setw(8) << (row.shard.empty() ? "-" : row.shard)
                << std::right << std::setw(7) << row.jobs << std::setw(7)
                << row.ok << std::setw(8) << row.failed << std::setw(9)
                << static_cast<std::uint64_t>(row.skipped) << std::setw(8)
                << hit_rate.str() << std::setw(12) << std::fixed
                << std::setprecision(2) << row.elapsed_us * 1e-6 << "\n";
    }
  }

  if (!agg.job_elapsed_us.empty() || agg.max_uptime_ns > 0) {
    std::cout << "throughput: " << agg.job_elapsed_us.size() << " job(s) ("
              << agg.jobs_succeeded << " ok, " << agg.jobs_failed
              << " failed)";
    if (agg.max_uptime_ns > 0) {
      const double secs = agg.max_uptime_ns * 1e-9;
      std::cout << " in " << std::fixed << std::setprecision(2) << secs
                << "s";
      if (!agg.job_elapsed_us.empty()) {
        std::cout << ", " << std::setprecision(2)
                  << static_cast<double>(agg.job_elapsed_us.size()) / secs
                  << " jobs/s";
      }
      const auto nodes = agg.counters.find("search.nodes_expanded");
      if (nodes != agg.counters.end() && nodes->second > 0) {
        std::cout << ", " << std::setprecision(0) << nodes->second / secs
                  << " nodes/s";
      }
    }
    std::cout << "\n";
  }

  if (!agg.last_health.empty()) std::cout << agg.last_health << "\n";
  return 0;
}
