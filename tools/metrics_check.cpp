/// \file metrics_check.cpp
/// \brief Validates rmrls-metrics-v1 JSONL files (CI guard).
///
/// Usage: metrics_check FILE [FILE...]
///
/// For every line of every file: it must parse as a JSON object, carry the
/// schema tag, every required key (metrics_required_keys()), a known
/// termination reason, and self-consistent counters (a successful record
/// has gates >= 0; a failed one gates == -1). Exit 0 if every record of
/// every file passes and at least one record was seen; 1 otherwise. This
/// runs in CTest against the table harnesses' --json output so the metrics
/// schema cannot silently rot.

#include <fstream>
#include <iostream>
#include <string>

#include "core/options.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using rmrls::JsonValue;

bool check_record(const std::string& line, const std::string& where) {
  const auto parsed = rmrls::json_parse(line);
  if (!parsed || !parsed->is_object()) {
    std::cerr << where << ": line is not a JSON object: " << line << "\n";
    return false;
  }
  const JsonValue* schema = parsed->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != rmrls::kMetricsSchema) {
    std::cerr << where << ": missing/wrong schema tag (want "
              << rmrls::kMetricsSchema << ")\n";
    return false;
  }
  for (const std::string& key : rmrls::metrics_required_keys()) {
    if (parsed->find(key) == nullptr) {
      std::cerr << where << ": missing required key '" << key << "'\n";
      return false;
    }
  }
  const JsonValue* termination = parsed->find("termination");
  const std::string& t = termination->string;
  if (!termination->is_string() ||
      (t != "solved" && t != "node_budget" && t != "time_limit" &&
       t != "queue_exhausted" && t != "cancelled")) {
    std::cerr << where << ": unknown termination reason '" << t << "'\n";
    return false;
  }
  const JsonValue* success = parsed->find("success");
  const JsonValue* gates = parsed->find("gates");
  const JsonValue* cost = parsed->find("quantum_cost");
  if (success->type != JsonValue::Type::kBool || !gates->is_number() ||
      !cost->is_number()) {
    std::cerr << where << ": success/gates/quantum_cost have wrong types\n";
    return false;
  }
  if (success->boolean ? gates->number < 0 : gates->number != -1) {
    std::cerr << where << ": gates (" << gates->number
              << ") inconsistent with success flag\n";
    return false;
  }
  const JsonValue* nodes = parsed->find("nodes_expanded");
  if (!nodes->is_number() || nodes->number < 0) {
    std::cerr << where << ": nodes_expanded is not a non-negative number\n";
    return false;
  }
  const JsonValue* workers = parsed->find("workers");
  if (!workers->is_number() || workers->number < 1) {
    std::cerr << where << ": workers is not a number >= 1\n";
    return false;
  }
  const JsonValue* dense = parsed->find("dense_kernel");
  if (dense->type != JsonValue::Type::kBool) {
    std::cerr << where << ": dense_kernel is not a bool\n";
    return false;
  }
  const JsonValue* switches = parsed->find("representation_switches");
  if (!switches->is_number() || switches->number < 0) {
    std::cerr << where
              << ": representation_switches is not a non-negative number\n";
    return false;
  }
  // Resilience fields (docs/robustness.md): the two flags are required by
  // the schema; the engine label and verification flag only appear on
  // --resilient runs.
  const JsonValue* cancelled = parsed->find("cancelled");
  const JsonValue* watchdog = parsed->find("watchdog_fired");
  if (cancelled->type != JsonValue::Type::kBool ||
      watchdog->type != JsonValue::Type::kBool) {
    std::cerr << where << ": cancelled/watchdog_fired are not bools\n";
    return false;
  }
  const JsonValue* engine = parsed->find("fallback_engine");
  if (engine != nullptr) {
    const std::string& e = engine->string;
    if (!engine->is_string() ||
        (e != "none" && e != "best_first" && e != "greedy" &&
         e != "transformation_based")) {
      std::cerr << where << ": unknown fallback_engine '" << e << "'\n";
      return false;
    }
    const JsonValue* verified = parsed->find("verified");
    if (verified == nullptr || verified->type != JsonValue::Type::kBool) {
      std::cerr << where
                << ": fallback_engine without a boolean 'verified'\n";
      return false;
    }
  }
  // Optional cache / batch fields (docs/caching.md). Single-shot records
  // carry cache_hits/cache_misses when a cache was armed; a batch summary
  // record additionally carries batch_jobs and the orbit/dedup counters
  // with their invariants.
  const JsonValue* cache_hits = parsed->find("cache_hits");
  const JsonValue* cache_misses = parsed->find("cache_misses");
  if ((cache_hits == nullptr) != (cache_misses == nullptr)) {
    std::cerr << where
              << ": cache_hits and cache_misses must appear together\n";
    return false;
  }
  if (cache_hits != nullptr &&
      (!cache_hits->is_number() || cache_hits->number < 0 ||
       !cache_misses->is_number() || cache_misses->number < 0)) {
    std::cerr << where
              << ": cache_hits/cache_misses are not non-negative numbers\n";
    return false;
  }
  const JsonValue* batch_jobs = parsed->find("batch_jobs");
  if (batch_jobs != nullptr) {
    if (!batch_jobs->is_number() || batch_jobs->number < 1) {
      std::cerr << where << ": batch_jobs is not a number >= 1\n";
      return false;
    }
    const JsonValue* orbit_hits = parsed->find("cache_orbit_hits");
    const JsonValue* dedup = parsed->find("batch_dedup");
    if (cache_hits == nullptr || orbit_hits == nullptr || dedup == nullptr ||
        !orbit_hits->is_number() || orbit_hits->number < 0 ||
        !dedup->is_number() || dedup->number < 0) {
      std::cerr << where
                << ": batch record lacks non-negative cache_hits/"
                   "cache_misses/cache_orbit_hits/batch_dedup\n";
      return false;
    }
    if (orbit_hits->number > cache_hits->number) {
      std::cerr << where << ": cache_orbit_hits (" << orbit_hits->number
                << ") exceeds cache_hits (" << cache_hits->number << ")\n";
      return false;
    }
    if (cache_hits->number + cache_misses->number + dedup->number >
        batch_jobs->number) {
      std::cerr << where
                << ": cache_hits + cache_misses + batch_dedup exceeds"
                   " batch_jobs\n";
      return false;
    }
  }
  // Optional per-shard transposition hit counts (parallel engine only):
  // an array of non-negative numbers whose sum cannot exceed the total
  // duplicate prunes (sequential passes of the same run may add more).
  const JsonValue* shard_hits = parsed->find("tt_shard_hits");
  if (shard_hits != nullptr) {
    if (shard_hits->type != JsonValue::Type::kArray) {
      std::cerr << where << ": tt_shard_hits is not an array\n";
      return false;
    }
    double sum = 0.0;
    for (const JsonValue& v : shard_hits->array) {
      if (!v.is_number() || v.number < 0) {
        std::cerr << where
                  << ": tt_shard_hits element is not a non-negative number\n";
        return false;
      }
      sum += v.number;
    }
    const JsonValue* duplicates = parsed->find("pruned_duplicate");
    if (duplicates == nullptr || !duplicates->is_number() ||
        sum > duplicates->number) {
      std::cerr << where << ": tt_shard_hits sum (" << sum
                << ") exceeds pruned_duplicate\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: metrics_check FILE [FILE...]\n";
    return 2;
  }
  std::uint64_t records = 0;
  bool ok = true;
  for (int f = 1; f < argc; ++f) {
    std::ifstream in(argv[f]);
    if (!in) {
      std::cerr << "cannot open " << argv[f] << "\n";
      return 1;
    }
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      ++records;
      ok &= check_record(line,
                         std::string(argv[f]) + ":" + std::to_string(lineno));
    }
  }
  if (records == 0) {
    std::cerr << "no metrics records found\n";
    return 1;
  }
  if (ok) {
    std::cout << records << " metrics record(s) valid\n";
  }
  return ok ? 0 : 1;
}
