/// \file metrics_check.cpp
/// \brief Validates rmrls metrics JSONL files (CI guard).
///
/// Usage: metrics_check FILE [FILE...]
///
/// Every line of every file must pass the shared validation rules in
/// obs/metrics_validate.hpp: rmrls-metrics-v1 run/job/summary records
/// (required keys, termination enum, counter consistency) and
/// rmrls-metrics-v2 heartbeat records (required keys, per-file monotone
/// seq/uptime_ns, histogram buckets summing to their count). The two
/// kinds may interleave in one file — that is exactly what
/// `rmrls --batch --heartbeat-ms --metrics-out` writes. Exit 0 if every
/// record of every file passes and at least one record was seen; 1
/// otherwise. This runs in CTest against the table harnesses' --json
/// output so the metrics schema cannot silently rot.

#include <fstream>
#include <iostream>
#include <string>

#include "obs/metrics_validate.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: metrics_check FILE [FILE...]\n";
    return 2;
  }
  rmrls::MetricsValidator validator;
  for (int f = 1; f < argc; ++f) {
    std::ifstream in(argv[f]);
    if (!in) {
      std::cerr << "cannot open " << argv[f] << "\n";
      return 1;
    }
    validator.begin_stream();  // heartbeat monotonicity is per file
    std::string line;
    std::uint64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      validator.check_line(line,
                           std::string(argv[f]) + ":" + std::to_string(lineno));
    }
  }
  for (const std::string& error : validator.errors()) {
    std::cerr << error << "\n";
  }
  if (validator.records() == 0) {
    std::cerr << "no metrics records found\n";
    return 1;
  }
  if (validator.errors().empty()) {
    std::cout << validator.records() << " metrics record(s) valid";
    if (validator.heartbeats() > 0) {
      std::cout << " (" << validator.heartbeats() << " heartbeat(s))";
    }
    std::cout << "\n";
    return 0;
  }
  return 1;
}
