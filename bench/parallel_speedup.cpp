/// \file parallel_speedup.cpp
/// \brief Scaling harness for the parallel search engine
/// (docs/parallelism.md).
///
/// Re-runs the Table V workload (random 15-gate GT cascades on 6-10
/// variables, first-solution mode, the paper's greedy option) once per
/// thread count and reports wall time, speedup and efficiency against the
/// sequential engine. The same specs are synthesized at every thread
/// count, and every parallel result is verified against its spec, so the
/// table doubles as a correctness check. Speedup requires hardware
/// parallelism — on a single-core host every row degrades to coordination
/// overhead (the run warns when it detects that).
///
/// Arguments (bench_common.hpp): --samples N cascades per variable count,
/// --max-nodes N per-function budget, --seed N, --threads N for the
/// maximum thread count swept (default 4; the sweep is 1, 2, ..., max).

#include <chrono>
#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

namespace {

using namespace rmrls;
using Clock = std::chrono::steady_clock;

struct SweepRow {
  int threads = 1;
  double millis = 0.0;
  std::uint64_t solved = 0;
  std::uint64_t gates_total = 0;
  std::uint64_t nodes_total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  const std::uint64_t samples = args.samples ? args.samples : 10;
  const int max_threads = args.threads > 1 ? args.threads : 4;

  SynthesisOptions base;
  base.max_nodes = args.max_nodes ? args.max_nodes : 100000;
  base.stop_at_first_solution = true;
  base.greedy_k = 4;  // the paper's greedy option (Table V configuration)

  // The Table V workload, fixed up front so every thread count synthesizes
  // the identical spec set.
  std::mt19937_64 rng(args.seed);
  std::uniform_int_distribution<int> gate_count_dist(1, 15);
  std::vector<Pprm> specs;
  for (int vars = 6; vars <= 10; ++vars) {
    for (std::uint64_t i = 0; i < samples; ++i) {
      specs.push_back(
          random_circuit(vars, gate_count_dist(rng), GateLibrary::kGT, rng)
              .to_pprm());
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "=== Parallel search scaling (Table V workload) ===\n"
            << specs.size() << " random GT cascades (6-10 vars, <= 15 gates), "
            << "first-solution mode, " << base.max_nodes
            << " nodes per function, " << (hw ? hw : 1)
            << " hardware thread(s)\n\n";
  if (hw <= 1) {
    std::cout << "note: single hardware thread detected — expect overhead,"
                 " not speedup\n\n";
  }

  std::vector<SweepRow> rows;
  for (int threads = 1; threads <= max_threads; ++threads) {
    SweepRow row;
    row.threads = threads;
    SynthesisOptions options = base;
    options.num_threads = threads;
    const auto t0 = Clock::now();
    for (const Pprm& spec : specs) {
      const SynthesisResult r = synthesize(spec, options);
      if (!r.success) continue;
      if (!implements(r.circuit, spec)) {
        std::cerr << "FAIL: circuit from " << threads
                  << "-thread run does not implement its spec\n";
        return 1;
      }
      ++row.solved;
      row.gates_total += static_cast<std::uint64_t>(r.circuit.gate_count());
      row.nodes_total += r.stats.nodes_expanded;
    }
    row.millis = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                     .count();
    rows.push_back(row);
  }

  TextTable table(
      {"Threads", "Wall ms", "Speedup", "Efficiency", "Solved", "Gates",
       "Nodes"});
  const double base_ms = rows.front().millis;
  for (const SweepRow& row : rows) {
    const double speedup = row.millis > 0.0 ? base_ms / row.millis : 0.0;
    table.add_row({std::to_string(row.threads), fixed(row.millis, 1),
                   fixed(speedup, 2),
                   fixed(speedup / row.threads, 2),
                   std::to_string(row.solved),
                   std::to_string(row.gates_total),
                   std::to_string(row.nodes_total)});
  }
  table.print(std::cout);
  // Every thread count must solve the suite; gate totals may differ
  // (parallel runs are valid but not bit-reproducible).
  for (const SweepRow& row : rows) {
    if (row.solved != rows.front().solved) {
      std::cout << "\nnote: " << row.threads << "-thread run solved "
                << row.solved << "/" << rows.front().solved
                << " of the sequential run's set\n";
    }
  }
  return 0;
}
