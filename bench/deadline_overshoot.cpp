/// \file deadline_overshoot.cpp
/// \brief Deadline fidelity of the resilient driver (docs/robustness.md).
///
/// The paper's experiments bound effort with wall-clock limits (60 s /
/// 180 s in Section V); the resilient driver makes such limits a hard
/// contract: best-first, then the fallback cascade, all under one
/// deadline enforced cooperatively and by the watchdog. This harness
/// measures how well the contract holds: for widths 15/20/25 and
/// deadlines 10/50/100 ms it runs seeded random GT specs through
/// synthesize_resilient and reports wall time, the worst overshoot, and
/// which engine produced the returned circuit. The acceptance bar for the
/// subsystem (a 100 ms deadline answered within 150 ms at width 20) is
/// directly readable off the width-20 row.

#include <chrono>
#include <iostream>
#include <random>
#include <string>

#include "bench/bench_common.hpp"
#include "core/resilient.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  using Clock = std::chrono::steady_clock;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  bench::BenchJson json(args);
  const std::uint64_t samples = args.samples ? args.samples : 5;

  std::cout << "=== Deadline overshoot: synthesize_resilient on random GT"
               " specs ===\n"
            << samples << " seeded samples per cell\n\n";

  TextTable table({"Vars", "Deadline ms", "Solved", "Engines (bf/gr/tb)",
                   "Avg wall ms", "Max overshoot ms"});
  // Width 8 is small enough that cells actually solve, showing the engine
  // attribution; 15/20/25 probe deadline fidelity where nothing finishes.
  for (const int vars : {8, 15, 20, 25}) {
    for (const long deadline_ms : {10L, 50L, 100L}) {
      std::mt19937_64 rng(args.seed + static_cast<std::uint64_t>(vars));
      std::uint64_t solved = 0;
      std::uint64_t by_engine[3] = {0, 0, 0};  // best-first/greedy/transform
      double wall_sum = 0;
      long worst_overshoot = 0;
      for (std::uint64_t i = 0; i < samples; ++i) {
        const Pprm spec =
            random_circuit(vars, 2 * vars, GateLibrary::kGT, rng).to_pprm();
        ResilienceOptions options;
        options.deadline = std::chrono::milliseconds(deadline_ms);
        options.search.stop_at_first_solution = true;
        options.search.max_nodes = 0;
        args.apply(options.search);
        const auto t0 = Clock::now();
        const ResilientResult rr = synthesize_resilient(spec, options);
        const long wall = static_cast<long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - t0)
                .count());
        wall_sum += static_cast<double>(wall);
        worst_overshoot = std::max(worst_overshoot, wall - deadline_ms);
        if (rr.status.ok() && rr.verified) {
          ++solved;
          switch (rr.engine) {
            case FallbackEngine::kBestFirst: ++by_engine[0]; break;
            case FallbackEngine::kGreedy: ++by_engine[1]; break;
            case FallbackEngine::kTransformationBased: ++by_engine[2]; break;
            case FallbackEngine::kNone: break;
          }
        }
        json.record("overshoot_n" + std::to_string(vars) + "_d" +
                        std::to_string(deadline_ms) + "_s" +
                        std::to_string(i),
                    vars, rr.result, rr.status.ok() ? &rr.result.circuit
                                                    : nullptr);
      }
      table.add_row(
          {std::to_string(vars), std::to_string(deadline_ms),
           std::to_string(solved) + "/" + std::to_string(samples),
           std::to_string(by_engine[0]) + "/" + std::to_string(by_engine[1]) +
               "/" + std::to_string(by_engine[2]),
           fixed(wall_sum / static_cast<double>(samples)),
           std::to_string(worst_overshoot)});
    }
  }
  table.print(std::cout);
  std::cout << "\nOvershoot stays bounded by the per-candidate poll cadence"
               " plus watchdog latency, independent of width; unsolved cells"
               " return a structured budget-exhausted status, never hang.\n";
  return 0;
}
