/// \file table5_scal15.cpp
/// \brief Reproduces Table V: random 6-16-variable reversible functions
/// built from cascades of at most 15 gates (paper: 500 samples per row).

#include "bench/scalability_common.hpp"

int main(int argc, char** argv) {
  return rmrls::bench::run_scalability_table(
      "Table V: random reversible functions, max gate count 15", 15, 500,
       50, 30000, argc, argv);
}
