/// \file batch_throughput.cpp
/// \brief Throughput of the batch engine on duplicate-heavy workloads
/// (docs/caching.md).
///
/// The cache's value proposition is batch workloads where many requests
/// land in few orbits (standard-cell resynthesis, randomized experiment
/// sweeps). This harness builds a seeded workload of random n-variable
/// functions in which a configurable fraction of jobs are orbit repeats
/// (random conjugation and/or inversion of an earlier job), then runs it
/// two ways:
///
///   sequential  one job at a time through synthesize_resilient, no cache
///               (the pre-batch behaviour)
///   batch       run_batch with the orbit cache and the two-level thread
///               split
///
/// and reports jobs/s for both, the speedup, the cache counters, and the
/// mean cache-hit service latency vs the mean cold synthesis latency.
/// The PR's acceptance bar (>= 5x on a >= 50% orbit-repeat random-4
/// workload, hit latency < 1% of cold synthesis) reads directly off the
/// default row. With --workload FILE the jobs come from a spec-list file
/// (same hardened parser and exit-code taxonomy as `rmrls --batch`)
/// instead of the generator.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <numeric>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/batch.hpp"
#include "io/spec.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

namespace {

using namespace rmrls;
using Clock = std::chrono::steady_clock;

struct Args {
  bench::BenchArgs common;
  int vars = 4;
  double dup_frac = 0.5;  // fraction of jobs that are orbit repeats
  long long cache_mb = 64;
  std::string workload;  // spec-list file; empty = generated workload
};

Args parse_args(int argc, char** argv) {
  Args a;
  // Peel off the harness-specific flags, forward the rest to BenchArgs.
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto next_ll = [&]() -> long long {
      const std::string value = next();
      try {
        std::size_t used = 0;
        const long long parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        std::cerr << "invalid number for " << arg << ": '" << value << "'\n";
        std::exit(2);
      }
    };
    if (arg == "--vars") {
      a.vars = static_cast<int>(next_ll());
      if (a.vars < 1) {
        std::cerr << "invalid number for --vars\n";
        std::exit(2);
      }
    } else if (arg == "--dup-frac") {
      try {
        a.dup_frac = std::stod(next());
      } catch (const std::exception&) {
        std::cerr << "invalid number for " << arg << "\n";
        std::exit(2);
      }
      a.dup_frac = std::clamp(a.dup_frac, 0.0, 1.0);
    } else if (arg == "--cache-mb") {
      a.cache_mb = next_ll();
      if (a.cache_mb < 0) {
        std::cerr << "invalid number for --cache-mb\n";
        std::exit(2);
      }
    } else if (arg == "--workload") {
      a.workload = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "batch_throughput: batch engine vs sequential no-cache"
                   " baseline\n"
                   "  --vars N        workload width in variables (default"
                   " 4)\n"
                   "  --dup-frac X    fraction of jobs that are orbit"
                   " repeats (default 0.5)\n"
                   "  --cache-mb N    cache budget in MiB for the batch run"
                   " (default 64)\n"
                   "  --workload FILE spec-list file instead of the"
                   " generated workload\n";
      bench::BenchArgs::print_help(std::cout);
      std::exit(0);
    } else {
      rest.push_back(argv[i]);
      if ((arg == "--samples" || arg == "--max-nodes" || arg == "--seed" ||
           arg == "--json" || arg == "--threads" ||
           arg == "--dense-threshold" || arg == "--heartbeat-ms") &&
          i + 1 < argc) {
        rest.push_back(argv[++i]);
      }
    }
  }
  a.common =
      bench::BenchArgs::parse(static_cast<int>(rest.size()), rest.data());
  return a;
}

/// Generated workload: `unique` fresh random functions, padded with orbit
/// repeats (random conjugation, random inversion) up to `total` jobs, then
/// shuffled so repeats interleave with their originals.
std::vector<BatchJob> generate_workload(int vars, std::uint64_t total,
                                        double dup_frac,
                                        std::mt19937_64& rng) {
  const auto unique = static_cast<std::uint64_t>(std::max<double>(
      1.0, static_cast<double>(total) * (1.0 - dup_frac) + 0.5));
  std::vector<TruthTable> bases;
  std::vector<BatchJob> jobs;
  for (std::uint64_t i = 0; i < total; ++i) {
    TruthTable t;
    if (i < unique) {
      t = random_reversible_function(vars, rng);
      bases.push_back(t);
    } else {
      t = bases[rng() % bases.size()];
      std::vector<int> sigma(static_cast<std::size_t>(vars));
      std::iota(sigma.begin(), sigma.end(), 0);
      std::shuffle(sigma.begin(), sigma.end(), rng);
      t = conjugate(t, sigma);
      if (rng() & 1u) t = t.inverse();
    }
    jobs.push_back(BatchJob{"job" + std::to_string(i), std::move(t)});
  }
  std::shuffle(jobs.begin(), jobs.end(), rng);
  return jobs;
}

/// File workload: the same hardened parser and exit-code taxonomy as
/// `rmrls --batch` (docs/robustness.md) — a malformed line exits 3 with a
/// file:line diagnostic, never an uncaught exception.
std::vector<BatchJob> load_workload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open " << path << "\n";
    std::exit(exit_code_for(StatusCode::kParseError));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<std::vector<NamedSpec>> parsed =
      parse_permutation_batch_checked(buf.str(), path);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.status().to_string() << "\n";
    std::exit(exit_code_for(parsed.status().code()));
  }
  std::vector<BatchJob> jobs;
  for (NamedSpec& s : parsed.value()) {
    jobs.push_back(BatchJob{std::move(s.name), std::move(s.table)});
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  bench::BenchTelemetry telemetry(args.common);
  bench::BenchJson json(args.common);
  const std::uint64_t total =
      args.common.samples ? args.common.samples : 64;

  std::mt19937_64 rng(args.common.seed);
  const std::vector<BatchJob> jobs =
      args.workload.empty()
          ? generate_workload(args.vars, total, args.dup_frac, rng)
          : load_workload(args.workload);

  std::cout << "=== Batch throughput: orbit cache vs sequential no-cache"
               " ===\n"
            << jobs.size() << " jobs";
  if (args.workload.empty()) {
    std::cout << ", " << args.vars << " vars, "
              << fixed(args.dup_frac * 100, 0) << "% orbit repeats";
  } else {
    std::cout << " from " << args.workload;
  }
  std::cout << ", cache " << args.cache_mb << " MiB\n\n";

  ResilienceOptions base;
  if (args.common.max_nodes) base.search.max_nodes = args.common.max_nodes;
  args.common.apply(base.search);
  base.search.num_threads = 1;  // per-job threading set by the split below

  // Baseline: one job at a time, no cache, no canonicalization.
  const auto seq_start = Clock::now();
  std::uint64_t seq_ok = 0;
  for (const BatchJob& job : jobs) {
    const ResilientResult rr = synthesize_resilient(job.spec, base);
    if (rr.status.ok()) ++seq_ok;
    json.record("seq_" + job.name, job.spec.num_vars(), rr.result,
                rr.status.ok() ? &rr.result.circuit : nullptr);
  }
  const double seq_s =
      std::chrono::duration<double>(Clock::now() - seq_start).count();

  // Batch engine with the orbit cache.
  SynthCacheOptions cache_options;
  cache_options.byte_budget =
      static_cast<std::size_t>(args.cache_mb) << 20;
  SynthCache cache(cache_options);
  BatchOptions batch_options;
  batch_options.resilience = base;
  batch_options.total_threads = args.common.threads;
  if (args.cache_mb > 0) batch_options.cache = &cache;
  const auto batch_start = Clock::now();
  const BatchResult br = run_batch(jobs, batch_options);
  const double batch_s =
      std::chrono::duration<double>(Clock::now() - batch_start).count();

  // Hit latency vs cold synthesis latency, from the per-job clocks.
  // Deduped jobs belong to neither bucket: a follower's clock is dominated
  // by waiting for its leader's synthesis, not by cache service.
  double hit_us_sum = 0, miss_us_sum = 0;
  std::uint64_t hit_n = 0, miss_n = 0;
  for (const BatchJobOutcome& out : br.outcomes) {
    if (!out.status.ok() || out.deduped) continue;
    if (out.cache_hit) {
      hit_us_sum += static_cast<double>(out.elapsed.count());
      ++hit_n;
    } else {
      miss_us_sum += static_cast<double>(out.elapsed.count());
      ++miss_n;
    }
  }
  const double hit_us = hit_n ? hit_us_sum / static_cast<double>(hit_n) : 0;
  const double miss_us =
      miss_n ? miss_us_sum / static_cast<double>(miss_n) : 0;

  TextTable table({"Mode", "Jobs ok", "Wall s", "Jobs/s", "Speedup"});
  const auto rate = [&](std::uint64_t ok, double s) {
    return s > 0 ? static_cast<double>(ok) / s : 0.0;
  };
  table.add_row({"sequential no-cache", std::to_string(seq_ok),
                 fixed(seq_s, 3), fixed(rate(seq_ok, seq_s), 1), "1.00"});
  table.add_row({"batch + cache", std::to_string(br.stats.completed),
                 fixed(batch_s, 3), fixed(rate(br.stats.completed, batch_s), 1),
                 fixed(batch_s > 0 ? seq_s / batch_s : 0, 2)});
  table.print(std::cout);

  std::cout << "\ncache: " << br.stats.cache_hits << " hits ("
            << br.stats.cache_orbit_hits << " via orbit), "
            << br.stats.cache_misses << " misses, " << br.stats.batch_dedup
            << " deduped\n"
            << "latency: hit " << fixed(hit_us, 1) << " us, cold synthesis "
            << fixed(miss_us, 1) << " us ("
            << (miss_us > 0 ? fixed(100.0 * hit_us / miss_us, 2) : "n/a")
            << "% of cold)\n";
  return br.status.ok() ? 0 : exit_code_for(br.status.code());
}
