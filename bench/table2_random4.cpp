/// \file table2_random4.cpp
/// \brief Reproduces Table II: circuit-size histogram for random
/// four-variable reversible functions.
///
/// The paper draws 50000 uniform random permutations of {0..15}, 60 s per
/// function, a 40-gate cap, and the greedy pruning option. Default here:
/// 2000 seeded samples with a deterministic node budget (--full for 50000).

#include <iostream>
#include <random>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  bench::BenchJson json(args);
  const std::uint64_t sample =
      args.full ? 50000 : (args.samples ? args.samples : 500);

  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : 30000;
  options.max_gates = 40;   // the paper's cap
  options.greedy_k = 0;

  std::cout << "=== Table II: random four-variable reversible functions ===\n"
            << sample << " seeded samples (paper: 50000), max 40 gates, "
            << options.max_nodes << " nodes per function\n\n";

  std::vector<std::uint64_t> histogram(41, 0);
  std::uint64_t fails = 0;
  double gate_sum = 0;
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < sample; ++i) {
    const TruthTable f = random_reversible_function(4, rng);
    const SynthesisResult r = synthesize(f, options);
    json.record("4var-" + std::to_string(i), 4, r,
                r.success ? &r.circuit : nullptr);
    if (!r.success) {
      ++fails;
      continue;
    }
    ++histogram[static_cast<std::size_t>(r.circuit.gate_count())];
    gate_sum += r.circuit.gate_count();
  }

  TextTable table({"Circuit size", "No. of circuits"});
  for (std::size_t g = 0; g <= 40; ++g) {
    if (histogram[g] == 0) continue;
    table.add_row({std::to_string(g), std::to_string(histogram[g])});
  }
  table.print(std::cout);
  std::cout << "\nAverage size: " << fixed(gate_sum / (sample - fails))
            << "   failures: " << fails << " / " << sample << "\n";
  std::cout << "Paper reference: sizes 6-21, mode at 14 (9053 of 50000),"
               " all 50000 synthesized.\n";
  return 0;
}
