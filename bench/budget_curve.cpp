/// \file budget_curve.cpp
/// \brief Anytime behaviour: circuit quality and failure rate as a
/// function of the search budget.
///
/// The paper controls effort with wall-clock limits (60 s / 180 s on a
/// 1.6 GHz Pentium IV); we use deterministic node budgets. This harness
/// maps out the budget -> quality curve on a seeded sample of 4-variable
/// functions, backing the budget choices the table harnesses use and the
/// "more time would improve sizes" remarks in Section V-B.

#include <iostream>
#include <random>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  const std::uint64_t samples = args.samples ? args.samples : 100;

  std::cout << "=== Budget curve: random 4-variable functions ===\n"
            << samples << " seeded samples per budget\n\n";

  TextTable table({"Node budget", "Avg gates", "Fails", "Avg nodes spent"});
  for (const std::uint64_t budget :
       {std::uint64_t{1000}, std::uint64_t{3000}, std::uint64_t{10000},
        std::uint64_t{30000}, std::uint64_t{100000}}) {
    SynthesisOptions options;
    options.max_nodes = budget;
    options.max_gates = 40;
    std::mt19937_64 rng(args.seed);
    double gates = 0;
    double nodes = 0;
    std::uint64_t fails = 0;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const TruthTable f = random_reversible_function(4, rng);
      const SynthesisResult r = synthesize(f, options);
      nodes += static_cast<double>(r.stats.nodes_expanded);
      if (!r.success) {
        ++fails;
        continue;
      }
      gates += r.circuit.gate_count();
    }
    const std::uint64_t ok = samples - fails;
    table.add_row({std::to_string(budget),
                   ok ? fixed(gates / static_cast<double>(ok)) : "-",
                   std::to_string(fails),
                   std::to_string(static_cast<long long>(
                       nodes / static_cast<double>(samples)))});
  }
  table.print(std::cout);
  std::cout << "\nQuality saturates once the budget clears the refinement"
               " knee; the table harnesses pick budgets past it.\n";
  return 0;
}
