/// \file bench_common.hpp
/// \brief Shared plumbing for the table-reproduction harnesses.
///
/// Every binary in bench/ regenerates one table of the paper. They accept:
///   --samples N     sample size (tables based on random draws)
///   --max-nodes N   per-function search budget
///   --full          paper-scale sample sizes (slow)
///   --seed N        RNG seed (default 20040216, the DATE'04 date)
///   --json FILE     append one rmrls-metrics-v1 JSONL record per
///                   synthesized function (see docs/observability.md)
///   --help          print this option list and exit
/// and print through io/table.hpp so outputs are diffable.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/search.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace rmrls::bench {

struct BenchArgs {
  std::uint64_t samples = 0;  // 0 = binary-specific default
  std::uint64_t max_nodes = 0;
  bool full = false;
  std::uint64_t seed = 20040216;
  std::string json_out;  // empty = no JSONL metrics
  /// Live-telemetry heartbeat period (docs/observability.md): 0 keeps the
  /// registry disabled; N > 0 arms it and streams rmrls-metrics-v2
  /// heartbeats to stderr every N ms while the harness runs.
  long long heartbeat_ms = 0;
  int threads = 1;  // search workers (docs/parallelism.md)
  /// Dense-kernel width cap (docs/dense_pprm.md): -1 = keep the library
  /// default, 0 = force sparse, N > 0 = dense up to N variables.
  int dense_threshold = -1;
  /// Search-core knobs (docs/parallelism.md): transposition-table budget
  /// and replacement policy, plus the two PR-7 heuristic kill switches the
  /// ablation harness flips.
  int tt_mb = 0;  // 0 = library default
  TTReplacement tt_replacement = TTReplacement::kAging;
  bool use_history = true;
  bool iterative_deepening = true;

  /// Copies the flags that map one-to-one onto SynthesisOptions fields.
  void apply(SynthesisOptions& options) const {
    options.num_threads = threads;
    if (dense_threshold >= 0) options.dense_threshold = dense_threshold;
    if (tt_mb > 0) options.tt_mb = tt_mb;
    options.tt_replacement = tt_replacement;
    options.use_history = use_history;
    options.iterative_deepening = iterative_deepening;
  }

  static void print_help(std::ostream& os) {
    os << "options:\n"
          "  --samples N     sample size (0 = binary-specific default)\n"
          "  --max-nodes N   per-function search budget\n"
          "  --full          paper-scale sample sizes (slow)\n"
          "  --seed N        RNG seed (default 20040216)\n"
          "  --json FILE     write one JSONL metrics record per"
          " synthesized function\n"
          "  --heartbeat-ms N\n"
          "                  stream live telemetry heartbeats"
          " (rmrls-metrics-v2)\n"
          "                  to stderr every N ms\n"
          "  --threads N     parallel search workers (1 = sequential,\n"
          "                  0 = one per hardware thread)\n"
          "  --dense-threshold N\n"
          "                  widest system run on the dense spectrum kernel\n"
          "                  (-1 = library default, 0 = always sparse)\n"
          "  --tt-mb N       transposition-table budget in MiB (0 = library\n"
          "                  default)\n"
          "  --tt-policy P   TT replacement policy: always | depth | aging\n"
          "  --no-history    disable the history-heuristic ordering bonus\n"
          "  --no-id         disable iterative deepening on the gate bound\n"
          "  --help          this text\n";
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << arg << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      // std::stoull throws on junk; turn that into a clean diagnostic
      // instead of an uncaught-exception abort.
      const auto next_u64 = [&]() -> std::uint64_t {
        const std::string value = next();
        try {
          std::size_t used = 0;
          const std::uint64_t parsed = std::stoull(value, &used);
          if (used != value.size()) throw std::invalid_argument(value);
          return parsed;
        } catch (const std::exception&) {
          std::cerr << "invalid number for " << arg << ": '" << value
                    << "'\n";
          std::exit(2);
        }
      };
      if (arg == "--samples") {
        a.samples = next_u64();
      } else if (arg == "--max-nodes") {
        a.max_nodes = next_u64();
      } else if (arg == "--full") {
        a.full = true;
      } else if (arg == "--seed") {
        a.seed = next_u64();
      } else if (arg == "--json") {
        a.json_out = next();
      } else if (arg == "--heartbeat-ms") {
        a.heartbeat_ms = static_cast<long long>(next_u64());
        if (a.heartbeat_ms < 1) {
          std::cerr << "invalid number for " << arg << "\n";
          std::exit(2);
        }
      } else if (arg == "--threads") {
        a.threads = static_cast<int>(next_u64());
      } else if (arg == "--dense-threshold") {
        a.dense_threshold = static_cast<int>(next_u64());
      } else if (arg == "--tt-mb") {
        a.tt_mb = static_cast<int>(next_u64());
      } else if (arg == "--tt-policy") {
        const std::string value = next();
        if (value == "always") {
          a.tt_replacement = TTReplacement::kAlways;
        } else if (value == "depth") {
          a.tt_replacement = TTReplacement::kDepthPreferred;
        } else if (value == "aging") {
          a.tt_replacement = TTReplacement::kAging;
        } else {
          std::cerr << "--tt-policy wants always|depth|aging, got '" << value
                    << "'\n";
          std::exit(2);
        }
      } else if (arg == "--no-history") {
        a.use_history = false;
      } else if (arg == "--no-id") {
        a.iterative_deepening = false;
      } else if (arg == "--help" || arg == "-h") {
        print_help(std::cout);
        std::exit(0);
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        print_help(std::cerr);
        std::exit(2);
      }
    }
    return a;
  }
};

/// RAII guard for --heartbeat-ms: arms the process-wide telemetry
/// registry and runs a background Snapshotter that streams v2 heartbeats
/// to stderr for the lifetime of the harness (destruction emits one final
/// flush heartbeat, so even sub-period runs leave a record). With
/// heartbeat_ms == 0 this is a no-op and the registry stays disabled —
/// the instrumented layers keep their one-relaxed-load fast path.
class BenchTelemetry {
 public:
  explicit BenchTelemetry(const BenchArgs& args) {
    if (args.heartbeat_ms <= 0) return;
    Telemetry& telemetry = Telemetry::enable();
    telemetry.reset();
    snapshotter_ = std::make_unique<Snapshotter>(
        telemetry, std::chrono::milliseconds(args.heartbeat_ms), std::cerr);
  }

  ~BenchTelemetry() {
    if (snapshotter_ != nullptr) snapshotter_->stop();
  }

  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

 private:
  std::unique_ptr<Snapshotter> snapshotter_;
};

/// JSONL metrics emitter for the harnesses: one record per synthesized
/// function, same rmrls-metrics-v1 schema as `rmrls --metrics-out`.
/// Construct from BenchArgs; when --json was not given every call is a
/// no-op. Exits with a diagnostic if the file cannot be opened.
class BenchJson {
 public:
  explicit BenchJson(const BenchArgs& args) {
    if (args.json_out.empty()) return;
    out_.open(args.json_out);
    if (!out_) {
      std::cerr << "cannot open " << args.json_out << " for writing\n";
      std::exit(2);
    }
    enabled_ = true;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records one synthesis outcome. `circuit` is the final (possibly
  /// post-processed) cascade; pass nullptr on failure.
  void record(const std::string& name, int vars, const SynthesisResult& r,
              const Circuit* circuit) {
    if (!enabled_) return;
    MetricsRegistry rec;
    rec.set("name", name).set("vars", vars).set("success", r.success);
    rec.add_stats(r.stats, r.termination);
    if (circuit != nullptr) {
      rec.add_circuit(*circuit);
    } else {
      rec.set("gates", -1).set("quantum_cost", -1);
    }
    MetricsWriter(out_).write(rec);
  }

 private:
  std::ofstream out_;
  bool enabled_ = false;
};

}  // namespace rmrls::bench
