/// \file bench_common.hpp
/// \brief Shared plumbing for the table-reproduction harnesses.
///
/// Every binary in bench/ regenerates one table of the paper. They accept:
///   --samples N     sample size (tables based on random draws)
///   --max-nodes N   per-function search budget
///   --full          paper-scale sample sizes (slow)
///   --seed N        RNG seed (default 20040216, the DATE'04 date)
/// and print through io/table.hpp so outputs are diffable.

#pragma once

#include <cstdint>
#include <iostream>
#include <string>

namespace rmrls::bench {

struct BenchArgs {
  std::uint64_t samples = 0;  // 0 = binary-specific default
  std::uint64_t max_nodes = 0;
  bool full = false;
  std::uint64_t seed = 20040216;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << arg << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--samples") {
        a.samples = std::stoull(next());
      } else if (arg == "--max-nodes") {
        a.max_nodes = std::stoull(next());
      } else if (arg == "--full") {
        a.full = true;
      } else if (arg == "--seed") {
        a.seed = std::stoull(next());
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        std::exit(2);
      }
    }
    return a;
  }
};

}  // namespace rmrls::bench
