/// \file table1_all3var.cpp
/// \brief Reproduces Table I: gate-count histogram over three-variable
/// reversible functions.
///
/// Columns: RMRLS (ours), RMRLS after template post-processing (the
/// paper's 6.10 -> 6.05 aside), the Miller-Maslov-Dueck transformation
/// baselines (the paper compares against [7]), and the exact optima for
/// the NCT and NCTS libraries [16], recomputed here by BFS.
///
/// Default: a seeded 4000-function sample plus exact optimum histograms
/// over all 40320 functions. --full synthesizes all 40320 functions
/// (a few minutes).

#include <algorithm>
#include <iostream>
#include <numeric>
#include <random>
#include <vector>

#include "baselines/optimal_bfs.hpp"
#include "baselines/transformation_based.hpp"
#include "bench/bench_common.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"
#include "templates/fredkinize.hpp"
#include "templates/simplify.hpp"

namespace {

using namespace rmrls;

struct GateHistogram {
  std::vector<std::uint64_t> counts = std::vector<std::uint64_t>(32, 0);
  std::uint64_t fails = 0;

  void add(int gates) { ++counts[static_cast<std::size_t>(gates)]; }
  [[nodiscard]] std::uint64_t total() const {
    return std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  }
  [[nodiscard]] double average() const {
    double weighted = 0;
    for (std::size_t g = 0; g < counts.size(); ++g) {
      weighted += static_cast<double>(g) * static_cast<double>(counts[g]);
    }
    return weighted / static_cast<double>(total());
  }
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  bench::BenchJson json(args);
  const std::uint64_t sample =
      args.full ? 40320 : (args.samples ? args.samples : 4000);

  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : 20000;
  args.apply(options);  // --threads, --dense-threshold

  std::cout << "=== Table I: three-variable reversible functions ===\n"
            << (args.full ? "all 40320 functions"
                          : "seeded sample of " + std::to_string(sample) +
                                " functions (use --full for all 40320)")
            << ", search budget " << options.max_nodes
            << " nodes per function\n\n";

  GateHistogram ours;
  GateHistogram ours_templates;
  GateHistogram ours_fredkin;  // swap triples count as one gate (NCTS-style)
  GateHistogram mmd_basic;
  GateHistogram mmd_bidir;
  GateHistogram mmd_perm;  // bidirectional + output permutations + templates

  std::uint64_t function_index = 0;
  const auto run_one = [&](const TruthTable& f) {
    const SynthesisResult r = synthesize(f, options);
    if (!r.success) {
      ++ours.fails;
      ++ours_templates.fails;
      ++ours_fredkin.fails;
      json.record("3var-" + std::to_string(function_index), 3, r, nullptr);
    } else {
      ours.add(r.circuit.gate_count());
      const Circuit simplified = simplify_templates(r.circuit).circuit;
      ours_templates.add(simplified.gate_count());
      ours_fredkin.add(fredkinize(simplified).circuit.gate_count());
      json.record("3var-" + std::to_string(function_index), 3, r,
                  &r.circuit);
    }
    ++function_index;
    mmd_basic.add(synthesize_transformation_based(f).gate_count());
    mmd_bidir.add(synthesize_transformation_bidir(f).gate_count());
    mmd_perm.add(simplify_templates(synthesize_transformation_perm(f))
                     .circuit.gate_count());
  };

  if (args.full) {
    std::vector<std::uint64_t> image(8);
    std::iota(image.begin(), image.end(), 0);
    do {
      run_one(TruthTable(image));
    } while (std::next_permutation(image.begin(), image.end()));
  } else {
    std::mt19937_64 rng(args.seed);
    for (std::uint64_t i = 0; i < sample; ++i) {
      run_one(random_reversible_function(3, rng));
    }
  }

  const OptimalCounts3 opt_nct(OptimalLibrary::kNCT);
  const OptimalCounts3 opt_ncts(OptimalLibrary::kNCTS);

  int max_gates = 8;
  for (int g = 31; g > 8; --g) {
    if (ours.counts[static_cast<std::size_t>(g)] ||
        mmd_basic.counts[static_cast<std::size_t>(g)] ||
        mmd_bidir.counts[static_cast<std::size_t>(g)] ||
        mmd_perm.counts[static_cast<std::size_t>(g)]) {
      max_gates = g;
      break;
    }
  }

  TextTable table({"gates", "RMRLS", "RMRLS+tmpl", "RMRLS+F", "MMD",
                   "MMD-bidir", "MMD-perm", "Optimal NCT", "Optimal NCTS"});
  const auto opt_at = [](const OptimalCounts3& o, int g) -> std::uint64_t {
    return g < static_cast<int>(o.histogram().size())
               ? o.histogram()[static_cast<std::size_t>(g)]
               : 0;
  };
  for (int g = max_gates; g >= 0; --g) {
    const auto idx = static_cast<std::size_t>(g);
    table.add_row({std::to_string(g), std::to_string(ours.counts[idx]),
                   std::to_string(ours_templates.counts[idx]),
                   std::to_string(ours_fredkin.counts[idx]),
                   std::to_string(mmd_basic.counts[idx]),
                   std::to_string(mmd_bidir.counts[idx]),
                   std::to_string(mmd_perm.counts[idx]),
                   std::to_string(opt_at(opt_nct, g)),
                   std::to_string(opt_at(opt_ncts, g))});
  }
  table.add_row({"Avg.", fixed(ours.average()), fixed(ours_templates.average()),
                 fixed(ours_fredkin.average()), fixed(mmd_basic.average()),
                 fixed(mmd_bidir.average()), fixed(mmd_perm.average()),
                 fixed(opt_nct.average()), fixed(opt_ncts.average())});
  table.print(std::cout);

  std::cout << "\nRMRLS failures: " << ours.fails << " / " << sample << "\n";
  std::cout << "Paper reference (Table I): RMRLS avg 6.10, Miller [7] avg"
               " 6.18, Kerntopf [6] avg 6.01, optimal NCT 5.87, optimal"
               " NCTS 5.63.\n";
  std::cout << "RMRLS+F extracts Fredkin/swap triples (the paper's"
               " future-work extension) so it is the column to compare"
               " against the SWAP-capable NCTS methods.\n";
  std::cout << "The optimal columns above are exact (whole-group BFS) and"
               " must match the paper's optimal columns exactly.\n";
  return ours.fails == 0 ? 0 : 1;
}
