/// \file table6_scal20.cpp
/// \brief Reproduces Table VI: random 6-16-variable reversible functions
/// built from cascades of at most 20 gates (paper: 1000 samples per row).

#include "bench/scalability_common.hpp"

int main(int argc, char** argv) {
  return rmrls::bench::run_scalability_table(
      "Table VI: random reversible functions, max gate count 20", 20, 1000,
       30, 20000, argc, argv);
}
