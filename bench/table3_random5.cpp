/// \file table3_random5.cpp
/// \brief Reproduces Table III: circuit-size histogram for random
/// five-variable reversible functions, including the failure rate.
///
/// The paper draws 3000 uniform random permutations of {0..31}, 180 s per
/// function, a 60-gate cap, greedy pruning; 6.5% failed. Default here:
/// 150 seeded samples (--full for 3000).

#include <iostream>
#include <random>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  bench::BenchJson json(args);
  const std::uint64_t sample =
      args.full ? 3000 : (args.samples ? args.samples : 60);

  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : 60000;
  options.max_gates = 60;  // the paper's cap
  options.greedy_k = 4;    // the paper's greedy option

  std::cout << "=== Table III: random five-variable reversible functions ===\n"
            << sample << " seeded samples (paper: 3000), max 60 gates, "
            << "greedy k=4, " << options.max_nodes
            << " nodes per function\n\n";

  std::vector<std::uint64_t> histogram(61, 0);
  std::uint64_t fails = 0;
  double gate_sum = 0;
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < sample; ++i) {
    const TruthTable f = random_reversible_function(5, rng);
    const SynthesisResult r = synthesize(f, options);
    json.record("5var-" + std::to_string(i), 5, r,
                r.success ? &r.circuit : nullptr);
    if (!r.success) {
      ++fails;
      continue;
    }
    ++histogram[static_cast<std::size_t>(r.circuit.gate_count())];
    gate_sum += r.circuit.gate_count();
  }

  TextTable table({"Circuit size", "No. of circuits"});
  for (std::size_t g = 0; g <= 60; ++g) {
    if (histogram[g] == 0) continue;
    table.add_row({std::to_string(g), std::to_string(histogram[g])});
  }
  table.print(std::cout);
  const std::uint64_t ok = sample - fails;
  std::cout << "\nAverage size: " << (ok ? fixed(gate_sum / ok) : "-")
            << "   failures: " << fails << " / " << sample << " ("
            << fixed(100.0 * fails / sample, 1) << "%)\n";
  std::cout << "Paper reference: sizes 28-51, bulk in 30-45, 194/3000"
               " (6.5%) failed within 180 s.\n";
  return 0;
}
