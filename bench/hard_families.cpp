/// \file hard_families.cpp
/// \brief Reproduces the paper's honest failure note (Section V-D): "Due
/// to memory constraints, our algorithm was not able to find a solution to
/// some examples, namely, in the ham#, hwb#, and #symm family of
/// functions."
///
/// We run the next members of each family past the ones RMRLS handles
/// (hwb4 and ham7 are in Table IV) under the same budget Table IV uses and
/// report what synthesizes and what does not — failures here are the
/// expected, paper-matching outcome, so the binary exits 0 either way.

#include <iostream>
#include <thread>

#include "bench/bench_common.hpp"
#include "bench_suite/functions.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  struct Row {
    std::string name;
    TruthTable table;
    std::uint64_t nodes;  // dense PPRMs make nodes pricey: scale budgets
  };
  const std::vector<Row> rows = {
      {"hwb4 (Table IV anchor)", suite::hwb(4), 100000},
      {"hwb5 (85 PPRM terms)", suite::hwb(5), 30000},
      {"hwb6 (186 terms)", suite::hwb(6), 6000},
      {"hwb7 (427 terms)", suite::hwb(7), 1500},
      {"6sym (465 terms)", suite::sym(6, 2, 4), 4000},
      {"8sym-lite (1877 terms)", suite::sym(8, 3, 6), 300},
  };

  std::cout << "=== Hard families (Section V-D failure note) ===\n"
            << "per-function node budgets scale inversely with PPRM"
               " density; failures below REPRODUCE the paper's reported"
               " behaviour\n\n";

  TextTable table({"Function", "Lines", "PPRM terms", "Gates", "Cost",
                   "Outcome"});
  for (const Row& row : rows) {
    const Pprm spec = pprm_of_truth_table(row.table);
    SynthesisOptions options;
    options.max_nodes = args.max_nodes ? args.max_nodes : row.nodes;
    const SynthesisResult r = synthesize(spec, options);
    if (r.success && implements(r.circuit, row.table)) {
      table.add_row({row.name, std::to_string(row.table.num_vars()),
                     std::to_string(spec.term_count()),
                     std::to_string(r.circuit.gate_count()),
                     std::to_string(quantum_cost(r.circuit)), "synthesized"});
    } else {
      table.add_row({row.name, std::to_string(row.table.num_vars()),
                     std::to_string(spec.term_count()), "-", "-",
                     "DNF (expected for the larger members)"});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe paper synthesizes hwb4 (15 gates) and fails on the"
               " larger hwb/sym members; matching failures here are a"
               " successful reproduction, so the exit code is 0 either"
               " way.\n";

  // PR-7 search-core comparison on the 7-line family member RMRLS does
  // solve (ham7, Table IV): the pre-PR-7 driver (scout + tightening, no
  // deepening ladder, no history) against the chess-engine core (informed
  // ID ladder + history-seeded reruns against one aging table), and the
  // 8-thread lazy-SMP engine on top. All three run the full refinement
  // driver under the same node budget; the comparison metrics are the
  // final gate count, the effort the returned circuit actually required
  // (nodes_at_best — nodes_expanded always equals the budget here because
  // refinement spends whatever is left hunting for better), and wall
  // clock. Records flow into --json (bench/BENCH_7.json is a committed
  // run of this section; see EXPERIMENTS.md).
  bench::BenchJson json(args);
  std::cout << "\n=== PR-7 core: ID + history vs PR-6 driver (ham7) ===\n";
  const TruthTable ham = suite::ham7();
  const Pprm ham_spec = pprm_of_truth_table(ham);
  struct Mode {
    std::string name;
    bool id;
    bool history;
    int threads;
  };
  const std::vector<Mode> modes = {
      {"ham7_pr6_baseline", false, false, 1},
      {"ham7_id_history", true, true, 1},
      {"ham7_lazy_smp_8t", true, true, 8},
  };
  TextTable cmp({"Configuration", "Gates", "Nodes@best", "Nodes", "ms",
                 "Outcome"});
  std::vector<double> effort_of(modes.size(), 0.0);
  std::vector<double> ms_of(modes.size(), 0.0);
  std::vector<int> gates_of(modes.size(), -1);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const Mode& m = modes[i];
    SynthesisOptions o;
    o.max_nodes = args.max_nodes ? args.max_nodes : 2000000;
    o.iterative_deepening = m.id;
    o.use_history = m.history;
    o.num_threads = m.threads;
    const SynthesisResult r = synthesize(ham_spec, o);
    const bool ok = r.success && implements(r.circuit, ham);
    effort_of[i] = static_cast<double>(r.stats.nodes_at_best);
    ms_of[i] = static_cast<double>(r.stats.elapsed.count()) / 1000.0;
    if (ok) gates_of[i] = r.circuit.gate_count();
    cmp.add_row({m.name,
                 ok ? std::to_string(r.circuit.gate_count()) : "-",
                 std::to_string(r.stats.nodes_at_best),
                 std::to_string(r.stats.nodes_expanded),
                 fixed(ms_of[i]), ok ? "ok" : "DNF"});
    json.record(m.name, ham.num_vars(), r, ok ? &r.circuit : nullptr);
  }
  cmp.print(std::cout);
  // Lazy SMP clamps its worker count to the core count (oversubscribed
  // workers only time-slice and re-derive each other's states), so on
  // small hosts the 8-thread row degenerates toward the sequential one.
  std::cout << "\nhardware threads: "
            << std::thread::hardware_concurrency()
            << " (lazy-SMP workers are clamped to this)\n";
  if (effort_of[0] > 0 && ms_of[2] > 0) {
    const double reduction = 100.0 * (1.0 - effort_of[1] / effort_of[0]);
    const double speedup = ms_of[1] / ms_of[2];
    std::cout << "\ngates: pr6 " << gates_of[0] << " vs id+history "
              << gates_of[1] << " vs lazy-smp " << gates_of[2] << "\n"
              << "effort-to-result reduction (ID+history vs PR-6, valid"
                 " when gates <=): "
              << fixed(reduction) << "%\n"
              << "lazy-SMP 8-thread wall speedup vs sequential: "
              << fixed(speedup) << "x\n";
  }
  return 0;
}
