/// \file hard_families.cpp
/// \brief Reproduces the paper's honest failure note (Section V-D): "Due
/// to memory constraints, our algorithm was not able to find a solution to
/// some examples, namely, in the ham#, hwb#, and #symm family of
/// functions."
///
/// We run the next members of each family past the ones RMRLS handles
/// (hwb4 and ham7 are in Table IV) under the same budget Table IV uses and
/// report what synthesizes and what does not — failures here are the
/// expected, paper-matching outcome, so the binary exits 0 either way.

#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_suite/functions.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  struct Row {
    std::string name;
    TruthTable table;
    std::uint64_t nodes;  // dense PPRMs make nodes pricey: scale budgets
  };
  const std::vector<Row> rows = {
      {"hwb4 (Table IV anchor)", suite::hwb(4), 100000},
      {"hwb5 (85 PPRM terms)", suite::hwb(5), 30000},
      {"hwb6 (186 terms)", suite::hwb(6), 6000},
      {"hwb7 (427 terms)", suite::hwb(7), 1500},
      {"6sym (465 terms)", suite::sym(6, 2, 4), 4000},
      {"8sym-lite (1877 terms)", suite::sym(8, 3, 6), 300},
  };

  std::cout << "=== Hard families (Section V-D failure note) ===\n"
            << "per-function node budgets scale inversely with PPRM"
               " density; failures below REPRODUCE the paper's reported"
               " behaviour\n\n";

  TextTable table({"Function", "Lines", "PPRM terms", "Gates", "Cost",
                   "Outcome"});
  for (const Row& row : rows) {
    const Pprm spec = pprm_of_truth_table(row.table);
    SynthesisOptions options;
    options.max_nodes = args.max_nodes ? args.max_nodes : row.nodes;
    const SynthesisResult r = synthesize(spec, options);
    if (r.success && implements(r.circuit, row.table)) {
      table.add_row({row.name, std::to_string(row.table.num_vars()),
                     std::to_string(spec.term_count()),
                     std::to_string(r.circuit.gate_count()),
                     std::to_string(quantum_cost(r.circuit)), "synthesized"});
    } else {
      table.add_row({row.name, std::to_string(row.table.num_vars()),
                     std::to_string(spec.term_count()), "-", "-",
                     "DNF (expected for the larger members)"});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe paper synthesizes hwb4 (15 gates) and fails on the"
               " larger hwb/sym members; matching failures here are a"
               " successful reproduction, so the exit code is 0 either"
               " way.\n";
  return 0;
}
