/// \file scalability_common.hpp
/// \brief Shared driver for Tables V-VII (the Section V-E scalability
/// experiments).
///
/// Pipeline, exactly as the paper describes: draw a random GT-library
/// cascade with a bounded gate count, derive the realized function's PPRM
/// (by reverse gate substitution -- no truth table, so 16 variables cost
/// nothing), then re-synthesize from the PPRM alone, stopping at the first
/// valid circuit. Reported: a histogram of found sizes in buckets of five,
/// plus the failure count/rate per variable count.

#pragma once

#include <iostream>
#include <random>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/random.hpp"

namespace rmrls::bench {

inline int run_scalability_table(const char* title, int max_gate_count,
                                 std::uint64_t paper_samples,
                                 std::uint64_t default_samples,
                                 std::uint64_t default_nodes, int argc,
                                 char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  BenchTelemetry telemetry(args);
  BenchJson json(args);
  const std::uint64_t samples =
      args.full ? paper_samples
                : (args.samples ? args.samples : default_samples);

  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : default_nodes;
  options.stop_at_first_solution = true;
  options.greedy_k = 4;  // the paper's greedy option
  args.apply(options);   // --threads, --dense-threshold

  std::cout << "=== " << title << " ===\n"
            << samples << " random GT cascades per variable count (paper: "
            << paper_samples << "), max " << max_gate_count
            << " gates per cascade, first-solution mode, "
            << options.max_nodes << " nodes per function\n\n";

  constexpr int kBuckets = 8;  // 1-5, 6-10, ..., 36-40
  TextTable table({"Vars", "1-5", "6-10", "11-15", "16-20", "21-25", "26-30",
                   "31-35", "36-40", ">40", "Failed", "%"});
  std::mt19937_64 rng(args.seed);
  std::uniform_int_distribution<int> gate_count_dist(1, max_gate_count);
  for (int vars = 6; vars <= 16; ++vars) {
    std::vector<std::uint64_t> buckets(kBuckets + 1, 0);
    std::uint64_t fails = 0;
    for (std::uint64_t i = 0; i < samples; ++i) {
      const Circuit random_cascade =
          random_circuit(vars, gate_count_dist(rng), GateLibrary::kGT, rng);
      const SynthesisResult r = synthesize(random_cascade.to_pprm(), options);
      json.record(std::to_string(vars) + "var-" + std::to_string(i), vars, r,
                  r.success ? &r.circuit : nullptr);
      if (!r.success) {
        ++fails;
        continue;
      }
      const int g = r.circuit.gate_count();
      const int bucket = g == 0 ? 0 : (g - 1) / 5;
      ++buckets[static_cast<std::size_t>(std::min(bucket, kBuckets))];
    }
    std::vector<std::string> row{std::to_string(vars)};
    for (int b = 0; b <= kBuckets; ++b) {
      row.push_back(std::to_string(buckets[static_cast<std::size_t>(b)]));
    }
    row.push_back(std::to_string(fails));
    row.push_back(fixed(100.0 * static_cast<double>(fails) /
                            static_cast<double>(samples),
                        1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}

}  // namespace rmrls::bench
