/// \file fleet_throughput.cpp
/// \brief Jobs/sec vs process count for sharded batch synthesis
/// (docs/fleet.md).
///
/// The fleet story is N independent `rmrls --batch --shard i/N`
/// processes over one shared on-disk orbit store. This harness measures
/// that story end to end: it generates a repeat-heavy corpus
/// (bench_suite/corpus.hpp), then for each process count on the ladder
/// (1, 2, 4, ... up to --max-procs) spawns the real CLI binary N times
/// with disjoint shards and wall-clocks the slowest shard, twice:
///
///   cold   a fresh cache directory per ladder rung — every orbit is
///          synthesized somewhere in the fleet exactly once, so this
///          measures synthesis scale-out plus lease-protocol overhead
///   warm   one shared cache directory pre-populated by an untimed
///          full pass — every job is a disk hit, so this measures pure
///          serving scale-out of the shared store
///
/// Jobs/s is total corpus size over wall seconds. Scaling is bounded by
/// physical cores: the JSON report records hardware_concurrency so a
/// 1-core container's flat curve reads as what it is, not as a
/// regression (bench/BENCH_10.json commits the curve with that context).
///
/// `--json FILE` writes an rmrls-fleet-bench-v1 document; `--quick`
/// shrinks the corpus and ladder for CTest smoke use.

#include <sys/wait.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/corpus.hpp"
#include "core/status.hpp"
#include "io/table.hpp"
#include "obs/json.hpp"

namespace {

using namespace rmrls;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Args {
  int size = 96;
  double repeat_rate = 0.6;
  int min_vars = 3;
  int max_vars = 5;
  std::uint64_t seed = 20040216;
  int max_procs = 8;
  long long cache_mb = 64;
  long long cache_gc_mb = 0;
  std::uint64_t max_nodes = 200000;
  std::string rmrls;    // CLI binary; default derived from argv[0]
  std::string workdir;  // empty = fresh temp dir, removed on exit
  std::string json_out;
  bool quick = false;
};

void help(std::ostream& os) {
  os << "fleet_throughput: jobs/s vs shard-process count over a shared\n"
        "on-disk orbit store (docs/fleet.md)\n"
        "  --size N          corpus size (default 96; --quick 24)\n"
        "  --repeat-rate X   orbit-repeat fraction in [0,1] (default 0.6)\n"
        "  --min-vars N      narrowest spec (default 3)\n"
        "  --max-vars N      widest spec (default 5)\n"
        "  --seed N          corpus seed (default 20040216)\n"
        "  --max-procs N     ladder top: 1,2,4,... up to N (default 8;\n"
        "                    --quick 2)\n"
        "  --cache-mb N      per-process in-memory cache MiB (default 64)\n"
        "  --cache-gc-mb N   shared-store disk budget MiB (0 = unbounded)\n"
        "  --max-nodes N     per-job search budget (default 200000)\n"
        "  --rmrls PATH      rmrls CLI binary (default: ../tools/rmrls\n"
        "                    next to this harness)\n"
        "  --workdir DIR     keep artifacts in DIR (default: fresh temp\n"
        "                    dir, removed on exit)\n"
        "  --json FILE       write an rmrls-fleet-bench-v1 document\n"
        "  --quick           CTest mode: tiny corpus, ladder 1,2\n"
        "  --help            this text\n";
}

[[noreturn]] void bad_number(const std::string& arg, const std::string& v) {
  std::cerr << "invalid number for " << arg << ": '" << v << "'\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    const auto next_ll = [&]() -> long long {
      const std::string value = next();
      try {
        std::size_t used = 0;
        const long long parsed = std::stoll(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        return parsed;
      } catch (const std::exception&) {
        bad_number(arg, value);
      }
    };
    if (arg == "--size") {
      a.size = static_cast<int>(next_ll());
    } else if (arg == "--repeat-rate") {
      const std::string value = next();
      try {
        a.repeat_rate = std::stod(value);
      } catch (const std::exception&) {
        bad_number(arg, value);
      }
    } else if (arg == "--min-vars") {
      a.min_vars = static_cast<int>(next_ll());
    } else if (arg == "--max-vars") {
      a.max_vars = static_cast<int>(next_ll());
    } else if (arg == "--seed") {
      a.seed = static_cast<std::uint64_t>(next_ll());
    } else if (arg == "--max-procs") {
      a.max_procs = static_cast<int>(next_ll());
      if (a.max_procs < 1) bad_number(arg, std::to_string(a.max_procs));
    } else if (arg == "--cache-mb") {
      a.cache_mb = next_ll();
    } else if (arg == "--cache-gc-mb") {
      a.cache_gc_mb = next_ll();
    } else if (arg == "--max-nodes") {
      a.max_nodes = static_cast<std::uint64_t>(next_ll());
    } else if (arg == "--rmrls") {
      a.rmrls = next();
    } else if (arg == "--workdir") {
      a.workdir = next();
    } else if (arg == "--json") {
      a.json_out = next();
    } else if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--help" || arg == "-h") {
      help(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      help(std::cerr);
      std::exit(2);
    }
  }
  if (a.quick) {
    a.size = std::min(a.size, 24);
    a.max_procs = std::min(a.max_procs, 2);
  }
  return a;
}

/// One spawned shard process and where its artifacts land.
struct Shard {
  pid_t pid = -1;
  std::string metrics;
  std::string log;
};

/// Aggregated result of one ladder rung (N shard processes, one phase).
struct Rung {
  std::string phase;  // "cold" | "warm"
  int procs = 0;
  double wall_s = 0;
  long long jobs = 0;
  long long ok = 0;
  long long failed = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  bool clean_exit = true;
};

/// fork/exec with stdout+stderr redirected to `log`; exits the child
/// with 127 if exec fails (the parent sees that in waitpid status).
pid_t spawn(const std::vector<std::string>& cmd, const std::string& log) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd =
      ::open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(cmd.size() + 1);
  for (const std::string& s : cmd) {
    argv.push_back(const_cast<char*>(s.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

/// Reads a shard's metrics JSONL and folds its summary record (the one
/// carrying batch_jobs) into `rung`. Missing/garbled files mark the rung
/// unclean rather than aborting the whole sweep.
void absorb_summary(const std::string& path, Rung& rung) {
  std::ifstream in(path);
  if (!in) {
    rung.clean_exit = false;
    return;
  }
  std::string line;
  bool found = false;
  const auto num = [](const JsonValue& v, const char* key) -> long long {
    const JsonValue* f = v.find(key);
    return (f != nullptr && f->is_number())
               ? static_cast<long long>(f->number)
               : 0;
  };
  while (std::getline(in, line)) {
    const std::optional<JsonValue> v = json_parse(line);
    if (!v || v->find("batch_jobs") == nullptr) continue;
    rung.jobs += num(*v, "batch_jobs");
    rung.ok += num(*v, "batch_completed");
    rung.failed += num(*v, "batch_failed");
    rung.cache_hits += num(*v, "cache_hits");
    rung.cache_misses += num(*v, "cache_misses");
    found = true;
  }
  if (!found) rung.clean_exit = false;
}

/// Runs one ladder rung: N shard processes over `cache_dir`, all
/// wall-clocked together (the fleet is done when its slowest shard is).
Rung run_rung(const Args& args, const std::string& phase, int procs,
              const fs::path& corpus, const fs::path& cache_dir,
              const fs::path& workdir) {
  Rung rung;
  rung.phase = phase;
  rung.procs = procs;
  fs::create_directories(cache_dir);
  std::vector<Shard> shards;
  const auto start = Clock::now();
  for (int i = 0; i < procs; ++i) {
    Shard shard;
    const std::string tag =
        phase + "_" + std::to_string(procs) + "_" + std::to_string(i);
    shard.metrics = (workdir / ("m_" + tag + ".jsonl")).string();
    shard.log = (workdir / ("log_" + tag + ".txt")).string();
    std::vector<std::string> cmd = {
        args.rmrls,
        "--batch", corpus.string(),
        "--shard", std::to_string(i) + "/" + std::to_string(procs),
        "--cache-dir", cache_dir.string(),
        "--cache-mb", std::to_string(args.cache_mb),
        "--max-nodes", std::to_string(args.max_nodes),
        "--batch-threads", "1",
        "--metrics-out", shard.metrics,
    };
    if (args.cache_gc_mb > 0) {
      cmd.push_back("--cache-gc-mb");
      cmd.push_back(std::to_string(args.cache_gc_mb));
    }
    shard.pid = spawn(cmd, shard.log);
    shards.push_back(std::move(shard));
  }
  for (const Shard& shard : shards) {
    int status = 0;
    if (::waitpid(shard.pid, &status, 0) != shard.pid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      rung.clean_exit = false;
      std::cerr << "shard pid " << shard.pid << " (" << phase << " "
                << rung.procs << "p) failed; see " << shard.log << "\n";
    }
  }
  rung.wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (const Shard& shard : shards) absorb_summary(shard.metrics, rung);
  return rung;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);

  if (args.rmrls.empty()) {
    // The build tree puts this harness in build/bench and the CLI in
    // build/tools; derive the sibling path from argv[0].
    const fs::path self(argv[0]);
    args.rmrls =
        (self.parent_path() / ".." / "tools" / "rmrls").lexically_normal()
            .string();
  }
  std::error_code ec;
  if (!fs::exists(args.rmrls, ec)) {
    std::cerr << "error: rmrls binary not found at '" << args.rmrls
              << "' (pass --rmrls PATH)\n";
    return 2;
  }

  const bool keep_workdir = !args.workdir.empty();
  fs::path workdir;
  if (keep_workdir) {
    workdir = args.workdir;
  } else {
    workdir = fs::temp_directory_path() /
              ("rmrls_fleet_" + std::to_string(::getpid()));
  }
  fs::create_directories(workdir);

  // One corpus for the whole sweep; every rung shards the same file.
  suite::CorpusOptions copts;
  copts.size = args.size;
  copts.repeat_rate = args.repeat_rate;
  copts.min_vars = args.min_vars;
  copts.max_vars = args.max_vars;
  copts.seed = args.seed;
  const Result<std::vector<suite::CorpusEntry>> corpus_result =
      suite::generate_corpus(copts);
  if (!corpus_result.ok()) {
    std::cerr << "error: " << corpus_result.status().to_string() << "\n";
    return 2;
  }
  const fs::path corpus = workdir / "corpus.specs";
  {
    std::ofstream out(corpus);
    out << suite::write_corpus(corpus_result.value());
    if (!out.flush()) {
      std::cerr << "error: cannot write " << corpus << "\n";
      return 6;
    }
  }

  const unsigned num_cpus = std::thread::hardware_concurrency();
  std::vector<int> ladder;
  for (int n = 1; n <= args.max_procs; n *= 2) ladder.push_back(n);

  std::cout << "=== Fleet throughput: jobs/s vs shard processes ===\n"
            << args.size << " jobs, " << fixed(args.repeat_rate * 100, 0)
            << "% orbit repeats, widths " << args.min_vars << "-"
            << args.max_vars << ", " << num_cpus
            << " hardware thread(s)\n\n";

  // Warm pass (untimed): one full run fills the shared store so the
  // warm rungs measure pure disk-hit serving.
  const fs::path warm_dir = workdir / "cache_warm";
  const Rung warm_fill =
      run_rung(args, "fill", 1, corpus, warm_dir, workdir);
  if (!warm_fill.clean_exit) {
    std::cerr << "error: warm-fill pass failed\n";
    if (!keep_workdir) fs::remove_all(workdir, ec);
    return 6;
  }

  std::vector<Rung> rungs;
  for (const int n : ladder) {
    rungs.push_back(run_rung(args, "cold", n, corpus,
                             workdir / ("cache_cold_" + std::to_string(n)),
                             workdir));
  }
  for (const int n : ladder) {
    rungs.push_back(run_rung(args, "warm", n, corpus, warm_dir, workdir));
  }

  const auto rate = [](const Rung& r) {
    return r.wall_s > 0 ? static_cast<double>(r.ok) / r.wall_s : 0.0;
  };
  double cold_base = 0, warm_base = 0;
  for (const Rung& r : rungs) {
    if (r.procs != 1) continue;
    if (r.phase == "cold") cold_base = rate(r);
    if (r.phase == "warm") warm_base = rate(r);
  }

  TextTable table(
      {"Phase", "Procs", "Jobs ok", "Wall s", "Jobs/s", "Speedup"});
  bool all_clean = true;
  for (const Rung& r : rungs) {
    const double base = r.phase == "cold" ? cold_base : warm_base;
    table.add_row({r.phase, std::to_string(r.procs),
                   std::to_string(r.ok) + "/" + std::to_string(r.jobs),
                   fixed(r.wall_s, 3), fixed(rate(r), 1),
                   base > 0 ? fixed(rate(r) / base, 2) : "n/a"});
    all_clean = all_clean && r.clean_exit && r.failed == 0 &&
                r.jobs == args.size;
  }
  table.print(std::cout);
  std::cout << "\nshard union per rung: " << args.size
            << " jobs expected; every rung "
            << (all_clean ? "clean" : "UNCLEAN — see logs") << "\n";

  if (!args.json_out.empty()) {
    std::ostringstream runs;
    runs << "[";
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      const Rung& r = rungs[i];
      JsonObject o;
      o.field("phase", r.phase)
          .field("procs", r.procs)
          .field("wall_s", r.wall_s)
          .field("jobs", static_cast<std::int64_t>(r.jobs))
          .field("ok", static_cast<std::int64_t>(r.ok))
          .field("failed", static_cast<std::int64_t>(r.failed))
          .field("jobs_per_s", rate(r))
          .field("cache_hits", static_cast<std::int64_t>(r.cache_hits))
          .field("cache_misses", static_cast<std::int64_t>(r.cache_misses))
          .field("clean", r.clean_exit);
      runs << (i ? "," : "") << o.str();
    }
    runs << "]";
    JsonObject doc;
    doc.field("schema", "rmrls-fleet-bench-v1")
        .field("corpus_size", args.size)
        .field("repeat_rate", args.repeat_rate)
        .field("min_vars", args.min_vars)
        .field("max_vars", args.max_vars)
        .field("seed", static_cast<std::uint64_t>(args.seed))
        .field("max_nodes", static_cast<std::uint64_t>(args.max_nodes))
        .field("num_cpus", static_cast<int>(num_cpus))
        .raw("runs", runs.str());
    std::ofstream out(args.json_out);
    out << doc.str() << "\n";
    if (!out.flush()) {
      std::cerr << "error: cannot write " << args.json_out << "\n";
      return 6;
    }
  }

  if (!keep_workdir) fs::remove_all(workdir, ec);
  return all_clean ? 0 : 1;
}
