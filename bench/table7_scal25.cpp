/// \file table7_scal25.cpp
/// \brief Reproduces Table VII: random 6-16-variable reversible functions
/// built from cascades of at most 25 gates (paper: 1000 samples per row;
/// this is the regime where the paper's failure rates climb to 20-45%).

#include "bench/scalability_common.hpp"

int main(int argc, char** argv) {
  return rmrls::bench::run_scalability_table(
      "Table VII: random reversible functions, max gate count 25", 25, 1000,
       15, 12000, argc, argv);
}
