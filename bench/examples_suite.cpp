/// \file examples_suite.cpp
/// \brief Regenerates the worked examples of Section V-C (Examples 1-14,
/// covering Figs. 7 and 8): synthesizes each printed specification and
/// compares gate counts with the cascades the paper prints.

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_suite/functions.hpp"
#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : 200000;

  struct Row {
    std::string label;
    Pprm spec;
    int paper_gates;  // size of the cascade the paper prints
  };
  std::vector<Row> rows;
  const auto add_table = [&rows](std::string label, const TruthTable& t,
                                 int paper_gates) {
    rows.push_back({std::move(label),
                    pprm_of_truth_table(t), paper_gates});
  };
  add_table("Fig. 1 / Fig. 3(d)", suite::fig1(), 3);
  add_table("Example 1 (Fig. 7)", suite::example(1), 4);
  add_table("Example 2 (shift right 3v)", suite::example(2), 3);
  add_table("Example 3 (Fredkin)", suite::example(3), 3);
  add_table("Example 4 (state swap 3v)", suite::example(4), 6);
  add_table("Example 5 (state swap 4v)", suite::example(5), 7);
  add_table("Example 6 (shift left 3v)", suite::example(6), 3);
  add_table("Example 7 (shift left 4v)", suite::example(7), 4);
  add_table("Example 8 (adder, Fig. 8)", suite::example(8), 4);
  add_table("Example 9 (rd53)", suite::rd53(), 13);
  add_table("Example 10 (majority5)", suite::majority5(), 16);
  add_table("Example 11 (decod24)", suite::decod24(), 11);
  add_table("Example 12 (5one013)", suite::five_one013(), 19);
  rows.push_back({"Example 14 (shift10)",
                  suite::get_benchmark("shift10").pprm, 27});

  std::cout << "=== Section V-C worked examples ===\n"
            << "search budget " << options.max_nodes
            << " nodes per example\n\n";

  TextTable table({"Example", "Ours gates", "Ours cost", "Paper gates",
                   "Circuit (ours)"});
  bool all_ok = true;
  for (const Row& row : rows) {
    const SynthesisResult r = synthesize(row.spec, options);
    if (!r.success || !implements(r.circuit, row.spec)) {
      table.add_row({row.label, "DNF", "-", std::to_string(row.paper_gates),
                     "-"});
      all_ok = false;
      continue;
    }
    std::string circuit = r.circuit.to_string();
    if (circuit.size() > 60) circuit = circuit.substr(0, 57) + "...";
    table.add_row({row.label, std::to_string(r.circuit.gate_count()),
                   std::to_string(quantum_cost(r.circuit)),
                   std::to_string(row.paper_gates), circuit});
  }
  table.print(std::cout);
  std::cout << "\nEvery non-DNF circuit above was verified by simulation"
               " against its printed specification.\n";
  return all_ok ? 0 : 1;
}
