/// \file nct_decomposition.cpp
/// \brief Extension experiment: lower every synthesized GT cascade of
/// Table IV into the NCT library (the conversion the paper's abstract
/// defers to "other algorithms" — Barenco et al. [12], implemented in
/// rev/decompose.hpp) and report the blow-up alongside the quantum-cost
/// model's prediction.

#include <iostream>

#include "bench/bench_common.hpp"
#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/circuit_stats.hpp"
#include "rev/decompose.hpp"
#include "rev/equivalence.hpp"
#include "rev/quantum_cost.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : 50000;

  std::cout << "=== Extension: GT -> NCT decomposition of Table IV"
               " circuits ===\n"
            << "budget " << options.max_nodes
            << " nodes per benchmark; every lowered cascade is checked"
               " equivalent (exact, via PPRM)\n\n";

  TextTable table({"Benchmark", "GT gates", "widest", "NCT gates", "depth",
                   "QC (GT)", "equal"});
  for (const std::string& name : suite::benchmark_names()) {
    const suite::Benchmark b = suite::get_benchmark(name);
    const SynthesisResult r = synthesize(b.pprm, options);
    if (!r.success) {
      table.add_row({name, "DNF", "-", "-", "-", "-", "-"});
      continue;
    }
    const CircuitStats before = analyze(r.circuit);
    // Full-width gates have no NCT network (parity); keep them in place
    // and report honestly.
    const Circuit lowered =
        decompose_to_nct(r.circuit, FullWidthPolicy::kKeep);
    const CircuitStats after = analyze(lowered);
    const bool equal = equivalent(lowered, r.circuit);
    table.add_row({name, std::to_string(before.gates),
                   "TOF" + std::to_string(before.max_gate_size),
                   std::to_string(after.gates) +
                       (after.fits_nct ? "" : "*"),
                   std::to_string(after.depth),
                   std::to_string(quantum_cost(r.circuit)),
                   equal ? "yes" : "NO"});
    if (!equal) {
      std::cerr << "ERROR: decomposition changed " << name << "\n";
      return 1;
    }
  }
  table.print(std::cout);
  std::cout << "\n* = a full-width gate (odd permutation) was kept: no NCT"
               " network exists without an extra line.\n"
               "The NCT count grows linearly with gate width (4(m-2) TOF3"
               " per m-control gate with spares), mirroring the trend of"
               " the quantum-cost column.\n";
  return 0;
}
