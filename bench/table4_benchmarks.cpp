/// \file table4_benchmarks.cpp
/// \brief Reproduces Table IV: the named benchmark suite with gate counts
/// and quantum costs, against the paper's own numbers and the best
/// published results of the time [13].
///
/// Every synthesized circuit is verified against its specification before
/// being reported; verification failures abort with a nonzero exit.

#include <iostream>
#include <optional>

#include "bench/bench_common.hpp"
#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/quantum_cost.hpp"
#include "templates/simplify.hpp"

int main(int argc, char** argv) {
  using namespace rmrls;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  bench::BenchJson json(args);

  SynthesisOptions options;
  options.max_nodes = args.max_nodes ? args.max_nodes : 200000;

  std::cout << "=== Table IV: reversible logic benchmarks ===\n"
            << "search budget " << options.max_nodes
            << " nodes per benchmark; every circuit verified against its"
               " spec\n\n";

  const auto opt_str = [](const auto& v) {
    return v ? std::to_string(*v) : std::string("-");
  };

  TextTable table({"Benchmark", "Lines", "Gates", "Cost", "Paper gates",
                   "Paper cost", "Best [13] gates", "Best [13] cost", "ok"});
  bool all_verified = true;
  int failures = 0;
  for (const std::string& name : suite::benchmark_names()) {
    const suite::Benchmark b = suite::get_benchmark(name);
    // Functions narrow enough to invert are searched in both directions
    // (the mirror of a cascade for f^-1 realizes f); wide structural
    // specs run forward-only.
    const SynthesisResult r = b.table
                                  ? synthesize_bidirectional(*b.table, options)
                                  : synthesize(b.pprm, options);
    std::string gates = "DNF";
    std::string cost = "-";
    std::string ok = "-";
    if (r.success) {
      const Circuit simplified = simplify_templates(r.circuit).circuit;
      gates = std::to_string(simplified.gate_count());
      cost = std::to_string(quantum_cost(simplified));
      const bool verified = implements(simplified, b.pprm);
      ok = verified ? "yes" : "NO";
      all_verified &= verified;
      json.record(name, b.info.lines, r, &simplified);
    } else {
      ++failures;
      json.record(name, b.info.lines, r, nullptr);
    }
    table.add_row({name + (b.info.nct_comparison ? "*" : ""),
                   std::to_string(b.info.lines), gates, cost,
                   opt_str(b.info.paper_gates), opt_str(b.info.paper_cost),
                   opt_str(b.info.best_gates), opt_str(b.info.best_cost),
                   ok});
  }
  table.print(std::cout);
  std::cout << "\n* = the paper compares this row using the NCT library.\n"
            << "DNF = not synthesized within the node budget (the paper"
               " also reports memory-bound failures on the ham/hwb/sym"
               " families beyond this suite).\n"
            << "Note: 2of5, 5one245, majority3, ham3/ham7, and the mod"
               " adders use our documented embeddings/definitions, so"
               " absolute numbers can differ; see EXPERIMENTS.md.\n";
  if (!all_verified) {
    std::cerr << "ERROR: a synthesized circuit failed verification\n";
    return 1;
  }
  return 0;
}
