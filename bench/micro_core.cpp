/// \file micro_core.cpp
/// \brief google-benchmark microbenchmarks for the library's hot paths:
/// the Reed-Muller transform, PPRM substitution, state hashing, candidate
/// enumeration, circuit simulation, and end-to-end synthesis of small
/// specs. These back the performance claims in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "baselines/transformation_based.hpp"
#include "core/factor_enum.hpp"
#include "core/synthesizer.hpp"
#include "obs/trace.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace {

using namespace rmrls;

void BM_ReedMullerTransform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<std::uint8_t> f(std::size_t{1} << n);
  for (auto& v : f) v = static_cast<std::uint8_t>(rng() & 1);
  for (auto _ : state) {
    std::vector<std::uint8_t> copy = f;
    reed_muller_transform(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReedMullerTransform)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_PprmOfTruthTable(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(2);
  const TruthTable tt = random_reversible_function(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pprm_of_truth_table(tt));
  }
}
BENCHMARK(BM_PprmOfTruthTable)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

void BM_Substitution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const Pprm base = pprm_of_truth_table(random_reversible_function(n, rng));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  for (auto _ : state) {
    Pprm p = base;
    p.substitute(0, factor);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Substitution)->Arg(3)->Arg(5)->Arg(8);

// Counterpart of BM_Substitution on the engine's actual hot path: price
// read-only, then materialize into a pooled destination whose buffers are
// reused, so the steady state performs no allocation at all.
void BM_SubstituteIntoPooled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const Pprm base = pprm_of_truth_table(random_reversible_function(n, rng));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  PprmPool pool;
  for (auto _ : state) {
    Pprm dst = pool.acquire();
    base.substitute_into(0, factor, dst);
    benchmark::DoNotOptimize(dst);
    pool.release(std::move(dst));
  }
}
BENCHMARK(BM_SubstituteIntoPooled)->Arg(3)->Arg(5)->Arg(8);

void BM_PprmHash(benchmark::State& state) {
  std::mt19937_64 rng(4);
  const Pprm p = pprm_of_truth_table(random_reversible_function(6, rng));
  for (auto _ : state) benchmark::DoNotOptimize(p.hash());
}
BENCHMARK(BM_PprmHash);

void BM_EnumerateCandidates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(5);
  const Pprm p = pprm_of_truth_table(random_reversible_function(n, rng));
  const SynthesisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_candidates(p, options, nullptr));
  }
}
BENCHMARK(BM_EnumerateCandidates)->Arg(3)->Arg(5)->Arg(7);

void BM_CircuitSimulate(benchmark::State& state) {
  std::mt19937_64 rng(6);
  const Circuit c = random_circuit(16, 25, GateLibrary::kGT, rng);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x = c.simulate(x) + 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CircuitSimulate);

void BM_SynthesizeFig1(benchmark::State& state) {
  const Pprm spec =
      pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_SynthesizeFig1);

void BM_Synthesize3Var(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3Var);

// Observability overhead guards. With `trace_sink == nullptr` (the
// default, as in BM_Synthesize3Var/BM_SynthesizeFig1 above) every emission
// site reduces to one inlined pointer test; the claim in
// docs/observability.md is that this costs < 2% against the same search —
// compare the *Disarmed pair below against its baseline. The NullSink
// variant then pays the full event path (construction + virtual dispatch
// into a sink that discards everything) at sampling interval 1, an upper
// bound for any real sink before I/O.

void BM_Synthesize3VarTraceDisarmed(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.trace_sink = nullptr;  // explicit: the disabled-instrumentation path
  o.phase_profile = nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarTraceDisarmed);

void BM_Synthesize3VarNullSink(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  NullTraceSink sink;
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.trace_sink = &sink;
  o.trace_sample_interval = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarNullSink);

void BM_Synthesize3VarNullSinkSampled(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  NullTraceSink sink;
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.trace_sink = &sink;
  o.trace_sample_interval = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarNullSinkSampled);

// The parallel engine on the same spec as BM_SynthesizeFig1. On a single
// hardware thread this measures coordination overhead, not speedup — the
// speedup harness is bench/parallel_speedup.
void BM_SynthesizeFig1Parallel(benchmark::State& state) {
  const Pprm spec =
      pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_SynthesizeFig1Parallel)->Arg(2)->Arg(4);

void BM_TransformationBased(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(8);
  const TruthTable spec = random_reversible_function(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_transformation_bidir(spec));
  }
}
BENCHMARK(BM_TransformationBased)->Arg(3)->Arg(6)->Arg(8);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json FILE` is translated to
// google-benchmark's --benchmark_out flags, so this harness shares the
// --json spelling of every other binary in bench/. The committed baseline
// bench/BENCH_seed.json is regenerated with `micro_core --json ...`.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --json\n";
        return 2;
      }
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.push_back("--benchmark_out_format=json");
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> argp;
  argp.reserve(args.size());
  for (std::string& a : args) argp.push_back(a.data());
  int count = static_cast<int>(argp.size());
  benchmark::Initialize(&count, argp.data());
  if (benchmark::ReportUnrecognizedArguments(count, argp.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
