/// \file micro_core.cpp
/// \brief google-benchmark microbenchmarks for the library's hot paths:
/// the Reed-Muller transform, PPRM substitution, state hashing, candidate
/// enumeration, circuit simulation, and end-to-end synthesis of small
/// specs. These back the performance claims in EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/transformation_based.hpp"
#include "core/batch.hpp"
#include "core/factor_enum.hpp"
#include "core/resilient.hpp"
#include "core/synth_cache.hpp"
#include "core/synthesizer.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "rev/canonical.hpp"
#include "rev/equivalence.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace {

using namespace rmrls;

void BM_ReedMullerTransform(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(1);
  std::vector<std::uint8_t> f(std::size_t{1} << n);
  for (auto& v : f) v = static_cast<std::uint8_t>(rng() & 1);
  for (auto _ : state) {
    std::vector<std::uint8_t> copy = f;
    reed_muller_transform(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReedMullerTransform)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_PprmOfTruthTable(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(2);
  const TruthTable tt = random_reversible_function(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pprm_of_truth_table(tt));
  }
}
BENCHMARK(BM_PprmOfTruthTable)->Arg(3)->Arg(5)->Arg(8)->Arg(12);

void BM_Substitution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const Pprm base = pprm_of_truth_table(random_reversible_function(n, rng));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  for (auto _ : state) {
    Pprm p = base;
    p.substitute(0, factor);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Substitution)->Arg(3)->Arg(5)->Arg(8);

// Counterpart of BM_Substitution on the engine's actual hot path: price
// read-only, then materialize into a pooled destination whose buffers are
// reused, so the steady state performs no allocation at all.
void BM_SubstituteIntoPooled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const Pprm base = pprm_of_truth_table(random_reversible_function(n, rng));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  PprmPool pool;
  for (auto _ : state) {
    Pprm dst = pool.acquire();
    base.substitute_into(0, factor, dst);
    benchmark::DoNotOptimize(dst);
    pool.release(std::move(dst));
  }
}
BENCHMARK(BM_SubstituteIntoPooled)->Arg(3)->Arg(5)->Arg(8);

// Word-parallel dense counterparts (rev/pprm_dense.hpp, same spec and
// factor as the sparse pair above, so each sparse/dense pair reads as a
// direct comparison). These back the dense-kernel claims in
// docs/dense_pprm.md and EXPERIMENTS.md.
void BM_DenseSubstituteIntoPooled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const DensePprm base(
      pprm_of_truth_table(random_reversible_function(n, rng)));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  DensePprmPool pool;
  for (auto _ : state) {
    DensePprm dst = pool.acquire();
    base.substitute_into(0, factor, dst);
    benchmark::DoNotOptimize(dst);
    pool.release(std::move(dst));
  }
}
BENCHMARK(BM_DenseSubstituteIntoPooled)->Arg(3)->Arg(5)->Arg(8);

void BM_SubstituteDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const Pprm base = pprm_of_truth_table(random_reversible_function(n, rng));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.substitute_delta(0, factor));
  }
}
BENCHMARK(BM_SubstituteDelta)->Arg(3)->Arg(5)->Arg(8);

void BM_DenseSubstituteDelta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(3);
  const DensePprm base(
      pprm_of_truth_table(random_reversible_function(n, rng)));
  const Cube factor = cube_of_var(1) | cube_of_var(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.substitute_delta(0, factor));
  }
}
BENCHMARK(BM_DenseSubstituteDelta)->Arg(3)->Arg(5)->Arg(8);

void BM_PprmHash(benchmark::State& state) {
  std::mt19937_64 rng(4);
  const Pprm p = pprm_of_truth_table(random_reversible_function(6, rng));
  for (auto _ : state) benchmark::DoNotOptimize(p.hash());
}
BENCHMARK(BM_PprmHash);

void BM_EnumerateCandidates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(5);
  const Pprm p = pprm_of_truth_table(random_reversible_function(n, rng));
  const SynthesisOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_candidates(p, options, nullptr));
  }
}
BENCHMARK(BM_EnumerateCandidates)->Arg(3)->Arg(5)->Arg(7);

void BM_CircuitSimulate(benchmark::State& state) {
  std::mt19937_64 rng(6);
  const Circuit c = random_circuit(16, 25, GateLibrary::kGT, rng);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x = c.simulate(x) + 1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CircuitSimulate);

// End-to-end synthesis of the paper's Fig. 1 example. The default options
// run the adaptive dense kernel (dense_threshold = 14 covers n = 3); the
// *Sparse variant pins the pre-existing cube-vector engine, so the pair
// measures the dense kernel's end-to-end speedup on an identical search
// tree (both produce the same circuit; see docs/dense_pprm.md).
void BM_SynthesizeFig1(benchmark::State& state) {
  const Pprm spec =
      pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_SynthesizeFig1);

void BM_SynthesizeFig1Sparse(benchmark::State& state) {
  const Pprm spec =
      pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.dense_threshold = 0;  // force the sparse engine
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_SynthesizeFig1Sparse);

void BM_Synthesize3Var(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3Var);

// Five variables is where substitution dominates the search (the sparse
// kernel's sort-and-merge grows with the term count while heap and
// enumeration overheads do not), so this pair shows the dense kernel's
// end-to-end effect unmasked by Amdahl's law; the budget bounds the run,
// both engines expand the same 2000 nodes.
void BM_Synthesize5Var(benchmark::State& state) {
  std::mt19937_64 rng(9);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(5, rng));
  SynthesisOptions o;
  o.max_nodes = 2000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize5Var);

void BM_Synthesize5VarSparse(benchmark::State& state) {
  std::mt19937_64 rng(9);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(5, rng));
  SynthesisOptions o;
  o.max_nodes = 2000;
  o.dense_threshold = 0;  // force the sparse engine
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize5VarSparse);

// Observability overhead guards. With `trace_sink == nullptr` (the
// default, as in BM_Synthesize3Var/BM_SynthesizeFig1 above) every emission
// site reduces to one inlined pointer test; the claim in
// docs/observability.md is that this costs < 2% against the same search —
// compare the *Disarmed pair below against its baseline. The NullSink
// variant then pays the full event path (construction + virtual dispatch
// into a sink that discards everything) at sampling interval 1, an upper
// bound for any real sink before I/O.

void BM_Synthesize3VarTraceDisarmed(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.trace_sink = nullptr;  // explicit: the disabled-instrumentation path
  o.phase_profile = nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarTraceDisarmed);

void BM_Synthesize3VarNullSink(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  NullTraceSink sink;
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.trace_sink = &sink;
  o.trace_sample_interval = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarNullSink);

void BM_Synthesize3VarNullSinkSampled(benchmark::State& state) {
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  NullTraceSink sink;
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.trace_sink = &sink;
  o.trace_sample_interval = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarNullSinkSampled);

// Live-telemetry overhead guards (obs/telemetry.hpp). The instrument
// benchmarks price the *enabled* hot path: Counter::inc is one relaxed
// fetch_add on a padded per-thread shard, Histogram::record one bucket
// increment plus the running-sum add. The *TelemetryDisabled variant
// repeats BM_Synthesize3Var with the registry explicitly disarmed — the
// search engine's cached-handle sites then reduce to one null-pointer
// test each, and the docs/observability.md claim is that this stays
// within 2% of the uninstrumented baseline (compare against
// BM_Synthesize3Var; the Enabled variant bounds the armed cost).

void BM_TelemetryCounterInc(benchmark::State& state) {
  Counter& c = Telemetry::registry().counter("bench.counter_inc");
  c.reset();
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_TelemetryCounterInc);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  Histogram& h = Telemetry::registry().histogram("bench.histogram_record");
  h.reset();
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) >> 32;  // vary buckets
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_TelemetryHistogramRecord);

void BM_Synthesize3VarTelemetryDisabled(benchmark::State& state) {
  Telemetry::disable();
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_Synthesize3VarTelemetryDisabled);

void BM_Synthesize3VarTelemetryEnabled(benchmark::State& state) {
  Telemetry& t = Telemetry::enable();
  t.reset();
  std::mt19937_64 rng(7);
  const Pprm spec = pprm_of_truth_table(random_reversible_function(3, rng));
  SynthesisOptions o;
  o.max_nodes = 20000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
  Telemetry::disable();
}
BENCHMARK(BM_Synthesize3VarTelemetryEnabled);

// The parallel engine on the same spec as BM_SynthesizeFig1. On a single
// hardware thread this measures coordination overhead, not speedup — the
// speedup harness is bench/parallel_speedup.
void BM_SynthesizeFig1Parallel(benchmark::State& state) {
  const Pprm spec =
      pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, o));
  }
}
BENCHMARK(BM_SynthesizeFig1Parallel)->Arg(2)->Arg(4);

void BM_TransformationBased(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(8);
  const TruthTable spec = random_reversible_function(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_transformation_bidir(spec));
  }
}
BENCHMARK(BM_TransformationBased)->Arg(3)->Arg(6)->Arg(8);

// Cache-path microbenchmarks (docs/caching.md). The first three price the
// building blocks of a verified cache hit; BM_CacheHitPath is the whole
// hit service — canonicalize, shard lookup, wire relabeling, equivalence
// re-verification — i.e. the numerator of the "hit latency < 1% of cold
// synthesis" claim that bench/batch_throughput measures end to end.

void BM_Canonicalize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937_64 rng(21);
  const TruthTable spec = random_reversible_function(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonicalize(spec));
  }
}
// 4 and 6 take the exact n! scan; 8 exercises the signature-pruned path.
BENCHMARK(BM_Canonicalize)->Arg(4)->Arg(6)->Arg(8);

void BM_RelabelWires(benchmark::State& state) {
  std::mt19937_64 rng(22);
  const Circuit c = random_circuit(8, 25, GateLibrary::kGT, rng);
  const std::vector<int> sigma = {3, 1, 7, 0, 5, 2, 6, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.relabel_wires(sigma));
  }
}
BENCHMARK(BM_RelabelWires);

void BM_CacheHitPath(benchmark::State& state) {
  std::mt19937_64 rng(23);
  const TruthTable spec = random_reversible_function(4, rng);
  const CanonicalForm form = canonicalize(spec);
  SynthCache cache{SynthCacheOptions{}};
  // Seed the cache with a constructive circuit for the representative, as
  // a warm batch run would have left behind.
  cache.insert(form.key, synthesize_transformation_bidir(form.representative));
  const Pprm spec_pprm = pprm_of_truth_table(spec);
  for (auto _ : state) {
    const CanonicalForm f = canonicalize(spec);
    const std::optional<Circuit> got = cache.lookup(f.key);
    const Circuit rebuilt = reconstruct_circuit(*got, f.transform);
    benchmark::DoNotOptimize(equivalent(rebuilt, spec_pprm));
  }
}
BENCHMARK(BM_CacheHitPath);

// The denominator of the same claim: cold resilient synthesis of the
// identical spec BM_CacheHitPath serves from the cache (seed 23 above).
void BM_ColdSynthesisRandom4(benchmark::State& state) {
  std::mt19937_64 rng(23);
  const TruthTable spec = random_reversible_function(4, rng);
  const ResilienceOptions o;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_resilient(spec, o));
  }
}
BENCHMARK(BM_ColdSynthesisRandom4);

// The batch engine on a fixed 16-job, 50%-orbit-repeat 4-variable
// workload, sequentially (no cache) vs with a fresh orbit cache per
// iteration. Single-threaded on purpose: the pair isolates the cache's
// work-avoidance from the thread pool's parallelism (which
// bench/batch_throughput measures with real thread counts).
std::vector<BatchJob> micro_batch_jobs() {
  std::mt19937_64 rng(24);
  std::vector<TruthTable> bases;
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 16; ++i) {
    TruthTable t;
    if (i < 8) {
      t = random_reversible_function(4, rng);
      bases.push_back(t);
    } else {
      std::vector<int> sigma = {0, 1, 2, 3};
      std::shuffle(sigma.begin(), sigma.end(), rng);
      t = conjugate(bases[rng() % bases.size()], sigma);
      if (rng() & 1u) t = t.inverse();
    }
    jobs.push_back(BatchJob{"job" + std::to_string(i), std::move(t)});
  }
  return jobs;
}

void BM_BatchThroughputSequential(benchmark::State& state) {
  const std::vector<BatchJob> jobs = micro_batch_jobs();
  BatchOptions o;
  o.resilience.search.max_nodes = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch(jobs, o));
  }
}
BENCHMARK(BM_BatchThroughputSequential);

void BM_BatchThroughputCached(benchmark::State& state) {
  const std::vector<BatchJob> jobs = micro_batch_jobs();
  for (auto _ : state) {
    SynthCache cache{SynthCacheOptions{}};
    BatchOptions o;
    o.resilience.search.max_nodes = 50000;
    o.cache = &cache;
    benchmark::DoNotOptimize(run_batch(jobs, o));
  }
}
BENCHMARK(BM_BatchThroughputCached);

/// One benchmark's name -> real_time (ns) from a google-benchmark JSON
/// report. Aggregate rows (mean/median/stddev repetitions) are skipped.
std::vector<std::pair<std::string, double>> read_report(
    const std::string& path) {
  std::vector<std::pair<std::string, double>> out;
  std::ifstream in(path);
  if (!in) return out;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = rmrls::json_parse(buf.str());
  if (!parsed || !parsed->is_object()) return out;
  const rmrls::JsonValue* benches = parsed->find("benchmarks");
  if (benches == nullptr ||
      benches->type != rmrls::JsonValue::Type::kArray) {
    return out;
  }
  for (const rmrls::JsonValue& b : benches->array) {
    if (!b.is_object()) continue;
    const rmrls::JsonValue* name = b.find("name");
    const rmrls::JsonValue* rt = b.find("real_time");
    const rmrls::JsonValue* run_type = b.find("run_type");
    if (name == nullptr || !name->is_string() || rt == nullptr ||
        !rt->is_number()) {
      continue;
    }
    if (run_type != nullptr && run_type->is_string() &&
        run_type->string != "iteration") {
      continue;
    }
    out.emplace_back(name->string, rt->number);
  }
  return out;
}

/// Prints per-benchmark real_time deltas of this run against a committed
/// baseline report (bench/BENCH_seed.json by default when --json is
/// given). Positive speedup = this run is faster.
void print_baseline_delta(const std::string& current_path,
                          const std::string& baseline_path) {
  const auto baseline = read_report(baseline_path);
  const auto current = read_report(current_path);
  if (baseline.empty()) {
    std::cerr << "note: no baseline records in " << baseline_path
              << "; skipping delta report\n";
    return;
  }
  if (current.empty()) {
    std::cerr << "note: no current records in " << current_path
              << "; skipping delta report\n";
    return;
  }
  std::cout << "\n=== delta vs baseline " << baseline_path << " ===\n";
  std::printf("%-40s %12s %12s %9s\n", "benchmark", "baseline_ns",
              "current_ns", "speedup");
  for (const auto& [name, now_ns] : current) {
    double base_ns = -1.0;
    for (const auto& [bname, bns] : baseline) {
      if (bname == name) {
        base_ns = bns;
        break;
      }
    }
    if (base_ns < 0) {
      std::printf("%-40s %12s %12.0f %9s\n", name.c_str(), "-", now_ns,
                  "new");
    } else if (now_ns > 0) {
      std::printf("%-40s %12.0f %12.0f %8.2fx\n", name.c_str(), base_ns,
                  now_ns, base_ns / now_ns);
    }
  }
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): `--json FILE` is translated to
// google-benchmark's --benchmark_out flags, so this harness shares the
// --json spelling of every other binary in bench/. The committed baseline
// bench/BENCH_seed.json is regenerated with `micro_core --json ...`;
// after a --json run the harness prints each benchmark's real_time delta
// against `--baseline FILE` (default bench/BENCH_seed.json, resolved
// relative to the working directory; missing baseline = note, not error).
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  std::string json_out;
  std::string baseline = "bench/BENCH_seed.json";
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --json\n";
        return 2;
      }
      json_out = argv[++i];
      args.push_back("--benchmark_out=" + json_out);
      args.push_back("--benchmark_out_format=json");
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for --baseline\n";
        return 2;
      }
      baseline = argv[++i];
    } else {
      args.push_back(arg);
    }
  }
  std::vector<char*> argp;
  argp.reserve(args.size());
  for (std::string& a : args) argp.push_back(a.data());
  int count = static_cast<int>(argp.size());
  benchmark::Initialize(&count, argp.data());
  if (benchmark::ReportUnrecognizedArguments(count, argp.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  // RunSpecifiedBenchmarks closes its report stream on return, so the
  // file is complete and readable here.
  if (!json_out.empty()) print_baseline_delta(json_out, baseline);
  benchmark::Shutdown();
  return 0;
}
