/// \file ablation_heuristics.cpp
/// \brief Ablation study over the design choices DESIGN.md calls out:
/// priority weights (eq. 4), the additional-substitution classes
/// (Section IV-D), greedy pruning (Section IV-E), the restart heuristic,
/// and our extensions (transposition table, exemption budget/scope,
/// iterative refinement).
///
/// Workload: a seeded sample of 3- and 4-variable random functions plus
/// four Table IV benchmarks. Reported per configuration: average gates,
/// failure count, average nodes expanded.

#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "bench_suite/registry.hpp"
#include "core/synthesizer.hpp"
#include "io/table.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace {

using namespace rmrls;

struct Config {
  std::string name;
  std::function<void(SynthesisOptions&)> tweak;
};

struct Outcome {
  double avg_gates = 0;
  std::uint64_t fails = 0;
  double avg_nodes = 0;
};

Outcome evaluate(const std::vector<Pprm>& workload,
                 const SynthesisOptions& options) {
  Outcome out;
  double gates = 0;
  double nodes = 0;
  std::uint64_t ok = 0;
  for (const Pprm& spec : workload) {
    const SynthesisResult r = synthesize(spec, options);
    nodes += static_cast<double>(r.stats.nodes_expanded);
    if (!r.success) {
      ++out.fails;
      continue;
    }
    gates += r.circuit.gate_count();
    ++ok;
  }
  out.avg_gates = ok ? gates / static_cast<double>(ok) : 0;
  out.avg_nodes = nodes / static_cast<double>(workload.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::BenchTelemetry telemetry(args);
  const std::uint64_t n3 = args.samples ? args.samples : 150;
  const std::uint64_t n4 = args.samples ? args.samples / 3 + 1 : 50;

  std::vector<Pprm> workload;
  std::mt19937_64 rng(args.seed);
  for (std::uint64_t i = 0; i < n3; ++i) {
    workload.push_back(pprm_of_truth_table(random_reversible_function(3, rng)));
  }
  for (std::uint64_t i = 0; i < n4; ++i) {
    workload.push_back(pprm_of_truth_table(random_reversible_function(4, rng)));
  }
  for (const char* name : {"3_17", "4_49", "hwb4", "decod24"}) {
    workload.push_back(suite::get_benchmark(name).pprm);
  }

  SynthesisOptions base;
  base.max_nodes = args.max_nodes ? args.max_nodes : 20000;

  const std::vector<Config> configs = {
      {"default", [](SynthesisOptions&) {}},
      {"alpha=0 (no depth reward)",
       [](SynthesisOptions& o) { o.alpha = 0.0; }},
      {"beta=0 (no elim reward)", [](SynthesisOptions& o) { o.beta = 0.0; }},
      {"gamma=0 (no literal penalty)",
       [](SynthesisOptions& o) { o.gamma = 0.0; }},
      {"cumulative elim priority",
       [](SynthesisOptions& o) { o.cumulative_elim_priority = true; }},
      {"basic substitutions only",
       [](SynthesisOptions& o) {
         o.allow_relaxed_targets = false;
         o.allow_complement = false;
       }},
      {"greedy k=1", [](SynthesisOptions& o) { o.greedy_k = 1; }},
      {"greedy k=3", [](SynthesisOptions& o) { o.greedy_k = 3; }},
      {"greedy k=5", [](SynthesisOptions& o) { o.greedy_k = 5; }},
      {"no restarts", [](SynthesisOptions& o) { o.restart_interval = 0; }},
      {"restart every 2000",
       [](SynthesisOptions& o) { o.restart_interval = 2000; }},
      {"no transposition table",
       [](SynthesisOptions& o) { o.use_transposition_table = false; }},
      {"tt policy = always",
       [](SynthesisOptions& o) {
         o.tt_replacement = TTReplacement::kAlways;
       }},
      {"tt policy = depth-preferred",
       [](SynthesisOptions& o) {
         o.tt_replacement = TTReplacement::kDepthPreferred;
       }},
      {"tt policy = aging",
       [](SynthesisOptions& o) {
         o.tt_replacement = TTReplacement::kAging;
       }},
      {"tt budget = 1 MiB",
       [](SynthesisOptions& o) { o.tt_mb = 1; }},
      {"no history heuristic",
       [](SynthesisOptions& o) { o.use_history = false; }},
      {"no iterative deepening",
       [](SynthesisOptions& o) { o.iterative_deepening = false; }},
      {"no ID, no history",
       [](SynthesisOptions& o) {
         o.iterative_deepening = false;
         o.use_history = false;
       }},
      {"no iterative refinement",
       [](SynthesisOptions& o) { o.iterative_refinement = false; }},
      {"exempt scope = additional",
       [](SynthesisOptions& o) {
         o.exempt_scope = SynthesisOptions::ExemptScope::kAdditional;
       }},
      {"exempt scope = any",
       [](SynthesisOptions& o) {
         o.exempt_scope = SynthesisOptions::ExemptScope::kAny;
       }},
      {"exempt budget = 0",
       [](SynthesisOptions& o) { o.exempt_budget = 0; }},
      {"exempt budget = 4",
       [](SynthesisOptions& o) { o.exempt_budget = 4; }},
      {"forbid exempt chains",
       [](SynthesisOptions& o) { o.forbid_exempt_chains = true; }},
  };

  std::cout << "=== Ablation: search heuristics and extensions ===\n"
            << "workload: " << n3 << " random 3-var + " << n4
            << " random 4-var functions + 4 Table IV benchmarks; budget "
            << base.max_nodes << " nodes\n\n";

  TextTable table({"Configuration", "Avg gates", "Fails", "Avg nodes"});
  for (const Config& cfg : configs) {
    SynthesisOptions o = base;
    cfg.tweak(o);
    const Outcome out = evaluate(workload, o);
    table.add_row({cfg.name, fixed(out.avg_gates),
                   std::to_string(out.fails),
                   std::to_string(static_cast<long long>(out.avg_nodes))});
  }
  table.print(std::cout);
  std::cout << "\nLower avg gates / fails is better; avg nodes measures"
               " search effort actually spent (budget-capped).\n";
  return 0;
}
