// Tests for the sharded orbit cache (core/synth_cache.hpp) and the batch
// driver built on it (core/batch.hpp): LRU eviction under the byte budget,
// the on-disk store across a cold restart, single-flight deduplication
// under contention, the two-level thread split, and the batch counters'
// invariants.

#include "core/synth_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "core/batch.hpp"
#include "rev/equivalence.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

Circuit toy_circuit(int lines, int seed) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
  return random_circuit(lines, 4, GateLibrary::kGT, rng);
}

std::string fresh_dir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SynthCache, InsertLookupRoundTrip) {
  SynthCache cache(SynthCacheOptions{});
  EXPECT_FALSE(cache.lookup(42).has_value());
  const Circuit c = toy_circuit(4, 1);
  cache.insert(42, c);
  const auto hit = cache.lookup(42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, c);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(SynthCache, ByteBudgetEvictsLeastRecentlyUsed) {
  SynthCacheOptions options;
  options.shards = 1;           // deterministic: one LRU list
  options.byte_budget = 2000;   // a handful of toy circuits
  SynthCache cache(options);
  const int kKeys = 64;
  for (int k = 0; k < kKeys; ++k) cache.insert(k, toy_circuit(4, k));
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_LT(cache.entry_count(), static_cast<std::size_t>(kKeys));
  EXPECT_LE(cache.bytes_used(), options.byte_budget);
  // The most recent key must have survived; the oldest must be gone.
  EXPECT_TRUE(cache.lookup(kKeys - 1).has_value());
  EXPECT_FALSE(cache.lookup(0).has_value());
}

TEST(SynthCache, OversizedEntryStillInserts) {
  SynthCacheOptions options;
  options.shards = 1;
  options.byte_budget = 1;  // below any single entry's cost
  SynthCache cache(options);
  cache.insert(7, toy_circuit(4, 7));
  // The freshest entry is exempt from eviction, so the cache still serves.
  EXPECT_TRUE(cache.lookup(7).has_value());
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(SynthCache, ReinsertUpdatesInPlace) {
  SynthCache cache(SynthCacheOptions{});
  cache.insert(5, toy_circuit(4, 1));
  const Circuit replacement = toy_circuit(4, 2);
  cache.insert(5, replacement);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(*cache.lookup(5), replacement);
}

TEST(SynthCache, DiskStoreSurvivesRestart) {
  const std::string dir = fresh_dir("synth_cache_disk");
  const Circuit c = toy_circuit(5, 9);
  {
    SynthCacheOptions options;
    options.dir = dir;
    SynthCache cache(options);
    cache.insert(0xabcdef, c);
  }
  // A cold cache over the same directory revives the entry from disk and
  // the revived circuit is gate-for-gate identical (.tfc round-trip).
  SynthCacheOptions options;
  options.dir = dir;
  SynthCache cache(options);
  const auto hit = cache.lookup(0xabcdef);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, c);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SynthCache, CorruptDiskEntryDegradesToMiss) {
  const std::string dir = fresh_dir("synth_cache_corrupt");
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(std::filesystem::path(dir) /
                      "00000000000000ff.tfc");
    out << "this is not a tfc file\n";
  }
  SynthCacheOptions options;
  options.dir = dir;
  SynthCache cache(options);
  EXPECT_FALSE(cache.lookup(0xff).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SynthCache, ConcurrentWritersNeverTearDiskEntries) {
  // Many caches (think: many rmrls-serve daemons or batch runs) sharing
  // one --cache-dir, all publishing the same keys at once. The tmp+rename
  // protocol (unique `<hex>.tmp<pid>.<serial>` staging name, atomic
  // rename) must guarantee a reader only ever sees a complete file —
  // never a torn one — whichever writer wins each race.
  const std::string dir = fresh_dir("synth_cache_racing_writers");
  constexpr int kWriters = 8;
  constexpr int kKeys = 16;
  constexpr int kRounds = 8;
  std::vector<Circuit> variants;
  for (int w = 0; w < kWriters; ++w) variants.push_back(toy_circuit(5, w));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_reads{0};
  // A reader hammering the same keys through its own cold cache. Because
  // rename is atomic and nothing ever unlinks a published key, the moment
  // a key's file exists every open must see a complete circuit; a miss on
  // an existing file means the reader caught a torn write.
  std::thread reader([&] {
    SynthCacheOptions options;
    options.dir = dir;
    options.byte_budget = 1;  // keep nothing in memory: every hit is disk
    while (!stop.load(std::memory_order_relaxed)) {
      SynthCache probe(options);
      for (int k = 0; k < kKeys; ++k) {
        std::ostringstream name;
        name << std::hex << std::setw(16) << std::setfill('0') << k
             << ".tfc";
        const bool published =
            std::filesystem::exists(std::filesystem::path(dir) / name.str());
        const auto hit = probe.lookup(static_cast<std::uint64_t>(k));
        if (published && !hit.has_value()) ++torn_reads;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      SynthCacheOptions options;
      options.dir = dir;
      SynthCache mine(options);
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeys; ++k) {
          mine.insert(static_cast<std::uint64_t>(k), variants[w]);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0u);

  // Afterwards: every key revives as one of the written variants, and no
  // staging file leaked past its rename.
  SynthCacheOptions options;
  options.dir = dir;
  SynthCache cold(options);
  for (int k = 0; k < kKeys; ++k) {
    const auto hit = cold.lookup(static_cast<std::uint64_t>(k));
    ASSERT_TRUE(hit.has_value()) << "key " << k << " lost in the race";
    bool known = false;
    for (const Circuit& v : variants) known = known || (*hit == v);
    EXPECT_TRUE(known) << "key " << k << " revived a circuit no writer wrote";
  }
  std::uint64_t leftovers = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u) << "tmp staging files leaked past rename";
  std::filesystem::remove_all(dir);
}

TEST(SynthCache, WriterRacingCorruptFileStillServes) {
  // A half-written or garbage file under a key being actively republished
  // must degrade to a miss (never an exception) and then heal once a
  // writer's rename lands.
  const std::string dir = fresh_dir("synth_cache_corrupt_race");
  std::filesystem::create_directories(dir);
  const std::uint64_t key = 0x2a;
  const auto path = std::filesystem::path(dir) / "000000000000002a.tfc";
  {
    std::ofstream out(path);
    out << ".v a,b\n.i a\ntruncated";
  }
  SynthCacheOptions options;
  options.dir = dir;
  options.byte_budget = 1;  // force every lookup back to disk
  SynthCache cache(options);
  EXPECT_FALSE(cache.lookup(key).has_value());
  const Circuit good = toy_circuit(5, 3);
  cache.insert(key, good);
  const auto healed = cache.lookup(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(*healed, good);
  std::filesystem::remove_all(dir);
}

TEST(SynthCache, SingleFlightElectsOneLeader) {
  SynthCache cache(SynthCacheOptions{});
  const Circuit c = toy_circuit(4, 3);
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> followers_with_result{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SynthCache::Acquisition acq = cache.acquire(99);
      if (acq.outcome == SynthCache::Outcome::kLead) {
        leaders.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        cache.publish(99, &c);
      } else if (acq.circuit.has_value() && *acq.circuit == c) {
        followers_with_result.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(followers_with_result.load(), kThreads - 1);
  EXPECT_TRUE(cache.lookup(99).has_value());
}

TEST(SynthCache, FailedLeaderReleasesFollowersEmptyHanded) {
  SynthCache cache(SynthCacheOptions{});
  SynthCache::Acquisition lead = cache.acquire(7);
  ASSERT_EQ(lead.outcome, SynthCache::Outcome::kLead);
  std::thread follower([&] {
    SynthCache::Acquisition acq = cache.acquire(7);
    EXPECT_EQ(acq.outcome, SynthCache::Outcome::kFollow);
    EXPECT_FALSE(acq.circuit.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cache.publish(7, nullptr);  // synthesis failed; nothing stored
  follower.join();
  // The key is cold again: the next acquire leads.
  EXPECT_EQ(cache.acquire(7).outcome, SynthCache::Outcome::kLead);
  cache.publish(7, nullptr);
}

TEST(ThreadSplit, JobsGetPriorityAndSearchKeepsTheRemainder) {
  // 8 threads over 4 jobs: 4 concurrent jobs, 2 search workers each.
  EXPECT_EQ(split_threads(8, 0, 4).batch_threads, 4);
  EXPECT_EQ(split_threads(8, 0, 4).search_threads, 2);
  // More jobs than threads: every thread runs jobs, searches stay
  // sequential.
  EXPECT_EQ(split_threads(4, 0, 100).batch_threads, 4);
  EXPECT_EQ(split_threads(4, 0, 100).search_threads, 1);
  // An explicit batch level wins, clamped to the job count.
  EXPECT_EQ(split_threads(8, 2, 4).batch_threads, 2);
  EXPECT_EQ(split_threads(8, 2, 4).search_threads, 4);
  EXPECT_EQ(split_threads(8, 16, 4).batch_threads, 4);
  EXPECT_EQ(split_threads(1, 0, 0).batch_threads, 1);
  EXPECT_GE(split_threads(0, 0, 4).batch_threads, 1);  // 0 = hardware
}

std::vector<BatchJob> orbit_heavy_jobs(int n, int unique, int copies,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<BatchJob> jobs;
  std::vector<TruthTable> bases;
  for (int u = 0; u < unique; ++u) {
    bases.push_back(random_reversible_function(n, rng));
  }
  for (int c = 0; c < copies; ++c) {
    for (int u = 0; u < unique; ++u) {
      TruthTable t = bases[static_cast<std::size_t>(u)];
      if (c > 0) {
        std::vector<int> sigma(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) sigma[static_cast<std::size_t>(i)] = i;
        std::shuffle(sigma.begin(), sigma.end(), rng);
        t = conjugate(t, sigma);
        if (rng() & 1u) t = t.inverse();
      }
      jobs.push_back(BatchJob{
          "job" + std::to_string(jobs.size()), std::move(t)});
    }
  }
  return jobs;
}

TEST(Batch, EveryOutcomeIsVerifiedAgainstItsOwnSpec) {
  const std::vector<BatchJob> jobs = orbit_heavy_jobs(3, 4, 3, 11);
  SynthCache cache(SynthCacheOptions{});
  BatchOptions options;
  options.total_threads = 4;
  options.cache = &cache;
  const BatchResult result = run_batch(jobs, options);
  EXPECT_TRUE(result.status.ok());
  ASSERT_EQ(result.outcomes.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const BatchJobOutcome& out = result.outcomes[i];
    EXPECT_TRUE(out.status.ok()) << out.name;
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.result.circuit.to_truth_table(), jobs[i].spec) << out.name;
  }
}

TEST(Batch, CountersRespectTheirInvariants) {
  const std::vector<BatchJob> jobs = orbit_heavy_jobs(3, 3, 4, 12);
  SynthCache cache(SynthCacheOptions{});
  BatchOptions options;
  options.total_threads = 4;
  options.cache = &cache;
  const BatchResult result = run_batch(jobs, options);
  const BatchStats& s = result.stats;
  EXPECT_EQ(s.jobs, jobs.size());
  EXPECT_EQ(s.completed + s.failed, s.jobs);
  EXPECT_LE(s.cache_orbit_hits, s.cache_hits);
  EXPECT_LE(s.cache_hits + s.cache_misses + s.batch_dedup, s.jobs);
  // 3 orbits, 12 jobs: at most one synthesis per orbit plus collisions.
  EXPECT_GE(s.cache_hits + s.batch_dedup, s.jobs - 3 * 2);
  EXPECT_GT(s.cache_hits, 0u);
}

TEST(Batch, CachelessRunMatchesSingleShotSynthesis) {
  // Without a cache the driver must behave like per-job
  // synthesize_resilient on the original spec (the --cache-mb 0
  // bit-identity guarantee).
  std::mt19937_64 rng(13);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(
        BatchJob{"j" + std::to_string(i), random_reversible_function(3, rng)});
  }
  BatchOptions options;
  options.total_threads = 1;
  const BatchResult result = run_batch(jobs, options);
  EXPECT_TRUE(result.status.ok());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const ResilientResult single = synthesize_resilient(jobs[i].spec, {});
    EXPECT_EQ(result.outcomes[i].result.circuit, single.result.circuit);
  }
  EXPECT_EQ(result.stats.cache_hits, 0u);
  EXPECT_EQ(result.stats.cache_misses, jobs.size());
}

TEST(Batch, SharedDeadlineCancelsUnstartedJobs) {
  // A pre-fired token (as the SIGINT handler would leave it) fails every
  // job with kCancelled without running any engine.
  std::mt19937_64 rng(14);
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        BatchJob{"j" + std::to_string(i), random_reversible_function(4, rng)});
  }
  CancelToken token;
  token.cancel(CancelReason::kUser);
  BatchOptions options;
  options.cancel_token = &token;
  const BatchResult result = run_batch(jobs, options);
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(result.stats.failed, jobs.size());
  for (const BatchJobOutcome& out : result.outcomes) {
    EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  }
}

TEST(Batch, EmptyBatchSucceedsWithZeroStats) {
  // A shard that owns no specs (docs/fleet.md) — or an empty corpus — is
  // a valid zero-job batch, not caller misuse.
  const BatchResult result = run_batch({}, {});
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.stats.jobs, 0u);
  EXPECT_EQ(result.stats.completed, 0u);
  EXPECT_EQ(result.stats.failed, 0u);
  EXPECT_TRUE(result.outcomes.empty());
}

TEST(Batch, WarmDiskCacheServesASecondBatch) {
  const std::string dir = fresh_dir("batch_disk");
  const std::vector<BatchJob> jobs = orbit_heavy_jobs(3, 3, 2, 15);
  SynthCacheOptions copts;
  copts.dir = dir;
  BatchStats first;
  {
    SynthCache cache(copts);
    BatchOptions options;
    options.cache = &cache;
    first = run_batch(jobs, options).stats;
  }
  ASSERT_GT(first.cache_misses, 0u);
  // A cold in-memory cache over the same directory: every orbit is served
  // from disk, so nothing synthesizes again.
  SynthCache cache(copts);
  BatchOptions options;
  options.cache = &cache;
  const BatchResult second = run_batch(jobs, options);
  EXPECT_TRUE(second.status.ok());
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hits, jobs.size());
  EXPECT_GT(cache.stats().disk_hits, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rmrls
