// Tests for the cube encoding of positive-polarity product terms.

#include "rev/cube.hpp"

#include <gtest/gtest.h>

namespace rmrls {
namespace {

TEST(Cube, ConstantOneHasNoLiterals) {
  EXPECT_EQ(literal_count(kConstOne), 0);
  EXPECT_EQ(cube_to_string(kConstOne), "1");
}

TEST(Cube, SingleVariable) {
  const Cube a = cube_of_var(0);
  EXPECT_EQ(literal_count(a), 1);
  EXPECT_TRUE(cube_has_var(a, 0));
  EXPECT_FALSE(cube_has_var(a, 1));
  EXPECT_EQ(cube_to_string(a, 3), "a");
}

TEST(Cube, ProductRendering) {
  const Cube abc = cube_of_var(0) | cube_of_var(1) | cube_of_var(2);
  EXPECT_EQ(cube_to_string(abc, 3), "abc");
  const Cube ac = cube_of_var(0) | cube_of_var(2);
  EXPECT_EQ(cube_to_string(ac, 3), "ac");
}

TEST(Cube, WideVariableNames) {
  const Cube c = cube_of_var(0) | cube_of_var(30);
  EXPECT_EQ(cube_to_string(c, 31), "x0.x30");
}

TEST(Cube, HighestVariableSupported) {
  const Cube top = cube_of_var(kMaxVariables - 1);
  EXPECT_TRUE(cube_has_var(top, kMaxVariables - 1));
  EXPECT_EQ(literal_count(top), 1);
}

TEST(Cube, EvalIsConjunction) {
  const Cube ab = cube_of_var(0) | cube_of_var(1);
  EXPECT_TRUE(cube_eval(ab, 0b011));
  EXPECT_TRUE(cube_eval(ab, 0b111));
  EXPECT_FALSE(cube_eval(ab, 0b001));
  EXPECT_FALSE(cube_eval(ab, 0b100));
  // The constant term is true everywhere.
  EXPECT_TRUE(cube_eval(kConstOne, 0));
  EXPECT_TRUE(cube_eval(kConstOne, ~std::uint64_t{0}));
}

}  // namespace
}  // namespace rmrls
