// Tests for the circuit-statistics module.

#include "rev/circuit_stats.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(CircuitStats, EmptyCircuit) {
  const CircuitStats s = analyze(Circuit(5));
  EXPECT_EQ(s.gates, 0);
  EXPECT_EQ(s.depth, 0);
  EXPECT_EQ(s.used_lines, 0);
  EXPECT_TRUE(s.fits_nct);
}

TEST(CircuitStats, HistogramAndLibraryClassification) {
  Circuit c(4);
  c.append(Gate(kConstOne, 0));                                   // TOF1
  c.append(Gate(cube_of_var(1), 0));                              // TOF2
  c.append(Gate(cube_of_var(1) | cube_of_var(2), 0));             // TOF3
  const CircuitStats nct = analyze(c);
  EXPECT_TRUE(nct.fits_nct);
  EXPECT_EQ(nct.size_histogram[1], 1);
  EXPECT_EQ(nct.size_histogram[2], 1);
  EXPECT_EQ(nct.size_histogram[3], 1);
  EXPECT_EQ(nct.controls_total, 0 + 1 + 2);
  c.append(Gate(cube_of_var(1) | cube_of_var(2) | cube_of_var(3), 0));
  EXPECT_FALSE(analyze(c).fits_nct);
  EXPECT_EQ(analyze(c).max_gate_size, 4);
}

TEST(CircuitStats, UsedLinesCountsTouchedOnly) {
  Circuit c(6);
  c.append(Gate(cube_of_var(1), 0));
  c.append(Gate(cube_of_var(1), 4));
  EXPECT_EQ(analyze(c).used_lines, 3);  // lines 0, 1, 4
}

TEST(CircuitStats, DepthPacksCommutingGates) {
  Circuit c(4);
  // Two gates sharing only a control commute: depth 1.
  c.append(Gate(cube_of_var(0), 1));
  c.append(Gate(cube_of_var(0), 2));
  EXPECT_EQ(analyze(c).depth, 1);
  // A gate reading line 1 (written above) must wait: depth 2.
  c.append(Gate(cube_of_var(1), 3));
  EXPECT_EQ(analyze(c).depth, 2);
}

TEST(CircuitStats, DepthOfSequentialChain) {
  // A ripple chain where every gate depends on the previous target.
  Circuit c(5);
  for (int i = 0; i + 1 < 5; ++i) c.append(Gate(cube_of_var(i), i + 1));
  EXPECT_EQ(analyze(c).depth, 4);
}

TEST(CircuitStats, DepthNeverExceedsGateCount) {
  std::mt19937_64 rng(95);
  for (int trial = 0; trial < 20; ++trial) {
    const Circuit c = random_circuit(6, 15, GateLibrary::kGT, rng);
    const CircuitStats s = analyze(c);
    EXPECT_LE(s.depth, s.gates);
    EXPECT_GE(s.depth, 1);
  }
}

TEST(CircuitStats, RenderingMentionsTheEssentials) {
  Circuit c(3);
  c.append(Gate(cube_of_var(0) | cube_of_var(1), 2));
  const std::string text = stats_to_string(analyze(c));
  EXPECT_NE(text.find("1 gates"), std::string::npos);
  EXPECT_NE(text.find("NCT"), std::string::npos);
  EXPECT_NE(text.find("TOF3 x1"), std::string::npos);
}

}  // namespace
}  // namespace rmrls
