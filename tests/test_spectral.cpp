// Tests for the Walsh spectrum and the spectral greedy baseline [18].

#include "baselines/spectral.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/synthesizer.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

TEST(WalshSpectrum, KnownSmallSpectra) {
  // Constant 0: S_0 = 2^n, everything else 0.
  EXPECT_EQ(walsh_spectrum({0, 0, 0, 0}),
            (std::vector<std::int64_t>{4, 0, 0, 0}));
  // f = x0: perfectly correlated with chi_{01}.
  EXPECT_EQ(walsh_spectrum({0, 1, 0, 1}),
            (std::vector<std::int64_t>{0, 4, 0, 0}));
  // XOR: correlated with chi_{11}.
  EXPECT_EQ(walsh_spectrum({0, 1, 1, 0}),
            (std::vector<std::int64_t>{0, 0, 0, 4}));
  // AND is bent-ish on 2 vars: all coefficients +/-2.
  const auto and_spec = walsh_spectrum({0, 0, 0, 1});
  for (std::int64_t v : and_spec) EXPECT_EQ(std::abs(v), 2);
}

TEST(WalshSpectrum, ParsevalHolds) {
  std::mt19937_64 rng(81);
  for (int n : {3, 4, 6}) {
    std::vector<std::uint8_t> f(std::size_t{1} << n);
    for (auto& v : f) v = static_cast<std::uint8_t>(rng() & 1);
    const auto s = walsh_spectrum(f);
    const std::int64_t energy = std::accumulate(
        s.begin(), s.end(), std::int64_t{0},
        [](std::int64_t acc, std::int64_t v) { return acc + v * v; });
    EXPECT_EQ(energy, std::int64_t{1} << (2 * n));
  }
}

TEST(WalshSpectrum, RejectsBadSizes) {
  EXPECT_THROW(walsh_spectrum({0, 1, 0}), std::invalid_argument);
  EXPECT_THROW(walsh_spectrum({}), std::invalid_argument);
}

TEST(IdentityDistance, ZeroOnlyForIdentity) {
  EXPECT_EQ(identity_distance(TruthTable::identity(4)), 0);
  EXPECT_EQ(identity_distance(TruthTable({1, 0})), 2);
  // A NOT on line 0 of 3 lines mismatches every row in one bit.
  Circuit c(3);
  c.append(Gate(kConstOne, 0));
  EXPECT_EQ(identity_distance(c.to_truth_table()), 8);
}

TEST(SpectralGreedy, SolvesEasyFunctions) {
  const TruthTable fig1({1, 0, 7, 2, 3, 4, 5, 6});
  const SpectralResult r = synthesize_spectral(fig1);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, fig1));
}

TEST(SpectralGreedy, IdentityNeedsNothing) {
  const SpectralResult r = synthesize_spectral(TruthTable::identity(3));
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 0);
}

TEST(SpectralGreedy, AlwaysCorrectWhenItSucceeds) {
  std::mt19937_64 rng(82);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const TruthTable spec = random_reversible_function(3, rng);
    const SpectralResult r = synthesize_spectral(spec);
    if (!r.success) continue;  // greedy may declare an error, per [18]
    ++solved;
    EXPECT_TRUE(implements(r.circuit, spec)) << spec.to_string();
    EXPECT_EQ(r.circuit.gate_count(), r.translations);
  }
  // The greedy method solves roughly a third of random 3-variable
  // functions (no backtracking); make sure a reasonable share succeeds.
  EXPECT_GE(solved, 10);
}

TEST(SpectralGreedy, SidewaysMovesUnlockPlateaus) {
  // With the pure strict rule ([18]'s "error declared" case) Fig. 1
  // stalls on a plateau; sideways moves recover it.
  const TruthTable fig1({1, 0, 7, 2, 3, 4, 5, 6});
  SpectralOptions strict;
  strict.sideways_limit = 0;
  EXPECT_FALSE(synthesize_spectral(fig1, strict).success);
  const SpectralResult relaxed = synthesize_spectral(fig1);
  ASSERT_TRUE(relaxed.success);
  EXPECT_TRUE(implements(relaxed.circuit, fig1));
}

TEST(SpectralGreedy, BidirectionalHelps) {
  std::mt19937_64 rng(83);
  int solved_uni = 0;
  int solved_bi = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const TruthTable spec = random_reversible_function(4, rng);
    SpectralOptions uni;
    uni.bidirectional = false;
    if (synthesize_spectral(spec, uni).success) ++solved_uni;
    if (synthesize_spectral(spec).success) ++solved_bi;
  }
  EXPECT_GE(solved_bi, solved_uni);
}

TEST(SpectralGreedy, ReportsFailureWithoutBacktracking) {
  // Pure wire swap: every single NCT gate leaves the distance unchanged
  // or worse, so the strict greedy rule must declare an error ([18]'s
  // noted weakness). Sideways moves walk the plateau and recover it.
  SpectralOptions strict;
  strict.sideways_limit = 0;
  const TruthTable swap_ab({0, 2, 1, 3});
  EXPECT_FALSE(synthesize_spectral(swap_ab, strict).success);
  const SpectralResult relaxed = synthesize_spectral(swap_ab);
  ASSERT_TRUE(relaxed.success);
  EXPECT_TRUE(implements(relaxed.circuit, swap_ab));
}

}  // namespace
}  // namespace rmrls
