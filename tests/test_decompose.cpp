// Tests for the GT -> NCT decomposition (Barenco-style constructions).

#include "rev/decompose.hpp"

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "rev/circuit_stats.hpp"
#include "rev/equivalence.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {


TEST(Decompose, SmallGatesPassThrough) {
  const Gate tof3(cube_of_var(0) | cube_of_var(1), 2);
  const auto pieces = decompose_gate(tof3, 5);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], tof3);
}

TEST(Decompose, LadderSizeIsFourMMinusTwo) {
  // m controls with >= m-2 spares: exactly 4(m-2) TOF3 gates.
  for (int m = 3; m <= 6; ++m) {
    Cube controls = kConstOne;
    for (int v = 0; v < m; ++v) controls |= cube_of_var(v);
    const Gate g(controls, m);
    const int lines = 2 * m;  // plenty of spares
    const auto pieces = decompose_gate(g, lines);
    EXPECT_EQ(pieces.size(), static_cast<std::size_t>(4 * (m - 2)));
    for (const Gate& p : pieces) EXPECT_EQ(p.size(), 3);
  }
}

class DecomposeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DecomposeEquivalence, PreservesTheFunctionForAllSpareValues) {
  const auto [m, lines] = GetParam();
  Cube controls = kConstOne;
  for (int v = 0; v < m; ++v) controls |= cube_of_var(v);
  const Gate g(controls, m);
  Circuit original(lines);
  original.append(g);
  const Circuit nct = decompose_to_nct(original);
  EXPECT_LE(analyze(nct).max_gate_size, 3);
  // Exhaustive equivalence: spare lines take every value, so the
  // "borrowed, then restored" property is fully exercised.
  EXPECT_TRUE(equivalent(nct, original));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecomposeEquivalence,
    ::testing::Values(std::make_tuple(3, 5),    // one spare: split path
                      std::make_tuple(3, 6),    // ladder path
                      std::make_tuple(4, 6),    // one spare: split
                      std::make_tuple(4, 8),    // ladder
                      std::make_tuple(5, 7),    // split
                      std::make_tuple(5, 10),   // ladder
                      std::make_tuple(6, 8),    // split
                      std::make_tuple(7, 9)));  // split, deeper recursion

TEST(Decompose, WholeCircuitsStayEquivalent) {
  std::mt19937_64 rng(97);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c = random_circuit(8, 8, GateLibrary::kGT, rng);
    // Drop full-width gates: they are parity-impossible to decompose.
    Circuit filtered(8);
    for (const Gate& g : c.gates()) {
      if (g.size() < 8) filtered.append(g);
    }
    const Circuit nct = decompose_to_nct(filtered);
    EXPECT_TRUE(analyze(nct).fits_nct);
    EXPECT_TRUE(equivalent(nct, filtered));
  }
}

TEST(Decompose, FullWidthGateIsRejectedOrKept) {
  Circuit c(5);
  Cube controls = kConstOne;
  for (int v = 1; v < 5; ++v) controls |= cube_of_var(v);
  c.append(Gate(controls, 0));  // TOF5 on 5 lines: odd permutation
  EXPECT_THROW(decompose_to_nct(c), std::invalid_argument);
  const Circuit kept = decompose_to_nct(c, FullWidthPolicy::kKeep);
  EXPECT_EQ(kept, c);
}

TEST(Decompose, WorksAtWideWidths) {
  // A 12-control gate on 30 lines (shift28 territory); verified by
  // sampled simulation via the PPRM equivalence check.
  Cube controls = kConstOne;
  for (int v = 0; v < 12; ++v) controls |= cube_of_var(v);
  Circuit original(30);
  original.append(Gate(controls, 20));
  const Circuit nct = decompose_to_nct(original);
  EXPECT_TRUE(analyze(nct).fits_nct);
  EXPECT_TRUE(equivalent(nct, original));
}

TEST(Decompose, CountsScaleLinearlyWithSpares) {
  // With spares available the TOF3 count is linear in the gate width —
  // the practical content of the Barenco bounds the paper cites.
  for (int m = 4; m <= 10; ++m) {
    Cube controls = kConstOne;
    for (int v = 0; v < m; ++v) controls |= cube_of_var(v);
    const auto pieces = decompose_gate(Gate(controls, m), 2 * m + 2);
    EXPECT_EQ(pieces.size(), static_cast<std::size_t>(4 * (m - 2)));
  }
}

}  // namespace
}  // namespace rmrls
