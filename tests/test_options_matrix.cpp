// Option-matrix property tests: every combination of search knobs must
// either produce a verified circuit or fail honestly — never a wrong
// circuit, never a hang past its budget.

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "core/synthesizer.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

using Combo = std::tuple<int /*scope*/, int /*greedy_k*/, bool /*tt*/,
                         bool /*refine*/, bool /*cumulative*/>;

class OptionsMatrix : public ::testing::TestWithParam<Combo> {};

SynthesisOptions make_options(const Combo& combo) {
  SynthesisOptions o;
  o.max_nodes = 15000;
  switch (std::get<0>(combo)) {
    case 0:
      o.exempt_scope = SynthesisOptions::ExemptScope::kComplement;
      break;
    case 1:
      o.exempt_scope = SynthesisOptions::ExemptScope::kAdditional;
      break;
    default:
      o.exempt_scope = SynthesisOptions::ExemptScope::kAny;
      break;
  }
  o.greedy_k = std::get<1>(combo);
  o.use_transposition_table = std::get<2>(combo);
  o.iterative_refinement = std::get<3>(combo);
  o.cumulative_elim_priority = std::get<4>(combo);
  return o;
}

TEST_P(OptionsMatrix, NeverReturnsAWrongCircuit) {
  const SynthesisOptions options = make_options(GetParam());
  std::mt19937_64 rng(0xC0FFEE);
  for (int trial = 0; trial < 6; ++trial) {
    const TruthTable spec = random_reversible_function(3, rng);
    const SynthesisResult r = synthesize(spec, options);
    if (r.success) {
      EXPECT_TRUE(implements(r.circuit, spec))
          << spec.to_string() << " under combo";
      EXPECT_GT(r.circuit.gate_count(), 0);
    }
    EXPECT_LE(r.stats.nodes_expanded,
              options.max_nodes + 2 * options.max_nodes);  // scout+retry
  }
}

TEST_P(OptionsMatrix, DeterministicPerConfiguration) {
  const SynthesisOptions options = make_options(GetParam());
  const TruthTable spec({5, 3, 1, 7, 4, 0, 2, 6});
  const SynthesisResult a = synthesize(spec, options);
  const SynthesisResult b = synthesize(spec, options);
  EXPECT_EQ(a.success, b.success);
  if (a.success) {
    EXPECT_EQ(a.circuit, b.circuit);
  }
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, OptionsMatrix,
    ::testing::Combine(::testing::Values(0, 1, 2),      // exemption scope
                       ::testing::Values(0, 3),         // greedy k
                       ::testing::Bool(),               // transposition
                       ::testing::Bool(),               // refinement
                       ::testing::Bool()));             // cumulative elim

TEST(OptionsEdges, WallClockLimitStopsTheSearch) {
  SynthesisOptions o;
  o.max_nodes = 0;  // unlimited nodes: only the clock can stop it
  o.time_limit = std::chrono::milliseconds(50);
  std::mt19937_64 rng(5150);
  // A 5-variable function will not finish in 50 ms from a cold start.
  const TruthTable spec = random_reversible_function(5, rng);
  const auto t0 = std::chrono::steady_clock::now();
  (void)synthesize(spec, o);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  // Scout + fallback + refinement each get the limit; stay well under 2 s.
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(OptionsEdges, TinyQueueStillTerminates) {
  SynthesisOptions o;
  o.max_nodes = 5000;
  o.max_queue = 8;  // drops most children
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, o);
  if (r.success) {
    EXPECT_TRUE(implements(r.circuit, spec));
  }
  EXPECT_GT(r.stats.dropped_queue_full + r.stats.children_pushed, 0u);
}

TEST(OptionsEdges, ZeroNodeBudgetFailsImmediately) {
  SynthesisOptions o;
  o.max_nodes = 1;
  o.iterative_refinement = false;
  const SynthesisResult r =
      synthesize(TruthTable({7, 1, 4, 3, 0, 2, 6, 5}), o);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.stats.nodes_expanded, 1u);
}

TEST(OptionsEdges, MaxGatesZeroMeansUnlimited) {
  SynthesisOptions o;
  o.max_nodes = 20000;
  o.max_gates = 0;
  const SynthesisResult r = synthesize(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}), o);
  EXPECT_TRUE(r.success);
}

}  // namespace
}  // namespace rmrls
