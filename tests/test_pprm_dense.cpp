// Tests for the word-parallel dense PPRM kernel (rev/pprm_dense.hpp):
// construction, substitution in both word-move (t >= 6) and intra-word
// mask (t < 6) regimes, and — the load-bearing property — full agreement
// with the sparse representation: equal spectra, equal substitute_delta,
// equal hashes, identical candidate enumerations, and bit-identical
// synthesized circuits. See docs/dense_pprm.md.

#include "rev/pprm_dense.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/factor_enum.hpp"
#include "core/synthesizer.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/random.hpp"

namespace rmrls {
namespace {

Cube a() { return cube_of_var(0); }
Cube b() { return cube_of_var(1); }
Cube c() { return cube_of_var(2); }

TEST(DensePprm, IdentityMatchesSparse) {
  for (int n : {1, 3, 6, 7, 9}) {
    const DensePprm d = DensePprm::identity(n);
    EXPECT_TRUE(d.is_identity());
    EXPECT_EQ(d.term_count(), n);
    EXPECT_EQ(d.to_pprm(), Pprm::identity(n));
    EXPECT_EQ(d.hash(), Pprm::identity(n).hash());
  }
}

TEST(DensePprm, ConversionRoundTrip) {
  std::mt19937_64 rng(11);
  for (int n = 1; n <= 10; ++n) {
    const Pprm sparse =
        pprm_of_truth_table(random_reversible_function(n, rng));
    const DensePprm dense(sparse);
    EXPECT_EQ(dense.num_vars(), n);
    EXPECT_EQ(dense.term_count(), sparse.term_count());
    EXPECT_EQ(dense.to_pprm(), sparse);
    EXPECT_EQ(dense.hash(), sparse.hash());
  }
}

TEST(DensePprm, ConstructorRejectsOutOfRange) {
  EXPECT_THROW(DensePprm(-1), std::invalid_argument);
  EXPECT_THROW(DensePprm(kMaxDenseVariables + 1), std::invalid_argument);
  // A sparse system whose cubes exceed the declared width cannot exist
  // through the public API, but the dense constructor still guards.
  EXPECT_NO_THROW(DensePprm(kMaxDenseVariables));
}

TEST(DensePprm, SubstituteRejectsSelfTarget) {
  DensePprm d = DensePprm::identity(3);
  EXPECT_THROW(d.substitute(0, a()), std::invalid_argument);
  EXPECT_THROW(d.substitute(1, a() | b()), std::invalid_argument);
}

TEST(DensePprm, SubstituteMatchesSparseSmall) {
  // f_out = b + ab on output 0; substitute b <- b XOR c (intra-word,
  // t = 1 < 6) and compare term-for-term against the sparse result.
  Pprm sparse(3);
  sparse.output(0) = CubeList({b(), a() | b()});
  sparse.output(1) = CubeList({b()});
  sparse.output(2) = CubeList({c()});
  DensePprm dense(sparse);
  const int sd = sparse.substitute(1, c());
  const int dd = dense.substitute(1, c());
  EXPECT_EQ(sd, dd);
  EXPECT_EQ(dense.to_pprm(), sparse);
  EXPECT_EQ(dense.hash(), sparse.hash());
}

TEST(DensePprm, WordMoveRegimeMatchesSparse) {
  // n = 8 puts the spectrum at four words per output; targets t >= 6
  // exercise the whole-word gather/fold moves, targets t < 6 the masked
  // intra-word shifts, within the same system.
  std::mt19937_64 rng(12);
  const Pprm start =
      pprm_of_truth_table(random_reversible_function(8, rng));
  for (int t : {0, 3, 5, 6, 7}) {
    for (Cube f : {cube_of_var((t + 1) % 8),
                   cube_of_var((t + 1) % 8) | cube_of_var((t + 3) % 8),
                   kConstOne}) {
      if (f & cube_of_var(t)) continue;
      Pprm sparse = start;
      DensePprm dense(start);
      const int sd = sparse.substitute(t, f);
      const int dd = dense.substitute(t, f);
      EXPECT_EQ(sd, dd) << "t=" << t << " f=" << f;
      EXPECT_EQ(dense.to_pprm(), sparse) << "t=" << t << " f=" << f;
      EXPECT_EQ(dense.hash(), sparse.hash()) << "t=" << t << " f=" << f;
    }
  }
}

TEST(DensePprm, SubstituteIntoReusesPooledDestination) {
  std::mt19937_64 rng(13);
  const Pprm sparse =
      pprm_of_truth_table(random_reversible_function(7, rng));
  const DensePprm dense(sparse);
  DensePprmPool pool;
  // First use materializes into a default-constructed pooled system, the
  // second reuses the released buffers; both must agree with sparse.
  for (int round = 0; round < 2; ++round) {
    DensePprm dst = pool.acquire();
    const int dd = dense.substitute_into(0, b() | c(), dst);
    Pprm expect = sparse;
    const int sd = expect.substitute(0, b() | c());
    EXPECT_EQ(dd, sd);
    EXPECT_EQ(dst.to_pprm(), expect);
    pool.release(std::move(dst));
  }
}

TEST(DensePprm, EvalMatchesSparse) {
  std::mt19937_64 rng(14);
  for (int n : {3, 5, 8}) {
    const Pprm sparse =
        pprm_of_truth_table(random_reversible_function(n, rng));
    const DensePprm dense(sparse);
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      EXPECT_EQ(dense.eval(x), sparse.eval(x));
    }
  }
}

TEST(DensePprm, CandidateEnumerationMatchesSparse) {
  std::mt19937_64 rng(15);
  for (int n = 2; n <= 9; ++n) {
    const Pprm sparse =
        pprm_of_truth_table(random_reversible_function(n, rng));
    const DensePprm dense(sparse);
    for (const bool relaxed : {false, true}) {
      SynthesisOptions options;
      options.allow_relaxed_targets = relaxed;
      std::vector<Candidate> from_sparse;
      std::vector<Candidate> from_dense;
      enumerate_candidates_into(sparse, options, nullptr, from_sparse);
      enumerate_candidates_into(dense, options, nullptr, from_dense);
      ASSERT_EQ(from_sparse.size(), from_dense.size()) << "n=" << n;
      for (std::size_t i = 0; i < from_sparse.size(); ++i) {
        // Same order, not just same set: tie-breaking, greedy pruning and
        // seq numbering in the engine all depend on it.
        EXPECT_EQ(from_sparse[i].target, from_dense[i].target);
        EXPECT_EQ(from_sparse[i].factor, from_dense[i].factor);
        EXPECT_EQ(from_sparse[i].additional, from_dense[i].additional);
      }
    }
  }
}

// The randomized cross-representation property drive: identical random
// substitution sequences through both representations must keep the
// spectra, the read-only deltas, and the transposition-table hash keys in
// lockstep at every step.
TEST(DensePprm, RandomSubstitutionSequencesAgreeWithSparse) {
  std::mt19937_64 rng(0xd5eed);
  const SynthesisOptions options;  // default candidate rules
  for (int n = 3; n <= 10; ++n) {
    for (int trial = 0; trial < (n <= 6 ? 8 : 3); ++trial) {
      Pprm sparse =
          pprm_of_truth_table(random_reversible_function(n, rng));
      DensePprm dense(sparse);
      for (int step = 0; step < 12; ++step) {
        const std::vector<Candidate> cands =
            enumerate_candidates(sparse, options, nullptr);
        if (cands.empty()) break;
        const Candidate& pick = cands[rng() % cands.size()];
        // Read-only pricing agrees...
        const int sparse_delta =
            sparse.substitute_delta(pick.target, pick.factor);
        ASSERT_EQ(dense.substitute_delta(pick.target, pick.factor),
                  sparse_delta)
            << "n=" << n << " step=" << step;
        // ...and so do the applied substitution, the spectrum, and the
        // hash key the transposition table would dedup on.
        ASSERT_EQ(dense.substitute(pick.target, pick.factor),
                  sparse.substitute(pick.target, pick.factor));
        ASSERT_EQ(dense.term_count(), sparse.term_count());
        ASSERT_EQ(dense.to_pprm(), sparse) << "n=" << n << " step=" << step;
        ASSERT_EQ(dense.hash(), sparse.hash());
        ASSERT_EQ(dense.is_identity(), sparse.is_identity());
      }
    }
  }
}

// Equal hash keys mean equal dedup decisions only if unequal states keep
// unequal keys too (within collision odds): walk a sequence and check the
// dense hash changes exactly when the sparse hash changes.
TEST(DensePprm, HashDistinguishesStatesLikeSparse) {
  std::mt19937_64 rng(0xface);
  Pprm sparse = pprm_of_truth_table(random_reversible_function(5, rng));
  DensePprm dense(sparse);
  const SynthesisOptions options;
  std::size_t prev_sparse = sparse.hash();
  std::size_t prev_dense = dense.hash();
  ASSERT_EQ(prev_sparse, prev_dense);
  for (int step = 0; step < 20; ++step) {
    const std::vector<Candidate> cands =
        enumerate_candidates(sparse, options, nullptr);
    if (cands.empty()) break;
    const Candidate& pick = cands[rng() % cands.size()];
    sparse.substitute(pick.target, pick.factor);
    dense.substitute(pick.target, pick.factor);
    EXPECT_EQ(sparse.hash(), dense.hash());
    EXPECT_EQ(sparse.hash() == prev_sparse, dense.hash() == prev_dense);
    prev_sparse = sparse.hash();
    prev_dense = dense.hash();
  }
}

// The acceptance criterion of the adaptive switch: below the threshold the
// dense and sparse engines must synthesize bit-identical circuits (same
// gates in the same order), not merely circuits of equal size.
TEST(DensePprm, EnginesProduceIdenticalCircuits) {
  std::mt19937_64 rng(0xc1c1);
  for (int n : {3, 4}) {
    for (int trial = 0; trial < (n == 3 ? 12 : 4); ++trial) {
      const TruthTable spec = random_reversible_function(n, rng);
      SynthesisOptions dense_opts;
      dense_opts.max_nodes = 20000;
      SynthesisOptions sparse_opts = dense_opts;
      sparse_opts.dense_threshold = 0;
      const SynthesisResult dr = synthesize(spec, dense_opts);
      const SynthesisResult sr = synthesize(spec, sparse_opts);
      ASSERT_EQ(dr.success, sr.success);
      EXPECT_TRUE(dr.stats.dense_kernel);
      EXPECT_FALSE(sr.stats.dense_kernel);
      if (!dr.success) continue;
      ASSERT_EQ(dr.circuit.gate_count(), sr.circuit.gate_count());
      for (std::size_t g = 0; g < dr.circuit.gates().size(); ++g) {
        EXPECT_EQ(dr.circuit.gates()[g].target, sr.circuit.gates()[g].target);
        EXPECT_EQ(dr.circuit.gates()[g].controls,
                  sr.circuit.gates()[g].controls);
      }
      EXPECT_TRUE(implements(dr.circuit, spec));
    }
  }
}

TEST(DensePprm, StatsReportKernelChoice) {
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  SynthesisOptions o;
  o.max_nodes = 20000;
  const SynthesisResult dense_run = synthesize(spec, o);
  EXPECT_TRUE(dense_run.stats.dense_kernel);
  EXPECT_EQ(dense_run.stats.representation_switches, 0u);
  o.dense_threshold = 0;
  const SynthesisResult sparse_run = synthesize(spec, o);
  EXPECT_FALSE(sparse_run.stats.dense_kernel);
}

TEST(DensePprm, ParallelDenseEngineMatchesSequential) {
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  SynthesisOptions seq;
  seq.max_nodes = 20000;
  SynthesisOptions par = seq;
  par.num_threads = 2;
  const SynthesisResult rs = synthesize(spec, seq);
  const SynthesisResult rp = synthesize(spec, par);
  ASSERT_TRUE(rs.success);
  ASSERT_TRUE(rp.success);
  EXPECT_TRUE(rp.stats.dense_kernel);
  // The parallel engine guarantees equal optimality, not equal gate order.
  EXPECT_EQ(rp.circuit.gate_count(), rs.circuit.gate_count());
  EXPECT_TRUE(implements(rp.circuit, spec));
}

}  // namespace
}  // namespace rmrls
