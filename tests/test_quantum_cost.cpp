// Tests for the Maslov/Barenco quantum-cost model.

#include "rev/quantum_cost.hpp"

#include <gtest/gtest.h>

namespace rmrls {
namespace {

TEST(ToffoliCost, SmallGatesAreFixed) {
  for (int free = 0; free < 4; ++free) {
    EXPECT_EQ(toffoli_cost(1, free), 1);
    EXPECT_EQ(toffoli_cost(2, free), 1);
    EXPECT_EQ(toffoli_cost(3, free), 5);
    EXPECT_EQ(toffoli_cost(4, free), 13);
  }
}

TEST(ToffoliCost, ExponentialWithoutFreeLines) {
  EXPECT_EQ(toffoli_cost(5, 0), 29);   // 2^5 - 3
  EXPECT_EQ(toffoli_cost(6, 0), 61);
  EXPECT_EQ(toffoli_cost(7, 0), 125);
  EXPECT_EQ(toffoli_cost(10, 0), 1021);
}

TEST(ToffoliCost, LinearWithBorrowedLine) {
  EXPECT_EQ(toffoli_cost(5, 1), 26);   // 12(m-3)+2
  EXPECT_EQ(toffoli_cost(6, 1), 38);
  EXPECT_EQ(toffoli_cost(7, 2), 50);
  EXPECT_EQ(toffoli_cost(8, 1), 62);
}

TEST(ToffoliCost, RejectsBadArguments) {
  EXPECT_THROW(toffoli_cost(0, 0), std::invalid_argument);
  EXPECT_THROW(toffoli_cost(3, -1), std::invalid_argument);
  EXPECT_THROW(toffoli_cost(63, 0), std::invalid_argument);  // overflow
}

TEST(QuantumCost, PaperAnchorRd32) {
  // rd32's published circuit: three CNOTs and one TOF3 -> cost 8
  // (Table IV gives rd32 cost 8 with 4 gates).
  Circuit c(4);
  c.append(Gate(cube_of_var(0), 1));
  c.append(Gate(cube_of_var(1) | cube_of_var(2), 3));
  c.append(Gate(cube_of_var(2), 1));
  c.append(Gate(cube_of_var(1), 0));
  EXPECT_EQ(quantum_cost(c), 8);
}

TEST(QuantumCost, PaperAnchorGraycode6) {
  // graycode6 = five CNOTs -> cost 5 (Table IV).
  Circuit c(6);
  for (int i = 0; i < 5; ++i) c.append(Gate(cube_of_var(i + 1), i));
  EXPECT_EQ(quantum_cost(c), 5);
}

TEST(QuantumCost, WideGateUsesFreeLineDiscount) {
  // A TOF5 on a 5-line circuit has no free line (cost 29); on 6 lines it
  // can borrow one (cost 26).
  Cube controls = 0;
  for (int v = 1; v < 5; ++v) controls |= cube_of_var(v);
  Circuit tight(5);
  tight.append(Gate(controls, 0));
  Circuit loose(6);
  loose.append(Gate(controls, 0));
  EXPECT_EQ(quantum_cost(tight), 29);
  EXPECT_EQ(quantum_cost(loose), 26);
}

TEST(QuantumCost, EmptyCircuitIsFree) {
  EXPECT_EQ(quantum_cost(Circuit(8)), 0);
}

}  // namespace
}  // namespace rmrls
