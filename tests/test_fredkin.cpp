// Tests for Fredkin gates, mixed cascades, and Fredkin extraction.

#include <gtest/gtest.h>

#include <random>

#include "core/synthesizer.hpp"
#include "rev/fredkin.hpp"
#include "rev/quantum_cost.hpp"
#include "rev/random.hpp"
#include "templates/fredkinize.hpp"

namespace rmrls {
namespace {

TEST(MixedGate, FredkinSwapsWhenControlsFire) {
  const MixedGate f = MixedGate::fredkin(cube_of_var(2), 0, 1);
  EXPECT_EQ(f.apply(0b101), 0b110u);  // c=1: swap a, b
  EXPECT_EQ(f.apply(0b110), 0b101u);
  EXPECT_EQ(f.apply(0b111), 0b111u);  // equal bits: no visible change
  EXPECT_EQ(f.apply(0b001), 0b001u);  // control low: identity
}

TEST(MixedGate, UncontrolledFredkinIsSwap) {
  const MixedGate f = MixedGate::fredkin(kConstOne, 0, 2);
  EXPECT_EQ(f.apply(0b001), 0b100u);
  EXPECT_EQ(f.apply(0b100), 0b001u);
  EXPECT_EQ(f.apply(0b010), 0b010u);
}

TEST(MixedGate, Validation) {
  EXPECT_THROW(MixedGate::fredkin(kConstOne, 1, 1), std::invalid_argument);
  EXPECT_THROW(MixedGate::fredkin(cube_of_var(0), 0, 1),
               std::invalid_argument);
}

TEST(MixedGate, RealizesThePaperFredkinSpec) {
  // Example 3: the Fredkin gate is the permutation {0,1,2,3,4,6,5,7}.
  const MixedGate f = MixedGate::fredkin(cube_of_var(2), 0, 1);
  const std::vector<std::uint64_t> expected{0, 1, 2, 3, 4, 6, 5, 7};
  for (std::uint64_t x = 0; x < 8; ++x) EXPECT_EQ(f.apply(x), expected[x]);
}

TEST(MixedCircuit, ToToffoliExpandsTriples) {
  MixedCircuit mc(3);
  mc.append(MixedGate::fredkin(cube_of_var(2), 0, 1));
  const Circuit c = mc.to_toffoli();
  EXPECT_EQ(c.gate_count(), 3);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(c.simulate(x), mc.simulate(x));
  }
}

TEST(MixedCircuit, RejectsOutOfRangeGate) {
  MixedCircuit mc(2);
  EXPECT_THROW(mc.append(MixedGate::fredkin(kConstOne, 0, 2)),
               std::invalid_argument);
}

TEST(MixedCircuit, CostUsesDirectFredkin3) {
  MixedCircuit mc(3);
  mc.append(MixedGate::fredkin(cube_of_var(2), 0, 1));
  EXPECT_EQ(quantum_cost(mc), 5);  // direct realization, like TOF3
  // A wider Fredkin prices as the equal-width Toffoli plus two CNOTs.
  MixedCircuit wide(5);
  wide.append(
      MixedGate::fredkin(cube_of_var(2) | cube_of_var(3) | cube_of_var(4), 0, 1));
  EXPECT_EQ(quantum_cost(wide), toffoli_cost(5, 0) + 2);
}

TEST(Fredkinize, ExtractsAdjacentTriple) {
  // TOF3(c, b; a) TOF3(c, a; b) TOF3(c, b; a) = FRE3(c; a, b).
  Circuit c(3);
  const Gate outer(cube_of_var(2) | cube_of_var(1), 0);
  const Gate inner(cube_of_var(2) | cube_of_var(0), 1);
  c.append(outer);
  c.append(inner);
  c.append(outer);
  const FredkinizeResult r = fredkinize(c);
  EXPECT_EQ(r.fredkin_gates, 1);
  EXPECT_EQ(r.circuit.gate_count(), 1);
  EXPECT_EQ(r.circuit.gates()[0].kind, MixedGate::Kind::kFredkin);
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(r.circuit.simulate(x), c.simulate(x));
  }
}

TEST(Fredkinize, ExtractsThroughCommutingGates) {
  Circuit c(4);
  const Gate outer(cube_of_var(2) | cube_of_var(1), 0);
  const Gate inner(cube_of_var(2) | cube_of_var(0), 1);
  const Gate bystander(cube_of_var(2), 3);  // commutes with the outer gate
  c.append(outer);
  c.append(bystander);
  c.append(inner);
  c.append(outer);
  const FredkinizeResult r = fredkinize(c);
  EXPECT_EQ(r.fredkin_gates, 1);
  EXPECT_EQ(r.circuit.gate_count(), 2);
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(r.circuit.simulate(x), c.simulate(x));
  }
}

TEST(Fredkinize, LeavesBlockedPatternsAlone) {
  Circuit c(3);
  const Gate outer(cube_of_var(2) | cube_of_var(1), 0);
  const Gate inner(cube_of_var(2) | cube_of_var(0), 1);
  const Gate blocker(cube_of_var(0), 2);  // writes a control of `outer`
  c.append(outer);
  c.append(blocker);
  c.append(inner);
  c.append(outer);
  const FredkinizeResult r = fredkinize(c);
  EXPECT_EQ(r.fredkin_gates, 0);
  EXPECT_EQ(r.circuit.gate_count(), 4);
}

TEST(Fredkinize, SynthesizedFredkinSpecCollapsesToOneGate) {
  // Synthesize Example 3 and extract: one Fredkin gate remains.
  SynthesisOptions o;
  o.max_nodes = 50000;
  const TruthTable spec({0, 1, 2, 3, 4, 6, 5, 7});
  const SynthesisResult s = synthesize(spec, o);
  ASSERT_TRUE(s.success);
  const FredkinizeResult r = fredkinize(s.circuit);
  EXPECT_EQ(r.circuit.gate_count(), 1);
  EXPECT_EQ(r.circuit.gates()[0].kind, MixedGate::Kind::kFredkin);
}

class FredkinizeProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(FredkinizeProperty, PreservesFunctionAndRoundTrips) {
  std::mt19937_64 rng(GetParam());
  Circuit c = random_circuit(4, 12, GateLibrary::kNCT, rng);
  // Inject a swap triple so there is usually something to find.
  const Gate outer(cube_of_var(3) | cube_of_var(1), 0);
  const Gate inner(cube_of_var(3) | cube_of_var(0), 1);
  c.append(outer);
  c.append(inner);
  c.append(outer);
  const FredkinizeResult r = fredkinize(c);
  EXPECT_LE(r.circuit.gate_count(), c.gate_count());
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(r.circuit.simulate(x), c.simulate(x));
  }
  // Expanding back to Toffoli gates preserves the function too.
  const Circuit back = r.circuit.to_toffoli();
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(back.simulate(x), c.simulate(x));
  }
  // Cost never increases under extraction.
  EXPECT_LE(quantum_cost(r.circuit), quantum_cost(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FredkinizeProperty,
                         ::testing::Range(300u, 315u));

}  // namespace
}  // namespace rmrls
