// Tests for the irreversible -> reversible embedding of Section II-A.

#include "rev/embedding.hpp"

#include <gtest/gtest.h>

#include <bit>

namespace rmrls {
namespace {

IrreversibleSpec augmented_adder() {
  // The paper's Fig. 2(a): carry, sum, propagate of (a, b, c).
  IrreversibleSpec spec;
  spec.num_inputs = 3;
  spec.num_outputs = 3;
  spec.outputs.resize(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    const int a = static_cast<int>(x & 1);
    const int b = static_cast<int>((x >> 1) & 1);
    const int c = static_cast<int>((x >> 2) & 1);
    const int carry = (a + b + c) >= 2;
    const int sum = (a + b + c) & 1;
    const int propagate = a ^ b;
    spec.outputs[x] = static_cast<std::uint64_t>(carry | (sum << 1) |
                                                 (propagate << 2));
  }
  return spec;
}

TEST(Embedding, AdderNeedsOneGarbageLine) {
  // Fig. 2(b): one garbage output and one constant input, 4 lines total.
  const Embedding e = embed(augmented_adder());
  EXPECT_EQ(e.lines(), 4);
  EXPECT_EQ(e.real_inputs, 3);
  EXPECT_EQ(e.constant_inputs, 1);
  EXPECT_EQ(e.real_outputs, 3);
  EXPECT_EQ(e.garbage_outputs, 1);
}

TEST(Embedding, RestrictionReproducesTheFunction) {
  const IrreversibleSpec spec = augmented_adder();
  const Embedding e = embed(spec);
  const std::uint64_t out_mask = (1u << spec.num_outputs) - 1;
  for (std::uint64_t x = 0; x < 8; ++x) {
    EXPECT_EQ(e.table.apply(x) & out_mask, spec.outputs[x]);
  }
}

TEST(Embedding, GarbageWidthIsCeilLog2OfMultiplicity) {
  // A 2-input function whose output is constant: multiplicity 4 -> 2
  // garbage lines.
  IrreversibleSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 1;
  spec.outputs = {1, 1, 1, 1};
  const Embedding e = embed(spec);
  EXPECT_EQ(e.garbage_outputs, 2);
  EXPECT_EQ(e.lines(), 3);
}

TEST(Embedding, InjectiveFunctionNeedsNoGarbage) {
  IrreversibleSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 2;
  spec.outputs = {3, 2, 0, 1};
  const Embedding e = embed(spec);
  EXPECT_EQ(e.garbage_outputs, 0);
  EXPECT_EQ(e.constant_inputs, 0);
  EXPECT_EQ(e.lines(), 2);
}

TEST(Embedding, OutputWiderThanInput) {
  // decod24-like: 2 inputs, 4 outputs (one-hot) -> inputs padded.
  IrreversibleSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 4;
  spec.outputs = {1, 2, 4, 8};
  const Embedding e = embed(spec);
  EXPECT_EQ(e.lines(), 4);
  EXPECT_EQ(e.constant_inputs, 2);
  for (std::uint64_t x = 0; x < 4; ++x) {
    EXPECT_EQ(e.table.apply(x) & 0xf, spec.outputs[x]);
  }
}

TEST(Embedding, ResultIsAlwaysAPermutation) {
  // TruthTable's constructor validates; exercise a lossy majority too.
  IrreversibleSpec spec;
  spec.num_inputs = 3;
  spec.num_outputs = 1;
  spec.outputs.resize(8);
  for (std::uint64_t x = 0; x < 8; ++x) {
    spec.outputs[x] = std::popcount(x) >= 2 ? 1 : 0;
  }
  EXPECT_NO_THROW(embed(spec));
}

TEST(Embedding, RejectsMalformedSpecs) {
  IrreversibleSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 1;
  spec.outputs = {0, 1};  // wrong size
  EXPECT_THROW(embed(spec), std::invalid_argument);
  spec.outputs = {0, 1, 2, 0};  // output wider than declared
  EXPECT_THROW(embed(spec), std::invalid_argument);
  spec.num_inputs = 0;
  EXPECT_THROW(embed(spec), std::invalid_argument);
}

}  // namespace
}  // namespace rmrls
