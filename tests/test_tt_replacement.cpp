// Tests for the bounded transposition table (core/transposition.hpp):
// replacement-policy semantics on a single bucket, the depth rule the
// table inherits from the seen-map it replaced (including the
// shallower-revisit-overwrites regression), generation aging and
// rollover, bounded memory under sustained insert pressure, and the
// determinism of the single-threaded iterative-deepening driver built on
// top of it.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/synthesizer.hpp"
#include "core/transposition.hpp"
#include "rev/pprm.hpp"

namespace rmrls {
namespace {

TranspositionTable::Config one_bucket(TTReplacement policy) {
  TranspositionTable::Config c;
  c.buckets = 1;
  c.stripes = 1;
  c.policy = policy;
  return c;
}

// Hashes that land distinct values in the (single) bucket. Any values
// work: with one bucket, every hash collides on the bucket and only the
// entry hashes differ.
constexpr std::uint64_t h(std::uint64_t i) { return 0x1000 + i; }

TEST(TranspositionTable, FirstVisitInsertsRevisitPrunes) {
  TranspositionTable tt(one_bucket(TTReplacement::kAging));
  EXPECT_FALSE(tt.check_and_insert(h(1), 5));
  EXPECT_TRUE(tt.check_and_insert(h(1), 5));   // same depth: prune
  EXPECT_TRUE(tt.check_and_insert(h(1), 9));   // deeper: prune
  EXPECT_EQ(tt.total_hits(), 2u);
  EXPECT_EQ(tt.inserts(), 1u);
  EXPECT_EQ(tt.evictions(), 0u);
  EXPECT_EQ(tt.entry_count(), 1u);
}

// Regression pin for the shallower-revisit rule: a state first reached at
// depth 5 and rediscovered at depth 3 must NOT be pruned — the shallower
// path is the better one and pruning it could cost the optimal circuit.
// The rediscovery overwrites the stored depth, so depth-4 revisits (which
// the old depth-5 entry would have let through) now prune.
TEST(TranspositionTable, ShallowerRevisitOverwritesInsteadOfPruning) {
  TranspositionTable tt(one_bucket(TTReplacement::kAging));
  EXPECT_FALSE(tt.check_and_insert(h(1), 5));
  EXPECT_TRUE(tt.check_and_insert(h(1), 7));   // deeper: redundant
  EXPECT_FALSE(tt.check_and_insert(h(1), 3));  // shallower: re-expand
  EXPECT_TRUE(tt.check_and_insert(h(1), 4));   // now 4 >= stored 3: prune
  EXPECT_TRUE(tt.check_and_insert(h(1), 3));
  // The overwrite is not an insert: the slot was already occupied.
  EXPECT_EQ(tt.inserts(), 1u);
  EXPECT_EQ(tt.entry_count(), 1u);
}

// Owner-filtered pruning (lazy SMP's canonical-worker guarantee): an
// own_only caller is never pruned by a foreign claim — it takes the claim
// over and re-expands — while ordinary callers prune on any entry. This
// is what keeps worker 0 exactly the sequential engine even when helpers
// reach shared states first (core/parallel.cpp kCanonicalOwner).
TEST(TranspositionTable, OwnOnlyCallerIgnoresForeignClaims) {
  TranspositionTable tt(one_bucket(TTReplacement::kAging));
  constexpr std::uint8_t kHelper = 0;
  constexpr std::uint8_t kCanonical = 1;
  // A helper claims the state first.
  EXPECT_FALSE(tt.check_and_insert(h(1), 3, kHelper, false));
  // The canonical worker reaches it later: not pruned, claim taken over.
  EXPECT_FALSE(tt.check_and_insert(h(1), 3, kCanonical, true));
  // The helper revisiting now prunes on the canonical entry as usual.
  EXPECT_TRUE(tt.check_and_insert(h(1), 3, kHelper, false));
  // The canonical worker's own revisit prunes — its own entries still
  // dedup it exactly like the sequential table would.
  EXPECT_TRUE(tt.check_and_insert(h(1), 4, kCanonical, true));
  // A takeover reuses the slot: one insert, one entry.
  EXPECT_EQ(tt.inserts(), 1u);
  EXPECT_EQ(tt.entry_count(), 1u);
}

TEST(TranspositionTable, AlwaysPolicyEvictsOnFullBucket) {
  TranspositionTable tt(one_bucket(TTReplacement::kAlways));
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_FALSE(tt.check_and_insert(h(i), 2));
  }
  EXPECT_EQ(tt.inserts(), 16u);
  EXPECT_EQ(tt.evictions(), 16u - TranspositionTable::kBucketEntries);
  EXPECT_EQ(tt.entry_count(),
            static_cast<std::uint64_t>(TranspositionTable::kBucketEntries));
  EXPECT_EQ(tt.capacity(),
            static_cast<std::uint64_t>(TranspositionTable::kBucketEntries));
}

// Depth-preferred eviction keeps the shallow entries: in RMRLS an entry
// at depth d prunes every deeper revisit, so shallow entries have the
// widest pruning reach and the deepest entry is the right victim.
TEST(TranspositionTable, DepthPreferredEvictsDeepestEntry) {
  TranspositionTable tt(one_bucket(TTReplacement::kDepthPreferred));
  ASSERT_FALSE(tt.check_and_insert(h(1), 1));
  ASSERT_FALSE(tt.check_and_insert(h(2), 9));  // the deepest: the victim
  ASSERT_FALSE(tt.check_and_insert(h(3), 2));
  ASSERT_FALSE(tt.check_and_insert(h(4), 3));
  ASSERT_FALSE(tt.check_and_insert(h(5), 4));  // bucket full: evicts h(2)
  EXPECT_EQ(tt.evictions(), 1u);
  // The survivors still prune; the evicted deep entry is forgotten.
  EXPECT_TRUE(tt.check_and_insert(h(1), 1));
  EXPECT_TRUE(tt.check_and_insert(h(3), 2));
  EXPECT_TRUE(tt.check_and_insert(h(5), 4));
  EXPECT_FALSE(tt.check_and_insert(h(2), 9));  // reinserted (evicting again)
}

TEST(TranspositionTable, AgingPolicyEvictsOldestGenerationFirst) {
  TranspositionTable tt(one_bucket(TTReplacement::kAging));
  ASSERT_FALSE(tt.check_and_insert(h(1), 1));  // gen 0
  tt.new_generation();
  ASSERT_FALSE(tt.check_and_insert(h(2), 9));  // gen 1
  ASSERT_FALSE(tt.check_and_insert(h(3), 9));  // gen 1
  ASSERT_FALSE(tt.check_and_insert(h(4), 9));  // gen 1
  ASSERT_FALSE(tt.check_and_insert(h(5), 2));  // full: evicts gen-0 h(1),
                                               // despite deeper gen-1 peers
  EXPECT_EQ(tt.evictions(), 1u);
  EXPECT_TRUE(tt.check_and_insert(h(2), 9));   // gen-1 entries survived
  EXPECT_TRUE(tt.check_and_insert(h(5), 2));
}

// An entry from a previous generation must not prune the new pass: it is
// refreshed (gen + depth) on first touch and prunes only within the new
// generation. This is what makes one table shareable across the whole
// iterative-deepening ladder and the refinement reruns.
TEST(TranspositionTable, StaleGenerationRefreshesInsteadOfPruning) {
  TranspositionTable tt(one_bucket(TTReplacement::kAging));
  ASSERT_FALSE(tt.check_and_insert(h(1), 2));
  ASSERT_TRUE(tt.check_and_insert(h(1), 2));
  tt.new_generation();
  EXPECT_EQ(tt.generation(), 1u);
  EXPECT_FALSE(tt.check_and_insert(h(1), 6));  // stale: refresh, no prune
  EXPECT_TRUE(tt.check_and_insert(h(1), 6));   // current gen again: prune
  // The refresh reused the slot: no new insert, no eviction.
  EXPECT_EQ(tt.inserts(), 1u);
  EXPECT_EQ(tt.evictions(), 0u);
}

// The generation counter is 8-bit by design (it lives in every 16-byte
// entry). After exactly 256 bumps a surviving entry aliases the current
// generation and may wrongly prune one revisit — the documented bounded
// staleness trade. The counter itself must wrap cleanly.
TEST(TranspositionTable, GenerationRollover) {
  TranspositionTable tt(one_bucket(TTReplacement::kAging));
  ASSERT_FALSE(tt.check_and_insert(h(1), 4));
  for (int i = 0; i < 256; ++i) tt.new_generation();
  EXPECT_EQ(tt.generation(), 0u);  // wrapped back
  // The entry now aliases the current generation: it prunes (the accepted
  // bounded-staleness behaviour), and a shallower revisit still overwrites.
  EXPECT_TRUE(tt.check_and_insert(h(1), 4));
  EXPECT_FALSE(tt.check_and_insert(h(1), 3));
  // One bump off the alias point behaves like any stale entry again.
  tt.new_generation();
  EXPECT_FALSE(tt.check_and_insert(h(1), 5));
}

// The bound that motivates the whole design: ten million inserts into a
// 1 MiB table stay inside the fixed footprint. The grow-only seen-map
// this table replaced would hold all 10^7 entries (~hundreds of MB).
TEST(TranspositionTable, BoundedMemoryUnderSustainedInsertPressure) {
  TranspositionTable tt(1, 4, TTReplacement::kAging);
  const std::uint64_t capacity = tt.capacity();
  ASSERT_GT(capacity, 0u);
  ASSERT_LE(tt.bytes(), std::size_t{1} << 20);
  constexpr std::uint64_t kInserts = 10'000'000;
  for (std::uint64_t i = 0; i < kInserts; ++i) {
    // splitmix64 over a counter: effectively unique hashes, all misses.
    tt.check_and_insert(splitmix64(i), 1 + static_cast<std::int32_t>(i % 7));
  }
  EXPECT_LE(tt.entry_count(), capacity);
  EXPECT_GT(tt.evictions(), 0u);
  EXPECT_LE(tt.evictions(), tt.inserts());
  EXPECT_LE(tt.inserts(), kInserts);
  // Occupancy accounting: entries that were inserted but never evicted.
  EXPECT_EQ(tt.entry_count(), tt.inserts() - tt.evictions());
}

TEST(TranspositionTable, SnapshotDeltasArePerStripeAndMonotone) {
  TranspositionTable tt(1, 4, TTReplacement::kAging);
  const TranspositionTable::Snapshot before = tt.snapshot();
  ASSERT_EQ(before.stripe_hits.size(), 4u);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    tt.check_and_insert(splitmix64(i), 3);
    tt.check_and_insert(splitmix64(i), 3);  // guaranteed revisit
  }
  const TranspositionTable::Snapshot after = tt.snapshot();
  EXPECT_GE(after.hits, before.hits + 1000);
  EXPECT_GE(after.inserts, before.inserts);
  const std::uint64_t stripe_sum = std::accumulate(
      after.stripe_hits.begin(), after.stripe_hits.end(), std::uint64_t{0});
  EXPECT_EQ(stripe_sum, after.hits);
}

// Budget sizing: the table must fit the requested megabytes and use a
// power-of-two bucket count.
TEST(TranspositionTable, BudgetSizingFitsAndIsPowerOfTwo) {
  for (const int mb : {1, 2, 8}) {
    TranspositionTable tt(mb, 16, TTReplacement::kAging);
    EXPECT_LE(tt.bytes(), static_cast<std::size_t>(mb) << 20);
    const std::uint64_t buckets =
        tt.capacity() / TranspositionTable::kBucketEntries;
    EXPECT_EQ(buckets & (buckets - 1), 0u) << "bucket count " << buckets;
  }
}

// The iterative-deepening driver on top of the table must stay
// bit-reproducible single-threaded: same spec, same options, same
// circuit, same node count — and it must report its rung count.
TEST(IterativeDeepening, SingleThreadedRunsAreDeterministic) {
  const TruthTable spec(
      {0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5});
  SynthesisOptions o;
  o.max_nodes = 50000;
  const SynthesisResult a = synthesize(spec, o);
  const SynthesisResult b = synthesize(spec, o);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.circuit.to_string(), b.circuit.to_string());
  EXPECT_EQ(a.stats.nodes_expanded, b.stats.nodes_expanded);
  EXPECT_EQ(a.stats.children_created, b.stats.children_created);
  EXPECT_GE(a.stats.id_iterations, 1u);
  EXPECT_EQ(a.stats.id_iterations, b.stats.id_iterations);
  EXPECT_TRUE(implements(a.circuit, spec));
}

// --no-id must restore the single full-depth pass: exactly one iteration
// reported, and the result still valid.
TEST(IterativeDeepening, DisabledReportsOneIteration) {
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  SynthesisOptions o;
  o.max_nodes = 50000;
  o.iterative_deepening = false;
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stats.id_iterations, 1u);
  EXPECT_TRUE(implements(r.circuit, spec));
}

// TT metrics surfaced through SynthesisStats: inserts move, evictions
// never exceed them, and disabling the history heuristic zeroes its
// counter while the search still succeeds.
TEST(IterativeDeepening, StatsInvariantsAndHistoryKillSwitch) {
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  SynthesisOptions o;
  o.max_nodes = 50000;
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.tt_inserts, 0u);
  EXPECT_LE(r.stats.tt_evictions, r.stats.tt_inserts);

  SynthesisOptions no_history = o;
  no_history.use_history = false;
  const SynthesisResult rh = synthesize(spec, no_history);
  ASSERT_TRUE(rh.success);
  EXPECT_EQ(rh.stats.history_hits, 0u);
  EXPECT_TRUE(implements(rh.circuit, spec));
}

}  // namespace
}  // namespace rmrls
