// Tests for the seeded random-function and random-circuit generators.

#include "rev/random.hpp"

#include <gtest/gtest.h>

namespace rmrls {
namespace {

TEST(RandomFunction, IsDeterministicPerSeed) {
  std::mt19937_64 rng1(5);
  std::mt19937_64 rng2(5);
  EXPECT_EQ(random_reversible_function(4, rng1),
            random_reversible_function(4, rng2));
}

TEST(RandomFunction, DifferentSeedsDiffer) {
  std::mt19937_64 rng1(5);
  std::mt19937_64 rng2(6);
  EXPECT_NE(random_reversible_function(5, rng1),
            random_reversible_function(5, rng2));
}

TEST(RandomFunction, RejectsWideRequests) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(random_reversible_function(25, rng), std::invalid_argument);
  EXPECT_THROW(random_reversible_function(0, rng), std::invalid_argument);
}

TEST(RandomCircuit, RespectsGateCount) {
  std::mt19937_64 rng(2);
  const Circuit c = random_circuit(8, 17, GateLibrary::kGT, rng);
  EXPECT_EQ(c.gate_count(), 17);
  EXPECT_EQ(c.num_lines(), 8);
}

TEST(RandomCircuit, NctLimitsGateWidth) {
  std::mt19937_64 rng(3);
  const Circuit c = random_circuit(10, 200, GateLibrary::kNCT, rng);
  EXPECT_LE(c.max_gate_size(), 3);
}

TEST(RandomCircuit, GtUsesWiderGatesEventually) {
  std::mt19937_64 rng(4);
  const Circuit c = random_circuit(10, 200, GateLibrary::kGT, rng);
  EXPECT_GT(c.max_gate_size(), 3);
}

TEST(RandomCircuit, SwapLibraryRejected) {
  std::mt19937_64 rng(5);
  EXPECT_THROW(random_circuit(4, 3, GateLibrary::kNCTS, rng),
               std::invalid_argument);
}

TEST(RandomCircuit, GatesAreWellFormed) {
  std::mt19937_64 rng(6);
  const Circuit c = random_circuit(6, 100, GateLibrary::kGT, rng);
  for (const Gate& g : c.gates()) {
    EXPECT_FALSE(cube_has_var(g.controls, g.target));
    EXPECT_LT(g.target, 6);
  }
}

TEST(RandomCircuit, SectionVEPipelineIsReproducible) {
  // Same seed -> same circuit -> same specification (Section V-E flow).
  std::mt19937_64 rng1(7);
  std::mt19937_64 rng2(7);
  const Circuit c1 = random_circuit(6, 15, GateLibrary::kGT, rng1);
  const Circuit c2 = random_circuit(6, 15, GateLibrary::kGT, rng2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1.to_truth_table(), c2.to_truth_table());
}

}  // namespace
}  // namespace rmrls
