// Tests for the RMRLS search engine and public synthesize() entry points.

#include <gtest/gtest.h>

#include "core/synthesizer.hpp"
#include "rev/pprm_transform.hpp"

namespace rmrls {
namespace {

SynthesisOptions quick() {
  SynthesisOptions o;
  o.max_nodes = 50000;
  return o;
}

TEST(Search, Fig1SynthesizesInThreeGates) {
  // The paper's running example reduces in exactly three substitutions
  // (Fig. 5): TOF1(a), TOF3(a, c; b), TOF3(a, b; c).
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, quick());
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 3);
  EXPECT_TRUE(implements(r.circuit, spec));
}

TEST(Search, IdentityNeedsNoGates) {
  const SynthesisResult r = synthesize(TruthTable::identity(4), quick());
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 0);
}

TEST(Search, SingleGateFunctions) {
  // A lone NOT and a lone CNOT synthesize as single gates.
  const SynthesisResult r1 = synthesize(TruthTable({1, 0}), quick());
  ASSERT_TRUE(r1.success);
  EXPECT_EQ(r1.circuit.gate_count(), 1);
  const SynthesisResult r2 =
      synthesize(TruthTable({0, 3, 2, 1}), quick());  // CNOT a->b
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r2.circuit.gate_count(), 1);
}

TEST(Search, WireSwapIsReachable) {
  // Pure wire swap: provably unreachable under strict monotone pruning;
  // the fallback exemption scope must recover it (DESIGN.md).
  const TruthTable swap_ab({0, 2, 1, 3});
  const SynthesisResult r = synthesize(swap_ab, quick());
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, swap_ab));
  EXPECT_LE(r.circuit.gate_count(), 3);  // the classic 3-CNOT pattern
}

TEST(Search, PaperExamplesSynthesizeAndVerify) {
  // Section V-C Examples 1-8 (all with explicit printed specs).
  const std::vector<std::vector<std::uint64_t>> specs = {
      {1, 0, 3, 2, 5, 7, 4, 6},
      {7, 0, 1, 2, 3, 4, 5, 6},
      {0, 1, 2, 3, 4, 6, 5, 7},
      {0, 1, 2, 4, 3, 5, 6, 7},
      {0, 1, 2, 3, 4, 5, 6, 8, 7, 9, 10, 11, 12, 13, 14, 15},
      {1, 2, 3, 4, 5, 6, 7, 0},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0},
      {0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5}};
  const std::vector<int> paper_gates = {4, 3, 3, 6, 7, 3, 4, 4};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const TruthTable spec(specs[i]);
    const SynthesisResult r = synthesize(spec, quick());
    ASSERT_TRUE(r.success) << "example " << i + 1;
    EXPECT_TRUE(implements(r.circuit, spec)) << "example " << i + 1;
    // Within 1.5x of the paper's printed sizes (ours sometimes beats them).
    EXPECT_LE(r.circuit.gate_count(), paper_gates[i] + paper_gates[i] / 2 + 1)
        << "example " << i + 1;
  }
}

TEST(Search, MaxGatesPrunes) {
  // Example 4's function needs >= 5 NCT-ish gates; cap at 2 -> failure.
  SynthesisOptions o = quick();
  o.max_gates = 2;
  o.iterative_refinement = false;
  const SynthesisResult r = synthesize(TruthTable({0, 1, 2, 4, 3, 5, 6, 7}), o);
  EXPECT_FALSE(r.success);
}

TEST(Search, NodeBudgetIsHonored) {
  SynthesisOptions o;
  o.max_nodes = 50;
  o.iterative_refinement = false;
  const TruthTable spec({15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11});
  const SynthesisResult r = synthesize(spec, o);
  EXPECT_LE(r.stats.nodes_expanded, 50u);
}

TEST(Search, StopAtFirstSolutionStopsEarly) {
  SynthesisOptions first = quick();
  first.stop_at_first_solution = true;
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, first);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, spec));
  EXPECT_EQ(r.stats.solutions_found, 1u);
}

TEST(Search, DeterministicAcrossRuns) {
  const TruthTable spec({7, 1, 4, 3, 0, 2, 6, 5});
  const SynthesisResult r1 = synthesize(spec, quick());
  const SynthesisResult r2 = synthesize(spec, quick());
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r1.circuit, r2.circuit);
  EXPECT_EQ(r1.stats.nodes_expanded, r2.stats.nodes_expanded);
}

TEST(Search, GreedyKeepsKPerVariable) {
  SynthesisOptions o = quick();
  o.greedy_k = 1;
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(implements(r.circuit, spec));
}

TEST(Search, BasicOnlyModeStillSolvesFig1) {
  SynthesisOptions o = quick();
  o.allow_relaxed_targets = false;
  o.allow_complement = false;
  o.iterative_refinement = false;
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.circuit.gate_count(), 3);
}

TEST(Search, GateCountNeverBelowInformationBound) {
  // A function that moves k outputs needs at least ... >= 1 gate; check a
  // couple of sanity bounds rather than trivia.
  const TruthTable spec({1, 0, 7, 2, 3, 4, 5, 6});
  const SynthesisResult r = synthesize(spec, quick());
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.circuit.gate_count(), 1);
}

TEST(Search, StatsAreConsistent) {
  const TruthTable spec({7, 1, 4, 3, 0, 2, 6, 5});
  const SynthesisResult r = synthesize(spec, quick());
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.stats.nodes_expanded, 0u);
  EXPECT_GT(r.stats.children_created, 0u);
  EXPECT_GE(r.stats.children_created, r.stats.children_pushed);
  EXPECT_GE(r.stats.solutions_found, 1u);
  EXPECT_GT(r.initial_terms, 0);
}

TEST(Search, PprmInputEqualsTruthTableInput) {
  const TruthTable spec({5, 3, 1, 7, 4, 0, 2, 6});
  const SynthesisResult r1 = synthesize(spec, quick());
  const SynthesisResult r2 = synthesize(pprm_of_truth_table(spec), quick());
  ASSERT_TRUE(r1.success);
  EXPECT_EQ(r1.circuit, r2.circuit);
}

TEST(Implements, DetectsWrongCircuit) {
  Circuit wrong(3);
  wrong.append(Gate(kConstOne, 1));
  EXPECT_FALSE(implements(wrong, TruthTable({1, 0, 7, 2, 3, 4, 5, 6})));
  EXPECT_FALSE(implements(Circuit(4), TruthTable::identity(3)));  // width
}

TEST(Implements, SampledCheckOnWidePprm) {
  // An empty circuit implements the identity PPRM at any width.
  const Pprm wide = Pprm::identity(40);
  EXPECT_TRUE(implements(Circuit(40), wide));
  Circuit not_id(40);
  not_id.append(Gate(kConstOne, 39));
  EXPECT_FALSE(implements(not_id, wide));
}

}  // namespace
}  // namespace rmrls
