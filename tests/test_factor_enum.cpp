// Tests for candidate-substitution enumeration (Sections IV-A and IV-D).

#include "core/factor_enum.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rev/pprm_transform.hpp"
#include "rev/truth_table.hpp"

namespace rmrls {
namespace {

bool has(const std::vector<Candidate>& v, int target, Cube factor) {
  return std::any_of(v.begin(), v.end(), [&](const Candidate& c) {
    return c.target == target && c.factor == factor;
  });
}

Pprm fig1() {
  return pprm_of_truth_table(TruthTable({1, 0, 7, 2, 3, 4, 5, 6}));
}

TEST(FactorEnum, BasicSubstitutionsMatchPaperExample) {
  // Section IV-B: from Fig. 1's expansions the basic algorithm identifies
  // a = a XOR 1, b = b XOR c, b = b XOR ac.
  SynthesisOptions o;
  o.allow_relaxed_targets = false;
  o.allow_complement = false;
  const auto cands = enumerate_candidates(fig1(), o, nullptr);
  EXPECT_EQ(cands.size(), 3u);
  EXPECT_TRUE(has(cands, 0, kConstOne));
  EXPECT_TRUE(has(cands, 1, cube_of_var(2)));
  EXPECT_TRUE(has(cands, 1, cube_of_var(0) | cube_of_var(2)));
}

TEST(FactorEnum, AdditionalSubstitutionsMatchPaperExample) {
  // Section IV-D: relaxing the solitary-term requirement adds c = c XOR b
  // and c = c XOR ab; the complement class adds b = b XOR 1 and
  // c = c XOR 1 (Fig. 6).
  SynthesisOptions o;  // both classes on by default
  const auto cands = enumerate_candidates(fig1(), o, nullptr);
  EXPECT_TRUE(has(cands, 2, cube_of_var(1)));
  EXPECT_TRUE(has(cands, 2, cube_of_var(0) | cube_of_var(1)));
  EXPECT_TRUE(has(cands, 1, kConstOne));
  EXPECT_TRUE(has(cands, 2, kConstOne));
  EXPECT_EQ(cands.size(), 7u);
}

TEST(FactorEnum, AdditionalFlagIsSetCorrectly) {
  SynthesisOptions o;
  for (const Candidate& c : enumerate_candidates(fig1(), o, nullptr)) {
    if (c.target == 2) {
      // c_out = b + ab + ac has no solitary c: all its factors are
      // "additional" substitutions.
      EXPECT_TRUE(c.additional);
    } else if (c.factor == kConstOne) {
      EXPECT_TRUE(c.additional);
    } else {
      EXPECT_FALSE(c.additional);
    }
  }
}

TEST(FactorEnum, FactorsNeverContainTheTarget) {
  SynthesisOptions o;
  const Pprm p = pprm_of_truth_table(TruthTable({3, 0, 2, 7, 1, 4, 6, 5}));
  for (const Candidate& c : enumerate_candidates(p, o, nullptr)) {
    EXPECT_FALSE(cube_has_var(c.factor, c.target));
  }
}

TEST(FactorEnum, SkipSuppressesOneCandidate) {
  SynthesisOptions o;
  const Pprm p = fig1();
  const auto all = enumerate_candidates(p, o, nullptr);
  const Candidate skip{1, cube_of_var(2)};
  const auto fewer = enumerate_candidates(p, o, &skip);
  EXPECT_EQ(fewer.size() + 1, all.size());
  EXPECT_FALSE(has(fewer, 1, cube_of_var(2)));
}

TEST(FactorEnum, ComplementOfferedOncePerTarget) {
  // a_out contains the constant term already; the complement class must
  // not duplicate (a, 1).
  SynthesisOptions o;
  const auto cands = enumerate_candidates(fig1(), o, nullptr);
  const auto count = std::count_if(
      cands.begin(), cands.end(),
      [](const Candidate& c) { return c.target == 0 && c.factor == 0; });
  EXPECT_EQ(count, 1);
}

TEST(FactorEnum, IdentityYieldsOnlyComplements) {
  SynthesisOptions o;
  const auto cands = enumerate_candidates(Pprm::identity(3), o, nullptr);
  EXPECT_EQ(cands.size(), 3u);
  for (const Candidate& c : cands) EXPECT_TRUE(c.is_complement());
}

TEST(FactorEnum, DisablingComplementRemovesConstantForMissingTargets) {
  SynthesisOptions o;
  o.allow_complement = false;
  const auto cands = enumerate_candidates(Pprm::identity(3), o, nullptr);
  EXPECT_TRUE(cands.empty());
}

}  // namespace
}  // namespace rmrls
