// Tests for CubeList / Pprm: XOR semantics, substitution, identity checks.

#include "rev/pprm.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rmrls {
namespace {

Cube a() { return cube_of_var(0); }
Cube b() { return cube_of_var(1); }
Cube c() { return cube_of_var(2); }

TEST(CubeList, ConstructorCancelsPairs) {
  // a + a cancels; b survives; c + c + c leaves one c.
  CubeList l({a(), b(), a(), c(), c(), c()});
  EXPECT_EQ(l.size(), 2);
  EXPECT_TRUE(l.contains(b()));
  EXPECT_TRUE(l.contains(c()));
  EXPECT_FALSE(l.contains(a()));
}

TEST(CubeList, ToggleInsertsAndRemoves) {
  CubeList l;
  l.toggle(a());
  EXPECT_TRUE(l.contains(a()));
  l.toggle(a());
  EXPECT_FALSE(l.contains(a()));
  EXPECT_TRUE(l.empty());
}

TEST(CubeList, ToggleAllIsSymmetricDifference) {
  CubeList x({a(), b()});
  CubeList y({b(), c()});
  x.toggle_all(y);
  EXPECT_EQ(x.size(), 2);
  EXPECT_TRUE(x.contains(a()));
  EXPECT_TRUE(x.contains(c()));
}

TEST(CubeList, EvalMatchesXorOfProducts) {
  // f = 1 + a + bc
  CubeList l({kConstOne, a(), b() | c()});
  EXPECT_TRUE(l.eval(0b000));   // 1
  EXPECT_FALSE(l.eval(0b001));  // 1 ^ a
  EXPECT_TRUE(l.eval(0b111));   // 1 ^ a ^ bc
  EXPECT_FALSE(l.eval(0b110));  // 1 ^ bc
}

TEST(CubeList, SubstituteExpandsTarget) {
  // f = b + ab; substitute b <- b XOR c: f = b + c + ab + ac.
  CubeList l({b(), a() | b()});
  const int delta = l.substitute(1, c());
  EXPECT_EQ(delta, 2);
  EXPECT_EQ(l.size(), 4);
  EXPECT_TRUE(l.contains(c()));
  EXPECT_TRUE(l.contains(a() | c()));
}

TEST(CubeList, SubstituteCancels) {
  // f = b + c; substitute b <- b XOR c: f = b + c + c = b.
  CubeList l({b(), c()});
  const int delta = l.substitute(1, c());
  EXPECT_EQ(delta, -1);
  EXPECT_TRUE(l.is_single_var(1));
}

TEST(CubeList, SubstituteRejectsTargetInFactor) {
  CubeList l({b()});
  EXPECT_THROW(l.substitute(1, b()), std::invalid_argument);
  EXPECT_THROW(l.substitute(1, a() | b()), std::invalid_argument);
}

TEST(CubeList, SubstituteTwiceRestores) {
  // Toffoli gates are self-inverse; so is the substitution.
  CubeList l({b(), a() | b(), c(), a()});
  const CubeList original = l;
  l.substitute(1, a() | c());
  l.substitute(1, a() | c());
  EXPECT_EQ(l, original);
}

TEST(CubeList, DependsOn) {
  CubeList l({a() | b(), c()});
  EXPECT_TRUE(l.depends_on(0));
  EXPECT_TRUE(l.depends_on(1));
  EXPECT_TRUE(l.depends_on(2));
  EXPECT_FALSE(l.depends_on(3));
}

TEST(CubeList, ToStringMatchesPaperNotation) {
  CubeList l({b(), c(), a() | c()});
  EXPECT_EQ(l.to_string(3), "b + c + ac");
  EXPECT_EQ(CubeList{}.to_string(3), "0");
}

TEST(Pprm, IdentityRoundtrip) {
  const Pprm id = Pprm::identity(4);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.term_count(), 4);
  for (std::uint64_t x = 0; x < 16; ++x) EXPECT_EQ(id.eval(x), x);
}

TEST(Pprm, EmptySystemIsNotIdentity) {
  EXPECT_FALSE(Pprm(3).is_identity());
}

TEST(Pprm, SubstituteActsOnAllOutputs) {
  // Identity on 3 lines, then b <- b XOR ac twice returns to identity.
  Pprm p = Pprm::identity(3);
  const int delta = p.substitute(1, a() | c());
  EXPECT_EQ(delta, 1);
  EXPECT_FALSE(p.is_identity());
  p.substitute(1, a() | c());
  EXPECT_TRUE(p.is_identity());
}

TEST(Pprm, EvalPacksOutputBits) {
  // out_a = b, out_b = a (wire swap), out_c = c.
  Pprm p(3);
  p.output(0).toggle(b());
  p.output(1).toggle(a());
  p.output(2).toggle(c());
  EXPECT_EQ(p.eval(0b001), 0b010u);
  EXPECT_EQ(p.eval(0b010), 0b001u);
  EXPECT_EQ(p.eval(0b101), 0b110u);
}

TEST(Pprm, HashDistinguishesOutputPlacement) {
  Pprm p(2);
  p.output(0).toggle(a());
  Pprm q(2);
  q.output(1).toggle(a());
  EXPECT_NE(p.hash(), q.hash());
  EXPECT_EQ(p.hash(), p.hash());
}

TEST(Pprm, EqualityIsStructural) {
  Pprm p = Pprm::identity(3);
  Pprm q = Pprm::identity(3);
  EXPECT_EQ(p, q);
  q.substitute(0, c());
  EXPECT_NE(p, q);
}

TEST(CubeList, SubstituteDeltaMatchesSubstitute) {
  // Property: the read-only delta equals the mutating one, including the
  // collision case where two source cubes map to the same rewrite
  // (b and ab both map to ab under b <- b XOR a).
  CubeList collide({b(), a() | b()});
  EXPECT_EQ(collide.substitute_delta(1, a()), [&] {
    CubeList copy = collide;
    return copy.substitute(1, a());
  }());
  std::mt19937_64 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Cube> cubes;
    const int count = 1 + static_cast<int>(rng() % 10);
    for (int i = 0; i < count; ++i) cubes.push_back(rng() & 0x1f);
    CubeList l(std::move(cubes));
    const int t = static_cast<int>(rng() % 5);
    const Cube f = rng() & 0x1f & ~cube_of_var(t);
    CubeList mutated = l;
    EXPECT_EQ(l.substitute_delta(t, f), mutated.substitute(t, f));
  }
}

TEST(Pprm, SubstituteDeltaMatchesSubstitute) {
  std::mt19937_64 rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    Pprm p(4);
    for (int out = 0; out < 4; ++out) {
      for (int i = 0; i < 5; ++i) p.output(out).toggle(rng() & 0xf);
    }
    const int t = static_cast<int>(rng() % 4);
    const Cube f = rng() & 0xf & ~cube_of_var(t);
    Pprm mutated = p;
    EXPECT_EQ(p.substitute_delta(t, f), mutated.substitute(t, f));
  }
}

TEST(Pprm, RejectsOutOfRangeWidth) {
  EXPECT_THROW(Pprm(-1), std::invalid_argument);
  EXPECT_THROW(Pprm(kMaxVariables + 1), std::invalid_argument);
}

}  // namespace
}  // namespace rmrls
