// Cross-module property tests: the invariants listed in DESIGN.md Section 6,
// exercised with parameterized sweeps over widths and seeds.

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "baselines/transformation_based.hpp"
#include "core/synthesizer.hpp"
#include "rev/pprm_transform.hpp"
#include "rev/quantum_cost.hpp"
#include "rev/random.hpp"
#include "templates/simplify.hpp"

namespace rmrls {
namespace {

// ---------------------------------------------------------------------------
// Invariant 4: every circuit returned by synthesize() implements its spec.

class SynthesizeRandom
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(SynthesizeRandom, CircuitImplementsSpec) {
  const auto [n, seed] = GetParam();
  std::mt19937_64 rng(seed);
  SynthesisOptions o;
  o.max_nodes = n <= 3 ? 20000 : 60000;
  const TruthTable spec = random_reversible_function(n, rng);
  const SynthesisResult r = synthesize(spec, o);
  ASSERT_TRUE(r.success) << spec.to_string();
  EXPECT_TRUE(implements(r.circuit, spec)) << spec.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Widths, SynthesizeRandom,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

// ---------------------------------------------------------------------------
// Invariant 3: PPRM of a circuit equals PPRM of its simulated table.

class CircuitPprm : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CircuitPprm, ReverseSubstitutionEqualsTransform) {
  const auto [n, gates] = GetParam();
  std::mt19937_64 rng(static_cast<unsigned>(n * 100 + gates));
  const Circuit c = random_circuit(n, gates, GateLibrary::kGT, rng);
  EXPECT_EQ(c.to_pprm(), pprm_of_truth_table(c.to_truth_table()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CircuitPprm,
                         ::testing::Combine(::testing::Values(2, 4, 6, 8),
                                            ::testing::Values(1, 5, 20)));

// ---------------------------------------------------------------------------
// Invariant: re-synthesizing a random circuit's function and simulating
// matches the original circuit everywhere (the Section V-E pipeline).

class ScalabilityPipeline : public ::testing::TestWithParam<int> {};

TEST_P(ScalabilityPipeline, RoundTripsThroughPprm) {
  const int n = GetParam();
  std::mt19937_64 rng(static_cast<unsigned>(n) * 7 + 1);
  const Circuit original = random_circuit(n, 8, GateLibrary::kGT, rng);
  const Pprm spec = original.to_pprm();
  SynthesisOptions o;
  o.max_nodes = 60000;
  o.stop_at_first_solution = true;
  const SynthesisResult r = synthesize(spec, o);
  if (!r.success) GTEST_SKIP() << "heuristic miss is allowed";
  EXPECT_TRUE(implements(r.circuit, spec));
}

INSTANTIATE_TEST_SUITE_P(Widths, ScalabilityPipeline,
                         ::testing::Values(5, 6, 7, 8, 10));

// ---------------------------------------------------------------------------
// Invariant 6/7: MMD is total; templates preserve function.

class MmdAndTemplates : public ::testing::TestWithParam<unsigned> {};

TEST_P(MmdAndTemplates, SimplifiedMmdCircuitStaysCorrect) {
  std::mt19937_64 rng(GetParam());
  const TruthTable spec = random_reversible_function(4, rng);
  const Circuit c = synthesize_transformation_bidir(spec);
  ASSERT_TRUE(implements(c, spec));
  const SimplifyResult s = simplify_templates(c);
  EXPECT_TRUE(implements(s.circuit, spec));
  EXPECT_LE(s.circuit.gate_count(), c.gate_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmdAndTemplates,
                         ::testing::Range(100u, 116u));

// ---------------------------------------------------------------------------
// Invariant 10: parity. On n >= 4 lines every NCT gate of width < n is an
// even permutation, so circuits of such gates realize even permutations.

class ParityTheorem : public ::testing::TestWithParam<int> {};

TEST_P(ParityTheorem, SmallGateCircuitsAreEvenPermutations) {
  const int n = GetParam();
  std::mt19937_64 rng(static_cast<unsigned>(n) * 13);
  for (int trial = 0; trial < 10; ++trial) {
    const Circuit c = random_circuit(n, 12, GateLibrary::kNCT, rng);
    if (c.max_gate_size() >= n) continue;  // full-width gates are odd
    EXPECT_TRUE(c.to_truth_table().is_even()) << c.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ParityTheorem, ::testing::Values(4, 5, 6));

TEST(ParityTheorem, FullWidthGateIsOdd) {
  // On n lines, the n-bit Toffoli exchanges exactly one pair of states.
  for (int n = 2; n <= 6; ++n) {
    Cube controls = 0;
    for (int v = 1; v < n; ++v) controls |= cube_of_var(v);
    Circuit c(n);
    c.append(Gate(controls, 0));
    EXPECT_FALSE(c.to_truth_table().is_even()) << n;
  }
}

// ---------------------------------------------------------------------------
// Odd permutations on n lines require at least one full-width gate (the
// Shende et al. structure theorem), so RMRLS output for an odd permutation
// must contain one.

TEST(ParityTheorem, OddPermutationForcesWideGate) {
  std::mt19937_64 rng(7777);
  SynthesisOptions o;
  o.max_nodes = 60000;
  int tested = 0;
  while (tested < 5) {
    const TruthTable spec = random_reversible_function(4, rng);
    if (spec.is_even()) continue;
    ++tested;
    const SynthesisResult r = synthesize(spec, o);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.circuit.max_gate_size(), 4) << spec.to_string();
  }
}

// ---------------------------------------------------------------------------
// Quantum-cost sanity across random circuits: cost >= gate count, and the
// template pass never increases cost.

class CostMonotonicity : public ::testing::TestWithParam<unsigned> {};

TEST_P(CostMonotonicity, TemplatesNeverIncreaseCost) {
  std::mt19937_64 rng(GetParam());
  const Circuit c = random_circuit(6, 25, GateLibrary::kGT, rng);
  const SimplifyResult s = simplify_templates(c);
  EXPECT_GE(quantum_cost(c), quantum_cost(s.circuit));
  EXPECT_GE(quantum_cost(c), c.gate_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostMonotonicity,
                         ::testing::Range(200u, 212u));

}  // namespace
}  // namespace rmrls
