// Tests for the RevLib .real reader/writer.

#include "io/real_format.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rev/random.hpp"
#include "templates/fredkinize.hpp"

namespace rmrls {
namespace {

TEST(RealFormat, WriteContainsExpectedSections) {
  MixedCircuit c(3);
  c.append(MixedGate::toffoli(Gate(cube_of_var(0) | cube_of_var(1), 2)));
  c.append(MixedGate::fredkin(cube_of_var(2), 0, 1));
  const std::string text = write_real(c);
  EXPECT_NE(text.find(".numvars 3"), std::string::npos);
  EXPECT_NE(text.find(".variables a b c"), std::string::npos);
  EXPECT_NE(text.find("t3 a b c"), std::string::npos);
  EXPECT_NE(text.find("f3 c a b"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(RealFormat, MetadataRoundTrips) {
  RealCircuit rc;
  rc.circuit = MixedCircuit(4);
  rc.circuit.append(MixedGate::toffoli(Gate(kConstOne, 3)));
  rc.constants = "--00";
  rc.garbage = "-11-";
  const RealCircuit back = read_real(write_real(rc));
  EXPECT_EQ(back.constants, "--00");
  EXPECT_EQ(back.garbage, "-11-");
  EXPECT_EQ(back.circuit, rc.circuit);
}

TEST(RealFormat, RoundTripPreservesMixedCascades) {
  std::mt19937_64 rng(91);
  for (int n : {3, 5, 9, 30}) {
    const Circuit base = random_circuit(n, 12, GateLibrary::kGT, rng);
    const MixedCircuit mixed = fredkinize(base).circuit;
    const RealCircuit back = read_real(write_real(mixed));
    EXPECT_EQ(back.circuit, mixed) << "width " << n;
  }
}

TEST(RealFormat, ParsesHandWrittenFile) {
  const std::string text =
      "# adder fragment\n"
      ".version 2.0\n"
      ".numvars 3\n"
      ".variables x y z\n"
      ".constants --0\n"
      ".garbage 1--\n"
      ".begin\n"
      "t2 x y\n"
      "f3 z x y\n"
      ".end\n";
  const RealCircuit rc = read_real(text);
  EXPECT_EQ(rc.circuit.num_lines(), 3);
  ASSERT_EQ(rc.circuit.gate_count(), 2);
  EXPECT_EQ(rc.circuit.gates()[0],
            MixedGate::toffoli(Gate(cube_of_var(0), 1)));
  EXPECT_EQ(rc.circuit.gates()[1], MixedGate::fredkin(cube_of_var(2), 0, 1));
  EXPECT_EQ(rc.constants, "--0");
  EXPECT_EQ(rc.garbage, "1--");
}

TEST(RealFormat, RejectsMalformedInput) {
  EXPECT_THROW(read_real(".begin\n.end\n"), std::invalid_argument);
  EXPECT_THROW(read_real(".variables a b\n.begin\n"), std::invalid_argument);
  EXPECT_THROW(read_real(".variables a b\n.begin\nt2 a z\n.end\n"),
               std::invalid_argument);
  EXPECT_THROW(read_real(".variables a b\n.begin\nt3 a b\n.end\n"),
               std::invalid_argument);
  EXPECT_THROW(read_real(".variables a b\n.begin\nv2 a b\n.end\n"),
               std::invalid_argument);
  EXPECT_THROW(read_real(".numvars 3\n.variables a b\n.begin\n.end\n"),
               std::invalid_argument);
  // Negative-control markers are explicitly unsupported.
  EXPECT_THROW(read_real(".variables a b\n.begin\nt2 -a b\n.end\n"),
               std::invalid_argument);
  // Fredkin pair overlapping a control.
  EXPECT_THROW(read_real(".variables a b c\n.begin\nf3 a a b\n.end\n"),
               std::invalid_argument);
}

TEST(RealFormat, WidthValidation) {
  RealCircuit rc;
  rc.circuit = MixedCircuit(3);
  rc.constants = "--";  // wrong width
  EXPECT_THROW(write_real(rc), std::invalid_argument);
}

}  // namespace
}  // namespace rmrls
