// Tests for the ESOP representation and the exorcism-lite minimizer.

#include <gtest/gtest.h>

#include <random>

#include "esop/esop.hpp"
#include "esop/minimize.hpp"

namespace rmrls {
namespace {

LiteralCube lit(Cube care, Cube polarity) { return LiteralCube(care, polarity); }

TEST(LiteralCube, Validation) {
  EXPECT_NO_THROW(lit(0b11, 0b01));
  EXPECT_THROW(lit(0b01, 0b11), std::invalid_argument);
}

TEST(LiteralCube, Eval) {
  // a b' (a positive, b negative)
  const LiteralCube c = lit(0b11, 0b01);
  EXPECT_TRUE(c.eval(0b01));
  EXPECT_FALSE(c.eval(0b11));
  EXPECT_FALSE(c.eval(0b00));
  // The empty cube is the constant 1.
  EXPECT_TRUE(lit(0, 0).eval(0b1010));
}

TEST(LiteralCube, Distance) {
  const LiteralCube ab = lit(0b11, 0b11);
  EXPECT_EQ(ab.distance(ab), 0);
  EXPECT_EQ(ab.distance(lit(0b11, 0b01)), 1);   // polarity of b
  EXPECT_EQ(ab.distance(lit(0b01, 0b01)), 1);   // b missing
  EXPECT_EQ(ab.distance(lit(0b11, 0b00)), 2);   // both polarities
  EXPECT_EQ(ab.distance(lit(0b00, 0b00)), 2);   // both missing
  EXPECT_EQ(ab.distance(lit(0b101, 0b100)), 3); // a flipped, b gone, c new
}

TEST(LiteralCube, ToString) {
  EXPECT_EQ(lit(0b11, 0b01).to_string(2), "ab'");
  EXPECT_EQ(lit(0, 0).to_string(2), "1");
}

TEST(Esop, EvalIsXorOfCubes) {
  // f = a XOR b' over 2 vars.
  const Esop e(2, {lit(0b01, 0b01), lit(0b10, 0b00)});
  EXPECT_EQ(e.eval(0b00), true);   // b' fires
  EXPECT_EQ(e.eval(0b01), false);  // both fire
  EXPECT_EQ(e.eval(0b11), true);   // a fires
}

TEST(Esop, ToPprmExpandsComplements) {
  // a' = 1 + a.
  const Esop e(1, {lit(0b1, 0b0)});
  const CubeList p = e.to_pprm();
  EXPECT_EQ(p.size(), 2);
  EXPECT_TRUE(p.contains(kConstOne));
  EXPECT_TRUE(p.contains(cube_of_var(0)));
}

TEST(Esop, ToPprmCancelsAcrossCubes) {
  // a'b' XOR a' = a' (1 + b') ... expansion must cancel shared products:
  // a'b' = 1+a+b+ab; a' = 1+a; XOR = b+ab = b(1+a) = a'b. Verify
  // pointwise instead of symbolically.
  const Esop e(2, {lit(0b11, 0b00), lit(0b01, 0b00)});
  const CubeList p = e.to_pprm();
  for (std::uint64_t x = 0; x < 4; ++x) EXPECT_EQ(p.eval(x), e.eval(x));
  EXPECT_EQ(p.size(), 2);  // b + ab
}

class EsopPprmEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EsopPprmEquivalence, ExpansionPreservesTheFunction) {
  const int n = GetParam();
  std::mt19937_64 rng(31 + static_cast<unsigned>(n));
  std::uniform_int_distribution<std::uint64_t> word(0, (1u << n) - 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<LiteralCube> cubes;
    const int count = 1 + static_cast<int>(rng() % 6);
    for (int i = 0; i < count; ++i) {
      const Cube care = word(rng);
      cubes.push_back(lit(care, word(rng) & care));
    }
    const Esop e(n, std::move(cubes));
    const CubeList p = e.to_pprm();
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      EXPECT_EQ(p.eval(x), e.eval(x));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, EsopPprmEquivalence,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(EsopFromTruthVector, MintermForm) {
  const Esop e = Esop::from_truth_vector({0, 1, 1, 0});
  EXPECT_EQ(e.size(), 2);
  for (std::uint64_t x = 0; x < 4; ++x) {
    EXPECT_EQ(e.eval(x), x == 1 || x == 2);
  }
}

class MinimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinimizerProperty, PreservesFunctionAndNeverGrows) {
  const int n = GetParam();
  std::mt19937_64 rng(77 + static_cast<unsigned>(n));
  std::uniform_int_distribution<int> bit(0, 1);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint8_t> f(std::size_t{1} << n);
    for (auto& v : f) v = static_cast<std::uint8_t>(bit(rng));
    const Esop start = Esop::from_truth_vector(f);
    const EsopMinimizeResult r = minimize_esop(start);
    EXPECT_LE(r.final_cubes, r.initial_cubes);
    for (std::uint64_t x = 0; x < f.size(); ++x) {
      EXPECT_EQ(r.esop.eval(x), f[x] != 0) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MinimizerProperty,
                         ::testing::Values(2, 3, 4, 5));

TEST(Minimizer, MergesAdjacentMinterms) {
  // ON-set {00, 01} = b' as a single cube.
  const EsopMinimizeResult r =
      minimize_esop(Esop::from_truth_vector({1, 1, 0, 0}));
  EXPECT_EQ(r.final_cubes, 1);
}

TEST(Minimizer, ParityFunctionStaysDense) {
  // XOR of two variables minimizes to two single-literal cubes.
  const EsopMinimizeResult r =
      minimize_esop(Esop::from_truth_vector({0, 1, 1, 0}));
  EXPECT_EQ(r.final_cubes, 2);
  EXPECT_LE(r.esop.literal_total(), 2);
}

TEST(Minimizer, EmptyAndConstant) {
  EXPECT_EQ(minimize_esop(Esop::from_truth_vector({0, 0, 0, 0})).final_cubes,
            0);
  EXPECT_EQ(minimize_esop(Esop::from_truth_vector({1, 1, 1, 1})).final_cubes,
            1);
}

}  // namespace
}  // namespace rmrls
