// Tests for the permutation representation of reversible functions.

#include "rev/truth_table.hpp"

#include <gtest/gtest.h>

namespace rmrls {
namespace {

TEST(TruthTable, ValidatesBijectivity) {
  EXPECT_NO_THROW(TruthTable({1, 0, 3, 2}));
  EXPECT_THROW(TruthTable({0, 0, 1, 2}), std::invalid_argument);  // repeat
  EXPECT_THROW(TruthTable({0, 1, 2, 4}), std::invalid_argument);  // range
  EXPECT_THROW(TruthTable({0, 1, 2}), std::invalid_argument);  // not 2^n
  EXPECT_THROW(TruthTable(std::vector<std::uint64_t>{}),
               std::invalid_argument);
}

TEST(TruthTable, IdentityProperties) {
  const TruthTable id = TruthTable::identity(3);
  EXPECT_TRUE(id.is_identity());
  EXPECT_TRUE(id.is_even());
  EXPECT_EQ(id.num_vars(), 3);
  EXPECT_EQ(id.size(), 8u);
}

TEST(TruthTable, ApplyAndOperator) {
  const TruthTable f({1, 0, 7, 2, 3, 4, 5, 6});  // the paper's Fig. 1
  EXPECT_EQ(f.apply(0), 1u);
  EXPECT_EQ(f(2), 7u);
  EXPECT_EQ(f(7), 6u);
}

TEST(TruthTable, CompositionOrder) {
  // then() applies the receiver first.
  const TruthTable f({1, 0, 2, 3});          // swap states 0,1
  const TruthTable g({0, 2, 1, 3});          // swap states 1,2
  const TruthTable fg = f.then(g);
  EXPECT_EQ(fg(0), 2u);  // f: 0 -> 1, then g: 1 -> 2
  EXPECT_EQ(fg(1), 0u);
  const TruthTable gf = g.then(f);
  EXPECT_EQ(gf(1), 2u);  // g: 1 -> 2, f fixes 2
}

TEST(TruthTable, CompositionWidthMismatchThrows) {
  EXPECT_THROW(TruthTable::identity(2).then(TruthTable::identity(3)),
               std::invalid_argument);
}

TEST(TruthTable, InverseComposesToIdentity) {
  const TruthTable f({3, 0, 2, 7, 1, 4, 6, 5});
  EXPECT_TRUE(f.then(f.inverse()).is_identity());
  EXPECT_TRUE(f.inverse().then(f).is_identity());
}

TEST(TruthTable, ParityOfTransposition) {
  // A single transposition is odd; two are even.
  EXPECT_FALSE(TruthTable({1, 0, 2, 3}).is_even());
  EXPECT_TRUE(TruthTable({1, 0, 3, 2}).is_even());
}

TEST(TruthTable, ParityIsMultiplicative) {
  const TruthTable f({1, 0, 2, 3});  // odd
  const TruthTable g({0, 2, 1, 3});  // odd
  EXPECT_TRUE(f.then(g).is_even());  // odd * odd = even
}

TEST(TruthTable, ToStringUsesPaperNotation) {
  EXPECT_EQ(TruthTable({1, 0}).to_string(), "{1, 0}");
}

}  // namespace
}  // namespace rmrls
